package taskpoint_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"taskpoint"
)

// TestNewStratifiedPolicy: the validated constructor mirrors
// ParsePolicy's error path where the legacy StratifiedPolicy panics.
func TestNewStratifiedPolicy(t *testing.T) {
	pol, err := taskpoint.NewStratifiedPolicy(200)
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil || pol.Name() != "stratified(200)" {
		t.Errorf("policy %v, want stratified(200)", pol)
	}
	for _, b := range []int{0, -5} {
		pol, err := taskpoint.NewStratifiedPolicy(b)
		if err == nil {
			t.Errorf("budget %d accepted", b)
		}
		if pol != nil {
			t.Errorf("budget %d returned a non-nil policy alongside the error", b)
		}
	}
	// The deprecated form still works for valid budgets...
	if got := taskpoint.StratifiedPolicy(200).Name(); got != "stratified(200)" {
		t.Errorf("StratifiedPolicy(200).Name() = %q", got)
	}
	// ...and still panics on invalid ones (documented compatibility).
	defer func() {
		if recover() == nil {
			t.Error("StratifiedPolicy(0) did not panic")
		}
	}()
	taskpoint.StratifiedPolicy(0)
}

// TestErrUnknownArch: unknown architectures are distinguishable from
// every other request failure, so front ends can print the valid list
// exactly when it helps.
func TestErrUnknownArch(t *testing.T) {
	req := taskpoint.Request{Workload: "cholesky", Arch: "tpu"}
	err := req.Validate()
	if !errors.Is(err, taskpoint.ErrUnknownArch) {
		t.Errorf("unknown arch error %v, want ErrUnknownArch", err)
	}
	if errors.Is(err, taskpoint.ErrUnknownName) {
		t.Error("unknown arch error also matches ErrUnknownName")
	}
	// A known arch in any accepted spelling is not the listing's business.
	for _, a := range append(taskpoint.Arches(), "hp", "lp") {
		req := taskpoint.Request{Workload: "cholesky", Arch: a}
		if err := req.Validate(); err != nil {
			t.Errorf("arch %q rejected: %v", a, err)
		}
	}
	if len(taskpoint.Arches()) != 3 {
		t.Errorf("Arches() = %v, want the three evaluated architectures", taskpoint.Arches())
	}
}

// TestEngineFacade: the unified engine is drivable entirely through the
// facade — request in, report out, cancellation honoured — and agrees
// with the compatibility wrappers it replaced.
func TestEngineFacade(t *testing.T) {
	cache := taskpoint.NewBaselineCache()
	eng := taskpoint.NewEngine(taskpoint.WithWorkers(2), taskpoint.WithBaselineCache(cache))
	req := taskpoint.Request{
		Workload: "cholesky",
		Arch:     "hp",
		Threads:  4,
		Scale:    1.0 / 64,
		Seed:     42,
		Policy:   "lazy",
	}
	rep, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Request.Key(), "cholesky|high-performance|4|lazy|42") {
		t.Errorf("report key %q", rep.Request.Key())
	}

	// The wrapper facade reproduces the engine's numbers: same workload,
	// same seed, same policy → same simulated cycles.
	prog := taskpoint.Benchmark("cholesky", 1.0/64, 42)
	cfg := taskpoint.HighPerf(4)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if det.Cycles != rep.Detailed.Cycles {
		t.Errorf("facade wrapper detailed cycles %v, engine %v", det.Cycles, rep.Detailed.Cycles)
	}
	samp, _, err := taskpoint.SimulateSampled(cfg, prog, taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if samp.Cycles != rep.Sampled.Cycles {
		t.Errorf("facade wrapper sampled cycles %v, engine %v", samp.Cycles, rep.Sampled.Cycles)
	}

	// Cancellation is honoured at the facade too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled facade run returned %v", err)
	}
}
