// Command corpus runs a generated accuracy-stress campaign: it draws N
// scenarios from the property-driven generator (internal/gen) across the
// family × knob grid, runs every sampling policy against the detailed
// reference in parallel across a worker pool, and reports per-policy
// error, CI coverage and speedup. Records stream as JSONL in the sweep
// engine's shape, so corpora are resumable and post-processable with the
// same tooling as design-space sweeps.
//
// Usage:
//
//	corpus -n 50                          # 50 scenarios, default grid
//	corpus -n 100 -families forkjoin,random -policies lazy,stratified:400
//	corpus -n 50 -out corpus.jsonl -csv corpus.csv   # resume + CSV export
//	corpus -out -                         # stream JSONL to stdout (no resume)
//	corpus -list                          # print the drawn scenarios and exit
//	corpus -trace t.jsonl -debug-addr 127.0.0.1:6060  # observability
//
// All progress and summary output goes to stderr (suppress with -quiet);
// stdout carries machine-parseable data only (-out -, -list).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/gen/corpus"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
	"taskpoint/internal/sweep"
)

func main() {
	var (
		n        = flag.Int("n", 50, "number of generated scenarios")
		families = flag.String("families", "", "comma-separated family subset (default: all)")
		arch     = flag.String("arch", "", "architecture (hp, lp, native; default high-performance)")
		threads  = flag.Int("threads", 0, "simulated thread count (default 4)")
		policies = flag.String("policies", "", "comma-separated policies (default lazy,periodic(250),stratified(256))")
		seed     = flag.Uint64("seed", 0, "master seed for knob draws and workload generation (default 42)")
		minTasks = flag.Int("min-tasks", 0, "minimum instances per scenario (default 192)")
		maxTasks = flag.Int("max-tasks", 0, "maximum instances per scenario (default 640)")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent simulations")
		outPath  = flag.String("out", "", "JSONL output; existing cells in it are skipped (resume)")
		csvPath  = flag.String("csv", "", "also export the campaign as CSV to this path")
		list     = flag.Bool("list", false, "print the drawn scenario specs and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress and summary output on stderr")

		tracePath  = flag.String("trace", "", "append a flight-recorder JSONL trace of the campaign to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/obs, /debug/obs/campaign, /debug/vars and /debug/pprof on this address while running")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot as JSON to this file")
		profSlow   = flag.Duration("profile-slow", 0, "capture a CPU profile (slow-NNN-<cell>.pprof) of any cell running longer than this")
		profDir    = flag.String("profile-dir", ".", "directory for -profile-slow captures")
	)
	flag.Parse()

	spec := corpus.Spec{
		Scenarios: *n,
		Arch:      *arch,
		Threads:   *threads,
		Seed:      *seed,
		MinTasks:  *minTasks,
		MaxTasks:  *maxTasks,
	}
	if *families != "" {
		spec.Families = splitCSV(*families)
	}
	if *policies != "" {
		spec.Policies = splitCSV(*policies)
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	if *list {
		scs, err := spec.Draw()
		if err != nil {
			fatal(err)
		}
		for _, sc := range scs {
			fmt.Println(sc.Spec())
		}
		return
	}

	var tune []func(*sweep.Engine)
	if *debugAddr != "" {
		// With a trace on disk, the debug server also answers
		// /debug/obs/campaign with the live cost report over it.
		var extra []obs.DebugEndpoint
		if *tracePath != "" {
			extra = append(extra, query.Endpoint(*tracePath))
		}
		ds, err := obs.ServeDebug(*debugAddr, nil, extra...)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs\n", ds.Addr())
	}
	if *tracePath != "" {
		rec, err := obs.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer rec.Close()
		tune = append(tune, func(eng *sweep.Engine) { eng.Recorder = rec })
	}
	if *profSlow > 0 {
		prof := obs.NewSlowProfiler(*profSlow, *profDir)
		defer func() {
			prof.Close()
			if n := prof.Captures(); n > 0 && !*quiet {
				fmt.Fprintf(os.Stderr, "captured %d slow-cell CPU profiles in %s\n", n, *profDir)
			}
		}()
		tune = append(tune, func(eng *sweep.Engine) { eng.SlowProfiler = prof })
	}

	// "-out -" streams JSONL to stdout (no resume); anything else appends
	// to a resumable file.
	var completed map[string]sweep.Record
	var out io.Writer
	if *outPath == "-" {
		out = os.Stdout
	} else if *outPath != "" {
		if f, err := os.Open(*outPath); err == nil {
			completed, err = sweep.LoadCompleted(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("resuming from %s: %w", *outPath, err))
			}
		}
		// Drop a partial trailing record (interrupted campaign) before
		// appending, so new records never glue onto it.
		if err := sweep.DropPartialTail(*outPath); err != nil {
			fatal(err)
		}
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	var onRecord func(done, total int, rec sweep.Record)
	if !*quiet {
		onRecord = func(done, total int, rec sweep.Record) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %-60s err %6.2f%%  %5.1fx detail\n",
				done, total, rec.Bench+" "+rec.Policy, rec.ErrPct, rec.SpeedupDetail)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	recs, runErr := corpus.RunContext(ctx, spec, *workers, out, completed, onRecord, tune...)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "corpus: some cells failed:\n%v\n", runErr)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "corpus: %d records (%d scenarios × policies) in %v, %d workers\n\n",
			len(recs), *n, time.Since(start).Round(time.Millisecond), *workers)
		fmt.Fprint(os.Stderr, corpus.RenderSummary(
			fmt.Sprintf("corpus %q — per-policy accuracy over %d generated scenarios", specName(spec), *n),
			corpus.Summarize(recs)))
		fmt.Fprintln(os.Stderr, cacheSummary())
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := sweep.WriteCSV(f, recs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\nwrote %d rows to %s\n", len(recs), *csvPath)
		}
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// cacheSummary renders the baseline cache's behaviour over the campaign
// from the process-wide metrics — the detailed reference dominates corpus
// cost, so the end-of-run summary surfaces how often it was reused.
func cacheSummary() string {
	snap := obs.Default().Snapshot()
	return fmt.Sprintf("baseline cache: %d hits, %d misses, %d evictions (%d detailed references computed)",
		snap.Counters["engine.baseline.cache.hits"],
		snap.Counters["engine.baseline.cache.misses"],
		snap.Counters["engine.baseline.cache.evictions"],
		snap.Counters["engine.baseline.computed"])
}

// writeMetrics dumps the final metrics snapshot as indented JSON.
func writeMetrics(path string) error {
	b, err := obs.Default().MarshalSnapshot()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func specName(s corpus.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "corpus"
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpus:", err)
	if errors.Is(err, arch.ErrUnknown) {
		fmt.Fprintf(os.Stderr, "\nvalid architectures:\n%s", arch.Listing())
	}
	os.Exit(1)
}
