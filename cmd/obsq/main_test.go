package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenDir = "../../internal/obs/query/testdata"

// TestObsqGoldenJSON: the acceptance gate — obsq -json over the committed
// golden trace must reproduce the committed report byte for byte.
func TestObsqGoldenJSON(t *testing.T) {
	want, err := os.ReadFile(filepath.Join(goldenDir, "golden_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", filepath.Join(goldenDir, "golden_trace.jsonl")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("obsq -json drifted from golden report.\n--- got ---\n%s", stdout.String())
	}
}

// TestObsqGoldenText: the default human rendering is pinned the same way.
func TestObsqGoldenText(t *testing.T) {
	want, err := os.ReadFile(filepath.Join(goldenDir, "golden_report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(goldenDir, "golden_trace.jsonl")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("obsq text output drifted from golden report.\n--- got ---\n%s", stdout.String())
	}
}

// TestObsqOutputFile: -o writes the report to a file instead of stdout.
func TestObsqOutputFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-o", out, filepath.Join(goldenDir, "golden_trace.jsonl")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-o still wrote %d bytes to stdout", stdout.Len())
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "golden_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("-o file differs from golden report")
	}
}

// TestObsqUsageErrors: bad invocations exit 2 with usage, missing traces
// exit 1 with a diagnostic.
func TestObsqUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("no usage on stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"/nonexistent/trace.jsonl"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing trace: exit %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("missing trace produced no diagnostic")
	}
}
