// Command obsq analyzes a flight-recorder trace: it reads the JSONL a
// campaign recorded via -trace (sweep, corpus, estfuzz, taskpoint),
// rebuilds the span tree, and prints the campaign cost report — wall-clock
// attribution by phase/cell/stratum, the critical path through the worker
// pool, baseline-cache economics, sample cost per CI point, and straggler
// cells. Interrupted traces (killed campaigns, torn tails) are analyzed
// as-is; the report marks them INTERRUPTED instead of failing.
//
// Usage:
//
//	obsq trace.jsonl              # human tables on stdout
//	obsq -json trace.jsonl        # canonical machine JSON on stdout
//	obsq -json -o report.json trace.jsonl
//
// The report is a pure function of the trace bytes: the same file always
// produces byte-identical output, so reports diff cleanly across runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"taskpoint/internal/obs/query"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code lifted out for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the canonical machine JSON report instead of human tables")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsq [-json] [-o report] trace.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	rep, err := query.AnalyzeFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "obsq: %v\n", err)
		return 1
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "obsq: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if *asJSON {
		b, err := query.MarshalReport(rep)
		if err != nil {
			fmt.Fprintf(stderr, "obsq: %v\n", err)
			return 1
		}
		if _, err := out.Write(b); err != nil {
			fmt.Fprintf(stderr, "obsq: %v\n", err)
			return 1
		}
		return 0
	}
	if err := query.WriteText(out, rep); err != nil {
		fmt.Fprintf(stderr, "obsq: %v\n", err)
		return 1
	}
	return 0
}
