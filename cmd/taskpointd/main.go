// Command taskpointd serves campaigns: a long-running HTTP service that
// accepts design-space sweep specifications, executes them on the shared
// experiment engine, and persists every result in a content-addressed
// store so no cell is ever simulated twice — across campaigns, across
// clients, and across restarts.
//
// Usage:
//
//	taskpointd                                  # 127.0.0.1:8383, ./taskpoint-store
//	taskpointd -addr :9000 -store /var/taskpoint
//	taskpointd -trace t.jsonl                   # also serve /debug/obs/campaign
//	taskpointd -faults seed=7,store.err=0.2     # inject store faults (testing)
//
// On SIGTERM/SIGINT the server drains gracefully: submissions are
// refused, in-flight cells finish, interrupted campaigns emit terminal
// events to their subscribers, and write-behind saves are synced —
// bounded by -drain-timeout, after which it stops hard. Interrupted
// campaigns resume on the next start, served from the store.
//
// API (see cmd/taskpointc for a client):
//
//	POST /v1/campaigns             — submit a sweep spec (JSON), 202 + summary
//	GET  /v1/campaigns             — list campaigns
//	GET  /v1/campaigns/{id}        — one campaign's status
//	GET  /v1/campaigns/{id}/events — JSONL progress stream (replay + live tail; ?from=N resumes)
//	GET  /debug/obs                — metrics snapshot
//	GET  /healthz                  — liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskpoint/internal/fault"
	"taskpoint/internal/server"
	"taskpoint/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8383", "listen address")
		storeDir   = flag.String("store", "taskpoint-store", "content-addressed result store directory")
		workers    = flag.Int("workers", 0, "concurrent cell simulations; 0 = one per CPU")
		tracePath  = flag.String("trace", "", "flight-recorder trace to serve at /debug/obs/campaign")
		faultSpec  = flag.String("faults", "", "fault-injection spec, e.g. seed=7,store.err=0.2 (overrides $"+fault.EnvVar+")")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		maxActive  = flag.Int("max-active", 0, "concurrently running campaigns; 0 = default (4)")
		maxQueued  = flag.Int("max-queued", 0, "queued campaigns before submissions get 429; 0 = default (64)")
		reqTimeout = flag.Duration("request-timeout", 0, "deadline for non-streaming requests; 0 = default (30s), negative disables")
	)
	flag.Parse()

	inj, err := fault.FromEnv()
	if err != nil {
		fatal(err)
	}
	if *faultSpec != "" {
		if inj, err = fault.New(*faultSpec); err != nil {
			fatal(err)
		}
	}
	if inj.Enabled() {
		fmt.Fprintf(os.Stderr, "taskpointd: fault injection armed: %s\n", inj.Spec().String())
	}
	fault.SetDefault(inj)

	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Store: st, Workers: *workers, TracePath: *tracePath,
		Faults: inj, MaxActive: *maxActive, MaxQueued: *maxQueued,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "taskpointd: serving on http://%s (store %s)\n", *addr, st.Root())

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "taskpointd: draining")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	// Shutdown order: drain campaigns first (in-flight cells finish,
	// interrupted campaigns emit their terminal events, so live event
	// streams end on their own), then shut the HTTP server down (which
	// now has no long-lived streams left to wait on), then hard-close.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainWait)
	defer cancelDrain()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "taskpointd:", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx) //nolint:errcheck // best-effort drain
	srv.Close()          // stops campaigns, flushes write-behind saves
	fmt.Fprintln(os.Stderr, "taskpointd: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpointd:", err)
	os.Exit(1)
}
