// Command taskpointd serves campaigns: a long-running HTTP service that
// accepts design-space sweep specifications, executes them on the shared
// experiment engine, and persists every result in a content-addressed
// store so no cell is ever simulated twice — across campaigns, across
// clients, and across restarts.
//
// Usage:
//
//	taskpointd                                  # 127.0.0.1:8383, ./taskpoint-store
//	taskpointd -addr :9000 -store /var/taskpoint
//	taskpointd -trace t.jsonl                   # also serve /debug/obs/campaign
//
// API (see cmd/taskpointc for a client):
//
//	POST /v1/campaigns             — submit a sweep spec (JSON), 202 + summary
//	GET  /v1/campaigns             — list campaigns
//	GET  /v1/campaigns/{id}        — one campaign's status
//	GET  /v1/campaigns/{id}/events — JSONL progress stream (replay + live tail)
//	GET  /debug/obs                — metrics snapshot
//	GET  /healthz                  — liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskpoint/internal/server"
	"taskpoint/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8383", "listen address")
		storeDir  = flag.String("store", "taskpoint-store", "content-addressed result store directory")
		workers   = flag.Int("workers", 0, "concurrent cell simulations; 0 = one per CPU")
		tracePath = flag.String("trace", "", "flight-recorder trace to serve at /debug/obs/campaign")
	)
	flag.Parse()

	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, Workers: *workers, TracePath: *tracePath})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "taskpointd: serving on http://%s (store %s)\n", *addr, st.Root())

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "taskpointd: shutting down")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx) //nolint:errcheck // best-effort drain
	srv.Close()          // stops campaigns, flushes write-behind saves
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpointd:", err)
	os.Exit(1)
}
