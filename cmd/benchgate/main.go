// Command benchgate compares two kernel-benchmark runs and fails on
// regressions, playing benchstat's role in CI without requiring a
// network install: it parses `go test -bench` output (or a bench-report
// JSON), aggregates repeated runs per benchmark by median, prints a
// benchstat-style delta table, and exits non-zero when a gated metric
// regresses beyond its noise threshold.
//
// Two gates exist because their noise characteristics differ:
//
//   - time (ns/op): meaningful only between runs on the same machine
//     (CI measures the PR's merge base and head on one runner); gated at
//     -threshold percent (default 10).
//   - allocs/op: machine independent and nearly deterministic, so it is
//     gated even against a committed baseline from another machine, at 5%
//     plus a small absolute slack.
//
// Usage:
//
//	benchgate -old base.txt -new head.txt              # full gate
//	benchgate -old bench/KERNEL_BASELINE.json -new head.txt -allocs-only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark's aggregated metrics over repeated runs.
type sample struct {
	name   string
	values map[string][]float64 // unit -> one value per run
}

func (s *sample) median(unit string) (float64, bool) {
	v := append([]float64(nil), s.values[unit]...)
	if len(v) == 0 {
		return 0, false
	}
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2], true
	}
	return (v[n/2-1] + v[n/2]) / 2, true
}

// parseText extracts benchmark results from `go test -bench` output.
func parseText(text string) map[string]*sample {
	out := map[string]*sample{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &sample{name: name, values: map[string][]float64{}}
			out[name] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			s.values[fields[i+1]] = append(s.values[fields[i+1]], v)
		}
	}
	return out
}

// jsonBench mirrors cmd/bench-report's benchmark entry (and the kernel
// baseline file), so a committed JSON baseline gates directly.
type jsonBench struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseJSON reads either a bare benchmark array or an object with a
// top-level "kernel" or "benchmarks" array (the bench-report layout).
func parseJSON(data []byte) (map[string]*sample, error) {
	var arr []jsonBench
	if err := json.Unmarshal(data, &arr); err != nil {
		var rep struct {
			Kernel     []jsonBench `json:"kernel"`
			Benchmarks []jsonBench `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		arr = append(rep.Kernel, rep.Benchmarks...)
	}
	out := map[string]*sample{}
	for _, b := range arr {
		s := out[b.Name]
		if s == nil {
			s = &sample{name: b.Name, values: map[string][]float64{}}
			out[b.Name] = s
		}
		for unit, v := range b.Metrics {
			s.values[unit] = append(s.values[unit], v)
		}
	}
	return out, nil
}

func load(path string) (map[string]*sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := strings.TrimSpace(string(data))
	if strings.HasPrefix(t, "{") || strings.HasPrefix(t, "[") {
		return parseJSON(data)
	}
	return parseText(string(data)), nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline run: go test -bench output or bench-report JSON")
		newPath    = flag.String("new", "", "candidate run: go test -bench output or bench-report JSON")
		threshold  = flag.Float64("threshold", 10, "allowed ns/op regression in percent (same-machine runs)")
		allocSlack = flag.Float64("alloc-threshold", 5, "allowed allocs/op regression in percent (plus 2 allocs absolute)")
		allocsOnly = flag.Bool("allocs-only", false, "gate only allocs/op (baseline from a different machine)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldS, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newS, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(newS))
	for name := range newS {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	// A benchmark that exists in the baseline but not in the candidate
	// run would otherwise pass the gate vacuously — renames and removals
	// must update the committed baseline in the same change.
	for name, s := range oldS {
		if newS[name] != nil {
			continue
		}
		if len(s.values["ns/op"]) > 0 || len(s.values["allocs/op"]) > 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: present in baseline but missing from the new run (rename/removal must refresh the baseline)", name))
		}
	}
	fmt.Printf("%-28s %-10s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		ns := newS[name]
		os_, ok := oldS[name]
		if !ok {
			fmt.Printf("%-28s %-10s %14s %14s %8s\n", name, "-", "(new)", "-", "-")
			continue
		}
		units := make([]string, 0, len(ns.values))
		for u := range ns.values {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			nv, _ := ns.median(unit)
			ov, ok := os_.median(unit)
			if !ok {
				continue
			}
			delta := 0.0
			if ov != 0 {
				delta = (nv - ov) / ov * 100
			}
			fmt.Printf("%-28s %-10s %14.2f %14.2f %+7.1f%%\n", name, unit, ov, nv, delta)
			switch unit {
			case "ns/op":
				if !*allocsOnly && nv > ov*(1+*threshold/100) {
					failures = append(failures, fmt.Sprintf(
						"%s: ns/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
						name, delta, ov, nv, *threshold))
				}
			case "allocs/op":
				if nv > ov*(1+*allocSlack/100)+2 {
					failures = append(failures, fmt.Sprintf(
						"%s: allocs/op regressed %.1f%% (%.0f -> %.0f)",
						name, delta, ov, nv))
				}
			}
		}
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchgate: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
