package main

import "testing"

const sampleOut = `
goos: linux
BenchmarkKernelDetailedHP8 	       6	  93536693 ns/op	  10947575 instr/s	10682696 B/op	     277 allocs/op
BenchmarkKernelDetailedHP8 	       6	  91283054 ns/op	  11217854 instr/s	10682696 B/op	     279 allocs/op
BenchmarkKernelDetailedHP8 	       6	  97837947 ns/op	  10466287 instr/s	10682696 B/op	     275 allocs/op
BenchmarkKernelExec-8 	    2496	    213479 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseTextAggregatesRuns(t *testing.T) {
	s := parseText(sampleOut)
	hp := s["KernelDetailedHP8"]
	if hp == nil {
		t.Fatal("KernelDetailedHP8 not parsed")
	}
	if n := len(hp.values["ns/op"]); n != 3 {
		t.Fatalf("ns/op runs = %d, want 3", n)
	}
	if med, ok := hp.median("ns/op"); !ok || med != 93536693 {
		t.Fatalf("ns/op median = %v (%v), want 93536693", med, ok)
	}
	if med, _ := hp.median("allocs/op"); med != 277 {
		t.Fatalf("allocs/op median = %v, want 277", med)
	}
	// The -procs suffix is stripped.
	if s["KernelExec"] == nil {
		t.Fatal("KernelExec (procs suffix) not parsed")
	}
}

func TestParseJSONBaselineShapes(t *testing.T) {
	bare := []byte(`[{"name":"KernelExec","metrics":{"ns/op":213479,"allocs/op":0}}]`)
	s, err := parseJSON(bare)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s["KernelExec"].median("ns/op"); v != 213479 {
		t.Fatalf("bare array median = %v", v)
	}
	report := []byte(`{"kernel":[{"name":"KernelDetailedHP8","metrics":{"allocs/op":277}}],
		"benchmarks":[{"name":"Fig9LazyHighPerf","metrics":{"err_pct":1.5}}]}`)
	s, err = parseJSON(report)
	if err != nil {
		t.Fatal(err)
	}
	if s["KernelDetailedHP8"] == nil || s["Fig9LazyHighPerf"] == nil {
		t.Fatal("bench-report sections not merged")
	}
}

func TestMedianEven(t *testing.T) {
	s := &sample{values: map[string][]float64{"ns/op": {4, 1, 3, 2}}}
	if med, _ := s.median("ns/op"); med != 2.5 {
		t.Fatalf("median = %v, want 2.5", med)
	}
}
