// Command sweep runs a design-space campaign: the cartesian product of
// benchmarks × architectures × thread counts × sampling policies × seeds,
// sharded across a worker pool, streamed as JSONL and summarised like the
// per-thread-count averages of the paper's Figures 7-10.
//
// Campaigns are resumable: cells already present in the output file are
// skipped, so an interrupted sweep continues where it stopped.
//
// Usage:
//
//	sweep                              # built-in default campaign
//	sweep -spec campaign.json          # declarative spec from a file
//	sweep -benchmarks cholesky,knn -archs hp,lp -threads 2,8 \
//	      -policies lazy,periodic:250  # spec from flags
//	sweep -out run.jsonl -csv run.csv  # resume run.jsonl, export CSV
//	sweep -out -                       # stream JSONL to stdout (no resume)
//	sweep -print-spec                  # show the effective spec and exit
//	sweep -trace t.jsonl -debug-addr 127.0.0.1:6060  # observability
//	sweep -trace t.jsonl -profile-slow 30s           # profile straggler cells
//
// A recorded trace is analyzed offline with obsq (cost attribution,
// critical path, cache economics); with -debug-addr the same report is
// served live at /debug/obs/campaign while the sweep runs.
//
// All progress and summary output goes to stderr (suppress with -quiet);
// stdout carries machine-parseable data only (-out -, -print-spec).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
	"taskpoint/internal/sweep"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "JSON sweep spec file (dimension flags override its fields)")
		outPath    = flag.String("out", "sweep.jsonl", "JSONL output; existing cells in it are skipped (resume)")
		csvPath    = flag.String("csv", "", "also export the full campaign as CSV to this path")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent simulations")
		name       = flag.String("name", "", "campaign name (flag-built specs)")
		scale      = flag.Float64("scale", 0, "benchmark scale; 0 keeps the spec/default value")
		benchCSV   = flag.String("benchmarks", "", "comma-separated benchmark names")
		archCSV    = flag.String("archs", "", "comma-separated architectures (hp, lp, native)")
		threadCSV  = flag.String("threads", "", "comma-separated thread counts")
		polCSV     = flag.String("policies", "", "comma-separated policies (lazy, periodic:P)")
		seedCSV    = flag.String("seeds", "", "comma-separated workload seeds")
		w          = flag.Int("W", 0, "warm-up instances per thread; 0 = paper default")
		h          = flag.Int("H", 0, "sample history size; 0 = paper default")
		printSpec  = flag.Bool("print-spec", false, "print the effective spec as JSON and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress and summary output on stderr")
		tracePath  = flag.String("trace", "", "append a flight-recorder JSONL trace of the campaign to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/obs, /debug/obs/campaign, /debug/vars and /debug/pprof on this address while running")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot as JSON to this file")
		profSlow   = flag.Duration("profile-slow", 0, "capture a CPU profile (slow-NNN-<cell>.pprof) of any cell running longer than this")
		profDir    = flag.String("profile-dir", ".", "directory for -profile-slow captures")
	)
	flag.Parse()

	spec, err := buildSpec(*specPath, *name, *scale, *benchCSV, *archCSV, *threadCSV, *polCSV, *seedCSV, *w, *h)
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec); err != nil {
			fatal(err)
		}
		return
	}

	eng, err := sweep.New(spec, *workers)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// With a trace on disk, the debug server also answers
		// /debug/obs/campaign with the live cost report over it.
		var extra []obs.DebugEndpoint
		if *tracePath != "" {
			extra = append(extra, query.Endpoint(*tracePath))
		}
		ds, err := obs.ServeDebug(*debugAddr, nil, extra...)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs\n", ds.Addr())
	}
	if *tracePath != "" {
		rec, err := obs.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer rec.Close()
		eng.Recorder = rec
	}
	if *profSlow > 0 {
		prof := obs.NewSlowProfiler(*profSlow, *profDir)
		defer func() {
			prof.Close()
			if n := prof.Captures(); n > 0 && !*quiet {
				fmt.Fprintf(os.Stderr, "captured %d slow-cell CPU profiles in %s\n", n, *profDir)
			}
		}()
		eng.SlowProfiler = prof
	}

	// "-out -" streams JSONL to stdout (no resume); anything else appends
	// to a resumable file.
	var out io.Writer
	var completed map[string]sweep.Record
	if *outPath == "-" {
		out = os.Stdout
	} else {
		if completed, err = loadResume(*outPath); err != nil {
			fatal(err)
		}
		if err := sweep.DropPartialTail(*outPath); err != nil {
			fatal(err)
		}
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	skipped, total := eng.Resumable(completed)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign %q: %d cells (%d already in %s), %d workers\n",
			specName(spec), total, skipped, *outPath, *workers)
		eng.OnRecord = func(done, total int, rec sweep.Record) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %-55s err %6.2f%%  %5.1fx detail\n",
				done, total, rec.Key, rec.ErrPct, rec.SpeedupDetail)
		}
	}

	start := time.Now()
	recs, runErr := eng.RunContext(ctx, out, completed)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "sweep: %d cells failed:\n%v\n", total-len(recs), runErr)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "completed %d/%d cells in %v\n\n", len(recs), total, time.Since(start).Round(time.Millisecond))
		fmt.Fprint(os.Stderr, sweep.RenderSummary(
			fmt.Sprintf("campaign %q — mean/max execution-time error and detail speedup per cell group", specName(spec)),
			sweep.Summarize(recs)))
		fmt.Fprintln(os.Stderr, cacheSummary())
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := exportCSV(*csvPath, recs); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\nwrote %d rows to %s\n", len(recs), *csvPath)
		}
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// cacheSummary renders the baseline cache's behaviour over the campaign
// from the process-wide metrics — cache cost dominates campaign cost, so
// the end-of-run summary surfaces it.
func cacheSummary() string {
	snap := obs.Default().Snapshot()
	return fmt.Sprintf("baseline cache: %d hits, %d misses, %d evictions (%d detailed references computed)",
		snap.Counters["engine.baseline.cache.hits"],
		snap.Counters["engine.baseline.cache.misses"],
		snap.Counters["engine.baseline.cache.evictions"],
		snap.Counters["engine.baseline.computed"])
}

// writeMetrics dumps the final metrics snapshot as indented JSON.
func writeMetrics(path string) error {
	b, err := obs.Default().MarshalSnapshot()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// buildSpec resolves the campaign: a spec file when given, otherwise the
// built-in default overridden by any dimension flags.
func buildSpec(path, name string, scale float64, benchCSV, archCSV, threadCSV, polCSV, seedCSV string, w, h int) (sweep.Spec, error) {
	spec := sweep.DefaultSpec()
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return sweep.Spec{}, err
		}
		spec = sweep.Spec{}
		if err := json.Unmarshal(data, &spec); err != nil {
			return sweep.Spec{}, fmt.Errorf("parsing %s: %w", path, err)
		}
	}
	if name != "" {
		spec.Name = name
	}
	if scale > 0 {
		spec.Scale = scale
	}
	if benchCSV != "" {
		spec.Benchmarks = splitCSV(benchCSV)
	}
	if archCSV != "" {
		spec.Archs = splitCSV(archCSV)
	}
	if polCSV != "" {
		spec.Policies = splitCSV(polCSV)
	}
	if threadCSV != "" {
		threads, err := atoiAll(splitCSV(threadCSV))
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("-threads: %w", err)
		}
		spec.Threads = threads
	}
	if seedCSV != "" {
		var seeds []uint64
		for _, s := range splitCSV(seedCSV) {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return sweep.Spec{}, fmt.Errorf("-seeds: %w", err)
			}
			seeds = append(seeds, v)
		}
		spec.Seeds = seeds
	}
	if w > 0 {
		spec.W = w
	}
	if h > 0 {
		spec.H = h
	}
	return spec, nil
}

// loadResume reads the completed-cell set from an existing output file;
// a missing file is an empty campaign.
func loadResume(path string) (map[string]sweep.Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	completed, err := sweep.LoadCompleted(f)
	if err != nil {
		return nil, fmt.Errorf("resuming from %s: %w", path, err)
	}
	return completed, nil
}

func exportCSV(path string, recs []sweep.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sweep.WriteCSV(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func specName(s sweep.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "unnamed"
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func atoiAll(parts []string) ([]int, error) {
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	if errors.Is(err, arch.ErrUnknown) {
		// An unknown architecture is the one error a listing fixes:
		// print every valid spelling under the failure.
		fmt.Fprintf(os.Stderr, "\nvalid architectures:\n%s", arch.Listing())
	}
	os.Exit(1)
}
