// Command taskpoint runs one benchmark under detailed and sampled
// simulation and reports execution-time error and speedup — plus, for
// stratified sampling, the confidence interval of the cycle estimate.
// It is a front end over the unified experiment engine: the flags build
// one taskpoint.Request, the engine runs it, and Ctrl-C cancels the
// simulation mid-run.
//
// Usage:
//
//	taskpoint -bench cholesky -threads 8 -arch hp -policy lazy -scale 0.125
//	taskpoint -bench dedup -policy stratified -budget 400
//	taskpoint -bench dedup -arch native -policy 'stratified(400)'
//	taskpoint -bench 'gen:forkjoin(tasks=64)' -timeline out.json   # Perfetto timeline
//	taskpoint -bench cholesky -trace run.jsonl                     # flight recorder
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"taskpoint"
)

func main() {
	var (
		benchName = flag.String("bench", "cholesky", "benchmark name or gen: scenario spec (see -list)")
		threads   = flag.Int("threads", 8, "simulated threads (1-64)")
		archName  = flag.String("arch", "hp", "architecture: high-performance/hp, low-power/lp or native")
		policy    = flag.String("policy", "lazy", "sampling policy: lazy, periodic, stratified, or any ParsePolicy form like periodic(250)")
		period    = flag.Int("period", 250, "sampling period P for -policy periodic")
		budget    = flag.Int("budget", 400, "detailed-instance budget B for -policy stratified")
		scale     = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I instance counts)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		w         = flag.Int("W", 2, "warm-up instances per thread")
		h         = flag.Int("H", 4, "sample history size per task type")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		tracePath = flag.String("trace", "", "append a flight-recorder JSONL trace of the run to this file")
		timeline  = flag.String("timeline", "", "write the simulated per-core task schedule as Chrome trace-event JSON (open in Perfetto)")
		quiet     = flag.Bool("quiet", false, "suppress diagnostic notes on stderr")
	)
	flag.Parse()

	if *list {
		for _, n := range taskpoint.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	params := taskpoint.DefaultParams()
	params.W = *w
	params.H = *h

	// Resolve the policy: bare family names take their argument from the
	// matching flag; anything else goes through the engine's ParsePolicy,
	// which rejects unknown or malformed policies instead of silently
	// falling back.
	spec := strings.TrimSpace(*policy)
	switch spec {
	case "periodic":
		spec = fmt.Sprintf("periodic(%d)", *period)
	case "stratified":
		spec = fmt.Sprintf("stratified(%d)", *budget)
	}

	req := taskpoint.Request{
		Workload: *benchName,
		Arch:     *archName,
		Threads:  *threads,
		Scale:    *scale,
		Seed:     *seed,
		Policy:   spec,
		Params:   params,
	}
	if err := req.Validate(); err != nil {
		// Unknown names are the errors a listing fixes; everything else
		// keeps its own message.
		switch {
		case errors.Is(err, taskpoint.ErrUnknownArch):
			fmt.Fprintf(os.Stderr, "taskpoint: %v\n\nvalid -arch values:\n%s", err, taskpoint.ArchListing())
			os.Exit(1)
		case errors.Is(err, taskpoint.ErrUnknownName):
			fmt.Fprintf(os.Stderr, "taskpoint: %v\n\nvalid -bench values:\n", err)
			for _, n := range taskpoint.Benchmarks() {
				fmt.Fprintf(os.Stderr, "  %s\n", n)
			}
			fmt.Fprintln(os.Stderr, "  gen:FAMILY(knob=value,...)  (see tracegen -list)")
			os.Exit(1)
		default:
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var rec *taskpoint.Recorder
	if *tracePath != "" {
		var err error
		if rec, err = taskpoint.OpenRecorder(*tracePath); err != nil {
			fatal(err)
		}
		defer rec.Close()
	}

	rep, err := taskpoint.NewEngine(taskpoint.WithRecorder(rec)).Run(ctx, req)
	if err != nil {
		fatal(err)
	}

	if *timeline != "" {
		if err := writeTimeline(*timeline, rep); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "taskpoint: wrote simulated timeline to %s (load in https://ui.perfetto.dev)\n", *timeline)
		}
	}
	if *tracePath != "" && !*quiet {
		fmt.Fprintf(os.Stderr, "taskpoint: appended flight-recorder trace to %s\n", *tracePath)
	}

	prog, cfg := rep.Program, rep.Config
	fmt.Printf("benchmark  %s (%d types, %d instances, %.1fM instructions)\n",
		prog.Name, prog.NumTypes(), prog.NumTasks(), float64(prog.TotalInstructions())/1e6)
	fmt.Printf("machine    %s, %d threads\n", cfg.Name, cfg.Cores)
	fmt.Printf("detailed   %.0f cycles in %v\n", rep.Detailed.Cycles, rep.DetailedWall.Round(1e6))
	fmt.Printf("sampled    %.0f cycles in %v (%s, W=%d H=%d)\n",
		rep.Sampled.Cycles, rep.SampledWall.Round(1e6), rep.Request.Policy, params.W, params.H)
	fmt.Printf("error      %.2f%%\n", rep.ErrPct)
	fmt.Printf("speedup    %.1fx wall, %.1fx instructions (%.1f%% simulated in detail)\n",
		rep.SpeedupWall, rep.SpeedupDetail, 100*rep.DetailFraction)
	st := rep.Sampler
	fmt.Printf("sampling   %d detailed (%d directed), %d fast, %d valid samples, %d resamples (periodic %d, new-type %d, parallelism %d)\n",
		st.DetailedStarted, st.DirectedStarted, st.FastStarted, st.ValidSamples,
		st.Resamples, st.ResamplesPeriodic, st.ResamplesNewType, st.ResamplesParallelism)
	if conf := rep.Confidence; conf != nil && conf.Strata > 0 {
		trueTotal := rep.DetailedTaskCycles
		inside := "inside"
		if !conf.Covers(trueTotal) {
			inside = "OUTSIDE"
		}
		fmt.Printf("confidence total task cycles %.4g, 95%% CI [%.4g, %.4g] (±%.1f%%), %d strata, %d samples, calibration %.3f\n",
			conf.Estimate, conf.Lo, conf.Hi, 100*conf.RelWidth()/2, conf.Strata, conf.Sampled, conf.Calibration)
		fmt.Printf("           detailed reference total %.4g is %s the interval\n", trueTotal, inside)
	}
}

func writeTimeline(path string, rep taskpoint.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := taskpoint.WriteTimeline(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpoint:", err)
	os.Exit(1)
}
