// Command taskpoint runs one benchmark under detailed and sampled
// simulation and reports execution-time error and speedup.
//
// Usage:
//
//	taskpoint -bench cholesky -threads 8 -arch hp -policy lazy -scale 0.125
package main

import (
	"flag"
	"fmt"
	"os"

	"taskpoint"
)

func main() {
	var (
		benchName = flag.String("bench", "cholesky", "benchmark name (see -list)")
		threads   = flag.Int("threads", 8, "simulated threads (1-64)")
		arch      = flag.String("arch", "hp", "architecture: hp (high-performance) or lp (low-power)")
		policy    = flag.String("policy", "lazy", "sampling policy: lazy or periodic")
		period    = flag.Int("period", 250, "sampling period P for -policy periodic")
		scale     = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I instance counts)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		w         = flag.Int("W", 2, "warm-up instances per thread")
		h         = flag.Int("H", 4, "sample history size per task type")
		list      = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range taskpoint.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	prog, err := taskpoint.LookupBenchmark(*benchName, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskpoint:", err)
		os.Exit(1)
	}
	cfg := taskpoint.HighPerf(*threads)
	if *arch == "lp" {
		cfg = taskpoint.LowPower(*threads)
	}

	params := taskpoint.DefaultParams()
	params.W = *w
	params.H = *h
	var pol taskpoint.Policy = taskpoint.LazyPolicy()
	if *policy == "periodic" {
		pol = taskpoint.PeriodicPolicy(*period)
	}

	fmt.Printf("benchmark  %s (%d types, %d instances, %.1fM instructions)\n",
		prog.Name, prog.NumTypes(), prog.NumTasks(), float64(prog.TotalInstructions())/1e6)
	fmt.Printf("machine    %s, %d threads\n", cfg.Name, cfg.Cores)

	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskpoint: detailed simulation:", err)
		os.Exit(1)
	}
	fmt.Printf("detailed   %.0f cycles in %v\n", det.Cycles, det.Wall.Round(1e6))

	samp, st, err := taskpoint.SimulateSampled(cfg, prog, params, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskpoint: sampled simulation:", err)
		os.Exit(1)
	}
	fmt.Printf("sampled    %.0f cycles in %v (%s, W=%d H=%d)\n",
		samp.Cycles, samp.Wall.Round(1e6), pol.Name(), params.W, params.H)
	fmt.Printf("error      %.2f%%\n", taskpoint.ErrorPct(samp, det))
	fmt.Printf("speedup    %.1fx wall, %.1fx instructions (%.1f%% simulated in detail)\n",
		float64(det.Wall)/float64(samp.Wall),
		float64(samp.TotalInstructions)/float64(samp.DetailedInstructions),
		100*samp.DetailFraction())
	fmt.Printf("sampling   %d detailed, %d fast, %d valid samples, %d resamples (periodic %d, new-type %d, parallelism %d)\n",
		st.DetailedStarted, st.FastStarted, st.ValidSamples,
		st.Resamples, st.ResamplesPeriodic, st.ResamplesNewType, st.ResamplesParallelism)
}
