// Command taskpoint runs one benchmark under detailed and sampled
// simulation and reports execution-time error and speedup — plus, for
// stratified sampling, the confidence interval of the cycle estimate.
//
// Usage:
//
//	taskpoint -bench cholesky -threads 8 -arch hp -policy lazy -scale 0.125
//	taskpoint -bench dedup -policy stratified -budget 400
//	taskpoint -bench dedup -policy 'stratified(400)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"taskpoint"
)

func main() {
	var (
		benchName = flag.String("bench", "cholesky", "benchmark name (see -list)")
		threads   = flag.Int("threads", 8, "simulated threads (1-64)")
		arch      = flag.String("arch", "hp", "architecture: hp (high-performance) or lp (low-power)")
		policy    = flag.String("policy", "lazy", "sampling policy: lazy, periodic, stratified, or any ParsePolicy form like periodic(250)")
		period    = flag.Int("period", 250, "sampling period P for -policy periodic")
		budget    = flag.Int("budget", 400, "detailed-instance budget B for -policy stratified")
		scale     = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I instance counts)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		w         = flag.Int("W", 2, "warm-up instances per thread")
		h         = flag.Int("H", 4, "sample history size per task type")
		list      = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range taskpoint.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	prog, err := taskpoint.LookupBenchmark(*benchName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := taskpoint.HighPerf(*threads)
	if *arch == "lp" {
		cfg = taskpoint.LowPower(*threads)
	}

	params := taskpoint.DefaultParams()
	params.W = *w
	params.H = *h

	// Resolve the policy: bare family names take their argument from the
	// matching flag; anything with an argument goes through ParsePolicy,
	// which rejects unknown or malformed policies instead of silently
	// falling back.
	spec := strings.TrimSpace(*policy)
	switch spec {
	case "periodic":
		spec = fmt.Sprintf("periodic(%d)", *period)
	case "stratified":
		spec = fmt.Sprintf("stratified(%d)", *budget)
	}
	pol, err := taskpoint.ParsePolicy(spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark  %s (%d types, %d instances, %.1fM instructions)\n",
		prog.Name, prog.NumTypes(), prog.NumTasks(), float64(prog.TotalInstructions())/1e6)
	fmt.Printf("machine    %s, %d threads\n", cfg.Name, cfg.Cores)

	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		fatal(fmt.Errorf("detailed simulation: %w", err))
	}
	fmt.Printf("detailed   %.0f cycles in %v\n", det.Cycles, det.Wall.Round(1e6))

	var (
		samp *taskpoint.Result
		st   taskpoint.SamplerStats
		conf taskpoint.Confidence
	)
	if sp, ok := pol.(*taskpoint.Stratified); ok {
		samp, st, conf, err = taskpoint.SimulateStratifiedWith(cfg, prog, params, sp)
	} else {
		samp, st, err = taskpoint.SimulateSampled(cfg, prog, params, pol)
	}
	if err != nil {
		fatal(fmt.Errorf("sampled simulation: %w", err))
	}
	fmt.Printf("sampled    %.0f cycles in %v (%s, W=%d H=%d)\n",
		samp.Cycles, samp.Wall.Round(1e6), pol.Name(), params.W, params.H)
	fmt.Printf("error      %.2f%%\n", taskpoint.ErrorPct(samp, det))
	fmt.Printf("speedup    %.1fx wall, %.1fx instructions (%.1f%% simulated in detail)\n",
		float64(det.Wall)/float64(samp.Wall),
		float64(samp.TotalInstructions)/float64(samp.DetailedInstructions),
		100*samp.DetailFraction())
	fmt.Printf("sampling   %d detailed (%d directed), %d fast, %d valid samples, %d resamples (periodic %d, new-type %d, parallelism %d)\n",
		st.DetailedStarted, st.DirectedStarted, st.FastStarted, st.ValidSamples,
		st.Resamples, st.ResamplesPeriodic, st.ResamplesNewType, st.ResamplesParallelism)
	if conf.Strata > 0 {
		trueTotal := det.TotalTaskCycles()
		inside := "inside"
		if !conf.Covers(trueTotal) {
			inside = "OUTSIDE"
		}
		fmt.Printf("confidence total task cycles %.4g, 95%% CI [%.4g, %.4g] (±%.1f%%), %d strata, %d samples, calibration %.3f\n",
			conf.Estimate, conf.Lo, conf.Hi, 100*conf.RelWidth()/2, conf.Strata, conf.Sampled, conf.Calibration)
		fmt.Printf("           detailed reference total %.4g is %s the interval\n", trueTotal, inside)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpoint:", err)
	os.Exit(1)
}
