package main

import (
	"context"
	"encoding/json"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: taskpoint
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationStratified 	       1	 231724251 ns/op	         0.1260 ci_rel_width	         3.839 err_pct_sizeclass	         1.713 err_pct_stratified
BenchmarkFig9LazyHighPerf-8   	       2	 410705402 ns/op	         2.693 err_pct	         9.5 speedup_x
some unrelated log line
BenchmarkBroken-8	notanint	12 ns/op
PASS
ok  	taskpoint	1.445s
`

func TestParseBenchOutput(t *testing.T) {
	bs := ParseBenchOutput(sampleOutput)
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(bs), bs)
	}
	// Sorted by name: AblationStratified before Fig9LazyHighPerf.
	ab := bs[0]
	if ab.Name != "AblationStratified" || ab.Procs != 0 || ab.Iterations != 1 {
		t.Errorf("ablation header parsed as %+v", ab)
	}
	if ab.Metrics["err_pct_stratified"] != 1.713 || ab.Metrics["ci_rel_width"] != 0.126 {
		t.Errorf("ablation metrics %v", ab.Metrics)
	}
	fig := bs[1]
	if fig.Name != "Fig9LazyHighPerf" || fig.Procs != 8 || fig.Iterations != 2 {
		t.Errorf("figure header parsed as %+v", fig)
	}
	if fig.Metrics["ns/op"] != 410705402 || fig.Metrics["err_pct"] != 2.693 {
		t.Errorf("figure metrics %v", fig.Metrics)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	if bs := ParseBenchOutput("PASS\nok \ttaskpoint\t0.1s\n"); len(bs) != 0 {
		t.Errorf("parsed %d benchmarks from an empty run", len(bs))
	}
}

// TestRunCorpusSection: the corpus section carries per-policy accuracy
// summaries — worst-case error and CI coverage — and marshals into the
// report JSON.
func TestRunCorpusSection(t *testing.T) {
	cr, err := runCorpus(context.Background(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Scenarios != 3 || cr.Seed != 42 || len(cr.Policies) != 3 {
		t.Fatalf("corpus section %+v", cr)
	}
	sawCI := false
	for _, p := range cr.Policies {
		if p.Scenarios != 3 {
			t.Errorf("%s summarises %d scenarios, want 3", p.Policy, p.Scenarios)
		}
		if p.WorstErrPct < p.MeanErrPct {
			t.Errorf("%s worst error %v below mean %v", p.Policy, p.WorstErrPct, p.MeanErrPct)
		}
		if p.CICells > 0 {
			sawCI = true
		}
	}
	if !sawCI {
		t.Error("no policy reported confidence intervals")
	}
	data, err := json.Marshal(Report{Corpus: cr})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Corpus == nil || len(back.Corpus.Policies) != 3 {
		t.Errorf("corpus section lost in JSON round trip: %s", data)
	}
}
