// Command bench-report runs the repository's benchmark harness
// (bench_test.go, ablation_test.go) through `go test -bench`, runs a
// small fixed-seed generated-scenario corpus for accuracy headline
// metrics (worst-case error, CI coverage rate), and emits a
// machine-readable BENCH_<date>.json, so the performance and accuracy
// trajectory of the reproduction is recorded per change instead of
// scrolling away in CI logs.
//
// Usage:
//
//	bench-report                       # run every benchmark once, write BENCH_<date>.json
//	bench-report -bench 'Fig9|Ablation' -benchtime 2x
//	bench-report -corpus 25            # size the corpus section (0 skips it)
//	go test -run '^$' -bench . . | bench-report -in -   # parse an existing run
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"taskpoint"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// "-procs" suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the run (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: "ns/op" plus every b.ReportMetric
	// unit (err_pct, speedup_x, ci_rel_width, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the file layout of BENCH_<date>.json.
type Report struct {
	// Generated is the RFC 3339 timestamp of the run.
	Generated string `json:"generated"`
	// GoVersion and GOOS/GOARCH identify the toolchain and host.
	GoVersion string `json:"go_version"`
	Platform  string `json:"platform"`
	// Command is the go test invocation the results came from (empty
	// when parsed from -in).
	Command string `json:"command,omitempty"`
	// Benchmarks are the parsed results in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Kernel holds the simulation-kernel microbenchmarks (internal/sim,
	// internal/cpu, internal/mem) — host-throughput metrics (instr/s,
	// ns/op, allocs/op) tracking the simulator hot path itself, as
	// opposed to the paper-artefact metrics above. Empty when -kernel ""
	// or in -in parse mode.
	Kernel []Benchmark `json:"kernel,omitempty"`
	// Corpus summarises a fixed-seed generated-scenario accuracy corpus
	// (nil when -corpus 0 or in -in parse mode).
	Corpus *CorpusReport `json:"corpus,omitempty"`
}

// CorpusReport is the corpus section of the report: the campaign shape
// and the per-policy accuracy summaries (mean and worst-case error,
// speedup, CI coverage rate).
type CorpusReport struct {
	Scenarios int                             `json:"scenarios"`
	Seed      uint64                          `json:"seed"`
	Policies  []taskpoint.CorpusPolicySummary `json:"policies"`
}

// runCorpus runs the fixed-seed corpus through the unified experiment
// engine and folds it into the report section.
func runCorpus(ctx context.Context, n, workers int) (*CorpusReport, error) {
	// Normalized fills the defaulted fields, so the report records the
	// seed the corpus actually ran under.
	spec := taskpoint.DefaultCorpus(n).Normalized()
	fmt.Fprintf(os.Stderr, "bench-report: running %d-scenario accuracy corpus\n", n)
	recs, err := taskpoint.RunCorpusContext(ctx, spec, workers, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	return &CorpusReport{
		Scenarios: spec.Scenarios,
		Seed:      spec.Seed,
		Policies:  taskpoint.SummarizeCorpus(recs),
	}, nil
}

func main() {
	var (
		benchRe   = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		timeout   = flag.String("timeout", "30m", "go test -timeout value")
		outPath   = flag.String("out", "", "output path; default BENCH_<date>.json")
		inPath    = flag.String("in", "", "parse an existing go test -bench output file instead of running (\"-\" = stdin)")
		corpusN   = flag.Int("corpus", 10, "scenarios in the fixed-seed accuracy corpus section (0 skips it)")
		workers   = flag.Int("workers", runtime.NumCPU(), "concurrent corpus simulations")
		kernelRe  = flag.String("kernel", "Kernel", "kernel-microbenchmark regexp run over the simulator packages (\"\" skips the section)")
	)
	flag.Parse()

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
	}

	var text []byte
	var err error
	switch {
	case *inPath == "-":
		text, err = io.ReadAll(os.Stdin)
	case *inPath != "":
		text, err = os.ReadFile(*inPath)
	default:
		args := []string{"test", "-run", "^$", "-bench", *benchRe,
			"-benchtime", *benchtime, "-timeout", *timeout, *pkg}
		rep.Command = "go " + strings.Join(args, " ")
		fmt.Fprintln(os.Stderr, "bench-report:", rep.Command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		var out bytes.Buffer
		cmd.Stdout = io.MultiWriter(&out, os.Stderr)
		err = cmd.Run()
		text = out.Bytes()
	}
	if err != nil {
		fatal(err)
	}

	rep.Benchmarks = ParseBenchOutput(string(text))
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found"))
	}

	// The kernel section measures the simulator hot path itself
	// (instructions simulated per host second, allocations per run), so
	// BENCH_<date>.json records a kernel-throughput trajectory alongside
	// the accuracy metrics.
	if *kernelRe != "" && *inPath == "" {
		args := []string{"test", "-run", "^$", "-bench", *kernelRe,
			"-benchtime", *benchtime, "-timeout", *timeout,
			"./internal/sim", "./internal/cpu", "./internal/mem"}
		fmt.Fprintln(os.Stderr, "bench-report: go "+strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		var out bytes.Buffer
		cmd.Stdout = io.MultiWriter(&out, os.Stderr)
		if err := cmd.Run(); err != nil {
			fatal(err)
		}
		rep.Kernel = ParseBenchOutput(out.String())
		if len(rep.Kernel) == 0 {
			fatal(fmt.Errorf("no kernel benchmark results matched %q", *kernelRe))
		}
	}

	// The corpus section runs in-process; parse-only invocations (-in)
	// summarise a past run and get no new corpus numbers. Ctrl-C cancels
	// the corpus simulations promptly.
	if *corpusN > 0 && *inPath == "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		rep.Corpus, err = runCorpus(ctx, *corpusN, *workers)
		stop()
		if err != nil {
			fatal(err)
		}
	}

	path := *outPath
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench-report: wrote %d benchmarks to %s\n", len(rep.Benchmarks), path)
}

// ParseBenchOutput extracts benchmark results from `go test -bench`
// output. A result line is
//
//	BenchmarkName-8   3   123456 ns/op   1.5 err_pct   2.0 speedup_x
//
// — the name, the iteration count, then (value, unit) pairs. Non-result
// lines (goos/pkg headers, PASS, logs) are skipped.
func ParseBenchOutput(text string) []Benchmark {
	var out []Benchmark
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := 0
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				procs = p
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			out = append(out, b)
		}
	}
	// Deterministic order regardless of -shuffle: by name, then procs.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Procs < out[j].Procs
	})
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-report:", err)
	os.Exit(1)
}
