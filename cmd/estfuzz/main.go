// Command estfuzz fuzzes the sampling estimators continuously: it draws
// seeded adversarial scenarios from the generative engine forever (or for
// -rounds / -duration), runs every policy against the detailed reference,
// flags accuracy-contract violations (CI coverage miss, interval-floor
// miss, error over the per-policy ceiling), delta-debugs each hit to a
// 1-minimal gen: spec, and appends the reproducers to a regression corpus
// that `go test -run RegressionCorpus` replays.
//
// Violation lines go to stdout and are fully deterministic for a fixed
// seed and round range — two runs of `estfuzz -rounds 200 -seed 1` print
// identical logs. Progress and wall-clock chatter go to stderr.
//
// Usage:
//
//	estfuzz -rounds 200 -seed 1                   # bounded, reproducible
//	estfuzz -duration 10m -corpus found.jsonl     # time-boxed nightly hunt
//	estfuzz -rounds 500 -state fuzz.state -corpus testdata/regression_corpus.jsonl
//	                                              # resumable: SIGINT, rerun, continues
//	estfuzz -rounds 50 -trace t.jsonl -metrics-out m.json   # observability
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/fuzz"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
)

// state is the resumable round cursor, written atomically after every
// completed round so an interrupted campaign continues from the last
// completed round.
type state struct {
	Fingerprint string `json:"fingerprint"`
	NextRound   int    `json:"next_round"`
	Findings    int    `json:"findings"`
}

func main() {
	var (
		rounds   = flag.Int("rounds", 0, "round-space bound: run rounds [resume, N) (0 = unbounded)")
		duration = flag.Duration("duration", 0, "wall-clock budget (0 = unbounded)")
		seed     = flag.Uint64("seed", 1, "master seed: scenario draws and request seeds derive from it")
		archName = flag.String("arch", "", "architecture (hp, lp, native; default high-performance)")
		threads  = flag.Int("threads", 0, "simulated thread count (default 4)")
		policies = flag.String("policies", "", "comma-separated policies (default lazy,periodic(64),stratified(96))")
		ceilings = flag.String("ceilings", "", "per-policy error ceilings in percent, e.g. lazy=60,stratified(96)=25")
		families = flag.String("families", "", "comma-separated scenario family subset (default: all)")
		minTasks = flag.Int("min-tasks", 0, "minimum instances per scenario (default 64)")
		maxTasks = flag.Int("max-tasks", 0, "maximum instances per scenario (default 384)")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent simulations")
		minimize = flag.Bool("minimize", true, "delta-debug each finding to a 1-minimal reproducer")
		corpus   = flag.String("corpus", "", "append minimized reproducers to this JSONL corpus (deduped)")
		statePat = flag.String("state", "", "resumable round cursor: continue from the last completed round")
		quiet    = flag.Bool("quiet", false, "suppress per-round progress on stderr")
		failHits = flag.Bool("fail-on-violation", false, "exit 3 when any violation was found (for CI)")

		tracePath  = flag.String("trace", "", "append a flight-recorder JSONL trace of the campaign to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/obs, /debug/obs/campaign, /debug/vars and /debug/pprof on this address while running")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot as JSON to this file")
		profSlow   = flag.Duration("profile-slow", 0, "capture a CPU profile (slow-NNN-<cell>.pprof) of any cell running longer than this")
		profDir    = flag.String("profile-dir", ".", "directory for -profile-slow captures")
	)
	flag.Parse()

	var rec *obs.Recorder
	if *tracePath != "" {
		var err error
		if rec, err = obs.Open(*tracePath); err != nil {
			fatal(err)
		}
		defer rec.Close()
	}
	if *debugAddr != "" {
		// With a trace on disk, the debug server also answers
		// /debug/obs/campaign with the live cost report over it.
		var extra []obs.DebugEndpoint
		if *tracePath != "" {
			extra = append(extra, query.Endpoint(*tracePath))
		}
		ds, err := obs.ServeDebug(*debugAddr, nil, extra...)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs\n", ds.Addr())
	}

	cfg := fuzz.Config{
		Rounds: *rounds, Seed: *seed, Arch: *archName, Threads: *threads,
		MinTasks: *minTasks, MaxTasks: *maxTasks,
		Minimize: *minimize, Workers: *workers,
		Recorder: rec,
	}
	if *profSlow > 0 {
		prof := obs.NewSlowProfiler(*profSlow, *profDir)
		defer func() {
			prof.Close()
			if n := prof.Captures(); n > 0 && !*quiet {
				fmt.Fprintf(os.Stderr, "captured %d slow-cell CPU profiles in %s\n", n, *profDir)
			}
		}()
		cfg.SlowProfiler = prof
	}
	if *policies != "" {
		cfg.Policies = splitCSV(*policies)
	}
	if *families != "" {
		cfg.Families = splitCSV(*families)
	}
	if *ceilings != "" {
		m, err := parseCeilings(*ceilings)
		if err != nil {
			fatal(err)
		}
		cfg.Ceilings = m
	}
	drv, err := fuzz.New(cfg)
	if err != nil {
		fatal(err)
	}
	cfg = drv.Config()

	start := 0
	if *statePat != "" {
		st, err := loadState(*statePat)
		if err != nil {
			fatal(err)
		}
		if st != nil {
			if st.Fingerprint != cfg.Fingerprint() {
				fatal(fmt.Errorf("state %s was written by a different campaign:\n  state: %s\n  flags: %s\nremove the file or match the flags",
					*statePat, st.Fingerprint, cfg.Fingerprint()))
			}
			start = st.NextRound
			fmt.Fprintf(os.Stderr, "estfuzz: resuming at round %d (%d findings so far)\n", start, st.Findings)
		}
	}
	if cfg.Rounds > 0 && start >= cfg.Rounds {
		fmt.Fprintf(os.Stderr, "estfuzz: all %d rounds already completed\n", cfg.Rounds)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	total := 0
	wallStart := time.Now()
	onRound := func(round int, fs []fuzz.Finding) {
		for _, f := range fs {
			printFinding(f)
		}
		total += len(fs)
		if *corpus != "" && len(fs) > 0 {
			if _, err := fuzz.AppendCorpus(*corpus, fs); err != nil {
				fatal(fmt.Errorf("appending to corpus %s: %w", *corpus, err))
			}
		}
		if *statePat != "" {
			if err := saveState(*statePat, state{
				Fingerprint: cfg.Fingerprint(), NextRound: round + 1, Findings: total,
			}); err != nil {
				fatal(fmt.Errorf("writing state %s: %w", *statePat, err))
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[round %d] %d findings (%d total, %v)\n",
				round, len(fs), total, time.Since(wallStart).Round(time.Millisecond))
		}
	}

	_, runErr := drv.Run(ctx, start, onRound)
	switch {
	case runErr == nil:
	case errors.Is(runErr, context.Canceled), errors.Is(runErr, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "estfuzz: stopped (%v); state resumes from the last completed round\n", context.Cause(ctx))
	default:
		fatal(runErr)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "estfuzz: %d violations in %v\n", total, time.Since(wallStart).Round(time.Millisecond))
	}
	if *metricsOut != "" {
		b, err := obs.Default().MarshalSnapshot()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if *failHits && total > 0 {
		os.Exit(3)
	}
}

// printFinding emits one deterministic violation line on stdout.
func printFinding(f fuzz.Finding) {
	var b strings.Builder
	classes := make([]string, len(f.Classes))
	for i, c := range f.Classes {
		classes[i] = string(c)
	}
	fmt.Fprintf(&b, "violation round=%d policy=%s classes=%s err=%.4f%% ceiling=%.0f%%",
		f.Round, f.Policy, strings.Join(classes, "+"), f.ErrPct, f.CeilingPct)
	if f.CIHi > 0 {
		fmt.Fprintf(&b, " ci=[%.0f,%.0f] detailed=%.0f", f.CILo, f.CIHi, f.DetailedTaskCycles)
	}
	fmt.Fprintf(&b, " spec=%s", f.Spec)
	if f.MinimizedFrom != "" {
		fmt.Fprintf(&b, " from=%s trials=%d", f.MinimizedFrom, f.ShrinkTrials)
	}
	fmt.Println(b.String())
}

func loadState(path string) (*state, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("state %s: %w", path, err)
	}
	return &st, nil
}

// saveState writes the cursor atomically (temp file + rename), so a kill
// mid-write can never leave a torn state file behind.
func saveState(path string, st state) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func parseCeilings(s string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("malformed ceiling %q (want policy=percent)", pair)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("ceiling %s=%q: want a positive percentage", key, val)
		}
		out[key] = v
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "estfuzz:", err)
	if errors.Is(err, arch.ErrUnknown) {
		fmt.Fprintf(os.Stderr, "\nvalid architectures:\n%s", arch.Listing())
	}
	if errors.Is(err, bench.ErrUnknownName) {
		fmt.Fprintln(os.Stderr, "\nunknown scenario family; valid families: run 'tracegen -list'")
	}
	os.Exit(1)
}
