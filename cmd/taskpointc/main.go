// Command taskpointc is the thin client for taskpointd:
//
//	taskpointc submit -spec campaign.json          # submit, print the id
//	taskpointc submit -spec campaign.json -wait    # submit and stream progress
//	taskpointc submit -default -scale 0.03125 -wait
//	taskpointc events <id>                         # raw JSONL event stream
//	taskpointc status <id>
//	taskpointc list
//
// The server defaults to http://127.0.0.1:8383; override with -server
// (before the subcommand). With -wait, per-cell progress goes to stderr
// and the final machine-parseable summary line goes to stdout:
//
//	campaign <id> done: total=16 computed=0 store_hits=16 joined=0 errors=0 hit_pct=100.0
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"taskpoint/internal/server"
	"taskpoint/internal/sweep"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8383", "taskpointd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: taskpointc [-server URL] submit|events|status|list ..."))
	}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(*serverURL, args[1:])
	case "events":
		err = cmdEvents(*serverURL, args[1:])
	case "status":
		err = cmdStatus(*serverURL, args[1:])
	case "list":
		err = cmdList(*serverURL)
	default:
		err = fmt.Errorf("unknown subcommand %q", args[0])
	}
	if err != nil {
		fatal(err)
	}
}

func cmdSubmit(serverURL string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON sweep spec file")
	useDefault := fs.Bool("default", false, "submit the built-in default campaign")
	scale := fs.Float64("scale", 0, "override the spec's benchmark scale")
	wait := fs.Bool("wait", false, "stream events until the campaign finishes")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	var spec sweep.Spec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	case *useDefault:
		spec = sweep.DefaultSpec()
	default:
		return fmt.Errorf("submit: need -spec FILE or -default")
	}
	if *scale > 0 {
		spec.Scale = *scale
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(serverURL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return httpError("submit", resp)
	}
	var sum server.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign %s accepted: %d cells\n", sum.ID, sum.Total)
	if !*wait {
		fmt.Println(sum.ID)
		return nil
	}
	return stream(serverURL, sum.ID, true)
}

func cmdEvents(serverURL string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: taskpointc events <campaign-id>")
	}
	return stream(serverURL, args[0], false)
}

// stream tails a campaign's JSONL events. Pretty mode renders per-cell
// progress on stderr and the final summary line on stdout; raw mode
// copies the JSONL verbatim to stdout.
func stream(serverURL, id string, pretty bool) error {
	resp, err := http.Get(serverURL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("events", resp)
	}
	if !pretty {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var done *server.Event
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", sc.Text(), err)
		}
		switch ev.Type {
		case "cell.done":
			var metrics string
			if ev.Record != nil {
				metrics = fmt.Sprintf("  err %6.2f%%  %5.1fx detail", ev.Record.ErrPct, ev.Record.SpeedupDetail)
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-55s %-8s%s\n", ev.Done, ev.Total, ev.Cell, ev.Source, metrics)
		case "cell.error":
			fmt.Fprintf(os.Stderr, "[%d/%d] %-55s FAILED: %s\n", ev.Done, ev.Total, ev.Cell, ev.Error)
		case "campaign.done":
			e := ev
			done = &e
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if done == nil {
		return fmt.Errorf("stream ended without campaign.done")
	}
	hitPct := 0.0
	if done.Total > 0 {
		hitPct = 100 * float64(done.StoreHits) / float64(done.Total)
	}
	fmt.Printf("campaign %s %s: total=%d computed=%d store_hits=%d joined=%d errors=%d hit_pct=%.1f\n",
		done.Campaign, done.State, done.Total, done.Computed, done.StoreHits, done.Joined, done.Errors, hitPct)
	if done.State != server.StateDone {
		return fmt.Errorf("campaign %s: %s", done.Campaign, done.State)
	}
	return nil
}

func cmdStatus(serverURL string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: taskpointc status <campaign-id>")
	}
	resp, err := http.Get(serverURL + "/v1/campaigns/" + args[0])
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("status", resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdList(serverURL string) error {
	resp, err := http.Get(serverURL + "/v1/campaigns")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("list", resp)
	}
	var sums []server.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sums); err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Printf("%-24s %-8s %4d/%-4d computed=%d store_hits=%d joined=%d errors=%d\n",
			s.ID, s.State, s.Done, s.Total, s.Counts.Computed, s.Counts.StoreHits, s.Counts.Joined, s.Counts.Errors)
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
	if e.Error == "" {
		e.Error = resp.Status
	}
	return fmt.Errorf("%s: %s", op, e.Error)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpointc:", err)
	os.Exit(1)
}
