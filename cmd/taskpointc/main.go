// Command taskpointc is the thin client for taskpointd:
//
//	taskpointc submit -spec campaign.json          # submit, print the id
//	taskpointc submit -spec campaign.json -wait    # submit and stream progress
//	taskpointc submit -default -scale 0.03125 -wait
//	taskpointc events <id>                         # raw JSONL event stream
//	taskpointc status <id>
//	taskpointc list
//
// The server defaults to http://127.0.0.1:8383; override with -server
// (before the subcommand). With -wait, per-cell progress goes to stderr
// and the final machine-parseable summary line goes to stdout:
//
//	campaign <id> done: total=16 computed=0 store_hits=16 joined=0 errors=0 hit_pct=100.0
//
// The client is resilient to a flaky or restarting server: transient
// HTTP failures (connection errors, 429/502/503/504) are retried with
// jittered exponential backoff honouring Retry-After, and a dropped
// event stream is resumed from the last seen sequence number (?from=N)
// — including across a server drain/restart, so `submit -wait` rides
// through a rolling restart and still prints the final summary.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"time"

	"taskpoint/internal/server"
	"taskpoint/internal/sweep"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8383", "taskpointd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: taskpointc [-server URL] submit|events|status|list ..."))
	}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(*serverURL, args[1:])
	case "events":
		err = cmdEvents(*serverURL, args[1:])
	case "status":
		err = cmdStatus(*serverURL, args[1:])
	case "list":
		err = cmdList(*serverURL)
	default:
		err = fmt.Errorf("unknown subcommand %q", args[0])
	}
	if err != nil {
		fatal(err)
	}
}

// Retry policy for transient server failures.
const (
	retryAttempts = 8
	retryBase     = 200 * time.Millisecond
	retryMax      = 5 * time.Second
)

// transientStatus reports whether an HTTP status is worth retrying: the
// server is overloaded (429), draining (503) or behind a sick proxy.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// nextDelay doubles the backoff and jitters it to 50–150% of nominal,
// capped, so a herd of clients retrying against one recovering server
// spreads out instead of stampeding.
func nextDelay(prev time.Duration) time.Duration {
	next := prev * 2
	if next <= 0 {
		next = retryBase
	}
	if next > retryMax {
		next = retryMax
	}
	return next/2 + time.Duration(rand.Int64N(int64(next)))
}

// doRetry issues req until it yields a non-transient outcome, sleeping a
// jittered exponential backoff (or the server's Retry-After, whichever
// is longer) between attempts. The caller owns the returned response
// body.
func doRetry(op string, req func() (*http.Response, error)) (*http.Response, error) {
	var delay time.Duration
	for attempt := 1; ; attempt++ {
		resp, err := req()
		if err == nil && !transientStatus(resp.StatusCode) {
			return resp, nil
		}
		var retryAfter time.Duration
		if err == nil {
			if sec, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && sec > 0 {
				retryAfter = time.Duration(sec) * time.Second
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			err = fmt.Errorf("%s: server answered %s", op, resp.Status)
		}
		if attempt >= retryAttempts {
			return nil, fmt.Errorf("%w (after %d attempts)", err, attempt)
		}
		delay = nextDelay(delay)
		wait := delay
		if retryAfter > wait {
			wait = retryAfter
		}
		fmt.Fprintf(os.Stderr, "taskpointc: %v; retrying in %v\n", err, wait.Round(time.Millisecond))
		time.Sleep(wait)
	}
}

func cmdSubmit(serverURL string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON sweep spec file")
	useDefault := fs.Bool("default", false, "submit the built-in default campaign")
	scale := fs.Float64("scale", 0, "override the spec's benchmark scale")
	wait := fs.Bool("wait", false, "stream events until the campaign finishes")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	var spec sweep.Spec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	case *useDefault:
		spec = sweep.DefaultSpec()
	default:
		return fmt.Errorf("submit: need -spec FILE or -default")
	}
	if *scale > 0 {
		spec.Scale = *scale
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := doRetry("submit", func() (*http.Response, error) {
		return http.Post(serverURL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return httpError("submit", resp)
	}
	var sum server.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign %s accepted: %d cells\n", sum.ID, sum.Total)
	if !*wait {
		fmt.Println(sum.ID)
		return nil
	}
	return stream(serverURL, sum.ID, true)
}

func cmdEvents(serverURL string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: taskpointc events <campaign-id>")
	}
	return stream(serverURL, args[0], false)
}

// stream tails a campaign's JSONL events until campaign.done, resuming a
// dropped (or drained) stream from the last seen sequence number. Pretty
// mode renders per-cell progress on stderr and the final summary line on
// stdout; raw mode copies the JSONL lines verbatim to stdout.
func stream(serverURL, id string, pretty bool) error {
	next := 0
	drops := 0
	var done *server.Event
	for done == nil {
		resp, err := doRetry("events", func() (*http.Response, error) {
			return http.Get(serverURL + "/v1/campaigns/" + id + "/events?from=" + strconv.Itoa(next))
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return httpError("events", resp)
		}
		var consumeErr error
		done, consumeErr = consume(resp.Body, pretty, &next)
		resp.Body.Close()
		if done != nil {
			break
		}
		// The stream ended without campaign.done: the connection dropped
		// mid-campaign, or the server drained (campaign.interrupted) and
		// will resume the campaign on its next start. Reconnect from the
		// cursor; doRetry above rides out the restart window.
		drops++
		if drops > retryAttempts {
			return fmt.Errorf("events: stream for %s kept dropping (last: %v)", id, consumeErr)
		}
		cause := "stream ended early"
		if consumeErr != nil {
			cause = consumeErr.Error()
		}
		fmt.Fprintf(os.Stderr, "taskpointc: %s; resuming %s from seq %d\n", cause, id, next)
		time.Sleep(nextDelay(0))
	}
	hitPct := 0.0
	if done.Total > 0 {
		hitPct = 100 * float64(done.StoreHits) / float64(done.Total)
	}
	fmt.Printf("campaign %s %s: total=%d computed=%d store_hits=%d joined=%d errors=%d hit_pct=%.1f\n",
		done.Campaign, done.State, done.Total, done.Computed, done.StoreHits, done.Joined, done.Errors, hitPct)
	if done.State != server.StateDone {
		return fmt.Errorf("campaign %s: %s", done.Campaign, done.State)
	}
	return nil
}

// consume reads one event-stream connection, advancing the resume cursor
// past every parsed event. It returns the campaign.done event if the
// stream reached it, nil if the stream ended early (drop or interrupt).
func consume(body io.Reader, pretty bool, next *int) (*server.Event, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad event %q: %w", sc.Text(), err)
		}
		if ev.Seq >= *next {
			*next = ev.Seq + 1
		}
		if !pretty {
			fmt.Println(sc.Text())
		}
		switch ev.Type {
		case "cell.done":
			if pretty {
				var metrics string
				if ev.Record != nil {
					metrics = fmt.Sprintf("  err %6.2f%%  %5.1fx detail", ev.Record.ErrPct, ev.Record.SpeedupDetail)
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %-55s %-8s%s\n", ev.Done, ev.Total, ev.Cell, ev.Source, metrics)
			}
		case "cell.error":
			if pretty {
				fmt.Fprintf(os.Stderr, "[%d/%d] %-55s FAILED: %s\n", ev.Done, ev.Total, ev.Cell, ev.Error)
			}
		case "campaign.interrupted":
			if pretty {
				fmt.Fprintf(os.Stderr, "campaign %s interrupted at %d/%d (server draining); it resumes on the next server start\n",
					ev.Campaign, ev.Done, ev.Total)
			}
		case "campaign.done":
			e := ev
			return &e, sc.Err()
		}
	}
	return nil, sc.Err()
}

func cmdStatus(serverURL string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: taskpointc status <campaign-id>")
	}
	resp, err := doRetry("status", func() (*http.Response, error) {
		return http.Get(serverURL + "/v1/campaigns/" + args[0])
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("status", resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdList(serverURL string) error {
	resp, err := doRetry("list", func() (*http.Response, error) {
		return http.Get(serverURL + "/v1/campaigns")
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("list", resp)
	}
	var sums []server.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sums); err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Printf("%-24s %-8s %4d/%-4d computed=%d store_hits=%d joined=%d errors=%d\n",
			s.ID, s.State, s.Done, s.Total, s.Counts.Computed, s.Counts.StoreHits, s.Counts.Joined, s.Counts.Errors)
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
	if e.Error == "" {
		e.Error = resp.Status
	}
	return fmt.Errorf("%s: %s", op, e.Error)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskpointc:", err)
	os.Exit(1)
}
