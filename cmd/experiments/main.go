// Command experiments regenerates every table and figure of the paper's
// evaluation and writes a markdown report. Detailed baselines are shared
// across experiments, so the whole sweep is feasible on a laptop.
//
// Usage:
//
//	experiments -scale 0.125 -out EXPERIMENTS.md          # everything
//	experiments -exp fig7,fig9 -threads 8,16              # a subset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"taskpoint"
	"taskpoint/internal/core"
	"taskpoint/internal/results"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I)")
		seed    = flag.Uint64("seed", 42, "workload/noise seed")
		workers = flag.Int("workers", 2, "concurrent simulations")
		out     = flag.String("out", "", "output markdown file (default stdout)")
		exps    = flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig5,fig6a,fig6b,fig6c,fig7,fig8,fig9,fig10,summary")
		hpT     = flag.String("hp-threads", "8,16,32,64", "thread counts for the high-performance figures")
		lpT     = flag.String("lp-threads", "1,2,4,8", "thread counts for the low-power figures")
		quiet   = flag.Bool("quiet", false, "suppress per-section progress on stderr")
	)
	flag.Parse()

	// One signal-bound context cancels every simulation of every section:
	// the runner is a view over the unified experiment engine, so Ctrl-C
	// stops the in-flight detailed and sampled runs promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := taskpoint.NewRunner(*scale, *seed, *workers).WithContext(ctx)
	hpThreads := parseInts(*hpT)
	lpThreads := parseInts(*lpT)
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	params := core.DefaultParams()

	var report strings.Builder
	fmt.Fprintf(&report, "# TaskPoint experiments (scale %.3g, seed %d)\n\nGenerated %s.\n\n",
		*scale, *seed, time.Now().Format(time.RFC1123))

	start := time.Now()
	section := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s...\n", name)
		}
		s, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		report.WriteString(s)
		report.WriteString("\n")
		if !*quiet {
			fmt.Fprintf(os.Stderr, "   done in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}

	var fig1Rows, fig5Rows []results.VariationRow
	var fig9Rows []results.SampledRow

	section("fig5", func() (string, error) {
		rows, err := runner.Variation(results.HighPerf, 8)
		if err != nil {
			return "", err
		}
		fig5Rows = rows
		return results.RenderVariation("Figure 5 — IPC variation, simulated high-performance, 8 threads", rows), nil
	})
	section("fig1", func() (string, error) {
		rows, err := runner.Variation(results.Native, 8)
		if err != nil {
			return "", err
		}
		fig1Rows = rows
		s := results.RenderVariation("Figure 1 — IPC variation, native-like (noise model), 8 threads", rows)
		if fig5Rows != nil {
			agree, total := results.ClassificationAgreement(fig1Rows, fig5Rows)
			s += fmt.Sprintf("\nNative/simulated ±5%% classification agreement: %d of %d (paper: 18 of 19).\n", agree, total)
		}
		return s, nil
	})
	section("fig6a", func() (string, error) {
		pts, err := runner.SweepW([]int{0, 1, 2, 3, 4, 6, 8, 10}, []int{32, 64})
		if err != nil {
			return "", err
		}
		return results.RenderSweep("Figure 6a — warm-up size W (H=10, P=inf, 32+64 threads)", "W", pts), nil
	})
	section("fig6b", func() (string, error) {
		pts, err := runner.SweepH([]int{1, 2, 3, 4, 5, 6, 8, 10}, []int{32, 64})
		if err != nil {
			return "", err
		}
		return results.RenderSweep("Figure 6b — history size H (W=2, P=inf)", "H", pts), nil
	})
	section("fig6c", func() (string, error) {
		pts, err := runner.SweepP([]int{10, 25, 50, 100, 250, 500, 1000}, []int{32, 64})
		if err != nil {
			return "", err
		}
		return results.RenderSweep("Figure 6c — sampling period P (W=2, H=4)", "P", pts), nil
	})
	section("fig7", func() (string, error) {
		rows, err := runner.Figure(results.HighPerf, hpThreads, params, core.Periodic{P: 250}, nil)
		if err != nil {
			return "", err
		}
		return results.RenderSampled("Figure 7 — periodic sampling (P=250), high-performance", rows), nil
	})
	section("fig8", func() (string, error) {
		rows, err := runner.Figure(results.LowPower, lpThreads, params, core.Periodic{P: 250}, nil)
		if err != nil {
			return "", err
		}
		return results.RenderSampled("Figure 8 — periodic sampling (P=250), low-power", rows), nil
	})
	section("fig9", func() (string, error) {
		rows, err := runner.Figure(results.HighPerf, hpThreads, params, core.Lazy{}, nil)
		if err != nil {
			return "", err
		}
		fig9Rows = rows
		return results.RenderSampled("Figure 9 — lazy sampling, high-performance", rows), nil
	})
	section("fig10", func() (string, error) {
		rows, err := runner.Figure(results.LowPower, lpThreads, params, core.Lazy{}, nil)
		if err != nil {
			return "", err
		}
		return results.RenderSampled("Figure 10 — lazy sampling, low-power", rows), nil
	})
	section("table1", func() (string, error) {
		rows, err := runner.Table1()
		if err != nil {
			return "", err
		}
		return results.RenderTable1(rows, *scale), nil
	})
	section("summary", func() (string, error) {
		rows := fig9Rows
		if rows == nil {
			var err error
			rows, err = runner.Figure(results.HighPerf, hpThreads, params, core.Lazy{}, nil)
			if err != nil {
				return "", err
			}
		}
		return results.RenderSummary(rows), nil
	})

	fmt.Fprintf(&report, "\nTotal experiment wall time: %v.\n", time.Since(start).Round(time.Second))

	if *out == "" {
		fmt.Print(report.String())
		return
	}
	if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
