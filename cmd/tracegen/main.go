// Command tracegen generates benchmark traces as binary trace files and
// inspects existing ones, playing the role of the paper's tracing
// infrastructure for the simulator's trace-driven operation. Besides the
// Table I registry it accepts generated-scenario specs
// ("gen:family(knob=value,...)"), so synthetic stress workloads can be
// frozen into trace files too.
//
// Usage:
//
//	tracegen -bench dedup -scale 0.125 -o dedup.tpt
//	tracegen -bench 'gen:pipeline(depth=6,size=heavytail)' -o pipe.tpt
//	tracegen -info dedup.tpt
//	tracegen -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"taskpoint"
	"taskpoint/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name or gen: scenario spec to generate")
		scale     = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I)")
		seed      = flag.Uint64("seed", 42, "generation seed")
		out       = flag.String("o", "", "output trace file")
		info      = flag.String("info", "", "print a summary of an existing trace file")
		list      = flag.Bool("list", false, "list all benchmark names and scenario families")
		quiet     = flag.Bool("quiet", false, "suppress the wrote-file note on stderr")
	)
	flag.Parse()

	switch {
	case *list:
		printNames(os.Stdout)

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		prog, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace      %s\n", prog.Name)
		fmt.Printf("types      %d\n", prog.NumTypes())
		for i, ti := range prog.Types {
			fmt.Printf("  [%d] %s (%d instances)\n", i, ti.Name, len(prog.InstancesOf(trace.TypeID(i))))
		}
		fmt.Printf("instances  %d\n", prog.NumTasks())
		fmt.Printf("instr      %.2fM\n", float64(prog.TotalInstructions())/1e6)

	case *benchName != "" && *out != "":
		prog, err := taskpoint.LookupBenchmark(*benchName, *scale, *seed)
		if errors.Is(err, taskpoint.ErrUnknownName) {
			// An unknown name is the one error a listing fixes: print
			// every valid spelling instead of the bare lookup failure.
			// Malformed knobs of a known family keep their own message.
			fmt.Fprintf(os.Stderr, "tracegen: %v\n\nvalid -bench values:\n", err)
			printNames(os.Stderr)
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, prog); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s: %d instances, %d bytes\n", *out, prog.NumTasks(), st.Size())
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -bench NAME -o FILE | tracegen -info FILE | tracegen -list")
		os.Exit(2)
	}
}

// printNames lists the Table I registry and the generator's scenario
// families with their spec grammar.
func printNames(w *os.File) {
	fmt.Fprintln(w, "Table I benchmarks:")
	for _, n := range taskpoint.Benchmarks() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "\nGenerated scenario families (spec: \"gen:FAMILY(knob=value,...)\"):")
	for _, f := range taskpoint.ScenarioFamilies() {
		fmt.Fprintf(w, "  gen:%-10s %s\n", f.Name, f.Blurb)
	}
	fmt.Fprintln(w, "\nKnobs: tasks, width, depth, types, size (loguniform|fixed|bimodal|heavytail),")
	fmt.Fprintln(w, "       mean, cv, phases, inputdep — e.g. gen:forkjoin(width=16,size=heavytail,inputdep=0.8)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
