// Command tracegen generates benchmark traces as binary trace files and
// inspects existing ones, playing the role of the paper's tracing
// infrastructure for the simulator's trace-driven operation.
//
// Usage:
//
//	tracegen -bench dedup -scale 0.125 -o dedup.tpt
//	tracegen -info dedup.tpt
package main

import (
	"flag"
	"fmt"
	"os"

	"taskpoint"
	"taskpoint/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to generate")
		scale     = flag.Float64("scale", 1.0/8, "benchmark scale (1.0 = Table I)")
		seed      = flag.Uint64("seed", 42, "generation seed")
		out       = flag.String("o", "", "output trace file")
		info      = flag.String("info", "", "print a summary of an existing trace file")
	)
	flag.Parse()

	switch {
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		prog, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace      %s\n", prog.Name)
		fmt.Printf("types      %d\n", prog.NumTypes())
		for i, ti := range prog.Types {
			fmt.Printf("  [%d] %s (%d instances)\n", i, ti.Name, len(prog.InstancesOf(trace.TypeID(i))))
		}
		fmt.Printf("instances  %d\n", prog.NumTasks())
		fmt.Printf("instr      %.2fM\n", float64(prog.TotalInstructions())/1e6)

	case *benchName != "" && *out != "":
		prog, err := taskpoint.LookupBenchmark(*benchName, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, prog); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s: %d instances, %d bytes\n", *out, prog.NumTasks(), st.Size())

	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -bench NAME -o FILE | tracegen -info FILE")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
