// Acceptance tests for the generative scenario engine (internal/gen +
// internal/gen/corpus): the property-driven generator must feed the whole
// stack through the public facade, and on a fixed-seed 50-scenario
// accuracy-stress corpus the stratified policy's confidence interval must
// cover the detailed reference on at least 90% of the scenarios while
// every policy reports error and speedup for every cell.
package taskpoint_test

import (
	"strings"
	"testing"

	"taskpoint"
)

// TestScenarioThroughFacade: a parsed scenario simulates end to end like
// any Table I benchmark.
func TestScenarioThroughFacade(t *testing.T) {
	sc, err := taskpoint.ParseScenario("gen:forkjoin(tasks=128,width=8,size=bimodal,inputdep=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := taskpoint.LookupBenchmark(sc.Spec(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := taskpoint.HighPerf(4)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := taskpoint.SimulateSampled(cfg, prog, taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if st.DetailedStarted == 0 || res.Cycles <= 0 || det.Cycles <= 0 {
		t.Fatalf("degenerate simulation: %+v, cycles %v/%v", st, res.Cycles, det.Cycles)
	}
	if len(taskpoint.ScenarioFamilies()) < 6 {
		t.Fatalf("only %d scenario families, want >= 6", len(taskpoint.ScenarioFamilies()))
	}
}

// TestCorpusStratifiedCoverage: the paper-level acceptance bar — a
// fixed-seed 50-scenario corpus across the full family × knob grid, run
// in parallel, with stratified sampling's confidence interval covering
// the detailed reference's total task cycles on >= 90% of scenarios.
func TestCorpusStratifiedCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("50-scenario corpus in -short mode")
	}
	recs, err := taskpoint.RunCorpus(taskpoint.DefaultCorpus(50), 4, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 150 {
		t.Fatalf("%d records, want 50 scenarios x 3 policies", len(recs))
	}
	families := map[string]bool{}
	for _, r := range recs {
		fam, _, _ := strings.Cut(strings.TrimPrefix(r.Bench, "gen:"), "(")
		families[fam] = true
		if r.DetailedCycles <= 0 || r.SampledCycles <= 0 || r.SpeedupDetail < 1 {
			t.Fatalf("cell %s has degenerate metrics: %+v", r.Key, r)
		}
	}
	if len(families) < 6 {
		t.Errorf("corpus exercised %d families, want >= 6", len(families))
	}
	for _, s := range taskpoint.SummarizeCorpus(recs) {
		if s.Scenarios != 50 {
			t.Errorf("%s ran %d scenarios, want 50", s.Policy, s.Scenarios)
		}
		if s.GeoSpeedupDetail <= 1 {
			t.Errorf("%s has no sampling speedup: %+v", s.Policy, s)
		}
		if s.CICells > 0 {
			if s.CICells != 50 {
				t.Errorf("%s reported CIs on %d/50 scenarios", s.Policy, s.CICells)
			}
			if s.CoverRate < 0.9 {
				t.Errorf("%s CI coverage %.0f%% below the 90%% acceptance bar",
					s.Policy, 100*s.CoverRate)
			}
		}
	}
}
