module taskpoint

go 1.24
