// Golden determinism tests: the simulation kernel's results are part of
// the repository contract. Every optimisation of the hot path (event
// heap, directory table, allocation pooling, engine reuse) must keep
// Result bit-identical — these tests pin SHA-256 digests of the full
// Result (Cycles, per-instance records, memory statistics) for a spread
// of Table I and generated scenarios across architectures, thread counts
// and sampling controllers, committed before the optimisations landed.
//
// Regenerate the fixtures (only for a deliberate, reviewed behaviour
// change) with:
//
//	go test -run TestGoldenDigests -update-golden
package taskpoint_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/sim"

	// Register the "gen:" scenario resolver so generated workloads
	// resolve by name like Table I benchmarks do.
	_ "taskpoint/internal/gen"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current kernel")

// goldenScale keeps every golden run near the 64-instance floor (128
// instances for the Table I kernels), so the whole spread (including
// -race CI runs) stays fast while still exercising scheduling depth,
// coherence and both simulation modes.
const goldenScale = 1.0 / 128

// goldenCase is one pinned scenario/arch/threads/controller combination.
type goldenCase struct {
	Workload string
	Arch     arch.Arch
	Threads  int
	// Policy is "" for the full-detail reference controller, otherwise a
	// core.ParsePolicy spec run through the sampling controller.
	Policy string
	Seed   uint64
}

// Key is the fixture map key of the case.
func (c goldenCase) Key() string {
	pol := c.Policy
	if pol == "" {
		pol = "detailed"
	}
	return fmt.Sprintf("%s|%s|%d|%s|%d", c.Workload, c.Arch, c.Threads, pol, c.Seed)
}

// goldenCases spans both Table II architectures plus the noise-modelled
// native machine, thread counts from 1 to 16, atomic/irregular/shrinking
// workloads, generated scenarios, and detailed as well as sampled
// controllers — the paths the kernel optimisations touch.
func goldenCases() []goldenCase {
	return []goldenCase{
		{Workload: "2d-convolution", Arch: arch.HighPerf, Threads: 8, Seed: 42},
		{Workload: "2d-convolution", Arch: arch.HighPerf, Threads: 8, Policy: "lazy", Seed: 42},
		{Workload: "histogram", Arch: arch.LowPower, Threads: 4, Seed: 42},
		{Workload: "sparse-matrix-vector-multiplication", Arch: arch.HighPerf, Threads: 2, Policy: "periodic(50)", Seed: 7},
		{Workload: "n-body", Arch: arch.Native, Threads: 4, Seed: 42},
		{Workload: "reduction", Arch: arch.HighPerf, Threads: 16, Seed: 42},
		{Workload: "gen:forkjoin", Arch: arch.HighPerf, Threads: 8, Seed: 3},
		{Workload: "gen:pipeline", Arch: arch.LowPower, Threads: 2, Policy: "lazy", Seed: 3},
		{Workload: "dense-matrix-multiplication", Arch: arch.LowPower, Threads: 1, Seed: 42},
	}
}

// runGolden simulates one golden case from a fresh engine.
func runGolden(c goldenCase) (*sim.Result, error) {
	spec, err := bench.ByName(c.Workload)
	if err != nil {
		return nil, err
	}
	prog, err := spec.Build(goldenScale, c.Seed)
	if err != nil {
		return nil, err
	}
	cfg, err := arch.ConfigFor(c.Arch, c.Threads)
	if err != nil {
		return nil, err
	}
	var ctrl sim.Controller = sim.DetailedController{}
	if c.Policy != "" {
		pol, err := core.ParsePolicy(c.Policy)
		if err != nil {
			return nil, err
		}
		sampler, err := core.New(core.DefaultParams(), pol)
		if err != nil {
			return nil, err
		}
		ctrl = sampler
	}
	return sim.Simulate(cfg, prog, ctrl, arch.SimOptions(c.Arch, c.Seed, c.Threads)...)
}

// digestResult folds every deterministic field of a Result — the makespan,
// the instruction/task accounting, each per-instance record and the memory
// statistics — into one SHA-256 hex digest. Wall time is excluded (host
// dependent).
func digestResult(res *sim.Result) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(math.Float64bits(res.Cycles))
	w64(uint64(res.TotalInstructions))
	w64(uint64(res.DetailedInstructions))
	w64(uint64(res.DetailedTasks))
	w64(uint64(res.FastTasks))
	for i := range res.PerInstance {
		rec := &res.PerInstance[i]
		w64(uint64(rec.Type))
		w64(uint64(rec.Thread))
		w64(math.Float64bits(rec.Start))
		w64(math.Float64bits(rec.End))
		w64(uint64(rec.Instr))
		w64(math.Float64bits(rec.IPC))
		w64(uint64(rec.Mode))
	}
	m := &res.Mem
	w64(m.Accesses)
	w64(m.L1Hits)
	w64(m.L2Hits)
	w64(m.L3Hits)
	w64(m.DRAMAccesses)
	w64(m.Writebacks)
	w64(m.Invalidations)
	w64(math.Float64bits(m.QueueCycles))
	return hex.EncodeToString(h.Sum(nil))
}

const goldenFixture = "testdata/golden_digests.json"

func TestGoldenDigests(t *testing.T) {
	got := map[string]string{}
	for _, c := range goldenCases() {
		res, err := runGolden(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Key(), err)
		}
		got[c.Key()] = digestResult(res)
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFixture, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenFixture)
		return
	}

	data, err := os.ReadFile(goldenFixture)
	if err != nil {
		t.Fatalf("read fixtures (regenerate with -update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture has %d digests, test produced %d", len(want), len(got))
	}
	for key, g := range got {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: no committed digest (regenerate with -update-golden)", key)
			continue
		}
		if g != w {
			t.Errorf("%s: digest %s differs from committed %s — kernel results are no longer bit-identical", key, g, w)
		}
	}
}

// TestGoldenRunsAreReproducible guards the digest mechanism itself: two
// fresh engines over the same case must agree before any fixture
// comparison is meaningful.
func TestGoldenRunsAreReproducible(t *testing.T) {
	c := goldenCases()[0]
	a, err := runGolden(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runGolden(c)
	if err != nil {
		t.Fatal(err)
	}
	if digestResult(a) != digestResult(b) {
		t.Fatal("two identical runs produced different digests")
	}
}
