// Ablation benchmarks for the design choices DESIGN.md calls out. These
// are not paper artefacts; they quantify the extensions and implementation
// choices of this reproduction:
//
//   - size-class clustering (the paper's §V-B future work) on the
//     input-dependent benchmarks it targets,
//   - TaskPoint's robustness to the runtime's scheduling order, and
//   - the parallelism-trigger patience on phase-structured workloads.
package taskpoint_test

import (
	"testing"

	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/results"
	"taskpoint/internal/sched"
	"taskpoint/internal/sim"
	"taskpoint/internal/stats"
	"taskpoint/internal/strata"
)

// mustSpec resolves a Table I benchmark or fails the benchmark.
func mustSpec(b *testing.B, name string) *bench.Spec {
	b.Helper()
	spec, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkAblationSizeClassing compares plain per-type sampling against
// the size-class extension on dedup and freqmine — the two benchmarks the
// paper names as victims of input-dependent instance sizes.
func BenchmarkAblationSizeClassing(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	names := []string{"dedup", "freqmine", "sparse-matrix-vector-multiplication"}
	var plain, classed []float64
	for i := 0; i < b.N; i++ {
		plain, classed = nil, nil
		for _, name := range names {
			p := core.DefaultParams()
			row, err := r.Sampled(name, results.HighPerf, 8, p, core.Lazy{})
			if err != nil {
				b.Fatal(err)
			}
			plain = append(plain, row.ErrPct)
			p.SizeClasses = true
			row, err = r.Sampled(name, results.HighPerf, 8, p, core.Lazy{})
			if err != nil {
				b.Fatal(err)
			}
			classed = append(classed, row.ErrPct)
		}
	}
	b.ReportMetric(stats.Mean(plain), "err_pct_plain")
	b.ReportMetric(stats.Mean(classed), "err_pct_classed")
}

// BenchmarkAblationStratified compares the plain size-class sampler
// against two-phase stratified sampling at an equal detailed budget
// (B = the plain run's detailed-instance count) on the input-dependent
// benchmarks, reporting both the execution-time error and the relative
// width of the stratified confidence interval.
func BenchmarkAblationStratified(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	names := []string{"dedup", "freqmine", "sparse-matrix-vector-multiplication"}
	var plain, strat, ciw []float64
	for i := 0; i < b.N; i++ {
		plain, strat, ciw = nil, nil, nil
		for _, name := range names {
			p := core.DefaultParams()
			p.SizeClasses = true
			row, err := r.Sampled(name, results.HighPerf, 8, p, core.Lazy{})
			if err != nil {
				b.Fatal(err)
			}
			plain = append(plain, row.ErrPct)
			pol := strata.MustNew(strata.DefaultConfig(row.Sampler.DetailedStarted))
			srow, err := r.Sampled(name, results.HighPerf, 8, core.DefaultParams(), pol)
			if err != nil {
				b.Fatal(err)
			}
			strat = append(strat, srow.ErrPct)
			ciw = append(ciw, srow.Confidence.RelWidth())
		}
	}
	b.ReportMetric(stats.Mean(plain), "err_pct_sizeclass")
	b.ReportMetric(stats.Mean(strat), "err_pct_stratified")
	b.ReportMetric(stats.Mean(ciw), "ci_rel_width")
}

// BenchmarkAblationSchedulerPolicy measures TaskPoint's accuracy under
// FIFO vs LIFO ready-queue orders. Dynamic scheduling reshuffles which
// thread executes which instance — the property that breaks classical
// sampling (paper §I) — so the error should stay in the same band for
// both orders.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	b.ReportAllocs()
	var errs [2]float64
	for i := 0; i < b.N; i++ {
		for pi, pol := range []sched.Policy{sched.FIFO, sched.LIFO} {
			spec := mustSpec(b, "cholesky")
			p := spec.MustBuild(benchScale, 42)
			cfg := sim.HighPerfConfig(8)
			cfg.Policy = pol
			det, err := sim.Simulate(cfg, p, sim.DetailedController{})
			if err != nil {
				b.Fatal(err)
			}
			s := core.MustNew(core.DefaultParams(), core.Lazy{})
			samp, err := sim.Simulate(cfg, p, s)
			if err != nil {
				b.Fatal(err)
			}
			errs[pi] = stats.AbsPctError(samp.Cycles, det.Cycles)
		}
	}
	b.ReportMetric(errs[0], "err_pct_fifo")
	b.ReportMetric(errs[1], "err_pct_lifo")
}

// BenchmarkAblationPatience measures the parallelism-trigger patience on
// kmeans (a serial convergence check between parallel phases) and
// reduction (a genuinely shrinking tree): patience 1 resamples on every
// transient; patience 2 absorbs them.
func BenchmarkAblationPatience(b *testing.B) {
	b.ReportAllocs()
	r1 := benchRunner()
	var resamples [2]float64
	var errs [2]float64
	for i := 0; i < b.N; i++ {
		for pi, patience := range []int{1, 2} {
			p := core.DefaultParams()
			p.ConcurrencyPatience = patience
			var errSum, resSum float64
			for _, name := range []string{"kmeans", "reduction"} {
				row, err := r1.Sampled(name, results.HighPerf, 8, p, core.Lazy{})
				if err != nil {
					b.Fatal(err)
				}
				errSum += row.ErrPct
				resSum += float64(row.Sampler.Resamples)
			}
			errs[pi] = errSum / 2
			resamples[pi] = resSum / 2
		}
	}
	b.ReportMetric(errs[0], "err_pct_pat1")
	b.ReportMetric(errs[1], "err_pct_pat2")
	b.ReportMetric(resamples[0], "resamples_pat1")
	b.ReportMetric(resamples[1], "resamples_pat2")
}

// BenchmarkAblationQuantum measures sensitivity of the detailed baseline
// to the engine's time-slice length: cycles must be stable (within a few
// percent) across quantum sizes, showing the conservative interleaving
// converges.
func BenchmarkAblationQuantum(b *testing.B) {
	b.ReportAllocs()
	var cycles [3]float64
	quanta := []int64{500, 2000, 8000}
	for i := 0; i < b.N; i++ {
		for qi, q := range quanta {
			spec := mustSpec(b, "histogram")
			p := spec.MustBuild(benchScale, 42)
			cfg := sim.HighPerfConfig(8)
			cfg.Quantum = q
			det, err := sim.Simulate(cfg, p, sim.DetailedController{})
			if err != nil {
				b.Fatal(err)
			}
			cycles[qi] = det.Cycles
		}
	}
	b.ReportMetric(stats.AbsPctError(cycles[0], cycles[1]), "drift_pct_q500")
	b.ReportMetric(stats.AbsPctError(cycles[2], cycles[1]), "drift_pct_q8000")
}
