// Package taskpoint is a reproduction of "TaskPoint: Sampled Simulation of
// Task-Based Programs" (Grass, Rico, Casas, Moreto, Ayguadé — ISPASS 2016)
// as a self-contained Go library.
//
// TaskPoint accelerates architectural simulation of dynamically scheduled
// task-based programs by using task instances as sampling units: a few
// instances per task type are simulated cycle by cycle to warm
// micro-architectural state and measure IPC; the remaining instances are
// fast-forwarded at the mean IPC of their type's sample history, so every
// thread advances at a rate matching the work it executes.
//
// The package bundles the full stack the paper builds on:
//
//   - a generative trace model for task-based programs (task types,
//     instances, dependencies, instruction-stream descriptors),
//   - an OmpSs-like dynamic scheduler over the task dependency graph,
//   - a TaskSim-like deterministic multi-core simulator with a detailed
//     mode (ROB-occupancy core model + caches/coherence/DRAM) and a
//     fixed-IPC burst mode,
//   - the TaskPoint sampling controller with periodic and lazy policies,
//   - the 19 benchmarks of the paper's Table I as synthetic workload
//     generators, and
//   - the evaluation harness regenerating every table and figure.
//
// # Quick start
//
//	prog := taskpoint.Benchmark("cholesky", 1.0/16, 42)
//	cfg := taskpoint.HighPerf(8)
//
//	detailed, _ := taskpoint.SimulateDetailed(cfg, prog)
//	sampled, stats, _ := taskpoint.SimulateSampled(cfg, prog,
//		taskpoint.DefaultParams(), taskpoint.LazyPolicy())
//
//	fmt.Printf("error %.2f%%, %.0fx fewer instructions in detail\n",
//		taskpoint.ErrorPct(sampled, detailed),
//		1/sampled.DetailFraction())
//	_ = stats
//
// See examples/ for runnable programs and docs/ARCHITECTURE.md for the
// system map.
package taskpoint

import (
	"context"
	"io"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/fault"
	"taskpoint/internal/gen"
	"taskpoint/internal/gen/corpus"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
	"taskpoint/internal/results"
	"taskpoint/internal/sim"
	"taskpoint/internal/stats"
	"taskpoint/internal/store"
	"taskpoint/internal/strata"
	"taskpoint/internal/sweep"
	"taskpoint/internal/trace"
)

// Re-exported core types. The facade keeps downstream users on one import
// path while the implementation lives in internal packages.
type (
	// Program is an application trace: task types, instances and
	// dependencies.
	Program = trace.Program
	// Instance is one task instance.
	Instance = trace.Instance
	// Segment describes a homogeneous instruction run of an instance.
	Segment = trace.Segment
	// TypeInfo names a task type.
	TypeInfo = trace.TypeInfo
	// Config describes a simulated machine.
	Config = sim.Config
	// Result is the outcome of one simulation.
	Result = sim.Result
	// Controller decides the simulation mode per task instance.
	Controller = sim.Controller
	// Params are TaskPoint's model parameters (W, H, rare cut-off...).
	Params = core.Params
	// Policy decides when a fast-forwarding simulation is resampled.
	Policy = core.Policy
	// Sampler is the TaskPoint controller.
	Sampler = core.Sampler
	// SamplerStats reports what the sampler did during a run.
	SamplerStats = core.Stats
	// Runner drives the paper's evaluation experiments.
	Runner = results.Runner
	// Pattern selects how a segment generates memory addresses.
	Pattern = trace.Pattern
	// StartInfo describes a task instance about to start (custom
	// controllers).
	StartInfo = sim.StartInfo
	// FinishInfo describes a completed task instance.
	FinishInfo = sim.FinishInfo
	// Decision is a controller's mode choice for one instance.
	Decision = sim.Decision
	// SweepSpec declares a design-space campaign (benchmarks ×
	// architectures × thread counts × policies × seeds).
	SweepSpec = sweep.Spec
	// SweepEngine executes a campaign over a bounded worker pool.
	SweepEngine = sweep.Engine
	// SweepRecord is one completed campaign cell (one JSONL line).
	SweepRecord = sweep.Record
	// SweepSummary aggregates one (arch, policy, threads) cell group.
	SweepSummary = sweep.Summary
	// Confidence is the stratified estimate of total task cycles with
	// its 95% confidence interval.
	Confidence = strata.Confidence
	// StratifiedConfig parameterises the two-phase stratified policy
	// (budget, pilot size, banding, confidence level).
	StratifiedConfig = strata.Config
	// Stratified is the two-phase stratified sampling policy, as built
	// by StratifiedPolicy or ParsePolicy("stratified(B)").
	Stratified = strata.Stratified
	// Scenario is a generated workload: a DAG pattern family plus its
	// knobs, named by a "gen:family(knob=value,...)" spec string.
	Scenario = gen.Scenario
	// ScenarioFamily is one DAG pattern family of the generator
	// (fork-join, pipeline, wavefront, divide-and-conquer, reduction
	// tree, irregular random graphs, deep chains).
	ScenarioFamily = gen.Family
	// ScenarioKnobs are the generator's orthogonal scenario parameters
	// (task count, width/depth, size distribution, variability, phases,
	// input dependence).
	ScenarioKnobs = gen.Knobs
	// CorpusSpec declares a generated accuracy-stress campaign: N
	// scenarios drawn across the family × knob grid, run under every
	// listed policy against the detailed reference.
	CorpusSpec = corpus.Spec
	// CorpusPolicySummary aggregates one policy over a corpus (mean and
	// worst-case error, speedup, CI coverage rate).
	CorpusPolicySummary = corpus.PolicySummary
	// Request declares one experiment cell for the unified engine: a
	// workload (Table I name or "gen:" scenario spec) on one architecture
	// at one thread count under one sampling policy. Zero-valued optional
	// fields select documented defaults.
	Request = engine.Request
	// Report is the outcome of one experiment cell: the sampled run, its
	// cached detailed reference, the derived accuracy and speedup
	// metrics, the sampler's statistics and — for confidence-reporting
	// policies — the stratified interval.
	Report = engine.Report
	// Engine is the unified, context-aware experiment engine behind the
	// evaluation Runner, the sweep engine and the corpus harness. Build
	// one with NewEngine and drive it with Run or RunAll.
	Engine = engine.Engine
	// EngineOption configures NewEngine (WithWorkers, WithBaselineCache,
	// WithProgress).
	EngineOption = engine.Option
	// BaselineCache caches generated programs and detailed reference
	// results across cells and engines.
	BaselineCache = engine.BaselineCache
	// CacheStats is a point-in-time view of a baseline cache's
	// hit/miss/eviction behaviour.
	CacheStats = engine.CacheStats
	// Recorder is the observability flight recorder: a bounded,
	// torn-tail-safe JSONL trace of the real execution (cell lifecycle,
	// cache outcomes, sampler decisions). A nil *Recorder is a valid
	// no-op — the free disabled path.
	Recorder = obs.Recorder
	// MetricsSnapshot is a point-in-time JSON form of the process-wide
	// metrics registry (counters, gauges, histograms).
	MetricsSnapshot = obs.Snapshot
	// TimelineSpan is one interval on a simulated timeline, in cycles.
	TimelineSpan = obs.TimelineSpan
	// TimelineProcess names a timeline process track and its threads.
	TimelineProcess = obs.Process
	// Span is a live interval in a flight-recorder trace: StartSpan on a
	// Recorder (or on a parent Span) emits a span.begin line, End the
	// matching span.end. The zero Span is a valid no-op, so span-
	// instrumented code needs no nil checks when tracing is disabled.
	Span = obs.Span
	// SlowProfiler watches in-flight experiment cells and captures a CPU
	// profile of any cell that runs longer than a threshold. Built by
	// NewSlowProfiler, attached with WithSlowProfiler.
	SlowProfiler = obs.SlowProfiler
	// CampaignTrace is a parsed flight-recorder trace: the span tree plus
	// the raw events, as rebuilt by ReadSpans from the JSONL a Recorder
	// wrote. Interrupted traces parse too (Clean=false, open spans pinned
	// to the last observed timestamp).
	CampaignTrace = query.Trace
	// ObsqReport is the campaign cost report cmd/obsq prints: wall-clock
	// attribution by phase/cell/stratum, the critical path through the
	// worker pool, baseline-cache economics and straggler cells. Derived
	// purely from trace content, so the same trace always yields the
	// byte-identical report.
	ObsqReport = query.Report
	// Store is the content-addressed persistent result store behind the
	// campaign service (cmd/taskpointd): detailed baseline results and
	// finished cell reports keyed by the SHA-256 of their request's
	// canonical form. DiskStore is the local implementation; the
	// interface is the seam for a remote backend.
	Store = store.Store
	// DiskStore is the local sharded store (<root>/ab/cdef..., atomic
	// rename writes, checksum-verified reads that quarantine corrupt
	// entries). Open one with OpenStore.
	DiskStore = store.DiskStore
	// StoreStats is a point-in-time view of one DiskStore's traffic
	// (hits, misses, writes, quarantined entries).
	StoreStats = store.Stats
	// BaselineTier is the persistence seam under a BaselineCache: a
	// read-through/write-behind layer detailed references survive in
	// across processes. DiskStore.Tier() adapts a store into one;
	// install it with BaselineCache.SetTier.
	BaselineTier = engine.BaselineTier
	// StoreBreaker is a circuit breaker over a Store: after consecutive
	// backend failures it opens and answers ErrStoreUnavailable without
	// touching the backend, probing again after a jittered exponential
	// backoff. Callers treat its errors as misses, so a sick store
	// degrades campaigns to compute-only instead of failing them. Build
	// one with NewStoreBreaker.
	StoreBreaker = store.Breaker
	// StoreBreakerOption configures NewStoreBreaker (failure threshold,
	// backoff bounds, clock and jitter seed for tests).
	StoreBreakerOption = store.BreakerOption
	// FaultSpec declares a deterministic fault-injection campaign:
	// per-seam probabilities (store errors, torn writes, partial reads,
	// HTTP faults, cell errors/panics), injected latency, and armed
	// crash points, all derived from one seed. Parse one from its
	// "seed=7,store.err=0.2,..." string form with ParseFaultSpec.
	FaultSpec = fault.Spec
	// FaultInjector evaluates a FaultSpec deterministically per site: the
	// same seed and call sequence injects the same faults. A nil
	// *FaultInjector is a valid no-op — the free disabled path every
	// production build takes.
	FaultInjector = fault.Injector
)

// Detailed returns the decision that simulates an instance cycle-level.
func Detailed() Decision { return sim.Detailed() }

// Fast returns the decision that fast-forwards an instance at ipc.
func Fast(ipc float64) Decision { return sim.Fast(ipc) }

// Memory access patterns for custom workloads.
const (
	// PatStride walks a footprint with a fixed stride.
	PatStride = trace.PatStride
	// PatRandom draws uniform addresses from the footprint.
	PatRandom = trace.PatRandom
	// PatGaussian clusters accesses around a hot spot.
	PatGaussian = trace.PatGaussian
	// PatChase serialises loads (pointer chasing).
	PatChase = trace.PatChase
)

// HighPerf returns the paper's high-performance architecture (Table II)
// with the given thread count.
func HighPerf(threads int) Config { return sim.HighPerfConfig(threads) }

// LowPower returns the paper's low-power architecture (Table II).
func LowPower(threads int) Config { return sim.LowPowerConfig(threads) }

// DefaultParams returns the paper's selected parameters: W=2, H=4.
func DefaultParams() Params { return core.DefaultParams() }

// LazyPolicy returns lazy sampling (P = infinity): resampling only on
// unknown task types and parallelism changes.
func LazyPolicy() Policy { return core.Lazy{} }

// PeriodicPolicy returns periodic sampling with period p: the simulation is
// resampled whenever a thread retires p instances in fast-forward mode.
func PeriodicPolicy(p int) Policy { return core.Periodic{P: p} }

// StratifiedPolicy returns two-phase stratified sampling with a detailed
// budget of b task instances: a pilot phase measures every stratum
// (task type × size class × concurrency band), the remaining budget is
// Neyman-allocated by stratum variance, and the run reports a confidence
// interval. The policy is stateful: pass a fresh (or finished) value per
// run. It panics on b < 1.
//
// Deprecated: use NewStratifiedPolicy, which reports invalid budgets as
// an error instead of panicking (mirroring ParsePolicy's error path).
func StratifiedPolicy(b int) Policy { return strata.MustNew(strata.DefaultConfig(b)) }

// NewStratifiedPolicy is StratifiedPolicy with validation: it rejects
// budgets below one task instance with an error, the same failure mode as
// ParsePolicy("stratified(B)").
func NewStratifiedPolicy(b int) (Policy, error) {
	pol, err := strata.New(strata.DefaultConfig(b))
	if err != nil {
		return nil, err
	}
	return pol, nil
}

// ParsePolicy builds a policy from its textual name — "lazy",
// "periodic(250)", "stratified(400)" or the flag-friendly colon forms —
// the inverse of Policy.Name.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// Benchmarks returns the names of the 19 Table I benchmarks in paper order.
func Benchmarks() []string { return bench.Names() }

// ErrUnknownName marks benchmark/scenario lookup failures caused by an
// unknown name (as opposed to malformed arguments of a known one) — the
// error class a "valid names" listing fixes. Test with errors.Is.
var ErrUnknownName = bench.ErrUnknownName

// ErrUnknownArch marks architecture lookup failures caused by a name that
// matches no machine configuration — the error class a "valid
// architectures" listing fixes, parallel to ErrUnknownName. Test with
// errors.Is.
var ErrUnknownArch = arch.ErrUnknown

// Arches returns the canonical architecture names in paper order
// (high-performance, low-power, native); Request.Arch also accepts the
// short forms "hp" and "lp".
func Arches() []string { return arch.Names() }

// ArchListing returns the human-readable "valid architectures" block
// front ends print under an ErrUnknownArch failure.
func ArchListing() string { return arch.Listing() }

// Benchmark generates one of the paper's benchmarks at the given scale
// (1.0 reproduces Table I instance counts) with a deterministic seed.
// It panics on an unknown name or invalid scale; use LookupBenchmark for
// error handling.
func Benchmark(name string, scale float64, seed uint64) *Program {
	spec, err := bench.ByName(name)
	if err != nil {
		panic(err)
	}
	return spec.MustBuild(scale, seed)
}

// LookupBenchmark generates a benchmark, reporting errors instead of
// panicking.
func LookupBenchmark(name string, scale float64, seed uint64) (*Program, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Build(scale, seed)
}

// SimulateDetailed runs prog through the cycle-level detailed mode on cfg —
// the reference against which sampling error is measured.
func SimulateDetailed(cfg Config, prog *Program) (*Result, error) {
	return sim.Simulate(cfg, prog, sim.DetailedController{})
}

// SimulateSampled runs prog under TaskPoint with the given parameters and
// resampling policy, returning the result and the sampler's statistics.
func SimulateSampled(cfg Config, prog *Program, params Params, policy Policy) (*Result, SamplerStats, error) {
	sampler, err := core.New(params, policy)
	if err != nil {
		return nil, SamplerStats{}, err
	}
	res, err := sim.Simulate(cfg, prog, sampler)
	if err != nil {
		return nil, SamplerStats{}, err
	}
	return res, sampler.Stats(), nil
}

// SimulateStratified runs prog under two-phase stratified sampling with a
// detailed budget of b task instances and returns, besides the result and
// sampler statistics, the stratified estimate of the program's total task
// cycles with its 95% confidence interval. Size-class histories are
// implied, and stratum populations are prescanned from prog so the budget
// allocation uses exact sizes. Compare Confidence against
// Result.TotalTaskCycles() of a detailed reference to check coverage.
func SimulateStratified(cfg Config, prog *Program, params Params, b int) (*Result, SamplerStats, Confidence, error) {
	pol, err := strata.New(strata.DefaultConfig(b))
	if err != nil {
		return nil, SamplerStats{}, Confidence{}, err
	}
	return SimulateStratifiedWith(cfg, prog, params, pol)
}

// SimulateStratifiedWith is SimulateStratified for an existing stratified
// policy value — e.g. one parsed from "stratified(B)" — preserving its
// configuration (budget, pilot size, banding, confidence level).
func SimulateStratifiedWith(cfg Config, prog *Program, params Params, pol *Stratified) (*Result, SamplerStats, Confidence, error) {
	pol.Prescan(prog)
	params.SizeClasses = true
	sampler, err := core.New(params, pol)
	if err != nil {
		return nil, SamplerStats{}, Confidence{}, err
	}
	res, err := sim.Simulate(cfg, prog, sampler)
	if err != nil {
		return nil, SamplerStats{}, Confidence{}, err
	}
	return res, sampler.Stats(), pol.Confidence(), nil
}

// SimulateWith runs prog under a custom Controller, for users implementing
// their own sampling policies on top of the simulator.
func SimulateWith(cfg Config, prog *Program, ctrl Controller) (*Result, error) {
	return sim.Simulate(cfg, prog, ctrl)
}

// ErrorPct returns the execution-time error of a sampled run against its
// detailed reference, in percent — the paper's accuracy metric.
func ErrorPct(sampled, detailed *Result) float64 {
	return stats.AbsPctError(sampled.Cycles, detailed.Cycles)
}

// NewEngine builds a unified experiment engine. Defaults: one worker slot
// per CPU, a private baseline cache, no progress observer. Every other
// driver of the repository — NewRunner, NewSweep, RunCorpus and the
// command front ends — is a thin adapter over an Engine, so pooling,
// baseline caching and cell identity behave identically everywhere.
//
//	eng := taskpoint.NewEngine(taskpoint.WithWorkers(4))
//	rep, err := eng.Run(ctx, taskpoint.Request{Workload: "cholesky", Threads: 8})
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithWorkers bounds an engine's concurrently running simulations
// (minimum 1).
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithBaselineCache shares a baseline cache across engines, so detailed
// references computed by one campaign are reused by the next.
func WithBaselineCache(c *BaselineCache) EngineOption { return engine.WithBaselineCache(c) }

// WithProgress installs a completion observer invoked once per
// successfully completed RunAll request, in deterministic request order.
func WithProgress(fn func(done, total int, rep Report)) EngineOption {
	return engine.WithProgress(fn)
}

// WithRecorder attaches a flight recorder to an engine: cell lifecycle,
// baseline-cache outcomes and sampler phase transitions are traced as
// JSONL events. A nil recorder (the default) costs nothing.
func WithRecorder(r *Recorder) EngineOption { return engine.WithRecorder(r) }

// NewBaselineCache returns an empty baseline cache for WithBaselineCache.
func NewBaselineCache() *BaselineCache { return engine.NewBaselineCache() }

// OpenStore opens (creating if needed) a content-addressed result store
// rooted at dir. Wire it under an engine's baseline cache to persist
// detailed references across processes:
//
//	st, _ := taskpoint.OpenStore("taskpoint-store")
//	cache := taskpoint.NewBaselineCache()
//	cache.SetTier(st.Tier())
//	eng := taskpoint.NewEngine(taskpoint.WithBaselineCache(cache))
func OpenStore(dir string) (*DiskStore, error) { return store.Open(dir) }

// ErrStoreNotFound reports a store lookup of an address with no valid
// entry; quarantined (corrupt) entries report it too. Test with
// errors.Is.
var ErrStoreNotFound = store.ErrNotFound

// NewStoreBreaker wraps a store in a circuit breaker. With default
// options it opens after 5 consecutive failures and probes again after a
// jittered exponential backoff (0.5s base doubling to 30s); tune with
// StoreBreakerOption values (store.WithThreshold, store.WithBackoff).
// Lookup misses (ErrStoreNotFound) are healthy outcomes and never trip
// it. Trips and recoveries are visible in Metrics as store.degraded,
// store.retry and store.unavailable.
func NewStoreBreaker(inner Store, opts ...StoreBreakerOption) *StoreBreaker {
	return store.NewBreaker(inner, opts...)
}

// ErrStoreUnavailable reports a store operation short-circuited by an
// open circuit breaker: the backend is degraded and was not called.
// Treat it as a miss. Test with errors.Is.
var ErrStoreUnavailable = store.ErrUnavailable

// ParseFaultSpec parses the textual fault-injection spec grammar shared
// by the TASKPOINT_FAULTS environment variable and taskpointd's -faults
// flag, e.g. "seed=7,store.err=0.2,store.latency=5ms,crash=server.outcome".
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.Parse(s) }

// NewFaultInjector builds a deterministic injector for a spec. An inert
// spec (all probabilities zero, no crash points) yields nil — the no-op
// injector.
func NewFaultInjector(spec FaultSpec) *FaultInjector { return fault.NewInjector(spec) }

// WrapStoreFaults applies an injector's store faults (operation errors,
// latency, partial reads) to a store; torn-write injection additionally
// needs disk access and is only active when wrapping a *DiskStore via
// fault.WrapDisk. A nil or store-quiet injector returns inner unchanged.
func WrapStoreFaults(inner Store, inj *FaultInjector) Store { return fault.WrapStore(inner, inj) }

// ErrInjectedFault marks every failure produced by a FaultInjector, so
// tests and chaos harnesses can tell injected faults from real ones.
// Test with errors.Is.
var ErrInjectedFault = fault.ErrInjected

// ContentAddress returns the content address of an experiment cell: the
// SHA-256 (hex) of the canonical serialization of the request's
// normalized form. Every accepted spelling of one cell yields the same
// address; any semantic difference yields a different one. It is the key
// finished cell reports are stored under and the cross-campaign
// deduplication identity of the campaign server.
func ContentAddress(req Request) (string, error) { return store.ContentAddress(req) }

// BaselineAddress returns the content address of the request's detailed
// reference simulation: only workload, architecture, threads, scale and
// seed enter the hash, so every policy sweeping one cell shares its
// baseline entry.
func BaselineAddress(req Request) (string, error) { return store.BaselineAddress(req) }

// OpenRecorder opens (or creates) a flight-recorder trace file for
// appending, truncating a torn trailing line left by an interrupted run
// first. Close the recorder to flush the final "trace.end" event and
// release the file.
func OpenRecorder(path string) (*Recorder, error) { return obs.Open(path) }

// NewRecorder wraps an arbitrary writer in a flight recorder (the caller
// keeps ownership of the writer).
func NewRecorder(w io.Writer) *Recorder { return obs.NewRecorder(w) }

// NewSlowProfiler builds a profiler that captures a CPU profile
// (slow-NNN-<cell>.pprof under dir) of any experiment cell running longer
// than threshold. A nil *SlowProfiler is a valid no-op, so the return
// value can be attached unconditionally. Close it to stop the watchdog
// and finish any in-flight capture.
func NewSlowProfiler(threshold time.Duration, dir string) *SlowProfiler {
	return obs.NewSlowProfiler(threshold, dir)
}

// WithSlowProfiler makes the engine capture CPU profiles of slow cells.
// A nil profiler (the default) costs nothing.
func WithSlowProfiler(p *SlowProfiler) EngineOption { return engine.WithSlowProfiler(p) }

// ReadSpans parses a flight-recorder JSONL trace into its span tree.
// The reader sorts events into the recorder's deterministic order, repairs
// a torn final line in memory (never touching the source), and keeps
// spans left open by an interrupted campaign, pinned to the last observed
// timestamp.
func ReadSpans(r io.Reader) (*CampaignTrace, error) { return query.ReadSpans(r) }

// AnalyzeTrace computes the campaign cost report over a parsed trace —
// the same analysis cmd/obsq runs, available in-process.
func AnalyzeTrace(t *CampaignTrace) *ObsqReport { return query.Analyze(t) }

// AnalyzeTraceFile reads and analyzes a flight-recorder trace file,
// including the live trace of a still-running campaign.
func AnalyzeTraceFile(path string) (*ObsqReport, error) { return query.AnalyzeFile(path) }

// Metrics returns a point-in-time snapshot of the process-wide metrics
// registry: engine cell throughput and latency, baseline-cache behaviour,
// stratified-sampler budget spending and interval widths, and simulation
// kernel volume.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// WriteTimeline renders a report's simulated execution — the per-core
// task schedule of the sampled run and its detailed reference — as Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing. Simulated
// cycles map 1:1 to trace microseconds. The sampled run is pid 1, the
// detailed reference pid 2.
func WriteTimeline(w io.Writer, rep Report) error {
	var procs []TimelineProcess
	var spans []TimelineSpan
	if rep.Sampled != nil {
		p := rep.Sampled.TimelineProcess(rep.Program, 1)
		p.Name = "sampled " + p.Name
		procs = append(procs, p)
		spans = append(spans, rep.Sampled.TimelineSpans(rep.Program, 1)...)
	}
	if rep.Detailed != nil {
		p := rep.Detailed.TimelineProcess(rep.Program, 2)
		p.Name = "detailed " + p.Name
		procs = append(procs, p)
		spans = append(spans, rep.Detailed.TimelineSpans(rep.Program, 2)...)
	}
	return obs.WriteTimeline(w, procs, spans)
}

// NewRunner builds an evaluation runner at the given benchmark scale with
// the given worker parallelism; it caches detailed baselines across
// experiments. Seed drives workload generation and the noise model.
// Runner.WithContext binds a cancellation context to every simulation the
// runner starts.
func NewRunner(scale float64, seed uint64, workers int) *Runner {
	return results.NewRunner(scale, seed, workers)
}

// NewSweep validates a campaign spec and builds its sweep engine with the
// given worker parallelism. See cmd/sweep for the command-line front end.
func NewSweep(spec SweepSpec, workers int) (*SweepEngine, error) {
	return sweep.New(spec, workers)
}

// DefaultSweepSpec returns a small representative campaign: four
// benchmark classes × both Table II architectures × two thread counts ×
// both §V-C resampling policies.
func DefaultSweepSpec() SweepSpec { return sweep.DefaultSpec() }

// LoadSweep reads the JSONL stream of a previous campaign, keyed by cell,
// for resuming an interrupted sweep via SweepEngine.Run.
func LoadSweep(r io.Reader) (map[string]SweepRecord, error) {
	return sweep.LoadCompleted(r)
}

// SummarizeSweep folds campaign records into per-(arch, policy, threads)
// aggregates mirroring the averages of the paper's Figures 7-10.
func SummarizeSweep(recs []SweepRecord) []SweepSummary { return sweep.Summarize(recs) }

// RenderSweepSummary renders campaign aggregates as an aligned text table.
func RenderSweepSummary(title string, sums []SweepSummary) string {
	return sweep.RenderSummary(title, sums)
}

// WriteSweepCSV exports campaign records as CSV for post-processing.
func WriteSweepCSV(w io.Writer, recs []SweepRecord) error {
	return sweep.WriteCSV(w, recs)
}

// ScenarioFamilies returns the generator's DAG pattern families in fixed
// order. Their names combine with knobs into "gen:family(knob=value,...)"
// specs accepted everywhere a benchmark name is.
func ScenarioFamilies() []*ScenarioFamily { return gen.Families() }

// ParseScenario builds a generated-workload scenario from its strict
// "gen:family(knob=value,...)" spec string, the inverse of Scenario.Spec.
func ParseScenario(spec string) (*Scenario, error) { return gen.Parse(spec) }

// DefaultCorpus returns a generated accuracy-stress campaign of n
// scenarios at the default grid: all pattern families, the
// high-performance architecture at 4 threads, lazy/periodic/stratified
// policies, master seed 42.
func DefaultCorpus(n int) CorpusSpec { return corpus.DefaultSpec(n) }

// RunCorpus executes a corpus campaign across workers goroutines,
// streaming JSONL records to out (nil discards) and skipping cells
// already in completed (resume). See cmd/corpus for the command-line
// front end.
func RunCorpus(spec CorpusSpec, workers int, out io.Writer, completed map[string]SweepRecord,
	onRecord func(done, total int, rec SweepRecord)) ([]SweepRecord, error) {
	return corpus.Run(spec, workers, out, completed, onRecord)
}

// RunCorpusContext is RunCorpus with cooperative cancellation: in-flight
// simulations stop promptly when ctx is cancelled and the remaining cells
// fail with ctx's error.
func RunCorpusContext(ctx context.Context, spec CorpusSpec, workers int, out io.Writer,
	completed map[string]SweepRecord, onRecord func(done, total int, rec SweepRecord)) ([]SweepRecord, error) {
	return corpus.RunContext(ctx, spec, workers, out, completed, onRecord)
}

// SummarizeCorpus folds corpus records into per-policy summaries: mean
// and worst-case error, speedup, and CI coverage rate.
func SummarizeCorpus(recs []SweepRecord) []CorpusPolicySummary { return corpus.Summarize(recs) }

// RenderCorpusSummary renders per-policy corpus summaries as an aligned
// text table.
func RenderCorpusSummary(title string, sums []CorpusPolicySummary) string {
	return corpus.RenderSummary(title, sums)
}
