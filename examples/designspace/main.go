// Design-space exploration: the paper's recommended use of lazy sampling
// (§V-C — "we advocate the use of lazy sampling for evaluations requiring a
// large number of simulations, e.g. during the early phase of design space
// exploration").
//
// This example sweeps core counts on both Table II architectures for one
// workload and reports how the workload scales — dozens of simulations that
// would be impractical in full detail, completed with sampled runs, with
// one detailed run kept as a spot check.
package main

import (
	"fmt"
	"log"

	"taskpoint"
)

func main() {
	const workload = "vector-operation" // memory bound: scaling saturates

	fmt.Printf("design-space exploration of %q with lazy sampling\n\n", workload)
	fmt.Printf("%-18s %8s %14s %10s %9s\n", "architecture", "threads", "cycles", "scaling", "wall")

	for _, arch := range []struct {
		name string
		cfg  func(int) taskpoint.Config
		max  int
	}{
		{"high-performance", taskpoint.HighPerf, 64},
		{"low-power", taskpoint.LowPower, 8},
	} {
		base := 0.0
		for threads := 1; threads <= arch.max; threads *= 2 {
			prog := taskpoint.Benchmark(workload, 1.0/16, 7)
			res, _, err := taskpoint.SimulateSampled(arch.cfg(threads), prog,
				taskpoint.DefaultParams(), taskpoint.LazyPolicy())
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = res.Cycles
			}
			fmt.Printf("%-18s %8d %14.0f %9.2fx %9v\n",
				arch.name, threads, res.Cycles, base/res.Cycles, res.Wall.Round(1e6))
		}
		fmt.Println()
	}

	// Spot check one configuration against full detail, as the paper
	// recommends before narrowing the design space.
	prog := taskpoint.Benchmark(workload, 1.0/16, 7)
	cfg := taskpoint.HighPerf(8)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	prog2 := taskpoint.Benchmark(workload, 1.0/16, 7)
	samp, _, err := taskpoint.SimulateSampled(cfg, prog2,
		taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check @ high-performance, 8 threads: sampled vs detailed error %.2f%% (%.0fx wall speedup)\n",
		taskpoint.ErrorPct(samp, det), float64(det.Wall)/float64(samp.Wall))
}
