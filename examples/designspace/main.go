// Design-space exploration on the sweep engine: the paper's recommended
// use of lazy sampling (§V-C — "we advocate the use of lazy sampling for
// evaluations requiring a large number of simulations, e.g. during the
// early phase of design space exploration").
//
// A declarative campaign sweeps core counts on both Table II architectures
// for one memory-bound workload. The engine shards the cells over a worker
// pool, reuses cached detailed baselines, and reports per-cell error and
// speedup — so the scaling curve comes with its own accuracy spot checks
// instead of a single manual one.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	"taskpoint"
)

func main() {
	const workload = "vector-operation" // memory bound: scaling saturates

	spec := taskpoint.SweepSpec{
		Name:       "designspace",
		Scale:      1.0 / 16,
		Benchmarks: []string{workload},
		Archs:      []string{"hp", "lp"},
		Threads:    []int{1, 2, 4, 8, 16},
		Policies:   []string{"lazy"},
		Seeds:      []uint64{7},
	}
	eng, err := taskpoint.NewSweep(spec, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}

	// The JSONL stream would normally go to a file so the campaign can be
	// interrupted and resumed (see cmd/sweep); a buffer suffices here.
	var stream bytes.Buffer
	recs, err := eng.Run(&stream, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design-space exploration of %q with lazy sampling\n\n", workload)
	fmt.Printf("%-18s %8s %14s %10s %10s %10s\n",
		"architecture", "threads", "cycles", "scaling", "err", "x-detail")
	base := map[string]float64{}
	for _, r := range recs {
		if base[r.Arch] == 0 {
			base[r.Arch] = r.SampledCycles
		}
		fmt.Printf("%-18s %8d %14.0f %9.2fx %9.2f%% %9.1fx\n",
			r.Arch, r.Threads, r.SampledCycles, base[r.Arch]/r.SampledCycles,
			r.ErrPct, r.SpeedupDetail)
	}

	fmt.Println()
	fmt.Print(taskpoint.RenderSweepSummary(
		"per-architecture averages (every cell spot-checked against full detail)",
		taskpoint.SummarizeSweep(recs)))
	fmt.Printf("\n%d cells streamed as %d JSONL bytes — ready for resume or CSV export\n",
		len(recs), stream.Len())
}
