// Custom workload: build your own task-based program against the public
// trace model and simulate it under TaskPoint — the path a user takes to
// study an application the Table I suite does not cover.
//
// The workload is a two-stage pipeline: "decode" tasks (one per frame,
// independent) feed "analyze" tasks (one per frame, depending on the
// decoded frame and on the previous analysis — a serial carry).
package main

import (
	"fmt"
	"log"

	"taskpoint"
)

func main() {
	const frames = 512

	prog := &taskpoint.Program{
		Name: "decode-analyze-pipeline",
		Types: []taskpoint.TypeInfo{
			{Name: "decode"},
			{Name: "analyze"},
		},
	}

	for f := 0; f < frames; f++ {
		// decode(f): streaming over a private frame buffer.
		decodeTok := uint64(1000 + f)
		prog.Instances = append(prog.Instances, taskpoint.Instance{
			ID: int32(len(prog.Instances)), Type: 0, Seed: uint64(f + 1),
			Segments: []taskpoint.Segment{{
				N: 3000, MemRatio: 0.15, StoreFrac: 0.4,
				Pat: taskpoint.PatStride, Base: uint64(1)<<32 + uint64(f)<<20,
				Footprint: 64 << 10, Stride: 8, DepDist: 6, FPFrac: 0.1,
			}},
			Out: []uint64{decodeTok},
		})
		// analyze(f): reads decode(f) and carries state from analyze(f-1).
		in := []uint64{decodeTok}
		if f > 0 {
			in = append(in, uint64(2000+f-1))
		}
		prog.Instances = append(prog.Instances, taskpoint.Instance{
			ID: int32(len(prog.Instances)), Type: 1, Seed: uint64(f + 7919),
			Segments: []taskpoint.Segment{{
				N: 1500, MemRatio: 0.1, StoreFrac: 0.2,
				Pat: taskpoint.PatGaussian, Base: uint64(1)<<33 + uint64(f)<<20,
				Footprint: 32 << 10, DepDist: 3, FPFrac: 0.5,
			}},
			In:  in,
			Out: []uint64{uint64(2000 + f)},
		})
	}
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := taskpoint.HighPerf(4)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	samp, st, err := taskpoint.SimulateSampled(cfg, prog,
		taskpoint.DefaultParams(), taskpoint.PeriodicPolicy(100))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d tasks on %d threads\n", prog.Name, prog.NumTasks(), cfg.Cores)
	fmt.Printf("detailed %0.f cycles, sampled %0.f cycles -> error %.2f%%\n",
		det.Cycles, samp.Cycles, taskpoint.ErrorPct(samp, det))
	fmt.Printf("periodic(100): %d detailed, %d fast, %d resamples, wall speedup %.1fx\n",
		st.DetailedStarted, st.FastStarted, st.Resamples,
		float64(det.Wall)/float64(samp.Wall))
}
