// Quickstart: simulate one benchmark in detail, then with TaskPoint lazy
// sampling, and compare accuracy and speedup — the smallest end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"taskpoint"
)

func main() {
	// A scaled-down blocked Cholesky factorisation: 4 task types
	// (potrf/trsm/syrk/gemm) with real dataflow dependencies.
	prog := taskpoint.Benchmark("cholesky", 1.0/16, 42)
	cfg := taskpoint.HighPerf(8)

	fmt.Printf("%s: %d task types, %d task instances, %.1fM instructions, %d simulated threads\n",
		prog.Name, prog.NumTypes(), prog.NumTasks(),
		float64(prog.TotalInstructions())/1e6, cfg.Cores)

	// Reference: every task instance simulated cycle by cycle.
	detailed, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detailed:  %12.0f cycles  (%v wall)\n", detailed.Cycles, detailed.Wall.Round(1e6))

	// TaskPoint: warm up W=2 instances per thread, keep H=4 IPC samples
	// per task type, fast-forward everything else.
	sampled, st, err := taskpoint.SimulateSampled(cfg, prog,
		taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled:   %12.0f cycles  (%v wall)\n", sampled.Cycles, sampled.Wall.Round(1e6))

	fmt.Printf("\nerror      %.2f%%\n", taskpoint.ErrorPct(sampled, detailed))
	fmt.Printf("speedup    %.1fx wall clock\n", float64(detailed.Wall)/float64(sampled.Wall))
	fmt.Printf("detail     %.1f%% of instructions simulated cycle-level\n", 100*sampled.DetailFraction())
	fmt.Printf("sampling   %d instances detailed, %d fast-forwarded, %d resamples\n",
		st.DetailedStarted, st.FastStarted, st.Resamples)
}
