package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the fixed column layout of WriteCSV, one column per Record
// field in declaration order with sampler statistics flattened and the
// confidence-interval columns of stratified cells at the end (empty-ish
// zeros for other policies).
var csvHeader = []string{
	"key", "bench", "arch", "threads", "policy", "seed",
	"scale", "w", "h",
	"err_pct", "speedup_wall", "speedup_detail", "detail_fraction",
	"sampled_cycles", "detailed_cycles", "sampled_wall_ms", "detailed_wall_ms",
	"detailed_started", "fast_started", "valid_samples", "transitions",
	"resamples", "resamples_periodic", "resamples_new_type", "resamples_parallelism",
	"directed_started",
	"est_total_cycles", "ci_lo", "ci_hi", "ci_rel_width", "ci_strata",
	"ci_sampled", "detailed_task_cycles", "ci_covered",
}

// WriteCSV exports records as CSV with a fixed header, the post-processing
// path for campaigns (spreadsheets, pandas, gnuplot).
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range recs {
		row := []string{
			r.Key, r.Bench, r.Arch, strconv.Itoa(r.Threads), r.Policy,
			strconv.FormatUint(r.Seed, 10),
			f(r.Scale), strconv.Itoa(r.W), strconv.Itoa(r.H),
			f(r.ErrPct), f(r.SpeedupWall), f(r.SpeedupDetail), f(r.DetailFraction),
			f(r.SampledCycles), f(r.DetailedCycles), f(r.SampledWallMS), f(r.DetailedWallMS),
			strconv.Itoa(r.Sampler.DetailedStarted), strconv.Itoa(r.Sampler.FastStarted),
			strconv.Itoa(r.Sampler.ValidSamples), strconv.Itoa(r.Sampler.Transitions),
			strconv.Itoa(r.Sampler.Resamples), strconv.Itoa(r.Sampler.ResamplesPeriodic),
			strconv.Itoa(r.Sampler.ResamplesNewType), strconv.Itoa(r.Sampler.ResamplesParallelism),
			strconv.Itoa(r.Sampler.DirectedStarted),
			f(r.EstTotalCycles), f(r.CILo), f(r.CIHi), f(r.CIRelWidth),
			strconv.Itoa(r.CIStrata), strconv.Itoa(r.CISampled),
			f(r.DetailedTaskCycles), strconv.FormatBool(r.CICovered),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: writing csv: %w", err)
	}
	return nil
}
