package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the fixed column layout of WriteCSV, one column per Record
// field in declaration order with sampler statistics flattened.
var csvHeader = []string{
	"key", "bench", "arch", "threads", "policy", "seed",
	"scale", "w", "h",
	"err_pct", "speedup_wall", "speedup_detail", "detail_fraction",
	"sampled_cycles", "detailed_cycles", "sampled_wall_ms", "detailed_wall_ms",
	"detailed_started", "fast_started", "valid_samples", "transitions",
	"resamples", "resamples_periodic", "resamples_new_type", "resamples_parallelism",
}

// WriteCSV exports records as CSV with a fixed header, the post-processing
// path for campaigns (spreadsheets, pandas, gnuplot).
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range recs {
		row := []string{
			r.Key, r.Bench, r.Arch, strconv.Itoa(r.Threads), r.Policy,
			strconv.FormatUint(r.Seed, 10),
			f(r.Scale), strconv.Itoa(r.W), strconv.Itoa(r.H),
			f(r.ErrPct), f(r.SpeedupWall), f(r.SpeedupDetail), f(r.DetailFraction),
			f(r.SampledCycles), f(r.DetailedCycles), f(r.SampledWallMS), f(r.DetailedWallMS),
			strconv.Itoa(r.Sampler.DetailedStarted), strconv.Itoa(r.Sampler.FastStarted),
			strconv.Itoa(r.Sampler.ValidSamples), strconv.Itoa(r.Sampler.Transitions),
			strconv.Itoa(r.Sampler.Resamples), strconv.Itoa(r.Sampler.ResamplesPeriodic),
			strconv.Itoa(r.Sampler.ResamplesNewType), strconv.Itoa(r.Sampler.ResamplesParallelism),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: writing csv: %w", err)
	}
	return nil
}
