package sweep

import (
	"encoding/csv"
	"strings"
	"testing"

	"taskpoint/internal/core"
)

func sampleRecords() []Record {
	return []Record{
		{
			Key: "cholesky|high-performance|8|lazy|42", Bench: "cholesky",
			Arch: "high-performance", Threads: 8, Policy: "lazy", Seed: 42,
			Scale: 0.125, W: 2, H: 4,
			ErrPct: 1.25, SpeedupWall: 3.5, SpeedupDetail: 4.25, DetailFraction: 0.25,
			SampledCycles: 1e6, DetailedCycles: 1.0125e6,
			SampledWallMS: 12.5, DetailedWallMS: 44.5,
			Sampler: core.Stats{DetailedStarted: 100, FastStarted: 900, ValidSamples: 64,
				Transitions: 3, Resamples: 2, ResamplesPeriodic: 1, ResamplesNewType: 1,
				DirectedStarted: 7},
		},
		{
			Key: "dedup|low-power|4|stratified(200)|7", Bench: "dedup",
			Arch: "low-power", Threads: 4, Policy: "stratified(200)", Seed: 7,
			Scale: 0.03125, W: 2, H: 4,
			ErrPct: 0.5, SpeedupWall: 2, SpeedupDetail: 3, DetailFraction: 0.33,
			EstTotalCycles: 5.5e6, CILo: 5.2e6, CIHi: 5.8e6, CIRelWidth: 0.109,
			CIStrata: 13, CISampled: 180, DetailedTaskCycles: 5.6e6, CICovered: true,
		},
	}
}

func TestWriteCSVShape(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2 records", len(rows))
	}
	if len(rows[0]) != len(csvHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			t.Errorf("record %d has %d columns, want %d", i, len(row), len(csvHeader))
		}
	}
}

// col returns the named column of a parsed row.
func col(t *testing.T, row []string, name string) string {
	t.Helper()
	for i, h := range csvHeader {
		if h == name {
			return row[i]
		}
	}
	t.Fatalf("no column %q in header", name)
	return ""
}

func TestWriteCSVConfidenceColumns(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	lazy, strat := rows[1], rows[2]
	if got := col(t, strat, "est_total_cycles"); got != "5500000" {
		t.Errorf("est_total_cycles = %q", got)
	}
	if got := col(t, strat, "ci_lo"); got != "5200000" {
		t.Errorf("ci_lo = %q", got)
	}
	if got := col(t, strat, "ci_covered"); got != "true" {
		t.Errorf("ci_covered = %q", got)
	}
	if got := col(t, strat, "ci_strata"); got != "13" {
		t.Errorf("ci_strata = %q", got)
	}
	// Non-stratified records carry zero-valued CI columns, not garbage.
	if got := col(t, lazy, "ci_covered"); got != "false" {
		t.Errorf("lazy ci_covered = %q", got)
	}
	if got := col(t, lazy, "ci_strata"); got != "0" {
		t.Errorf("lazy ci_strata = %q", got)
	}
	if got := col(t, lazy, "directed_started"); got != "7" {
		t.Errorf("directed_started = %q", got)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	rec := sampleRecords()[0]
	rec.Bench = `odd,"bench` + "\nname"
	rec.Key = rec.Bench + "|hp|1|lazy|1"
	var b strings.Builder
	if err := WriteCSV(&b, []Record{rec}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("quoted output is not valid CSV: %v", err)
	}
	if got := col(t, rows[1], "bench"); got != rec.Bench {
		t.Errorf("bench round-tripped as %q, want %q", got, rec.Bench)
	}
}

func TestCSVHeaderMatchesRecordLayout(t *testing.T) {
	// The header must stay unique and keep the resume identity first.
	seen := map[string]bool{}
	for _, h := range csvHeader {
		if seen[h] {
			t.Errorf("duplicate column %q", h)
		}
		seen[h] = true
	}
	if csvHeader[0] != "key" {
		t.Errorf("first column %q, want key", csvHeader[0])
	}
}
