package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taskpoint/internal/obs"
)

// TestTraceSurvivesCancellation: a campaign with a flight recorder that is
// interrupted mid-run leaves a trace with no torn trailing line — every
// line is whole JSON, and DropPartialTail (what the next run's Open
// performs) finds nothing to repair. This is the -trace half of the
// resumable-JSONL contract the record stream already honours.
func TestTraceSurvivesCancellation(t *testing.T) {
	spec := Spec{
		Name:       "trace-cancel",
		Scale:      1.0 / 64,
		Benchmarks: []string{"cholesky", "vector-operation"},
		Archs:      []string{"hp"},
		Threads:    []int{2},
		Policies:   []string{"lazy", "periodic(150)"},
		Seeds:      []uint64{7},
	}
	eng, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, err := obs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	eng.Recorder = rec

	ctx, cancel := context.WithCancel(context.Background())
	eng.OnRecord = func(done, total int, r Record) {
		cancel() // interrupt after the first completed cell
	}
	if _, err := eng.RunContext(ctx, nil, nil); err == nil {
		t.Fatal("cancelled campaign reported no error")
	}
	// The interrupted process never reaches rec.Close(); the file must
	// still consist only of whole lines because each event is one Write.

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("cancelled campaign emitted no trace events")
	}
	if data[len(data)-1] != '\n' {
		t.Fatalf("trace ends mid-line: %q", data[len(data)-20:])
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("trace line %d is torn: %q", i, l)
		}
	}

	// DropPartialTail must be a no-op: nothing to repair.
	before := len(data)
	if err := DropPartialTail(path); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != before {
		t.Errorf("DropPartialTail truncated a clean trace: %d -> %d bytes", before, len(after))
	}

	// A fresh recorder appends cleanly after the interruption.
	rec2, err := obs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Emit("resumed")
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if !json.Valid([]byte(l)) {
			t.Errorf("line %d after resume is torn: %q", i, l)
		}
	}
}
