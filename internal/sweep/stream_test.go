package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// normalizeStream re-encodes a JSONL record stream with the host
// wall-clock fields zeroed — the only fields of a record that legitimately
// differ between two runs of the same campaign. Everything else,
// including line order, must be byte-identical.
func normalizeStream(t *testing.T, stream []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	for _, line := range strings.Split(strings.TrimSpace(string(stream)), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		rec.SampledWallMS, rec.DetailedWallMS, rec.SpeedupWall = 0, 0, 0
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestRunStreamsIdenticalAcrossWorkerCounts: the JSONL streams of the
// same campaign at workers=1 and workers=8 are byte-identical once the
// host wall-clock fields are zeroed — same cells, same simulated numbers,
// same deterministic order. Run under -race in CI, this also exercises
// the unified engine's worker pool for data races.
func TestRunStreamsIdenticalAcrossWorkerCounts(t *testing.T) {
	spec := Spec{
		Name:       "stream",
		Scale:      1.0 / 64,
		Benchmarks: []string{"cholesky", "vector-operation"},
		Archs:      []string{"hp"},
		Threads:    []int{2, 4},
		Policies:   []string{"lazy", "stratified(100)"},
		Seeds:      []uint64{7},
	}
	stream := func(workers int) []byte {
		eng, err := New(spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Run(&buf, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := normalizeStream(t, stream(1))
	eight := normalizeStream(t, stream(8))
	if !bytes.Equal(one, eight) {
		t.Fatalf("record streams differ between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", one, eight)
	}
}

// TestRunContextCancelled: a cancelled campaign reports the cancellation
// on its unfinished cells and keeps the records that did complete.
func TestRunContextCancelled(t *testing.T) {
	spec := Spec{
		Name:       "cancel",
		Scale:      1.0 / 64,
		Benchmarks: []string{"cholesky", "vector-operation"},
		Archs:      []string{"hp"},
		Threads:    []int{2},
		Policies:   []string{"lazy", "periodic(150)"},
		Seeds:      []uint64{7},
	}
	eng, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var streamed int
	eng.OnRecord = func(done, total int, rec Record) {
		streamed++
		cancel() // stop after the first completed cell
	}
	recs, err := eng.RunContext(ctx, nil, nil)
	if err == nil {
		t.Fatal("cancelled campaign reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error %v does not wrap context.Canceled", err)
	}
	if len(recs) == 0 || len(recs) >= 4 {
		t.Errorf("cancelled campaign returned %d of 4 records", len(recs))
	}
}
