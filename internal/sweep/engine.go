package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/obs"
	"taskpoint/internal/results"
	"taskpoint/internal/stats"
)

// Record is one completed cell, as streamed to the JSONL output. It is the
// durable form of results.SampledRow: flat, self-identifying (Key) and
// stable across interrupted campaigns.
type Record struct {
	// Key is Cell.Key() — the resume identity.
	Key     string `json:"key"`
	Bench   string `json:"bench"`
	Arch    string `json:"arch"`
	Threads int    `json:"threads"`
	Policy  string `json:"policy"`
	Seed    uint64 `json:"seed"`
	// Scale, W and H record the campaign configuration the cell ran
	// under; resume only skips a cell when they match the current spec,
	// so changing the scale or sampling parameters re-runs the space
	// instead of silently reusing stale results.
	Scale float64 `json:"scale"`
	W     int     `json:"w"`
	H     int     `json:"h"`
	// ErrPct is the absolute execution-time error against the detailed
	// reference, in percent — the paper's accuracy metric.
	ErrPct float64 `json:"err_pct"`
	// SpeedupWall is detailed wall time / sampled wall time.
	SpeedupWall float64 `json:"speedup_wall"`
	// SpeedupDetail is total instructions / detailed instructions — the
	// machine-independent speedup proxy.
	SpeedupDetail float64 `json:"speedup_detail"`
	// DetailFraction is the fraction of instructions simulated in detail.
	DetailFraction float64 `json:"detail_fraction"`
	// Simulated execution times of both runs, in cycles.
	SampledCycles  float64 `json:"sampled_cycles"`
	DetailedCycles float64 `json:"detailed_cycles"`
	// Host wall-clock times of both runs, in milliseconds.
	SampledWallMS  float64 `json:"sampled_wall_ms"`
	DetailedWallMS float64 `json:"detailed_wall_ms"`
	// Sampler is the sampling controller's internal statistics.
	Sampler core.Stats `json:"sampler"`
	// Confidence fields, filled for stratified cells only: the
	// estimated total task cycles with its 95% interval, the interval
	// width relative to the estimate, stratum/sample counts, the
	// detailed reference's true total, and whether the interval covers
	// it — the columns a budget-vs-error campaign sweeps.
	EstTotalCycles     float64 `json:"est_total_cycles,omitempty"`
	CILo               float64 `json:"ci_lo,omitempty"`
	CIHi               float64 `json:"ci_hi,omitempty"`
	CIRelWidth         float64 `json:"ci_rel_width,omitempty"`
	CIStrata           int     `json:"ci_strata,omitempty"`
	CISampled          int     `json:"ci_sampled,omitempty"`
	DetailedTaskCycles float64 `json:"detailed_task_cycles,omitempty"`
	CICovered          bool    `json:"ci_covered,omitempty"`
}

// RecordOf flattens a finished engine report into the durable Record form
// for a cell of the given spec — the JSONL row sweeps stream and the
// payload the campaign store persists under a cell's content address.
func RecordOf(cell Cell, spec Spec, rep engine.Report) Record {
	params := spec.Params()
	row := results.RowOf(rep)
	rec := Record{
		Key:            cell.Key(),
		Bench:          cell.Bench,
		Arch:           string(cell.Arch),
		Threads:        cell.Threads,
		Policy:         cell.Policy,
		Seed:           cell.Seed,
		Scale:          spec.Scale,
		W:              params.W,
		H:              params.H,
		ErrPct:         row.ErrPct,
		SpeedupWall:    row.SpeedupWall,
		SpeedupDetail:  row.SpeedupDetail,
		DetailFraction: row.DetailFraction,
		SampledCycles:  row.SampledCycles,
		DetailedCycles: row.DetailedCycles,
		SampledWallMS:  float64(row.SampledWall.Microseconds()) / 1e3,
		DetailedWallMS: float64(row.DetailedWall.Microseconds()) / 1e3,
		Sampler:        row.Sampler,
	}
	if c := row.Confidence; c != nil {
		rec.EstTotalCycles = c.Estimate
		rec.CILo = c.Lo
		rec.CIHi = c.Hi
		rec.CIRelWidth = c.RelWidth()
		rec.CIStrata = c.Strata
		rec.CISampled = c.Sampled
		rec.DetailedTaskCycles = row.DetailedTaskCycles
		rec.CICovered = c.Covers(row.DetailedTaskCycles)
	}
	return rec
}

// Engine executes a sweep as a thin adapter over the unified experiment
// engine (internal/engine): cells become engine requests sharded across
// its worker pool, detailed baselines are cached by the engine's shared
// cache, and records stream back in deterministic cell order regardless
// of worker count.
type Engine struct {
	spec    Spec
	workers int

	// OnRecord, when set, observes every newly completed cell, in
	// deterministic cell order.
	OnRecord func(done, total int, rec Record)

	// Recorder, when set, is threaded into the experiment engine so the
	// flight recorder sees cell lifecycle, cache and sampler events. A nil
	// recorder is the free disabled path.
	Recorder *obs.Recorder

	// SlowProfiler, when set, is threaded into the experiment engine so
	// cells exceeding its threshold get a pprof CPU capture.
	SlowProfiler *obs.SlowProfiler
}

// New validates the spec and builds an engine with the given worker
// parallelism (minimum 1).
func New(spec Spec, workers int) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	return &Engine{spec: spec, workers: workers}, nil
}

// Spec returns the validated campaign specification.
func (e *Engine) Spec() Spec { return e.spec }

// Resumable returns how many cells of the spec are covered by completed
// records (same key and same campaign configuration) and the total cell
// count — what Run will skip and what it spans.
func (e *Engine) Resumable(completed map[string]Record) (skip, total int) {
	cells := e.spec.Cells()
	params := e.spec.Params()
	for _, c := range cells {
		if rec, ok := completed[c.Key()]; ok &&
			rec.Scale == e.spec.Scale && rec.W == params.W && rec.H == params.H {
			skip++
		}
	}
	return skip, len(cells)
}

// Run executes every cell of the spec not already present in completed
// (keyed by Cell.Key), streaming one JSON line per newly completed cell to
// out. It returns all records of the campaign — resumed and new — in
// deterministic cell order. Cells that fail do not abort the rest of the
// campaign; their errors are joined into the returned error.
func (e *Engine) Run(out io.Writer, completed map[string]Record) ([]Record, error) {
	return e.RunContext(context.Background(), out, completed)
}

// RunContext is Run with cooperative cancellation: cells are dispatched
// to the unified experiment engine, whose simulations stop promptly when
// ctx is cancelled; cells not completed by then fail with ctx's error.
// New records stream to out in deterministic cell order whatever the
// worker count, so two campaigns over the same spec produce identical
// streams (modulo the host wall-clock fields).
func (e *Engine) RunContext(ctx context.Context, out io.Writer, completed map[string]Record) ([]Record, error) {
	cells := e.spec.Cells()
	params := e.spec.Params()

	type outcome struct {
		rec Record
		err error
	}
	outcomes := make([]outcome, len(cells))
	pending := make([]int, 0, len(cells))
	reqs := make([]engine.Request, 0, len(cells))
	for i, c := range cells {
		// A completed record only stands in for the cell when it ran
		// under the same campaign configuration.
		if rec, ok := completed[c.Key()]; ok &&
			rec.Scale == e.spec.Scale && rec.W == params.W && rec.H == params.H {
			outcomes[i] = outcome{rec: rec}
			continue
		}
		pending = append(pending, i)
		reqs = append(reqs, engine.Request{
			Workload: c.Bench,
			Arch:     string(c.Arch),
			Threads:  c.Threads,
			Scale:    e.spec.Scale,
			Seed:     c.Seed,
			Policy:   c.Policy,
			Params:   params,
		})
	}

	eng := engine.New(engine.WithWorkers(e.workers), engine.WithRecorder(e.Recorder),
		engine.WithSlowProfiler(e.SlowProfiler))
	var enc *json.Encoder
	if out != nil {
		enc = json.NewEncoder(out)
	}
	k, done := 0, 0
	for rep, err := range eng.RunAll(ctx, reqs) {
		idx := pending[k]
		k++
		done++
		if err != nil {
			// The engine error already names the cell key; wrapping adds
			// only the layer.
			outcomes[idx] = outcome{err: fmt.Errorf("sweep: %w", err)}
			continue
		}
		rec := RecordOf(cells[idx], e.spec, rep)
		outcomes[idx] = outcome{rec: rec}
		if enc != nil {
			if werr := enc.Encode(rec); werr != nil {
				outcomes[idx] = outcome{err: fmt.Errorf("sweep: writing record %s: %w", rec.Key, werr)}
				continue
			}
		}
		if e.OnRecord != nil {
			e.OnRecord(len(cells)-len(pending)+done, len(cells), rec)
		}
	}

	recs := make([]Record, 0, len(cells))
	var errs []error
	for _, o := range outcomes {
		if o.err != nil {
			errs = append(errs, o.err)
			continue
		}
		recs = append(recs, o.rec)
	}
	return recs, errors.Join(errs...)
}

// DropPartialTail truncates a JSONL output file that does not end in a
// newline back to its last complete line: the partial record of an
// interrupted campaign is ignored by LoadCompleted, but appending to it
// would glue the next record onto the same line, so its cell would never
// register as completed on later resumes — and once further appends push
// the glued line off the tail, LoadCompleted rejects the file outright.
// Every resumable command must call it before opening the file for
// append. A missing file is a no-op.
//
// The implementation lives in internal/obs (flight-recorder traces honour
// the same contract); this wrapper preserves the original call sites.
func DropPartialTail(path string) error { return obs.DropPartialTail(path) }

// LoadCompleted reads a JSONL stream written by Run and returns its
// records keyed by cell key — the resume set. A truncated final line
// (an interrupted campaign killed mid-write) is ignored; malformed lines
// elsewhere are an error.
func LoadCompleted(r io.Reader) (map[string]Record, error) {
	out := make(map[string]Record)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the trailing one.
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			pendingErr = fmt.Errorf("sweep: line %d: %w", line, err)
			continue
		}
		if rec.Key == "" {
			pendingErr = fmt.Errorf("sweep: line %d: record without key", line)
			continue
		}
		out[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary aggregates one (architecture, policy, thread count) group of a
// campaign — the granularity at which Figures 7-10 report averages.
type Summary struct {
	Arch    string
	Policy  string
	Threads int
	// Cells is the number of records in the group
	// (benchmarks × seeds).
	Cells int
	// MeanErrPct and MaxErrPct summarise execution-time error.
	MeanErrPct float64
	MaxErrPct  float64
	// MeanSpeedupWall averages wall-clock speedup; GeoSpeedupDetail is
	// the geometric mean of the instruction-level speedup.
	MeanSpeedupWall  float64
	GeoSpeedupDetail float64
	// MeanDetailFrac averages the fraction of instructions simulated in
	// detail.
	MeanDetailFrac float64
	// CICells counts records carrying a confidence interval (stratified
	// cells); MeanCIRelWidth and CICovered summarise them. Zero/empty
	// for non-stratified groups.
	CICells        int
	MeanCIRelWidth float64
	CICovered      int
}

// Summarize folds records into per-(arch, policy, threads) summaries,
// sorted by architecture, then policy, then thread count.
func Summarize(recs []Record) []Summary {
	type key struct {
		arch, policy string
		threads      int
	}
	groups := make(map[key][]Record)
	for _, r := range recs {
		k := key{r.Arch, r.Policy, r.Threads}
		groups[k] = append(groups[k], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].arch != keys[j].arch {
			return keys[i].arch < keys[j].arch
		}
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		return keys[i].threads < keys[j].threads
	})
	out := make([]Summary, 0, len(keys))
	for _, k := range keys {
		group := groups[k]
		var errsPct, wall, det, frac, ciw []float64
		ciCovered := 0
		for _, r := range group {
			errsPct = append(errsPct, r.ErrPct)
			wall = append(wall, r.SpeedupWall)
			det = append(det, r.SpeedupDetail)
			frac = append(frac, r.DetailFraction)
			if r.CIStrata > 0 {
				ciw = append(ciw, r.CIRelWidth)
				if r.CICovered {
					ciCovered++
				}
			}
		}
		avg := results.Aggregate(errsPct, wall, det, frac)
		out = append(out, Summary{
			Arch:             k.arch,
			Policy:           k.policy,
			Threads:          k.threads,
			Cells:            len(group),
			MeanErrPct:       avg.MeanErrPct,
			MaxErrPct:        avg.MaxErrPct,
			MeanSpeedupWall:  avg.MeanSpeedupW,
			GeoSpeedupDetail: avg.GeoSpeedupDet,
			MeanDetailFrac:   avg.MeanDetailFrac,
			CICells:          len(ciw),
			MeanCIRelWidth:   stats.Mean(ciw),
			CICovered:        ciCovered,
		})
	}
	return out
}

// RenderSummary renders summaries as the aligned text table the sweep
// command prints, mirroring the per-thread-count averages of Figures 7-10.
// Stratified groups additionally report the mean relative CI width and how
// many of their intervals covered the detailed reference.
func RenderSummary(title string, sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %-15s %8s %6s %10s %10s %9s %9s %9s %8s\n",
		"architecture", "policy", "threads", "cells", "mean-err%", "max-err%", "x-detail", "%detail", "ci-width%", "covered")
	for _, s := range sums {
		ciWidth, covered := "-", "-"
		if s.CICells > 0 {
			ciWidth = fmt.Sprintf("%.2f", 100*s.MeanCIRelWidth)
			covered = fmt.Sprintf("%d/%d", s.CICovered, s.CICells)
		}
		fmt.Fprintf(&b, "%-18s %-15s %8d %6d %10.2f %10.2f %9.1f %9.1f %9s %8s\n",
			s.Arch, s.Policy, s.Threads, s.Cells,
			s.MeanErrPct, s.MaxErrPct, s.GeoSpeedupDetail, 100*s.MeanDetailFrac,
			ciWidth, covered)
	}
	return b.String()
}
