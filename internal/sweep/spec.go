// Package sweep is the design-space sweep engine: it expands a declarative
// specification (benchmarks × architectures × thread counts × sampling
// policies × seeds) into a campaign of sampled-vs-detailed comparisons,
// shards the runs across a bounded worker pool reusing the evaluation
// Runner's cached detailed baselines, and streams one JSONL record per
// completed cell so campaigns can be interrupted, resumed and
// post-processed.
//
// The paper's own evaluation is such a campaign — 19 benchmarks × two
// Table II architectures × several thread counts × two resampling policies
// (Figures 6-10) — and §V-C explicitly advocates lazy sampling "for
// evaluations requiring a large number of simulations, e.g. during the
// early phase of design space exploration". This package turns that advice
// into infrastructure.
package sweep

import (
	"fmt"

	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/results"
)

// Spec declares a design-space sweep. Every listed dimension is expanded
// into its full cartesian product; empty dimensions are rejected by
// Validate so a spec always states the space it covers. The zero values of
// the sampling parameters select the paper's defaults (W=2, H=4).
type Spec struct {
	// Name labels the campaign in reports.
	Name string `json:"name,omitempty"`
	// Scale is the benchmark scale (1.0 = Table I instance counts).
	Scale float64 `json:"scale"`
	// Benchmarks are Table I benchmark names.
	Benchmarks []string `json:"benchmarks"`
	// Archs are architecture names accepted by results.ParseArch
	// ("high-performance"/"hp", "low-power"/"lp", "native").
	Archs []string `json:"archs"`
	// Threads are the simulated thread counts.
	Threads []int `json:"threads"`
	// Policies are resampling policy names accepted by core.ParsePolicy
	// ("lazy", "periodic(250)", "periodic:1000").
	Policies []string `json:"policies"`
	// Seeds drive workload generation; each seed is a fresh draw of every
	// benchmark's generative model. Empty defaults to the single seed 42.
	Seeds []uint64 `json:"seeds,omitempty"`
	// W and H override the paper's warm-up count and history size when
	// positive; zero keeps core.DefaultParams.
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
}

// DefaultSpec returns a small but representative campaign: four benchmarks
// of distinct classes (dense linear algebra, stencil, graph traversal,
// streaming), both Table II architectures, two thread counts and both
// §V-C policies at 1/32 of the paper's problem sizes.
func DefaultSpec() Spec {
	return Spec{
		Name:       "default",
		Scale:      1.0 / 32,
		Benchmarks: []string{"cholesky", "3d-stencil", "knn", "vector-operation"},
		Archs:      []string{string(results.HighPerf), string(results.LowPower)},
		Threads:    []int{2, 8},
		Policies:   []string{"lazy", "periodic(250)"},
		Seeds:      []uint64{42},
	}
}

// Params returns the sampling parameters the spec selects.
func (s *Spec) Params() core.Params {
	p := core.DefaultParams()
	if s.W > 0 {
		p.W = s.W
	}
	if s.H > 0 {
		p.H = s.H
	}
	return p
}

// Validate checks every dimension of the spec, resolving benchmark, policy
// and architecture names eagerly so a campaign fails before its first
// simulation rather than mid-run.
func (s *Spec) Validate() error {
	if s.Scale <= 0 || s.Scale > 4 {
		return fmt.Errorf("sweep: scale %v out of range (0, 4]", s.Scale)
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("sweep: no benchmarks listed")
	}
	for _, b := range s.Benchmarks {
		if _, err := bench.ByName(b); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if len(s.Archs) == 0 {
		return fmt.Errorf("sweep: no architectures listed")
	}
	for _, a := range s.Archs {
		if _, err := results.ParseArch(a); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if len(s.Threads) == 0 {
		return fmt.Errorf("sweep: no thread counts listed")
	}
	for _, t := range s.Threads {
		if t < 1 || t > 64 {
			return fmt.Errorf("sweep: thread count %d out of range [1,64]", t)
		}
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("sweep: no policies listed")
	}
	for _, p := range s.Policies {
		if _, err := core.ParsePolicy(p); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if s.W < 0 || s.H < 0 {
		return fmt.Errorf("sweep: W=%d, H=%d must be >= 0 (0 selects the paper default)", s.W, s.H)
	}
	params := s.Params()
	if err := params.Validate(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// Cell is one point of the design space: a single sampled-vs-detailed
// comparison.
type Cell struct {
	Bench   string
	Arch    results.Arch
	Threads int
	// Policy is the canonical policy name (core.Policy.Name form).
	Policy string
	Seed   uint64
}

// Key is the cell's stable identity used for resume bookkeeping and JSONL
// records. It is independent of dimension ordering in the spec and is the
// unified engine's cell key (engine.CellKey), so sweep records, corpus
// records and engine requests all key one cell identically.
func (c Cell) Key() string {
	return engine.CellKey(c.Bench, string(c.Arch), c.Threads, c.Policy, c.Seed)
}

// Cells expands the spec into its cartesian product in deterministic
// seed-major, benchmark-, arch-, thread-, policy-minor order. The spec
// must have been validated; unknown names panic here.
func (s *Spec) Cells() []Cell {
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{42}
	}
	cells := make([]Cell, 0, len(seeds)*len(s.Benchmarks)*len(s.Archs)*len(s.Threads)*len(s.Policies))
	for _, seed := range seeds {
		for _, b := range s.Benchmarks {
			for _, a := range s.Archs {
				arch, err := results.ParseArch(a)
				if err != nil {
					panic(err)
				}
				for _, t := range s.Threads {
					for _, p := range s.Policies {
						pol, err := core.ParsePolicy(p)
						if err != nil {
							panic(err)
						}
						cells = append(cells, Cell{
							Bench:   b,
							Arch:    arch,
							Threads: t,
							Policy:  pol.Name(),
							Seed:    seed,
						})
					}
				}
			}
		}
	}
	return cells
}
