package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"taskpoint/internal/results"
)

// testSpec is a tiny two-benchmark space that still spans every dimension.
func testSpec() Spec {
	return Spec{
		Name:       "test",
		Scale:      1.0 / 64,
		Benchmarks: []string{"cholesky", "vector-operation"},
		Archs:      []string{"hp", "low-power"},
		Threads:    []int{2, 4},
		Policies:   []string{"lazy", "periodic:200"},
		Seeds:      []uint64{7},
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"bad scale", func(s *Spec) { s.Scale = 0 }},
		{"no benchmarks", func(s *Spec) { s.Benchmarks = nil }},
		{"unknown benchmark", func(s *Spec) { s.Benchmarks = []string{"no-such-bench"} }},
		{"no archs", func(s *Spec) { s.Archs = nil }},
		{"unknown arch", func(s *Spec) { s.Archs = []string{"tpu"} }},
		{"no threads", func(s *Spec) { s.Threads = nil }},
		{"bad threads", func(s *Spec) { s.Threads = []int{0} }},
		{"no policies", func(s *Spec) { s.Policies = nil }},
		{"unknown policy", func(s *Spec) { s.Policies = []string{"eager"} }},
		{"bad history", func(s *Spec) { s.H = -1; s.W = 1 }},
	}
	for _, tc := range cases {
		s := testSpec()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestSpecCells(t *testing.T) {
	s := testSpec()
	cells := s.Cells()
	want := 2 * 2 * 2 * 2 // benchmarks × archs × threads × policies, one seed
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate cell key %q", c.Key())
		}
		seen[c.Key()] = true
	}
	// Short arch names canonicalise: "hp" must expand to the full name.
	if cells[0].Arch != results.HighPerf {
		t.Errorf("arch not canonicalised: %v", cells[0].Arch)
	}
	// Policies canonicalise to Policy.Name form.
	if cells[0].Policy != "lazy" || cells[1].Policy != "periodic(200)" {
		t.Errorf("policies not canonicalised: %q, %q", cells[0].Policy, cells[1].Policy)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := testSpec()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells()) != len(s.Cells()) {
		t.Fatalf("round trip changed the design space: %d vs %d cells",
			len(back.Cells()), len(s.Cells()))
	}
}

func TestEngineRunStreamsAndResumes(t *testing.T) {
	spec := testSpec()
	// Shrink to keep the test fast: 1 bench × 2 arch × 1 thread × 2 policies.
	spec.Benchmarks = []string{"vector-operation"}
	spec.Threads = []int{2}

	eng, err := New(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	recs, err := eng.Run(&out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.DetailedCycles <= 0 || r.SampledCycles <= 0 {
			t.Errorf("cell %s: nonpositive cycles", r.Key)
		}
		if r.SpeedupDetail < 1 {
			t.Errorf("cell %s: detail speedup %v < 1", r.Key, r.SpeedupDetail)
		}
	}

	// Every streamed line is a valid record.
	completed, err := LoadCompleted(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 4 {
		t.Fatalf("loaded %d records, want 4", len(completed))
	}

	// Resuming against the full set runs nothing and streams nothing.
	var ran atomic.Int32
	eng2, err := New(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng2.OnRecord = func(_, _ int, _ Record) { ran.Add(1) }
	var out2 bytes.Buffer
	recs2, err := eng2.Run(&out2, completed)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Errorf("resume re-ran %d completed cells", ran.Load())
	}
	if out2.Len() != 0 {
		t.Errorf("resume streamed %d bytes for completed cells", out2.Len())
	}
	if len(recs2) != 4 {
		t.Fatalf("resume returned %d records, want 4", len(recs2))
	}

	// Partial resume: drop one record, exactly one cell runs again.
	for k := range completed {
		delete(completed, k)
		break
	}
	eng3, err := New(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	ran.Store(0)
	eng3.OnRecord = func(_, _ int, _ Record) { ran.Add(1) }
	recs3, err := eng3.Run(nil, completed)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Errorf("partial resume ran %d cells, want 1", ran.Load())
	}
	if len(recs3) != 4 {
		t.Fatalf("partial resume returned %d records, want 4", len(recs3))
	}
}

func TestLoadCompletedTruncatedTail(t *testing.T) {
	rec := Record{Key: "a|hp|2|lazy|7", Bench: "a"}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	// A campaign killed mid-write leaves a truncated final line; it must
	// be dropped, not fail the resume.
	input := string(line) + "\n" + string(line[:len(line)/2])
	got, err := LoadCompleted(strings.NewReader(input))
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}

	// A malformed line in the middle is corruption, not interruption.
	input = "{broken\n" + string(line) + "\n"
	if _, err := LoadCompleted(strings.NewReader(input)); err == nil {
		t.Error("mid-stream corruption not reported")
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Arch: "hp", Policy: "lazy", Threads: 2, Bench: "a", ErrPct: 1, SpeedupDetail: 4, DetailFraction: 0.25, SpeedupWall: 2},
		{Arch: "hp", Policy: "lazy", Threads: 2, Bench: "b", ErrPct: 3, SpeedupDetail: 16, DetailFraction: 0.05, SpeedupWall: 4},
		{Arch: "hp", Policy: "periodic(200)", Threads: 2, Bench: "a", ErrPct: 0.5, SpeedupDetail: 2, DetailFraction: 0.5, SpeedupWall: 1.5},
	}
	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d groups, want 2", len(sums))
	}
	lazy := sums[0]
	if lazy.Policy != "lazy" || lazy.Cells != 2 {
		t.Fatalf("unexpected first group: %+v", lazy)
	}
	if lazy.MeanErrPct != 2 || lazy.MaxErrPct != 3 {
		t.Errorf("error aggregation wrong: mean %v max %v", lazy.MeanErrPct, lazy.MaxErrPct)
	}
	if math.Abs(lazy.GeoSpeedupDetail-8) > 1e-9 { // geomean(4, 16)
		t.Errorf("geomean wrong: %v", lazy.GeoSpeedupDetail)
	}
	table := RenderSummary("t", sums)
	if !strings.Contains(table, "lazy") || !strings.Contains(table, "periodic(200)") {
		t.Errorf("summary table missing groups:\n%s", table)
	}
}

func TestWriteCSV(t *testing.T) {
	recs := []Record{{
		Key: "a|hp|2|lazy|7", Bench: "a", Arch: "hp", Threads: 2,
		Policy: "lazy", Seed: 7, Scale: 0.03125, W: 2, H: 4,
		ErrPct: 1.25, SpeedupDetail: 8,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d csv lines, want header + 1 row", len(lines))
	}
	if got, want := len(strings.Split(lines[0], ",")), len(strings.Split(lines[1], ",")); got != want {
		t.Fatalf("header has %d columns, row has %d", got, want)
	}
	if !strings.HasPrefix(lines[1], "a|hp|2|lazy|7,a,hp,2,lazy,7,0.03125,2,4,1.25,") {
		t.Errorf("unexpected csv row: %s", lines[1])
	}
}

func TestResumeIgnoresStaleConfig(t *testing.T) {
	spec := testSpec()
	spec.Benchmarks = []string{"vector-operation"}
	spec.Archs = []string{"hp"}
	spec.Threads = []int{2}
	spec.Policies = []string{"lazy"}

	eng, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := eng.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	completed := map[string]Record{recs[0].Key: recs[0]}
	if skip, total := eng.Resumable(completed); skip != 1 || total != 1 {
		t.Fatalf("matching config: skip=%d total=%d, want 1/1", skip, total)
	}

	// The same cell key recorded at a different scale must not satisfy
	// the cell: a changed campaign configuration re-runs the space.
	stale := recs[0]
	stale.Scale = stale.Scale / 2
	completed[stale.Key] = stale
	if skip, _ := eng.Resumable(completed); skip != 0 {
		t.Fatalf("stale scale still skipped %d cells", skip)
	}
	var ran atomic.Int32
	eng.OnRecord = func(_, _ int, _ Record) { ran.Add(1) }
	recs2, err := eng.Run(nil, completed)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Errorf("stale-config resume ran %d cells, want 1 (re-run)", ran.Load())
	}
	if recs2[0].Scale != spec.Scale {
		t.Errorf("re-run record kept stale scale %v", recs2[0].Scale)
	}
}

// TestSweepStratifiedCells runs a campaign whose policy dimension
// includes stratified sampling and checks the confidence columns land in
// the records and the summary.
func TestSweepStratifiedCells(t *testing.T) {
	spec := Spec{
		Name:       "strat",
		Scale:      1.0 / 64,
		Benchmarks: []string{"cholesky"},
		Archs:      []string{"hp"},
		Threads:    []int{4},
		Policies:   []string{"lazy", "stratified(120)"},
		Seeds:      []uint64{7},
	}
	eng, err := New(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	recs, err := eng.Run(&out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	var lazy, strat *Record
	for i := range recs {
		switch recs[i].Policy {
		case "lazy":
			lazy = &recs[i]
		case "stratified(120)":
			strat = &recs[i]
		}
	}
	if lazy == nil || strat == nil {
		t.Fatalf("policies missing from records: %+v", recs)
	}
	if strat.CIStrata == 0 || strat.CIHi <= strat.CILo || strat.EstTotalCycles <= 0 {
		t.Errorf("stratified record lacks CI fields: %+v", strat)
	}
	if strat.DetailedTaskCycles <= 0 {
		t.Errorf("stratified record lacks the detailed task-cycle reference: %+v", strat)
	}
	if lazy.CIStrata != 0 || lazy.EstTotalCycles != 0 {
		t.Errorf("lazy record unexpectedly carries CI fields: %+v", lazy)
	}
	sums := Summarize(recs)
	var found bool
	for _, s := range sums {
		if s.Policy == "stratified(120)" {
			found = true
			if s.CICells != 1 || s.MeanCIRelWidth <= 0 {
				t.Errorf("stratified summary lacks CI aggregates: %+v", s)
			}
		} else if s.CICells != 0 {
			t.Errorf("non-stratified summary carries CI aggregates: %+v", s)
		}
	}
	if !found {
		t.Error("no stratified summary group")
	}
	// The JSONL stream must resume stratified cells like any other.
	completed, err := LoadCompleted(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	skip, total := eng.Resumable(completed)
	if skip != total {
		t.Errorf("resume skips %d of %d cells", skip, total)
	}
}

// TestDropPartialTail: a file killed mid-write is truncated back to its
// last complete line, so appended records never glue onto a partial one.
func TestDropPartialTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	full := "{\"key\":\"a\"}\n{\"key\":\"b\"}\n"
	if err := os.WriteFile(path, []byte(full+"{\"key\":\"c"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := DropPartialTail(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != full {
		t.Errorf("truncated file %q, want %q", got, full)
	}
	// Clean files and missing files are no-ops.
	if err := DropPartialTail(path); err != nil {
		t.Fatal(err)
	}
	if got2, _ := os.ReadFile(path); string(got2) != full {
		t.Errorf("clean file changed: %q", got2)
	}
	if err := DropPartialTail(filepath.Join(t.TempDir(), "missing.jsonl")); err != nil {
		t.Fatal(err)
	}
	// A single partial line truncates to empty.
	if err := os.WriteFile(path, []byte("{\"key"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := DropPartialTail(path); err != nil {
		t.Fatal(err)
	}
	if got3, _ := os.ReadFile(path); len(got3) != 0 {
		t.Errorf("single partial line left %q", got3)
	}
}
