// Package results drives the paper's evaluation: it runs detailed
// (reference) and sampled simulations over the 19 benchmarks and both
// Table II architectures, computes the execution-time error and simulation
// speedup of Figures 6-10, the IPC-variation box plots of Figures 1 and 5,
// and the Table I inventory, and renders them as the rows/series the paper
// reports.
package results

import (
	"fmt"
	"sync"
	"time"

	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/noise"
	"taskpoint/internal/sim"
	"taskpoint/internal/stats"
	"taskpoint/internal/strata"
	"taskpoint/internal/trace"

	// Register the "gen:" scenario resolver so generated workloads are
	// runnable wherever a Table I benchmark name is (Runner, sweeps,
	// commands), mirroring how the strata import registers its policy
	// parser.
	_ "taskpoint/internal/gen"
)

// Arch selects one of the evaluated machine configurations.
type Arch string

// The evaluated architectures.
const (
	// HighPerf is Table II's high-performance configuration.
	HighPerf Arch = "high-performance"
	// LowPower is Table II's low-power configuration.
	LowPower Arch = "low-power"
	// Native is the high-performance configuration plus the system-noise
	// model, standing in for the paper's SandyBridge-EP machine (Fig 1).
	Native Arch = "native"
)

// Arches returns the evaluated architectures in paper order.
func Arches() []Arch { return []Arch{HighPerf, LowPower, Native} }

// ParseArch resolves an architecture from its name or the common short
// forms "hp", "lp" and "native".
func ParseArch(s string) (Arch, error) {
	switch s {
	case string(HighPerf), "hp":
		return HighPerf, nil
	case string(LowPower), "lp":
		return LowPower, nil
	case string(Native):
		return Native, nil
	default:
		return "", fmt.Errorf("results: unknown architecture %q (want high-performance/hp, low-power/lp or native)", s)
	}
}

// ConfigFor returns the simulator configuration of arch with the given
// thread count.
func ConfigFor(arch Arch, threads int) (sim.Config, error) {
	switch arch {
	case HighPerf:
		return sim.HighPerfConfig(threads), nil
	case LowPower:
		return sim.LowPowerConfig(threads), nil
	case Native:
		return sim.NativeConfig(threads), nil
	default:
		return sim.Config{}, fmt.Errorf("results: unknown architecture %q", arch)
	}
}

// Runner executes and caches simulations. Detailed reference runs are
// cached by (benchmark, arch, threads), so every figure shares its
// baselines. Runner is safe for concurrent use.
type Runner struct {
	// Scale is the benchmark scale (1 = Table I instance counts).
	Scale float64
	// Seed drives workload generation and the noise model.
	Seed uint64
	// Workers bounds concurrent simulations.
	Workers int

	mu       sync.Mutex
	progs    map[string]*trace.Program
	detailed map[string]*sim.Result
	sem      chan struct{}
	semOnce  sync.Once
}

// NewRunner builds a runner at the given benchmark scale.
func NewRunner(scale float64, seed uint64, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		Scale:    scale,
		Seed:     seed,
		Workers:  workers,
		progs:    make(map[string]*trace.Program),
		detailed: make(map[string]*sim.Result),
	}
}

func (r *Runner) acquire() func() {
	r.semOnce.Do(func() { r.sem = make(chan struct{}, r.Workers) })
	r.sem <- struct{}{}
	return func() { <-r.sem }
}

// simOpts returns the simulation options of an architecture: the Native
// machine carries the system-noise perturber (Fig 1), seeded identically
// for every run at the same thread count so detailed references and
// sampled runs see the same noise and remain comparable.
func (r *Runner) simOpts(arch Arch, threads int) []sim.Option {
	if arch != Native {
		return nil
	}
	return []sim.Option{sim.WithPerturber(noise.New(noise.DefaultConfig(), r.Seed^uint64(threads)))}
}

// Program returns the (cached) generated program of a benchmark.
func (r *Runner) Program(name string) (*trace.Program, error) {
	r.mu.Lock()
	if p, ok := r.progs[name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := spec.Build(r.Scale, r.Seed)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.progs[name]; ok {
		return prev, nil
	}
	r.progs[name] = p
	return p, nil
}

// Detailed runs (or returns the cached) full-detail reference simulation.
func (r *Runner) Detailed(benchName string, arch Arch, threads int) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%d", benchName, arch, threads)
	r.mu.Lock()
	if res, ok := r.detailed[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	prog, err := r.Program(benchName)
	if err != nil {
		return nil, err
	}
	cfg, err := ConfigFor(arch, threads)
	if err != nil {
		return nil, err
	}
	release := r.acquire()
	res, err := sim.Simulate(cfg, prog, sim.DetailedController{}, r.simOpts(arch, threads)...)
	release()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.detailed[key]; ok {
		return prev, nil
	}
	r.detailed[key] = res
	return res, nil
}

// SampledRow is one bar of Figures 7-10: one benchmark at one thread count
// under one sampling configuration.
type SampledRow struct {
	Bench   string
	Arch    Arch
	Threads int
	// ErrPct is the absolute execution-time error against the detailed
	// reference, in percent.
	ErrPct float64
	// SpeedupWall is detailed wall time / sampled wall time — the
	// paper's speedup metric.
	SpeedupWall float64
	// SpeedupDetail is total instructions / instructions simulated in
	// detail — a machine-independent speedup proxy.
	SpeedupDetail float64
	// DetailFraction is the fraction of instructions simulated in
	// detail during the sampled run.
	DetailFraction float64
	// Sampler reports the sampler's internal statistics.
	Sampler core.Stats
	// Cycles are the simulated execution times.
	SampledCycles, DetailedCycles float64
	// DetailedTaskCycles is the detailed reference's total task
	// execution time (Σ per-instance durations) — the quantity the
	// stratified Confidence estimates.
	DetailedTaskCycles float64
	// Confidence is the stratified cycle estimate with its confidence
	// interval; nil unless the run's policy was strata.Stratified.
	Confidence *strata.Confidence
	// Wall times of both runs.
	SampledWall, DetailedWall time.Duration
}

// confidencePolicy is the optional policy surface the runner wires up:
// strata.Stratified implements it, and so can any future budgeted policy
// that prescans the program and reports a confidence interval.
type confidencePolicy interface {
	core.Policy
	Prescan(prog *trace.Program)
	Confidence() strata.Confidence
}

// Sampled runs one sampled simulation and compares it against the cached
// detailed reference. A confidence-reporting policy (strata.Stratified)
// is prescanned over the program (exact stratum populations) and implies
// size-class histories; its confidence interval lands in the row.
func (r *Runner) Sampled(benchName string, arch Arch, threads int, params core.Params, policy core.Policy) (SampledRow, error) {
	det, err := r.Detailed(benchName, arch, threads)
	if err != nil {
		return SampledRow{}, err
	}
	prog, err := r.Program(benchName)
	if err != nil {
		return SampledRow{}, err
	}
	cfg, err := ConfigFor(arch, threads)
	if err != nil {
		return SampledRow{}, err
	}
	strat, _ := policy.(confidencePolicy)
	if strat != nil {
		strat.Prescan(prog)
		params.SizeClasses = true
	}
	sampler, err := core.New(params, policy)
	if err != nil {
		return SampledRow{}, err
	}
	release := r.acquire()
	res, err := sim.Simulate(cfg, prog, sampler, r.simOpts(arch, threads)...)
	release()
	if err != nil {
		return SampledRow{}, err
	}
	speedupDetail := float64(res.TotalInstructions) / float64(max64(res.DetailedInstructions, 1))
	wallSpeedup := 0.0
	if res.Wall > 0 {
		wallSpeedup = float64(det.Wall) / float64(res.Wall)
	}
	row := SampledRow{
		Bench:              benchName,
		Arch:               arch,
		Threads:            threads,
		ErrPct:             stats.AbsPctError(res.Cycles, det.Cycles),
		SpeedupWall:        wallSpeedup,
		SpeedupDetail:      speedupDetail,
		DetailFraction:     res.DetailFraction(),
		Sampler:            sampler.Stats(),
		SampledCycles:      res.Cycles,
		DetailedCycles:     det.Cycles,
		DetailedTaskCycles: det.TotalTaskCycles(),
		SampledWall:        res.Wall,
		DetailedWall:       det.Wall,
	}
	if strat != nil {
		conf := strat.Confidence()
		row.Confidence = &conf
	}
	return row, nil
}

// Figure runs the full grid of one of Figures 7-10: every benchmark at
// every thread count under the given sampling parameters and policy.
// Rows are ordered benchmark-major in Table I order.
func (r *Runner) Figure(arch Arch, threadCounts []int, params core.Params, policy core.Policy, benchNames []string) ([]SampledRow, error) {
	if benchNames == nil {
		benchNames = bench.Names()
	}
	type slot struct {
		row SampledRow
		err error
	}
	rows := make([]slot, len(benchNames)*len(threadCounts))
	var wg sync.WaitGroup
	for bi, bn := range benchNames {
		for ti, tc := range threadCounts {
			wg.Add(1)
			go func(idx int, bn string, tc int) {
				defer wg.Done()
				row, err := r.Sampled(bn, arch, tc, params, policy)
				rows[idx] = slot{row: row, err: err}
			}(bi*len(threadCounts)+ti, bn, tc)
		}
	}
	wg.Wait()
	out := make([]SampledRow, 0, len(rows))
	for _, s := range rows {
		if s.err != nil {
			return nil, s.err
		}
		out = append(out, s.row)
	}
	return out, nil
}

// Averages aggregates rows per thread count: mean error, mean wall
// speedup and geometric-mean detail speedup (the paper reports averages
// per thread count in Figures 7-10).
type Averages struct {
	Threads        int
	MeanErrPct     float64
	MaxErrPct      float64
	MeanSpeedupW   float64
	GeoSpeedupDet  float64
	MeanDetailFrac float64
}

// Aggregate folds per-run metrics into the averages the paper reports for
// a group of runs: mean and max error, mean wall speedup, geometric-mean
// detail speedup and mean detail fraction. All slices must have the same
// length (one entry per run). It is shared by the figure averages here and
// the sweep engine's campaign summaries.
func Aggregate(errPct, wallSpeedup, detSpeedup, detailFrac []float64) Averages {
	maxErr := 0.0
	for _, e := range errPct {
		if e > maxErr {
			maxErr = e
		}
	}
	return Averages{
		MeanErrPct:     stats.Mean(errPct),
		MaxErrPct:      maxErr,
		MeanSpeedupW:   stats.Mean(wallSpeedup),
		GeoSpeedupDet:  stats.GeoMean(detSpeedup),
		MeanDetailFrac: stats.Mean(detailFrac),
	}
}

// AverageByThreads folds figure rows into per-thread-count averages.
func AverageByThreads(rows []SampledRow) []Averages {
	byT := map[int][]SampledRow{}
	var order []int
	for _, row := range rows {
		if _, ok := byT[row.Threads]; !ok {
			order = append(order, row.Threads)
		}
		byT[row.Threads] = append(byT[row.Threads], row)
	}
	var out []Averages
	for _, t := range order {
		group := byT[t]
		var errs, wall, det, frac []float64
		for _, row := range group {
			errs = append(errs, row.ErrPct)
			wall = append(wall, row.SpeedupWall)
			det = append(det, row.SpeedupDetail)
			frac = append(frac, row.DetailFraction)
		}
		avg := Aggregate(errs, wall, det, frac)
		avg.Threads = t
		out = append(out, avg)
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
