// Package results drives the paper's evaluation: it runs detailed
// (reference) and sampled simulations over the 19 benchmarks and both
// Table II architectures, computes the execution-time error and simulation
// speedup of Figures 6-10, the IPC-variation box plots of Figures 1 and 5,
// and the Table I inventory, and renders them as the rows/series the paper
// reports.
//
// Since the unified experiment engine (internal/engine) was introduced,
// Runner is a thin adapter over it: worker pooling, baseline caching and
// cell identity live in the engine; this package keeps the paper-shaped
// row types and rendering.
package results

import (
	"context"
	"reflect"
	"sync"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/sim"
	"taskpoint/internal/stats"
	"taskpoint/internal/strata"
	"taskpoint/internal/trace"
)

// Arch selects one of the evaluated machine configurations. It is an
// alias of arch.Arch — the architecture registry lives in internal/arch.
type Arch = arch.Arch

// The evaluated architectures.
const (
	// HighPerf is Table II's high-performance configuration.
	HighPerf = arch.HighPerf
	// LowPower is Table II's low-power configuration.
	LowPower = arch.LowPower
	// Native is the high-performance configuration plus the system-noise
	// model, standing in for the paper's SandyBridge-EP machine (Fig 1).
	Native = arch.Native
)

// Arches returns the evaluated architectures in paper order.
func Arches() []Arch { return arch.All() }

// ParseArch resolves an architecture from its name or the common short
// forms "hp", "lp" and "native". Unknown names report arch.ErrUnknown.
func ParseArch(s string) (Arch, error) { return arch.Parse(s) }

// ConfigFor returns the simulator configuration of arch with the given
// thread count.
func ConfigFor(a Arch, threads int) (sim.Config, error) { return arch.ConfigFor(a, threads) }

// Runner executes and caches simulations through the unified experiment
// engine. Detailed reference runs are cached by (benchmark, arch,
// threads), so every figure shares its baselines. Runner is safe for
// concurrent use.
type Runner struct {
	// Scale is the benchmark scale (1 = Table I instance counts).
	Scale float64
	// Seed drives workload generation and the noise model.
	Seed uint64
	// Workers bounds concurrent simulations.
	Workers int

	// ctx, when set via WithContext, cancels every simulation the runner
	// starts; nil means context.Background().
	ctx context.Context

	// cache, when set before first use (NewCachedRunner), backs the
	// runner's engine with a shared baseline cache instead of a private
	// one.
	cache *engine.BaselineCache

	mu     sync.Mutex
	shared *runnerShared
}

// runnerShared is the engine state behind a Runner and every context-bound
// view of it (WithContext), so all views share one baseline cache and one
// worker pool.
type runnerShared struct {
	eng *engine.Engine
}

// NewRunner builds a runner at the given benchmark scale.
func NewRunner(scale float64, seed uint64, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	r := &Runner{Scale: scale, Seed: seed, Workers: workers}
	r.ensureShared()
	return r
}

// NewCachedRunner builds a runner whose generated programs and detailed
// reference simulations live in the caller's shared cache, so runners
// created for separate figures (or separate benchmark iterations) stop
// re-simulating identical baselines. Results are unaffected: the cache
// key pins the full cell identity.
func NewCachedRunner(scale float64, seed uint64, workers int, cache *engine.BaselineCache) *Runner {
	if workers < 1 {
		workers = 1
	}
	r := &Runner{Scale: scale, Seed: seed, Workers: workers, cache: cache}
	r.ensureShared()
	return r
}

// WithContext returns a view of the runner whose simulations are
// cancelled when ctx is: the paper-figure drivers (cmd/experiments) bind
// a signal context once instead of threading it through every call. The
// view shares the runner's engine, baseline cache and worker pool.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	return &Runner{
		Scale:   r.Scale,
		Seed:    r.Seed,
		Workers: r.Workers,
		ctx:     ctx,
		shared:  r.ensureShared(),
	}
}

// ensureShared lazily builds the backing engine, so zero-constructed
// Runners keep working like they did before the engine existed.
func (r *Runner) ensureShared() *runnerShared {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shared == nil {
		workers := r.Workers
		if workers < 1 {
			workers = 1
		}
		opts := []engine.Option{engine.WithWorkers(workers)}
		if r.cache != nil {
			opts = append(opts, engine.WithBaselineCache(r.cache))
		}
		r.shared = &runnerShared{eng: engine.New(opts...)}
	}
	return r.shared
}

func (r *Runner) engine() *engine.Engine { return r.ensureShared().eng }

func (r *Runner) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// request is the engine request of one runner cell.
func (r *Runner) request(benchName string, a Arch, threads int) engine.Request {
	return engine.Request{
		Workload: benchName,
		Arch:     string(a),
		Threads:  threads,
		Scale:    r.Scale,
		Seed:     r.Seed,
	}
}

// Program returns the (cached) generated program of a benchmark.
func (r *Runner) Program(name string) (*trace.Program, error) {
	return r.engine().Cache().Program(name, r.Scale, r.Seed)
}

// Detailed runs (or returns the cached) full-detail reference simulation.
func (r *Runner) Detailed(benchName string, a Arch, threads int) (*sim.Result, error) {
	return r.engine().Baseline(r.context(), r.request(benchName, a, threads))
}

// SampledRow is one bar of Figures 7-10: one benchmark at one thread count
// under one sampling configuration.
type SampledRow struct {
	Bench   string
	Arch    Arch
	Threads int
	// ErrPct is the absolute execution-time error against the detailed
	// reference, in percent.
	ErrPct float64
	// SpeedupWall is detailed wall time / sampled wall time — the
	// paper's speedup metric.
	SpeedupWall float64
	// SpeedupDetail is total instructions / instructions simulated in
	// detail — a machine-independent speedup proxy.
	SpeedupDetail float64
	// DetailFraction is the fraction of instructions simulated in
	// detail during the sampled run.
	DetailFraction float64
	// Sampler reports the sampler's internal statistics.
	Sampler core.Stats
	// Cycles are the simulated execution times.
	SampledCycles, DetailedCycles float64
	// DetailedTaskCycles is the detailed reference's total task
	// execution time (Σ per-instance durations) — the quantity the
	// stratified Confidence estimates.
	DetailedTaskCycles float64
	// Confidence is the stratified cycle estimate with its confidence
	// interval; nil unless the run's policy was strata.Stratified.
	Confidence *strata.Confidence
	// Wall times of both runs.
	SampledWall, DetailedWall time.Duration
}

// RowOf folds an engine report into the figure-row shape of this package.
func RowOf(rep engine.Report) SampledRow {
	return SampledRow{
		Bench:              rep.Request.Workload,
		Arch:               Arch(rep.Request.Arch),
		Threads:            rep.Request.Threads,
		ErrPct:             rep.ErrPct,
		SpeedupWall:        rep.SpeedupWall,
		SpeedupDetail:      rep.SpeedupDetail,
		DetailFraction:     rep.DetailFraction,
		Sampler:            rep.Sampler,
		SampledCycles:      rep.Sampled.Cycles,
		DetailedCycles:     rep.Detailed.Cycles,
		DetailedTaskCycles: rep.DetailedTaskCycles,
		Confidence:         rep.Confidence,
		SampledWall:        rep.SampledWall,
		DetailedWall:       rep.DetailedWall,
	}
}

// Sampled runs one sampled simulation and compares it against the cached
// detailed reference. A confidence-reporting policy (strata.Stratified)
// is prescanned over the program (exact stratum populations) and implies
// size-class histories; its confidence interval lands in the row.
func (r *Runner) Sampled(benchName string, a Arch, threads int, params core.Params, policy core.Policy) (SampledRow, error) {
	req := r.request(benchName, a, threads)
	req.Params = params
	req.PolicyValue = policy
	rep, err := r.engine().Run(r.context(), req)
	if err != nil {
		return SampledRow{}, err
	}
	return RowOf(rep), nil
}

// Figure runs the full grid of one of Figures 7-10: every benchmark at
// every thread count under the given sampling parameters and policy.
// Rows are ordered benchmark-major in Table I order. Policies whose name
// fully round-trips through core.ParsePolicy (lazy, periodic — the
// figure policies) are rebuilt fresh per cell, so stateful policies
// never share state across the grid; anything the name cannot faithfully
// reproduce (custom configurations, custom policy types) runs as a
// shared value, like it always did.
func (r *Runner) Figure(a Arch, threadCounts []int, params core.Params, policy core.Policy, benchNames []string) ([]SampledRow, error) {
	if benchNames == nil {
		benchNames = bench.Names()
	}
	name := policy.Name()
	var value core.Policy
	if rebuilt, err := core.ParsePolicy(name); err != nil || !reflect.DeepEqual(rebuilt, policy) {
		// The textual name does not reconstruct this exact policy
		// (unregistered custom type, non-default configuration, or
		// carried-over run state) — pass the caller's value through
		// rather than silently substituting the default build.
		value = policy
	}
	reqs := make([]engine.Request, 0, len(benchNames)*len(threadCounts))
	for _, bn := range benchNames {
		for _, tc := range threadCounts {
			req := r.request(bn, a, tc)
			req.Params = params
			req.Policy = name
			req.PolicyValue = value
			reqs = append(reqs, req)
		}
	}
	rows := make([]SampledRow, 0, len(reqs))
	for rep, err := range r.engine().RunAll(r.context(), reqs) {
		if err != nil {
			return nil, err
		}
		rows = append(rows, RowOf(rep))
	}
	return rows, nil
}

// Averages aggregates rows per thread count: mean error, mean wall
// speedup and geometric-mean detail speedup (the paper reports averages
// per thread count in Figures 7-10).
type Averages struct {
	Threads        int
	MeanErrPct     float64
	MaxErrPct      float64
	MeanSpeedupW   float64
	GeoSpeedupDet  float64
	MeanDetailFrac float64
}

// Aggregate folds per-run metrics into the averages the paper reports for
// a group of runs: mean and max error, mean wall speedup, geometric-mean
// detail speedup and mean detail fraction. All slices must have the same
// length (one entry per run). It is shared by the figure averages here and
// the sweep engine's campaign summaries.
func Aggregate(errPct, wallSpeedup, detSpeedup, detailFrac []float64) Averages {
	maxErr := 0.0
	for _, e := range errPct {
		if e > maxErr {
			maxErr = e
		}
	}
	return Averages{
		MeanErrPct:     stats.Mean(errPct),
		MaxErrPct:      maxErr,
		MeanSpeedupW:   stats.Mean(wallSpeedup),
		GeoSpeedupDet:  stats.GeoMean(detSpeedup),
		MeanDetailFrac: stats.Mean(detailFrac),
	}
}

// AverageByThreads folds figure rows into per-thread-count averages.
func AverageByThreads(rows []SampledRow) []Averages {
	byT := map[int][]SampledRow{}
	var order []int
	for _, row := range rows {
		if _, ok := byT[row.Threads]; !ok {
			order = append(order, row.Threads)
		}
		byT[row.Threads] = append(byT[row.Threads], row)
	}
	var out []Averages
	for _, t := range order {
		group := byT[t]
		var errs, wall, det, frac []float64
		for _, row := range group {
			errs = append(errs, row.ErrPct)
			wall = append(wall, row.SpeedupWall)
			det = append(det, row.SpeedupDetail)
			frac = append(frac, row.DetailFraction)
		}
		avg := Aggregate(errs, wall, det, frac)
		avg.Threads = t
		out = append(out, avg)
	}
	return out
}
