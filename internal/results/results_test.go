package results

import (
	"strings"
	"testing"

	"taskpoint/internal/core"
	"taskpoint/internal/strata"
)

// Tests run at a tiny scale (instance floor of 64) so the full grid stays
// fast; determinism makes the assertions stable.

const testScale = 1.0 / 256

func TestConfigFor(t *testing.T) {
	for _, arch := range []Arch{HighPerf, LowPower, Native} {
		cfg, err := ConfigFor(arch, 4)
		if err != nil {
			t.Errorf("%s: %v", arch, err)
		}
		if cfg.Cores != 4 {
			t.Errorf("%s: cores = %d", arch, cfg.Cores)
		}
	}
	if _, err := ConfigFor("weird", 4); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestProgramCaching(t *testing.T) {
	r := NewRunner(testScale, 1, 1)
	a, err := r.Program("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Program("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Program not cached (different pointers)")
	}
	if _, err := r.Program("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDetailedCaching(t *testing.T) {
	r := NewRunner(testScale, 1, 1)
	a, err := r.Detailed("swaptions", HighPerf, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Detailed("swaptions", HighPerf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Detailed result not cached")
	}
	c, err := r.Detailed("swaptions", HighPerf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different thread counts shared one cache entry")
	}
}

func TestSampledRowConsistency(t *testing.T) {
	r := NewRunner(testScale, 1, 2)
	row, err := r.Sampled("blackscholes", HighPerf, 4, core.DefaultParams(), core.Lazy{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Bench != "blackscholes" || row.Threads != 4 || row.Arch != HighPerf {
		t.Errorf("row identity wrong: %+v", row)
	}
	if row.ErrPct < 0 {
		t.Errorf("negative error %v", row.ErrPct)
	}
	if row.DetailFraction <= 0 || row.DetailFraction > 1 {
		t.Errorf("detail fraction %v out of (0,1]", row.DetailFraction)
	}
	if row.SpeedupDetail < 1 {
		t.Errorf("detail speedup %v < 1", row.SpeedupDetail)
	}
	if row.SampledCycles <= 0 || row.DetailedCycles <= 0 {
		t.Error("cycles not recorded")
	}
}

func TestFigureGridAndAverages(t *testing.T) {
	r := NewRunner(testScale, 1, 2)
	rows, err := r.Figure(HighPerf, []int{2, 4}, core.DefaultParams(), core.Lazy{},
		[]string{"swaptions", "histogram"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("grid has %d rows, want 4", len(rows))
	}
	avgs := AverageByThreads(rows)
	if len(avgs) != 2 {
		t.Fatalf("averages for %d thread counts, want 2", len(avgs))
	}
	for _, a := range avgs {
		if a.MaxErrPct < a.MeanErrPct {
			t.Errorf("max error %v below mean %v", a.MaxErrPct, a.MeanErrPct)
		}
	}
}

// impostorLazy spells its name like the parseable lazy policy but
// behaves differently: it resamples on every fast-retired instance.
type impostorLazy struct{}

func (impostorLazy) Name() string                    { return "lazy" }
func (impostorLazy) ShouldResample(_, fast int) bool { return fast >= 1 }

// TestFigurePreservesNonRoundTrippablePolicies: a policy whose textual
// name does not reconstruct it (here: a custom type colliding with the
// "lazy" spelling) must run as the caller's value, not be silently
// replaced by the default build of its name.
func TestFigurePreservesNonRoundTrippablePolicies(t *testing.T) {
	r := NewRunner(testScale, 1, 2)
	rows, err := r.Figure(HighPerf, []int{2}, core.DefaultParams(), impostorLazy{}, []string{"blackscholes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	// The impostor resamples aggressively; the real lazy policy never
	// does. If Figure had substituted ParsePolicy("lazy")'s build, the
	// periodic-resample count would be zero.
	if rows[0].Sampler.ResamplesPeriodic == 0 {
		t.Error("custom policy was replaced by the default build of its name")
	}
	lazyRows, err := r.Figure(HighPerf, []int{2}, core.DefaultParams(), core.Lazy{}, []string{"blackscholes"})
	if err != nil {
		t.Fatal(err)
	}
	if lazyRows[0].Sampler.ResamplesPeriodic != 0 {
		t.Error("real lazy policy reported periodic resamples")
	}
}

func TestVariationRows(t *testing.T) {
	r := NewRunner(testScale, 1, 2)
	rows, err := r.Variation(HighPerf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("variation rows = %d, want 19", len(rows))
	}
	for _, row := range rows {
		b := row.Box
		if !(b.P5 <= b.Median && b.Median <= b.P95) {
			t.Errorf("%s: box disordered %+v", row.Bench, b)
		}
		if row.Within5 != (b.WhiskerSpread() <= 5) {
			t.Errorf("%s: Within5 inconsistent with whiskers", row.Bench)
		}
	}
}

func TestClassificationAgreement(t *testing.T) {
	a := []VariationRow{{Bench: "x", Within5: true}, {Bench: "y", Within5: false}}
	b := []VariationRow{{Bench: "x", Within5: true}, {Bench: "y", Within5: true}, {Bench: "z", Within5: true}}
	agree, total := ClassificationAgreement(a, b)
	if agree != 1 || total != 2 {
		t.Errorf("agreement = %d/%d, want 1/2", agree, total)
	}
}

func TestSweepShapes(t *testing.T) {
	r := NewRunner(testScale, 1, 2)
	pts, err := r.SweepH([]int{1, 4}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Value != 1 || pts[1].Value != 4 {
		t.Errorf("sweep points wrong: %+v", pts)
	}
	for _, p := range pts {
		if p.AvgErrPct < 0 || p.AvgSpeedup <= 0 {
			t.Errorf("bad sweep point %+v", p)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 runs 64-thread baselines")
	}
	r := NewRunner(testScale, 1, 2)
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("Table I rows = %d, want 19", len(rows))
	}
	for _, row := range rows {
		if row.Instances <= 0 || row.Types <= 0 || row.Instructions <= 0 {
			t.Errorf("row %s incomplete: %+v", row.Bench, row)
		}
	}
}

func TestRenderers(t *testing.T) {
	vr := []VariationRow{{Bench: "cholesky", Within5: true}}
	if s := RenderVariation("Fig X", vr); !strings.Contains(s, "cholesky") || !strings.Contains(s, "Fig X") {
		t.Error("variation render missing content")
	}
	sr := []SampledRow{{Bench: "dedup", Threads: 8, ErrPct: 3.25, SpeedupWall: 12}}
	out := RenderSampled("Fig Y", sr)
	if !strings.Contains(out, "dedup") || !strings.Contains(out, "3.2") || !strings.Contains(out, "average") {
		t.Errorf("sampled render missing content:\n%s", out)
	}
	sw := []SweepPoint{{Value: 4, AvgErrPct: 1.5, AvgSpeedup: 20}}
	if s := RenderSweep("Fig Z", "H", sw); !strings.Contains(s, "| 4 |") {
		t.Error("sweep render missing row")
	}
	t1 := []Table1Row{{Bench: "knn", Types: 2, Instances: 100, Instructions: 5e6}}
	if s := RenderTable1(t1, 0.125); !strings.Contains(s, "knn") {
		t.Error("table1 render missing row")
	}
	if s := RenderSummary(sr); !strings.Contains(s, "Paper") {
		t.Error("summary render missing paper reference")
	}
}

func TestRenderConfidence(t *testing.T) {
	conf := strata.Confidence{
		Strata: 12, Population: 465, Sampled: 133,
		Estimate: 5.4e6, StdErr: 1.3e5, Lo: 5.13e6, Hi: 5.67e6, Z: 1.96,
	}
	rows := []SampledRow{
		{Bench: "dedup", Threads: 8, Confidence: &conf, DetailedTaskCycles: 5.41e6},
		{Bench: "cholesky", Threads: 8}, // no CI: must be skipped
		{Bench: "dedup", Threads: 16, Confidence: &conf, DetailedTaskCycles: 9e6},
	}
	out := RenderConfidence("CI report", rows)
	if !strings.Contains(out, "dedup") || strings.Contains(out, "cholesky") {
		t.Errorf("confidence table rows wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 intervals cover the detailed reference") {
		t.Errorf("coverage tally wrong:\n%s", out)
	}
	if !strings.Contains(out, "yes") || !strings.Contains(out, "no") {
		t.Errorf("coverage marks missing:\n%s", out)
	}
}
