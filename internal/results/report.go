package results

import (
	"fmt"
	"sort"
	"strings"
)

// Markdown renderers for the experiment outputs. They print the same rows
// and series the paper's tables and figures report.

// RenderVariation renders a Figure 1/5-style table of IPC-variation box
// statistics.
func RenderVariation(title string, rows []VariationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| Benchmark | P5 [%] | Q1 [%] | Median [%] | Q3 [%] | P95 [%] | within ±5% |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|:---:|\n")
	within := 0
	for _, row := range rows {
		mark := "no"
		if row.Within5 {
			mark = "yes"
			within++
		}
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %.1f | %.1f | %.1f | %s |\n",
			row.Bench, row.Box.P5, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.P95, mark)
	}
	fmt.Fprintf(&b, "\n%d of %d benchmarks within ±5%% (paper: 15 of 19).\n", within, len(rows))
	return b.String()
}

// RenderSampled renders a Figure 7-10-style table: per-benchmark error and
// speedup columns per thread count, plus the per-thread-count averages.
func RenderSampled(title string, rows []SampledRow) string {
	threadSet := map[int]bool{}
	for _, r := range rows {
		threadSet[r.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	type cell struct{ err, speed float64 }
	byBench := map[string]map[int]cell{}
	var benchOrder []string
	for _, r := range rows {
		if _, ok := byBench[r.Bench]; !ok {
			byBench[r.Bench] = map[int]cell{}
			benchOrder = append(benchOrder, r.Bench)
		}
		byBench[r.Bench][r.Threads] = cell{err: r.ErrPct, speed: r.SpeedupWall}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| Benchmark |")
	for _, t := range threads {
		fmt.Fprintf(&b, " err%%@%dT | spd@%dT |", t, t)
	}
	b.WriteString("\n|---|")
	for range threads {
		b.WriteString("---:|---:|")
	}
	b.WriteString("\n")
	for _, bn := range benchOrder {
		fmt.Fprintf(&b, "| %s |", bn)
		for _, t := range threads {
			c := byBench[bn][t]
			fmt.Fprintf(&b, " %.1f | %.1f |", c.err, c.speed)
		}
		b.WriteString("\n")
	}
	b.WriteString("| **average** |")
	for _, avg := range AverageByThreads(rows) {
		fmt.Fprintf(&b, " %.1f | %.1f |", avg.MeanErrPct, avg.MeanSpeedupW)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderConfidence renders the confidence report of stratified runs: the
// estimated total task cycles, the confidence interval, its relative
// width, and whether the detailed reference's true total falls inside.
// Rows without a Confidence (non-stratified policies) are skipped.
func RenderConfidence(title string, rows []SampledRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| Benchmark | T | strata | samples | est Mcycles | 95% CI [M] | ±width | true in CI |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|:---:|\n")
	covered, total := 0, 0
	for _, row := range rows {
		c := row.Confidence
		if c == nil {
			continue
		}
		total++
		mark := "no"
		if c.Covers(row.DetailedTaskCycles) {
			mark = "yes"
			covered++
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.2f | [%.2f, %.2f] | %.1f%% | %s |\n",
			row.Bench, row.Threads, c.Strata, c.Sampled,
			c.Estimate/1e6, c.Lo/1e6, c.Hi/1e6, 100*c.RelWidth()/2, mark)
	}
	fmt.Fprintf(&b, "\n%d of %d intervals cover the detailed reference.\n", covered, total)
	return b.String()
}

// RenderSweep renders a Figure 6-style series.
func RenderSweep(title, param string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	fmt.Fprintf(&b, "| %s | avg error [%%] | avg speedup |\n|---:|---:|---:|\n", param)
	for _, p := range points {
		fmt.Fprintf(&b, "| %d | %.2f | %.1f |\n", p.Value, p.AvgErrPct, p.AvgSpeedup)
	}
	return b.String()
}

// RenderTable1 renders the Table I reproduction.
func RenderTable1(rows []Table1Row, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Table I (scale %.3g)\n\n", scale)
	b.WriteString("| Benchmark | #Types | #Instances | Instr | sim 1T | sim 64T | Properties |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %.1fM | %v | %v | %s |\n",
			r.Bench, r.Types, r.Instances, float64(r.Instructions)/1e6,
			r.Wall1.Round(1e6), r.Wall64.Round(1e6), r.Properties)
	}
	return b.String()
}

// RenderSummary renders the headline comparison against the paper's
// abstract: 64-thread lazy sampling speedup and error.
func RenderSummary(lazy64 []SampledRow) string {
	avg := AverageByThreads(lazy64)
	var b strings.Builder
	b.WriteString("### Headline (lazy sampling, high-performance architecture)\n\n")
	b.WriteString("| Threads | avg err [%] | max err [%] | avg wall speedup | geo detail speedup |\n")
	b.WriteString("|---:|---:|---:|---:|---:|\n")
	for _, a := range avg {
		fmt.Fprintf(&b, "| %d | %.1f | %.1f | %.1f | %.1f |\n",
			a.Threads, a.MeanErrPct, a.MaxErrPct, a.MeanSpeedupW, a.GeoSpeedupDet)
	}
	b.WriteString("\nPaper (64 threads): avg error 1.8%, max error 15.0%, speedup 19.1x.\n")
	return b.String()
}
