package results

import (
	"fmt"
	"sync"
	"time"

	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/stats"
	"taskpoint/internal/trace"
)

// VariationRow is one box plot of Figure 1 or Figure 5: the distribution
// of per-instance IPC, normalised per task type to percent deviation from
// the type mean.
type VariationRow struct {
	Bench string
	Box   stats.Box
	// Within5 reports whether the whiskers (5th..95th percentile) stay
	// inside ±5%, the paper's regularity criterion.
	Within5 bool
}

// Variation runs the IPC-variation experiment on one architecture:
// Figure 1 uses Native (detailed simulation + system noise standing in for
// the real machine), Figure 5 uses HighPerf.
func (r *Runner) Variation(arch Arch, threads int) ([]VariationRow, error) {
	names := bench.Names()
	rows := make([]VariationRow, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res, err := r.Detailed(name, arch, threads)
			if err != nil {
				errs[i] = err
				return
			}
			prog, err := r.Program(name)
			if err != nil {
				errs[i] = err
				return
			}
			// Normalise IPC per task type and pool the deviations.
			var pooled []float64
			for t := 0; t < prog.NumTypes(); t++ {
				ipcs := res.IPCOfType(trace.TypeID(t))
				if len(ipcs) < 2 {
					continue
				}
				norm, err := stats.NormalizePct(ipcs)
				if err != nil {
					continue
				}
				pooled = append(pooled, norm...)
			}
			box, err := stats.BoxOf(pooled)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			rows[i] = VariationRow{
				Bench:   name,
				Box:     box,
				Within5: box.WhiskerSpread() <= 5,
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// ClassificationAgreement compares two variation experiments (native vs
// simulated) and counts benchmarks classified identically as within/beyond
// ±5% — the paper's §IV claim (18 of 19 agree).
func ClassificationAgreement(a, b []VariationRow) (agree int, total int) {
	byName := map[string]bool{}
	for _, row := range a {
		byName[row.Bench] = row.Within5
	}
	for _, row := range b {
		w, ok := byName[row.Bench]
		if !ok {
			continue
		}
		total++
		if w == row.Within5 {
			agree++
		}
	}
	return agree, total
}

// SweepPoint is one x-position of Figure 6: a parameter value with the
// error and speedup averaged over the sensitivity benchmarks and thread
// counts.
type SweepPoint struct {
	Value      int
	AvgErrPct  float64
	AvgSpeedup float64
}

// sweep evaluates the sensitivity benchmarks over the given thread counts
// for every parameter configuration produced by mkParams.
func (r *Runner) sweep(values []int, threads []int, mkParams func(v int) (core.Params, core.Policy)) ([]SweepPoint, error) {
	names := bench.SensitivityNames()
	points := make([]SweepPoint, len(values))
	for vi, v := range values {
		params, policy := mkParams(v)
		var errsAll, speedups []float64
		for _, tc := range threads {
			rows, err := r.Figure(HighPerf, []int{tc}, params, policy, names)
			if err != nil {
				return nil, err
			}
			for _, row := range rows {
				errsAll = append(errsAll, row.ErrPct)
				speedups = append(speedups, row.SpeedupWall)
			}
		}
		points[vi] = SweepPoint{
			Value:      v,
			AvgErrPct:  stats.Mean(errsAll),
			AvgSpeedup: stats.Mean(speedups),
		}
	}
	return points, nil
}

// SweepW reproduces Figure 6a: error and speedup for warm-up sizes W,
// with H=10 and P=infinity, averaged over 32- and 64-thread simulations of
// the sensitivity benchmarks.
func (r *Runner) SweepW(ws []int, threads []int) ([]SweepPoint, error) {
	return r.sweep(ws, threads, func(w int) (core.Params, core.Policy) {
		p := core.DefaultParams()
		p.W = w
		p.H = 10
		return p, core.Lazy{}
	})
}

// SweepH reproduces Figure 6b: error and speedup for history sizes H, with
// W=2 and P=infinity.
func (r *Runner) SweepH(hs []int, threads []int) ([]SweepPoint, error) {
	return r.sweep(hs, threads, func(h int) (core.Params, core.Policy) {
		p := core.DefaultParams()
		p.W = 2
		p.H = h
		return p, core.Lazy{}
	})
}

// SweepP reproduces Figure 6c: error and speedup for sampling periods P,
// with W=2 and H=4.
func (r *Runner) SweepP(ps []int, threads []int) ([]SweepPoint, error) {
	return r.sweep(ps, threads, func(p int) (core.Params, core.Policy) {
		par := core.DefaultParams()
		par.W = 2
		par.H = 4
		return par, core.Periodic{P: p}
	})
}

// Table1Row is one row of Table I: the benchmark inventory with the
// measured wall time of full detailed simulation at 1 and 64 threads.
type Table1Row struct {
	Bench     string
	Types     int
	Instances int
	// Instructions is the total dynamic instruction count at the
	// runner's scale.
	Instructions int64
	// Wall1 and Wall64 are measured detailed-simulation times.
	Wall1, Wall64 time.Duration
	Properties    string
}

// Table1 reproduces Table I at the runner's scale.
func (r *Runner) Table1() ([]Table1Row, error) {
	specs := bench.Registry()
	rows := make([]Table1Row, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *bench.Spec) {
			defer wg.Done()
			prog, err := r.Program(spec.Name)
			if err != nil {
				errs[i] = err
				return
			}
			d1, err := r.Detailed(spec.Name, HighPerf, 1)
			if err != nil {
				errs[i] = err
				return
			}
			d64, err := r.Detailed(spec.Name, HighPerf, 64)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = Table1Row{
				Bench:        spec.Name,
				Types:        prog.NumTypes(),
				Instances:    prog.NumTasks(),
				Instructions: prog.TotalInstructions(),
				Wall1:        d1.Wall,
				Wall64:       d64.Wall,
				Properties:   spec.Properties,
			}
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
