package results

import "testing"

func TestParseArch(t *testing.T) {
	for _, a := range Arches() {
		got, err := ParseArch(string(a))
		if err != nil || got != a {
			t.Errorf("ParseArch(%q) = %v, %v", a, got, err)
		}
	}
	if got, err := ParseArch("hp"); err != nil || got != HighPerf {
		t.Errorf("ParseArch(hp) = %v, %v", got, err)
	}
	if got, err := ParseArch("lp"); err != nil || got != LowPower {
		t.Errorf("ParseArch(lp) = %v, %v", got, err)
	}
	if _, err := ParseArch("tpu"); err == nil {
		t.Error("ParseArch(tpu): expected error")
	}
}
