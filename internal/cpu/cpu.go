// Package cpu implements the detailed core timing model of the simulator's
// detailed mode. Like TaskSim's detailed mode, it is a trace-driven model
// based on reorder-buffer occupancy analysis (Lee et al. [21] in the
// paper): instructions dispatch in program order limited by the issue
// width, wait for their register dependencies and memory latencies, and
// commit in order limited by the commit rate, with the ROB size bounding
// how far execution can run ahead of the oldest incomplete instruction.
//
// Instruction streams are expanded on the fly from trace.Segment
// descriptors using the instance seed, so the same instance always yields
// the same instruction mix, while timing depends on the simulated cache
// and contention state at the moment it executes.
package cpu

import (
	"fmt"

	"taskpoint/internal/trace"
)

// Config describes the modelled core (paper Table II rows 1-3).
type Config struct {
	// ROB is the reorder buffer size in instructions.
	ROB int
	// IssueWidth is the maximum dispatch rate (instructions/cycle).
	IssueWidth int
	// CommitWidth is the maximum commit rate (instructions/cycle).
	CommitWidth int
	// IntLat is the latency of short arithmetic instructions.
	IntLat float64
	// FPLat is the latency of long arithmetic (floating-point)
	// instructions.
	FPLat float64
	// StoreLat is the latency charged to a store before it can commit
	// (the write buffer hides the memory round trip).
	StoreLat float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.ROB <= 0:
		return fmt.Errorf("cpu: ROB size %d must be positive", c.ROB)
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu: issue width %d must be positive", c.IssueWidth)
	case c.CommitWidth <= 0:
		return fmt.Errorf("cpu: commit width %d must be positive", c.CommitWidth)
	case c.IntLat <= 0 || c.FPLat <= 0 || c.StoreLat <= 0:
		return fmt.Errorf("cpu: latencies must be positive")
	}
	return nil
}

// MemPort is the memory interface a core issues its loads and stores to.
// The sim package binds it to one core of the mem.System.
type MemPort interface {
	// Access returns the latency of an access issued at time now.
	Access(addr uint64, write, atomic bool, now float64) float64
}

// Core is the timing state of one simulated core. Pipeline state persists
// across task instances executed on the core; after long fast-forward gaps
// the recorded times lie in the past and impose no constraints, which
// naturally models a drained pipeline.
//
// The rings are sized to the next power of two >= ROB so the
// per-instruction history reads are masked ANDs instead of integer
// modulo. Only the last ROB instructions are ever read back (dependency
// distances are capped at ROB-1 and the occupancy check reads exactly
// ROB back), so the widened ring holds every value the model consults and
// the timings are bit-identical to a ROB-sized ring.
type Core struct {
	cfg        Config
	mem        MemPort
	compRing   []float64 // completion times of recent instructions
	commitRing []float64 // commit times of recent instructions
	head       int64     // total instructions dispatched on this core
	issueSlot  float64   // next available dispatch slot
	lastCommit float64
	invIssue   float64
	invCommit  float64
}

// New builds a core. It panics on invalid configuration: configs are
// produced by the sim package's validated architecture constructors.
func New(cfg Config, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ring := 1
	for ring < cfg.ROB {
		ring <<= 1
	}
	return &Core{
		cfg:        cfg,
		mem:        mem,
		compRing:   make([]float64, ring),
		commitRing: make([]float64, ring),
		invIssue:   1 / float64(cfg.IssueWidth),
		invCommit:  1 / float64(cfg.CommitWidth),
	}
}

// Reset restores the core to a cold pipeline at time 0.
func (c *Core) Reset() {
	for i := range c.compRing {
		c.compRing[i] = 0
		c.commitRing[i] = 0
	}
	c.head = 0
	c.issueSlot = 0
	c.lastCommit = 0
}

// Exec is the execution cursor of one task instance. It carries the
// deterministic generator state, so a task can be simulated in bounded
// quanta interleaved with other cores.
//
// Two generators are kept apart on purpose: instruction classes and
// register dependencies come from a type-level seed, because all instances
// of a task type execute the same code and therefore the same instruction
// mix; memory addresses come from the per-instance seed, because each
// instance operates on its own data (paper §II-A). This split gives
// instances of a type the per-type IPC regularity Figure 1 documents,
// while input-dependent types (whose segment parameters themselves vary
// per instance) still diverge.
//
// The generator state is embedded by value (pcgRand reproduces
// math/rand/v2's stream without the Source interface indirection), so
// resetting a cursor for a new instance allocates nothing: engines keep
// a free list of cursors instead of allocating one per task instance.
type Exec struct {
	inst     *trace.Instance
	segIdx   int
	segDone  int64
	mixRng   pcgRand // instruction classes + dependency distances
	addrRng  pcgRand // memory addresses
	memIdx   int64
	chase    uint64
	lastLoad float64 // completion time of the previous load (chase deps)
	retired  int64

	// Incremental stride-offset state (see Core.address): the cached
	// offset of the CURRENT memIdx within segment strideIdx, its per-
	// access step, and whether the incremental form is exact for this
	// segment's parameters.
	strideIdx  int
	strideOff  uint64
	strideStep uint64
	strideOK   bool
}

// NewExec creates an execution cursor for inst.
func NewExec(inst *trace.Instance) *Exec {
	e := &Exec{}
	e.Reset(inst)
	return e
}

// Reset re-targets the cursor at a new instance, restoring the exact
// state a fresh NewExec(inst) would have, without allocating. It is the
// reuse hook behind the engine's cursor free list.
func (e *Exec) Reset(inst *trace.Instance) {
	e.inst = inst
	e.segIdx = 0
	e.segDone = 0
	e.mixRng.Seed(uint64(inst.Type)+0x9e3779b97f4a7c15, 0xd1b54a32d192ed03)
	e.addrRng.Seed(inst.Seed, 0x2545f4914f6cdd1d)
	e.memIdx = 0
	e.chase = inst.Seed | 1
	e.lastLoad = 0
	e.retired = 0
	e.strideIdx = -1
	e.strideOff = 0
	e.strideStep = 0
	e.strideOK = false
}

// Instance returns the instance being executed.
func (e *Exec) Instance() *trace.Instance { return e.inst }

// Retired returns the number of instructions retired so far.
func (e *Exec) Retired() int64 { return e.retired }

// Finished reports whether the whole instance has been executed.
func (e *Exec) Finished() bool { return e.segIdx >= len(e.inst.Segments) }

// Run executes instructions of e on the core until the core-local commit
// time reaches deadline, limit instructions have executed, or the instance
// finishes — whichever comes first. The task does not start before now.
// It returns the core-local time after the last executed instruction
// commits and whether the instance finished.
//
// The time-based deadline is what keeps a multi-core simulation causal:
// the engine advances cores in bounded time slices, so the skew between
// cores sharing caches and DRAM queues stays bounded regardless of how
// slow the code on any one core is.
//
// The start-time constraint applies only to the first quantum of the
// instance; on later quanta the pipeline continues from its own state
// (issue may legitimately run behind commit).
func (c *Core) Run(e *Exec, limit int64, deadline, now float64) (end float64, finished bool) {
	if e.retired == 0 {
		if c.issueSlot < now {
			c.issueSlot = now
		}
		if c.lastCommit < now {
			c.lastCommit = now
		}
	}
	executed := int64(0)
	for executed < limit && !e.Finished() && (executed == 0 || c.lastCommit < deadline) {
		seg := &e.inst.Segments[e.segIdx]
		n := seg.N - e.segDone
		if n > limit-executed {
			n = limit - executed
		}
		n = c.runSegment(e, seg, n, deadline)
		executed += n
		e.segDone += n
		e.retired += n
		if e.segDone >= seg.N {
			e.segIdx++
			e.segDone = 0
		}
	}
	return c.lastCommit, e.Finished()
}

// runSegment executes up to n instructions of seg, stopping once the
// commit time passes deadline (at least one instruction always executes).
// It returns the number of instructions executed.
func (c *Core) runSegment(e *Exec, seg *trace.Segment, n int64, deadline float64) int64 {
	rob := int64(c.cfg.ROB)
	// Local ring slices with len-derived masks let the compiler prove
	// the masked indices in bounds and drop the per-instruction checks.
	comp, cring := c.compRing, c.commitRing
	cmask := uint64(len(comp) - 1)
	wmask := uint64(len(cring) - 1)
	// Pipeline state and segment parameters live in locals for the loop:
	// the memory-port call each memory instruction makes would otherwise
	// force the compiler to reload every field per instruction.
	var (
		head        = c.head
		issueSlot   = c.issueSlot
		lastCommit  = c.lastCommit
		invIssue    = c.invIssue
		invCommit   = c.invCommit
		memThresh   = f64Thresh(seg.MemRatio)
		storeThresh = f64Thresh(seg.StoreFrac)
		fpThresh    = f64Thresh(seg.FPFrac)
		depDist     = seg.DepDist
		atomic      = seg.Atomic
		chasePat    = seg.Pat == trace.PatChase
		intLat      = c.cfg.IntLat
		fpLat       = c.cfg.FPLat
		storeLat    = c.cfg.StoreLat
	)
	k := int64(0)
	for ; k < n; k++ {
		if k > 0 && lastCommit >= deadline {
			break
		}
		// Register dependency: distance with mean seg.DepDist, at
		// least 1, bounded by the ROB window.
		ready := 0.0
		d := int64(1)
		if depDist > 1 {
			d += int64(e.mixRng.ExpFloat64() * (depDist - 1))
		}
		if d > rob-1 {
			d = rob - 1
		}
		if d <= head {
			ready = comp[uint64(head-d)&cmask]
		}

		// ROB occupancy: instruction head cannot dispatch before the
		// instruction ROB slots older has committed. (The slot of
		// instruction head-ROB still holds its commit time: the ring
		// spans at least ROB instructions.)
		robFree := cring[uint64(head-rob)&wmask]

		issue := issueSlot
		if ready > issue {
			issue = ready
		}
		if robFree > issue {
			issue = robFree
		}

		// Latency by instruction class.
		var lat float64
		if e.mixRng.draw53() < memThresh {
			addr := c.address(e, seg)
			isStore := e.mixRng.draw53() < storeThresh
			memLat := c.mem.Access(addr, isStore, atomic, issue)
			if isStore && !atomic {
				// The write buffer hides the store round trip.
				lat = storeLat
			} else {
				if chasePat {
					// Serialised loads: wait for the previous one.
					if e.lastLoad > issue {
						issue = e.lastLoad
					}
				}
				lat = memLat
				e.lastLoad = issue + lat
			}
		} else if e.mixRng.draw53() < fpThresh {
			lat = fpLat
		} else {
			lat = intLat
		}

		complete := issue + lat
		commit := lastCommit + invCommit
		if complete > commit {
			commit = complete
		}

		comp[uint64(head)&cmask] = complete
		cring[uint64(head)&wmask] = commit
		lastCommit = commit
		issueSlot = issue + invIssue
		head++
	}
	c.head = head
	c.issueSlot = issueSlot
	c.lastCommit = lastCommit
	return k
}

// address generates the next memory address of the segment's pattern.
func (c *Core) address(e *Exec, seg *trace.Segment) uint64 {
	fp := seg.Footprint
	if fp == 0 {
		return seg.Base
	}
	switch seg.Pat {
	case trace.PatStride:
		// The stride offset advances by (stride mod footprint) per
		// access, replacing the 64-bit division of the closed form
		// (memIdx*stride) mod footprint with one add and a conditional
		// subtract. The closed form remains as fallback for parameters
		// where incremental modular arithmetic would diverge (negative
		// strides or products overflowing int64), keeping the generated
		// address sequence bit-identical in every case.
		var off uint64
		if e.strideIdx != e.segIdx {
			e.strideIdx = e.segIdx
			e.strideOK = seg.Stride >= 0 && fp < 1<<62 &&
				(seg.Stride == 0 || e.memIdx+seg.N <= (1<<62)/seg.Stride)
			if e.strideOK {
				e.strideStep = uint64(seg.Stride) % fp
			}
			off = uint64(e.memIdx*seg.Stride) % fp
		} else {
			off = e.strideOff
		}
		e.memIdx++
		if e.strideOK {
			next := off + e.strideStep
			if next >= fp {
				next -= fp
			}
			e.strideOff = next
		} else {
			e.strideOff = uint64(e.memIdx*seg.Stride) % fp
		}
		return seg.Base + off
	case trace.PatRandom:
		return seg.Base + e.addrRng.Uint64N(fp)
	case trace.PatGaussian:
		// Hot spot in the middle of the footprint.
		off := float64(fp)/2 + e.addrRng.NormFloat64()*float64(fp)/8
		if off < 0 {
			off = 0
		}
		if off >= float64(fp) {
			off = float64(fp) - 1
		}
		return seg.Base + uint64(off)
	case trace.PatChase:
		e.chase = e.chase*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		return seg.Base + e.chase%fp
	default:
		return seg.Base
	}
}
