package cpu

import (
	"math/rand/v2"
	"testing"
)

// TestPCGRandMatchesStdlib locks the bit-exact equivalence between the
// inlined pcgRand and math/rand/v2's Rand over a PCG source: same seeds,
// same call sequence, identical values for every draw kind the simulator
// uses. The simulator's determinism contract (golden digests) rests on
// this equivalence.
func TestPCGRandMatchesStdlib(t *testing.T) {
	seeds := [][2]uint64{
		{0, 0},
		{1, 2},
		{0x9e3779b97f4a7c15, 0xd1b54a32d192ed03},
		{12345, 0x2545f4914f6cdd1d},
		{^uint64(0), ^uint64(0)},
	}
	for _, s := range seeds {
		var got pcgRand
		got.Seed(s[0], s[1])
		want := rand.New(rand.NewPCG(s[0], s[1]))
		for i := 0; i < 4096; i++ {
			// Interleave every draw kind so stream positions are
			// exercised across kind boundaries, like runSegment does.
			switch i % 5 {
			case 0:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %v draw %d: Uint64 = %d, want %d", s, i, g, w)
				}
			case 1:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %v draw %d: Float64 = %v, want %v", s, i, g, w)
				}
			case 2:
				if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
					t.Fatalf("seed %v draw %d: ExpFloat64 = %v, want %v", s, i, g, w)
				}
			case 3:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %v draw %d: NormFloat64 = %v, want %v", s, i, g, w)
				}
			case 4:
				n := uint64(i)*2777 + 3 // mixes power-of-two and general moduli
				if i%10 == 4 {
					n = 1 << (i % 40)
				}
				if g, w := got.Uint64N(n), want.Uint64N(n); g != w {
					t.Fatalf("seed %v draw %d: Uint64N(%d) = %d, want %d", s, i, n, g, w)
				}
			}
		}
	}
}
