package cpu

import (
	"math"
	"testing"

	"taskpoint/internal/trace"
)

// fixedPort is a memory port with a constant latency, isolating the core
// model (and its per-instance cursor management) from the cache hierarchy.
type fixedPort struct{ lat float64 }

func (p fixedPort) Access(addr uint64, write, atomic bool, now float64) float64 { return p.lat }

func benchInstance(instr int64) *trace.Instance {
	return &trace.Instance{
		ID: 0, Type: 0, Seed: 12345,
		Segments: []trace.Segment{{
			N: instr, MemRatio: 0.25, StoreFrac: 0.3, Pat: trace.PatStride,
			Stride: 64, Footprint: 1 << 16, DepDist: 4, FPFrac: 0.2,
		}},
	}
}

// BenchmarkKernelExec measures the task-execution hot loop end to end:
// one instance cursor per op (the per-task-instance cost every detailed
// task pays), run to completion on one core.
func BenchmarkKernelExec(b *testing.B) {
	core := New(Config{ROB: 168, IssueWidth: 4, CommitWidth: 4, IntLat: 1, FPLat: 4, StoreLat: 2}, fixedPort{lat: 6})
	inst := benchInstance(8192)
	b.ReportAllocs()
	b.ResetTimer()
	var retired int64
	for i := 0; i < b.N; i++ {
		e := NewExec(inst)
		for !e.Finished() {
			core.Run(e, 1<<40, math.Inf(1), 0)
		}
		retired += e.Retired()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(retired)/s, "instr/s")
	}
}
