package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"taskpoint/internal/trace"
)

// fixedMem returns the same latency for every access and records them.
type fixedMem struct {
	lat      float64
	accesses int
	writes   int
	atomics  int
	addrs    []uint64
}

func (m *fixedMem) Access(addr uint64, write, atomic bool, now float64) float64 {
	m.accesses++
	if write {
		m.writes++
	}
	if atomic {
		m.atomics++
	}
	if len(m.addrs) < 4096 {
		m.addrs = append(m.addrs, addr)
	}
	return m.lat
}

func cfg() Config {
	return Config{ROB: 32, IssueWidth: 4, CommitWidth: 4, IntLat: 1, FPLat: 4, StoreLat: 2}
}

func inst(segs ...trace.Segment) *trace.Instance {
	return &trace.Instance{ID: 0, Type: 0, Seed: 12345, Segments: segs}
}

func runAll(t *testing.T, c *Core, e *Exec, start float64) float64 {
	t.Helper()
	now := start
	for {
		end, fin := c.Run(e, 1000, math.Inf(1), now)
		now = end
		if fin {
			return end
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{ROB: 0, IssueWidth: 4, CommitWidth: 4, IntLat: 1, FPLat: 4, StoreLat: 2},
		{ROB: 32, IssueWidth: 0, CommitWidth: 4, IntLat: 1, FPLat: 4, StoreLat: 2},
		{ROB: 32, IssueWidth: 4, CommitWidth: 0, IntLat: 1, FPLat: 4, StoreLat: 2},
		{ROB: 32, IssueWidth: 4, CommitWidth: 4, IntLat: 0, FPLat: 4, StoreLat: 2},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{}, &fixedMem{lat: 1})
}

func TestPureALUIPCApproachesIssueWidth(t *testing.T) {
	// Independent 1-cycle instructions (huge DepDist): IPC should be
	// close to the commit width.
	c := New(cfg(), &fixedMem{lat: 1})
	e := NewExec(inst(trace.Segment{N: 40000, DepDist: 64, Footprint: 0}))
	end := runAll(t, c, e, 0)
	ipc := float64(e.Retired()) / end
	if ipc < 3.0 || ipc > 4.01 {
		t.Errorf("independent ALU IPC = %v, want near 4", ipc)
	}
}

func TestSerialChainIPCNearOne(t *testing.T) {
	// DepDist 1 serialises everything: IPC <= 1 for 1-cycle ops.
	c := New(cfg(), &fixedMem{lat: 1})
	e := NewExec(inst(trace.Segment{N: 20000, DepDist: 1}))
	end := runAll(t, c, e, 0)
	ipc := float64(e.Retired()) / end
	if ipc > 1.01 {
		t.Errorf("serialised IPC = %v, want <= 1", ipc)
	}
}

func TestMemoryLatencyLowersIPC(t *testing.T) {
	fast := New(cfg(), &fixedMem{lat: 4})
	slow := New(cfg(), &fixedMem{lat: 200})
	seg := trace.Segment{N: 20000, MemRatio: 0.3, Pat: trace.PatRandom, Footprint: 1 << 20, DepDist: 4}
	e1 := NewExec(inst(seg))
	e2 := NewExec(inst(seg))
	endFast := runAll(t, fast, e1, 0)
	endSlow := runAll(t, slow, e2, 0)
	if endSlow <= endFast {
		t.Errorf("200-cycle memory (%v cycles) should be slower than 4-cycle (%v)", endSlow, endFast)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// With long memory latency, a larger ROB overlaps more misses and
	// finishes sooner (memory-level parallelism).
	small := cfg()
	small.ROB = 8
	big := cfg()
	big.ROB = 168
	seg := trace.Segment{N: 20000, MemRatio: 0.3, Pat: trace.PatRandom, Footprint: 1 << 24, DepDist: 16}
	cS := New(small, &fixedMem{lat: 150})
	cB := New(big, &fixedMem{lat: 150})
	eS := NewExec(inst(seg))
	eB := NewExec(inst(seg))
	endS := runAll(t, cS, eS, 0)
	endB := runAll(t, cB, eB, 0)
	if endB >= endS {
		t.Errorf("ROB=168 (%v) should beat ROB=8 (%v) on memory-bound code", endB, endS)
	}
}

func TestFPLatencySlowsSerialCode(t *testing.T) {
	intSeg := trace.Segment{N: 10000, DepDist: 1, FPFrac: 0}
	fpSeg := trace.Segment{N: 10000, DepDist: 1, FPFrac: 1}
	c1 := New(cfg(), &fixedMem{lat: 1})
	c2 := New(cfg(), &fixedMem{lat: 1})
	e1 := NewExec(inst(intSeg))
	e2 := NewExec(inst(fpSeg))
	end1 := runAll(t, c1, e1, 0)
	end2 := runAll(t, c2, e2, 0)
	if end2 <= end1*2 {
		t.Errorf("serial FP chain (%v) should be much slower than int chain (%v)", end2, end1)
	}
}

func TestDeterministicReplay(t *testing.T) {
	seg := trace.Segment{N: 5000, MemRatio: 0.4, StoreFrac: 0.3, Pat: trace.PatRandom, Footprint: 1 << 16, DepDist: 3, FPFrac: 0.2}
	run := func() float64 {
		c := New(cfg(), &fixedMem{lat: 20})
		e := NewExec(inst(seg))
		return runAll(t, c, e, 0)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same instance, same timing expected: %v vs %v", a, b)
	}
}

func TestQuantumSplitMatchesSingleRun(t *testing.T) {
	// Running in quanta of 100 must give the same final time as one big
	// quantum: the cursor carries all state.
	seg := trace.Segment{N: 5000, MemRatio: 0.2, Pat: trace.PatStride, Stride: 64, Footprint: 1 << 14, DepDist: 4}
	one := New(cfg(), &fixedMem{lat: 10})
	eOne := NewExec(inst(seg))
	endOne, fin := one.Run(eOne, 1<<40, math.Inf(1), 0)
	if !fin {
		t.Fatal("single run did not finish")
	}
	many := New(cfg(), &fixedMem{lat: 10})
	eMany := NewExec(inst(seg))
	now, done := 0.0, false
	for !done {
		now, done = many.Run(eMany, 100, math.Inf(1), now)
	}
	if math.Abs(endOne-now) > 1e-6 {
		t.Errorf("chunked run end %v != single run end %v", now, endOne)
	}
}

func TestStartTimeShiftsExecution(t *testing.T) {
	seg := trace.Segment{N: 1000, DepDist: 2}
	c := New(cfg(), &fixedMem{lat: 1})
	e := NewExec(inst(seg))
	end, _ := c.Run(e, 1<<40, math.Inf(1), 500)
	if end < 500 {
		t.Errorf("end %v before start time 500", end)
	}
}

func TestStrideAddresses(t *testing.T) {
	m := &fixedMem{lat: 1}
	c := New(cfg(), m)
	e := NewExec(inst(trace.Segment{N: 2000, MemRatio: 1, Pat: trace.PatStride, Base: 4096, Stride: 64, Footprint: 1 << 20, DepDist: 8}))
	runAll(t, c, e, 0)
	if len(m.addrs) < 3 {
		t.Fatal("no addresses recorded")
	}
	for i := 1; i < 10; i++ {
		if m.addrs[i]-m.addrs[i-1] != 64 {
			t.Errorf("stride %d between accesses %d and %d, want 64", m.addrs[i]-m.addrs[i-1], i-1, i)
		}
	}
}

func TestAddressesStayInFootprint(t *testing.T) {
	for _, pat := range []trace.Pattern{trace.PatStride, trace.PatRandom, trace.PatGaussian, trace.PatChase} {
		m := &fixedMem{lat: 1}
		c := New(cfg(), m)
		base, fp := uint64(1<<20), uint64(1<<14)
		e := NewExec(inst(trace.Segment{N: 3000, MemRatio: 1, Pat: pat, Base: base, Stride: 64, Footprint: fp, DepDist: 8}))
		runAll(t, c, e, 0)
		for _, a := range m.addrs {
			if a < base || a >= base+fp {
				t.Errorf("%v: address %#x outside [%#x,%#x)", pat, a, base, base+fp)
			}
		}
	}
}

func TestAtomicSegmentsIssueAtomics(t *testing.T) {
	m := &fixedMem{lat: 5}
	c := New(cfg(), m)
	e := NewExec(inst(trace.Segment{N: 1000, MemRatio: 0.5, Atomic: true, Pat: trace.PatRandom, Footprint: 4096, DepDist: 4}))
	runAll(t, c, e, 0)
	if m.atomics == 0 {
		t.Error("atomic segment issued no atomic accesses")
	}
}

func TestChaseSerialisesLoads(t *testing.T) {
	// Pointer chasing must be drastically slower than random access at
	// the same memory latency because loads cannot overlap.
	lat := 100.0
	segR := trace.Segment{N: 5000, MemRatio: 0.5, Pat: trace.PatRandom, Footprint: 1 << 20, DepDist: 16}
	segC := segR
	segC.Pat = trace.PatChase
	cR := New(cfg(), &fixedMem{lat: lat})
	cC := New(cfg(), &fixedMem{lat: lat})
	eR := NewExec(inst(segR))
	eC := NewExec(inst(segC))
	endR := runAll(t, cR, eR, 0)
	endC := runAll(t, cC, eC, 0)
	if endC < endR*1.5 {
		t.Errorf("chase (%v) should be much slower than random (%v)", endC, endR)
	}
}

func TestMultiSegmentInstance(t *testing.T) {
	c := New(cfg(), &fixedMem{lat: 1})
	e := NewExec(inst(
		trace.Segment{N: 100, DepDist: 2},
		trace.Segment{N: 200, DepDist: 2},
	))
	runAll(t, c, e, 0)
	if e.Retired() != 300 {
		t.Errorf("retired %d, want 300", e.Retired())
	}
}

func TestReset(t *testing.T) {
	c := New(cfg(), &fixedMem{lat: 1})
	e := NewExec(inst(trace.Segment{N: 100, DepDist: 2}))
	runAll(t, c, e, 0)
	c.Reset()
	e2 := NewExec(inst(trace.Segment{N: 100, DepDist: 2}))
	end, _ := c.Run(e2, 1<<40, math.Inf(1), 0)
	c2 := New(cfg(), &fixedMem{lat: 1})
	e3 := NewExec(inst(trace.Segment{N: 100, DepDist: 2}))
	end2, _ := c2.Run(e3, 1<<40, math.Inf(1), 0)
	if end != end2 {
		t.Errorf("reset core end %v != fresh core end %v", end, end2)
	}
}

// Property: execution time is monotone, IPC is within (0, CommitWidth],
// and the retired count always matches the instance instruction count.
func TestQuickExecutionInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint16, memRaw, depRaw uint8) bool {
		n := int64(nRaw%5000) + 100
		memRatio := float64(memRaw%100) / 100
		dep := 1 + float64(depRaw%16)
		seg := trace.Segment{
			N: n, MemRatio: memRatio, StoreFrac: 0.3,
			Pat: trace.Pattern(seed % 4), Footprint: 1 << 16, Stride: 64,
			DepDist: dep, FPFrac: 0.1,
		}
		c := New(cfg(), &fixedMem{lat: 30})
		in := inst(seg)
		in.Seed = seed
		e := NewExec(in)
		end, fin := c.Run(e, 1<<40, math.Inf(1), 0)
		if !fin || e.Retired() != n {
			return false
		}
		ipc := float64(n) / end
		return end > 0 && ipc > 0 && ipc <= float64(cfg().CommitWidth)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
