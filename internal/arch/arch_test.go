package arch

import (
	"errors"
	"testing"
)

func TestParseCanonicalAndShortForms(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(string(a))
		if err != nil || got != a {
			t.Errorf("Parse(%q) = %v, %v", a, got, err)
		}
	}
	if got, err := Parse("hp"); err != nil || got != HighPerf {
		t.Errorf("Parse(hp) = %v, %v", got, err)
	}
	if got, err := Parse("lp"); err != nil || got != LowPower {
		t.Errorf("Parse(lp) = %v, %v", got, err)
	}
}

func TestParseUnknownIsErrUnknown(t *testing.T) {
	_, err := Parse("tpu")
	if !errors.Is(err, ErrUnknown) {
		t.Errorf("Parse(tpu) error %v, want ErrUnknown", err)
	}
	_, err = ConfigFor(Arch("tpu"), 4)
	if !errors.Is(err, ErrUnknown) {
		t.Errorf("ConfigFor(tpu) error %v, want ErrUnknown", err)
	}
}

func TestConfigForAndSimOptions(t *testing.T) {
	for _, a := range All() {
		cfg, err := ConfigFor(a, 4)
		if err != nil {
			t.Fatalf("ConfigFor(%s): %v", a, err)
		}
		if cfg.Cores != 4 {
			t.Errorf("%s config has %d cores, want 4", a, cfg.Cores)
		}
	}
	// Only the native machine carries the noise perturber.
	if opts := SimOptions(HighPerf, 42, 4); len(opts) != 0 {
		t.Errorf("high-performance got %d sim options, want 0", len(opts))
	}
	if opts := SimOptions(Native, 42, 4); len(opts) != 1 {
		t.Errorf("native got %d sim options, want 1", len(opts))
	}
}

func TestNamesMatchAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("%d names for %d architectures", len(names), len(all))
	}
	for i, a := range all {
		if names[i] != string(a) {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], a)
		}
	}
}
