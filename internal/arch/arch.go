// Package arch is the single home of the evaluated machine
// configurations: the architecture names of the paper's Table II (plus
// the noise-modelled native stand-in), their parsing, and their mapping
// to simulator configurations. The experiment engine, the evaluation
// runner, the sweep engine and every command front end resolve
// architectures here, so a name parses (and fails) identically
// everywhere.
package arch

import (
	"errors"
	"fmt"
	"strings"

	"taskpoint/internal/noise"
	"taskpoint/internal/sim"
)

// Arch names one of the evaluated machine configurations.
type Arch string

// The evaluated architectures.
const (
	// HighPerf is Table II's high-performance configuration.
	HighPerf Arch = "high-performance"
	// LowPower is Table II's low-power configuration.
	LowPower Arch = "low-power"
	// Native is the high-performance configuration plus the system-noise
	// model, standing in for the paper's SandyBridge-EP machine (Fig 1).
	Native Arch = "native"
)

// ErrUnknown marks architecture lookup failures caused by a name that
// matches no configuration — the error class a "valid architectures"
// listing fixes, parallel to bench.ErrUnknownName. Test with errors.Is.
var ErrUnknown = errors.New("unknown architecture")

// All returns the evaluated architectures in paper order.
func All() []Arch { return []Arch{HighPerf, LowPower, Native} }

// Names returns the canonical architecture names in paper order.
func Names() []string {
	archs := All()
	out := make([]string, len(archs))
	for i, a := range archs {
		out[i] = string(a)
	}
	return out
}

// Listing returns the human-readable "valid architectures" block the
// command front ends print under an ErrUnknown failure: one canonical
// name per line plus the accepted short forms, so the listing stays in
// the one package that owns the names.
func Listing() string {
	var b strings.Builder
	for _, a := range All() {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	b.WriteString("  (plus the short forms hp and lp)\n")
	return b.String()
}

// Parse resolves an architecture from its canonical name or the common
// short forms "hp", "lp" and "native". Unknown names report ErrUnknown.
func Parse(s string) (Arch, error) {
	switch s {
	case string(HighPerf), "hp":
		return HighPerf, nil
	case string(LowPower), "lp":
		return LowPower, nil
	case string(Native):
		return Native, nil
	default:
		return "", fmt.Errorf("arch: %w %q (want high-performance/hp, low-power/lp or native)", ErrUnknown, s)
	}
}

// ConfigFor returns the simulator configuration of arch with the given
// thread count. Unknown architectures report ErrUnknown.
func ConfigFor(a Arch, threads int) (sim.Config, error) {
	switch a {
	case HighPerf:
		return sim.HighPerfConfig(threads), nil
	case LowPower:
		return sim.LowPowerConfig(threads), nil
	case Native:
		return sim.NativeConfig(threads), nil
	default:
		return sim.Config{}, fmt.Errorf("arch: %w %q", ErrUnknown, a)
	}
}

// SimOptions returns the simulation options of an architecture: the
// Native machine carries the system-noise perturber (Fig 1), seeded
// identically for every run at the same (seed, thread count) so detailed
// references and sampled runs see the same noise and stay comparable.
func SimOptions(a Arch, seed uint64, threads int) []sim.Option {
	if a != Native {
		return nil
	}
	return []sim.Option{sim.WithPerturber(noise.New(noise.DefaultConfig(), seed^uint64(threads)))}
}
