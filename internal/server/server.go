package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"taskpoint/internal/engine"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
	"taskpoint/internal/store"
	"taskpoint/internal/sweep"
)

// Server metrics in the default obs registry.
var (
	metricCampaignsAccepted = obs.Default().Counter("server.campaigns.accepted")
	metricCampaignsResumed  = obs.Default().Counter("server.campaigns.resumed")
	metricCellsComputed     = obs.Default().Counter("server.cells.computed")
	metricCellsStoreHits    = obs.Default().Counter("server.cells.store_hits")
	metricCellsJoined       = obs.Default().Counter("server.cells.joined")
	metricCellsFailed       = obs.Default().Counter("server.cells.failed")
)

// Config configures a Server.
type Config struct {
	// Store is the persistent result store (required). The server wires
	// it under the engine's baseline cache as the read-through/
	// write-behind tier, and serves finished cell reports from it.
	Store *store.DiskStore
	// Workers bounds concurrent cell executions; <=1 selects the
	// engine's default (one per CPU).
	Workers int
	// TracePath, when set, mounts the /debug/obs/campaign report over
	// the flight-recorder trace at that path.
	TracePath string
}

// flight is one in-progress computation of a cell, shared by every
// campaign that needs the same content address at the same time.
type flight struct {
	done chan struct{}
	rec  *sweep.Record
	err  error
}

// Server is the campaign service: submitted sweeps run through one
// shared engine and one persistent store, with cross-campaign
// single-flight per content address so no cell is ever simulated twice —
// not by two concurrent campaigns, and not again after a restart.
type Server struct {
	st    *store.DiskStore
	eng   *engine.Engine
	cache *engine.BaselineCache
	mux   *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // campaign IDs in acceptance order
	nextSeq   int
	finished  map[string]outcome // completed before this process started

	flightMu sync.Mutex
	flights  map[string]*flight
}

// New builds a Server over the given store and resumes any campaign a
// previous process accepted but did not finish. It does not listen;
// mount Handler on an http.Server (or use cmd/taskpointd).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	cache := engine.NewBaselineCache()
	cache.SetTier(cfg.Store.Tier())
	opts := []engine.Option{engine.WithBaselineCache(cache)}
	if cfg.Workers > 1 {
		opts = append(opts, engine.WithWorkers(cfg.Workers))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		st:        cfg.Store,
		eng:       engine.New(opts...),
		cache:     cache,
		ctx:       ctx,
		cancel:    cancel,
		campaigns: map[string]*campaign{},
		finished:  map[string]outcome{},
		flights:   map[string]*flight{},
	}
	s.buildMux(cfg.TracePath)
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// Close stops accepting work, waits for running campaigns' goroutines to
// observe cancellation, and flushes write-behind baseline saves.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	s.cache.Sync()
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the shared engine (for tests and embedding callers).
func (s *Server) Engine() *engine.Engine { return s.eng }

func (s *Server) buildMux(tracePath string) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		b, err := obs.Default().MarshalSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	if tracePath != "" {
		ep := query.Endpoint(tracePath)
		mux.Handle("GET "+ep.Pattern, ep.Handler)
	}
	s.mux = mux
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	c, err := s.accept(spec, "")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, c.summary())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sums := make([]Summary, 0, len(s.order)+len(s.finished))
	for _, id := range s.order {
		sums = append(sums, s.campaigns[id].summary())
	}
	for _, out := range s.finished {
		sums = append(sums, Summary{ID: out.ID, State: out.State, Total: out.Total, Done: out.Total, Counts: out.Counts})
	}
	s.mu.Unlock()
	sort.Slice(sums, func(i, j int) bool { return sums[i].ID < sums[j].ID })
	writeJSON(w, http.StatusOK, sums)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	out, wasFinished := s.finished[id]
	s.mu.Unlock()
	if c != nil {
		writeJSON(w, http.StatusOK, c.summary())
		return
	}
	if wasFinished {
		writeJSON(w, http.StatusOK, Summary{ID: out.ID, State: out.State, Total: out.Total, Done: out.Total, Counts: out.Counts})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
}

// handleEvents streams a campaign's event log as JSONL: full replay from
// the beginning, then live tail until the campaign finishes or the
// client disconnects. Any number of clients can stream one campaign.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	out, wasFinished := s.finished[id]
	s.mu.Unlock()
	if c == nil && !wasFinished {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if c == nil {
		// Finished before this process started: the event history is
		// gone, but the durable outcome still closes the stream.
		enc.Encode(Event{ //nolint:errcheck
			Type: "campaign.done", Campaign: out.ID, State: out.State,
			Done: out.Total, Total: out.Total,
			Computed: out.Counts.Computed, StoreHits: out.Counts.StoreHits,
			Joined: out.Counts.Joined, Errors: out.Counts.Errors,
		})
		return
	}
	next := 0
	for {
		evs, notify, done := c.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		next += len(evs)
		if len(evs) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // drain before deciding to wait
		}
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// --- campaign lifecycle ---

// accept validates a spec, registers the campaign, persists its manifest
// and launches the runner. A non-empty id reuses an existing manifest
// (the resume path); an empty one allocates the next ID and persists.
func (s *Server) accept(spec sweep.Spec, id string) (*campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Cells()
	s.mu.Lock()
	fresh := id == ""
	if fresh {
		s.nextSeq++
		id = campaignID(s.nextSeq, spec)
	}
	c := newCampaign(id, spec, len(cells), time.Now().UTC())
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	if fresh {
		if err := s.writeManifest(manifest{ID: id, Spec: spec, Submitted: c.submitted}); err != nil {
			return nil, err
		}
	}
	metricCampaignsAccepted.Inc()
	c.append(Event{Type: "campaign.accepted", Total: len(cells)})
	s.wg.Add(1)
	go s.runCampaign(c, cells)
	return c, nil
}

// runCampaign drives one campaign's cells over a bounded worker group on
// the shared engine, then records the durable outcome.
func (s *Server) runCampaign(c *campaign, cells []sweep.Cell) {
	defer s.wg.Done()
	workers := s.eng.Workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	sem := make(chan struct{}, workers)
	var cellWG sync.WaitGroup
	for _, cell := range cells {
		if s.ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		cellWG.Add(1)
		go func(cell sweep.Cell) {
			defer cellWG.Done()
			defer func() { <-sem }()
			s.runCell(c, cell)
		}(cell)
	}
	cellWG.Wait()
	if s.ctx.Err() != nil {
		return // interrupted: no outcome written, next start resumes it
	}
	counts := s.finish(c)
	if err := s.writeOutcome(c, counts); err != nil {
		fmt.Fprintf(os.Stderr, "server: recording outcome of %s: %v\n", c.id, err)
	}
}

func (s *Server) finish(c *campaign) Counts { return c.finish() }

// runCell resolves one cell: from the store if a previous campaign
// already ran it, by joining another campaign's in-flight computation,
// or by simulating it now — in which case the finished record is
// persisted before anyone else can observe the flight as complete.
func (s *Server) runCell(c *campaign, cell sweep.Cell) {
	req := requestOf(cell, c.spec)
	addr, err := store.ContentAddress(req)
	if err != nil {
		metricCellsFailed.Inc()
		c.cellError(cell.Key(), err)
		return
	}
	if rec, err := s.st.Report(addr); err == nil {
		metricCellsStoreHits.Inc()
		c.cellDone(cell.Key(), addr, "store", rec)
		return
	} else if !errors.Is(err, store.ErrNotFound) {
		metricCellsFailed.Inc()
		c.cellError(cell.Key(), err)
		return
	}

	s.flightMu.Lock()
	if f, ok := s.flights[addr]; ok {
		s.flightMu.Unlock()
		select {
		case <-f.done:
		case <-s.ctx.Done():
			return
		}
		if f.err != nil {
			metricCellsFailed.Inc()
			c.cellError(cell.Key(), f.err)
			return
		}
		metricCellsJoined.Inc()
		c.cellDone(cell.Key(), addr, "joined", f.rec)
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[addr] = f
	s.flightMu.Unlock()

	f.rec, f.err = s.compute(addr, req, cell, c.spec)
	s.flightMu.Lock()
	delete(s.flights, addr)
	s.flightMu.Unlock()
	close(f.done)

	if f.err != nil {
		metricCellsFailed.Inc()
		c.cellError(cell.Key(), f.err)
		return
	}
	metricCellsComputed.Inc()
	c.cellDone(cell.Key(), addr, "computed", f.rec)
}

// compute simulates one cell and persists its record. The store is
// re-checked first: between this campaign's store miss and its flight
// registration, another campaign may have finished and unregistered the
// same address — without the re-check that window would simulate the
// cell twice.
func (s *Server) compute(addr string, req engine.Request, cell sweep.Cell, spec sweep.Spec) (*sweep.Record, error) {
	if rec, err := s.st.Report(addr); err == nil {
		return rec, nil
	}
	rep, err := s.eng.Run(s.ctx, req)
	if err != nil {
		return nil, err
	}
	rec := sweep.RecordOf(cell, spec, rep)
	if err := s.st.PutReport(addr, &rec); err != nil {
		// The result is good; only its persistence failed. Serve it and
		// let a later campaign recompute.
		fmt.Fprintf(os.Stderr, "server: persisting %s: %v\n", addr[:12], err)
	}
	return &rec, nil
}

// requestOf maps one sweep cell to the engine request the server
// executes and addresses.
func requestOf(cell sweep.Cell, spec sweep.Spec) engine.Request {
	return engine.Request{
		Workload: cell.Bench,
		Arch:     string(cell.Arch),
		Threads:  cell.Threads,
		Scale:    spec.Scale,
		Seed:     cell.Seed,
		Policy:   cell.Policy,
		Params:   spec.Params(),
	}
}

// --- durable campaign bookkeeping ---

func (s *Server) campaignsDir() string { return filepath.Join(s.st.Root(), "campaigns") }

func (s *Server) writeManifest(m manifest) error {
	dir := s.campaignsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return atomicWrite(filepath.Join(dir, m.ID+".json"), b)
}

func (s *Server) writeOutcome(c *campaign, counts Counts) error {
	sum := c.summary()
	b, err := json.MarshalIndent(outcome{
		ID: c.id, State: sum.State, Total: c.total, Counts: counts,
		Finished: time.Now().UTC(),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return atomicWrite(filepath.Join(s.campaignsDir(), c.id+".done.json"), b)
}

// atomicWrite stages b in a temp file and renames it into place, the
// same crash discipline as store entries.
func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("server: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// resume scans the campaigns directory: finished campaigns become
// listable history; accepted-but-unfinished ones relaunch. Their cells
// hit the store for everything persisted before the crash, so resuming
// costs only the genuinely unfinished work.
func (s *Server) resume() error {
	dir := s.campaignsDir()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	donee := map[string]outcome{}
	var pending []manifest
	maxSeq := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".done.json"):
			var out outcome
			if readJSON(filepath.Join(dir, name), &out) == nil && out.ID != "" {
				donee[out.ID] = out
			}
		case strings.HasSuffix(name, ".json"):
			var m manifest
			if readJSON(filepath.Join(dir, name), &m) == nil && m.ID != "" {
				pending = append(pending, m)
			}
		}
	}
	for _, m := range pending {
		if seq := seqOf(m.ID); seq > maxSeq {
			maxSeq = seq
		}
	}
	for id := range donee {
		if seq := seqOf(id); seq > maxSeq {
			maxSeq = seq
		}
	}
	s.mu.Lock()
	s.nextSeq = maxSeq
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, m := range pending {
		if out, ok := donee[m.ID]; ok {
			s.mu.Lock()
			s.finished[m.ID] = out
			s.mu.Unlock()
			continue
		}
		if _, err := s.accept(m.Spec, m.ID); err != nil {
			fmt.Fprintf(os.Stderr, "server: cannot resume %s: %v\n", m.ID, err)
			continue
		}
		metricCampaignsResumed.Inc()
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// seqOf extracts the sequence number from a campaign ID ("c%06d-...").
func seqOf(id string) int {
	var seq int
	if _, err := fmt.Sscanf(id, "c%d-", &seq); err != nil {
		return 0
	}
	return seq
}
