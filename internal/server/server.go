package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"taskpoint/internal/engine"
	"taskpoint/internal/fault"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
	"taskpoint/internal/store"
	"taskpoint/internal/sweep"
)

// Server metrics in the default obs registry.
var (
	metricCampaignsAccepted    = obs.Default().Counter("server.campaigns.accepted")
	metricCampaignsResumed     = obs.Default().Counter("server.campaigns.resumed")
	metricCampaignsInterrupted = obs.Default().Counter("server.campaigns.interrupted")
	metricCampaignsRejected    = obs.Default().Counter("server.campaigns.rejected")
	metricCellsComputed        = obs.Default().Counter("server.cells.computed")
	metricCellsStoreHits       = obs.Default().Counter("server.cells.store_hits")
	metricCellsJoined          = obs.Default().Counter("server.cells.joined")
	metricCellsFailed          = obs.Default().Counter("server.cells.failed")
	metricCellsStoreErrors     = obs.Default().Counter("server.cells.store_errors")
)

// ErrBusy reports a submission rejected because the admission queue is
// full; clients should retry after a delay (the HTTP layer answers 429
// with Retry-After).
var ErrBusy = errors.New("server: busy (admission queue full)")

// ErrDraining reports a submission refused because the server is
// shutting down gracefully.
var ErrDraining = errors.New("server: draining (shutting down)")

// Config configures a Server.
type Config struct {
	// Store is the persistent result store (required). The server wires
	// it under the engine's baseline cache as the read-through/
	// write-behind tier, and serves finished cell reports from it.
	Store *store.DiskStore
	// Workers bounds concurrent cell executions; <=1 selects the
	// engine's default (one per CPU).
	Workers int
	// TracePath, when set, mounts the /debug/obs/campaign report over
	// the flight-recorder trace at that path.
	TracePath string
	// Faults is the optional fault injector: store faults wrap the disk
	// store (under the circuit breaker, so injected failures exercise the
	// real degradation path), cell faults hook the engine, HTTP faults
	// wrap Handler, and crash points arm the server's crash sites. Nil
	// means no injection, at zero cost.
	Faults *fault.Injector
	// MaxActive bounds concurrently running campaigns; submissions beyond
	// it queue. <=0 selects the default (4).
	MaxActive int
	// MaxQueued bounds campaigns waiting for an admission slot;
	// submissions beyond it are rejected with ErrBusy (HTTP 429). <=0
	// selects the default (64).
	MaxQueued int
	// RequestTimeout bounds the handling of every non-streaming request
	// (submit, list, status, debug); the event stream is exempt. 0
	// selects the default (30s), negative disables the deadline.
	RequestTimeout time.Duration
}

// flight is one in-progress computation of a cell, shared by every
// campaign that needs the same content address at the same time.
type flight struct {
	done chan struct{}
	rec  *sweep.Record
	err  error
}

// Server is the campaign service: submitted sweeps run through one
// shared engine and one persistent store, with cross-campaign
// single-flight per content address so no cell is ever simulated twice —
// not by two concurrent campaigns, and not again after a restart.
type Server struct {
	st      *store.DiskStore
	backend store.Store    // breaker (over the optionally fault-wrapped disk store)
	breaker *store.Breaker // same object, for Degraded()
	faults  *fault.Injector
	eng     *engine.Engine
	cache   *engine.BaselineCache
	mux     *http.ServeMux

	campSem    chan struct{} // admission slots: MaxActive concurrently running campaigns
	maxQueued  int
	reqTimeout time.Duration

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	drainOnce sync.Once
	drainCh   chan struct{} // closed when a graceful drain begins

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // campaign IDs in acceptance order
	nextSeq   int
	finished  map[string]outcome // completed before this process started

	flightMu sync.Mutex
	flights  map[string]*flight
}

// New builds a Server over the given store and resumes any campaign a
// previous process accepted but did not finish. It does not listen;
// mount Handler on an http.Server (or use cmd/taskpointd).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	// The store stack under the server: disk store, optionally wrapped
	// with injected faults, always wrapped in the circuit breaker. Every
	// server-side store access — baseline tier reads/writes and report
	// lookups alike — goes through the breaker, so a sick (or
	// fault-injected) backend degrades to compute-without-store instead
	// of failing campaigns.
	backend := store.NewBreaker(fault.WrapDisk(cfg.Store, cfg.Faults))
	cache := engine.NewBaselineCache()
	cache.SetTier(store.Tier(backend))
	opts := []engine.Option{engine.WithBaselineCache(cache)}
	if cfg.Workers > 1 {
		opts = append(opts, engine.WithWorkers(cfg.Workers))
	}
	if cfg.Faults.CellFaultsEnabled() {
		opts = append(opts, engine.WithCellFault(cfg.Faults.CellFault))
	}
	maxActive := cfg.MaxActive
	if maxActive <= 0 {
		maxActive = 4
	}
	maxQueued := cfg.MaxQueued
	if maxQueued <= 0 {
		maxQueued = 64
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		st:         cfg.Store,
		backend:    backend,
		breaker:    backend,
		faults:     cfg.Faults,
		eng:        engine.New(opts...),
		cache:      cache,
		campSem:    make(chan struct{}, maxActive),
		maxQueued:  maxQueued,
		reqTimeout: reqTimeout,
		ctx:        ctx,
		cancel:     cancel,
		drainCh:    make(chan struct{}),
		campaigns:  map[string]*campaign{},
		finished:   map[string]outcome{},
		flights:    map[string]*flight{},
	}
	s.buildMux(cfg.TracePath)
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// Close stops accepting work, waits for running campaigns' goroutines to
// observe cancellation, and flushes write-behind baseline saves.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	s.cache.Sync()
}

// Drain begins a graceful shutdown: new submissions are refused with
// ErrDraining, queued campaigns are interrupted before starting, and
// running campaigns stop dispatching cells once the in-flight ones
// finish. Every interrupted campaign emits a terminal
// campaign.interrupted event, so live event subscribers' streams end
// cleanly (and an http.Server.Shutdown after Drain returns promptly —
// no stream outlives its campaign). Drain returns once every campaign
// goroutine has exited and write-behind baseline saves are on disk, or
// with ctx's error if the deadline passes first. It is idempotent and
// safe to combine with a later Close.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.cache.Sync()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// draining reports whether a graceful drain has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Degraded reports whether the store circuit breaker is currently open.
func (s *Server) Degraded() bool { return s.breaker.Degraded() }

// Handler returns the server's HTTP handler, wrapped with the fault
// injector's HTTP middleware when HTTP faults are armed.
func (s *Server) Handler() http.Handler { return fault.Middleware(s.faults, s.mux) }

// Engine exposes the shared engine (for tests and embedding callers).
func (s *Server) Engine() *engine.Engine { return s.eng }

func (s *Server) buildMux(tracePath string) {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/campaigns", s.timed(http.HandlerFunc(s.handleSubmit)))
	mux.Handle("GET /v1/campaigns", s.timed(http.HandlerFunc(s.handleList)))
	mux.Handle("GET /v1/campaigns/{id}", s.timed(http.HandlerFunc(s.handleStatus)))
	// The event stream is the one intentionally long-lived endpoint; it
	// ends with its campaign (or the client), never on a deadline.
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		b, err := obs.Default().MarshalSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	if tracePath != "" {
		ep := query.Endpoint(tracePath)
		mux.Handle("GET "+ep.Pattern, ep.Handler)
	}
	s.mux = mux
}

// timed bounds a non-streaming handler with the server's per-request
// deadline: a handler that overruns it is answered 503 and its writes
// are discarded, so one stuck request cannot hold a connection forever.
func (s *Server) timed(h http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return h
	}
	return http.TimeoutHandler(h, s.reqTimeout, `{"error":"server: request deadline exceeded"}`+"\n")
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	c, err := s.accept(spec, "")
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, c.summary())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sums := make([]Summary, 0, len(s.order)+len(s.finished))
	for _, id := range s.order {
		sums = append(sums, s.campaigns[id].summary())
	}
	for _, out := range s.finished {
		sums = append(sums, Summary{ID: out.ID, State: out.State, Total: out.Total, Done: out.Total, Counts: out.Counts})
	}
	s.mu.Unlock()
	sort.Slice(sums, func(i, j int) bool { return sums[i].ID < sums[j].ID })
	writeJSON(w, http.StatusOK, sums)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	out, wasFinished := s.finished[id]
	s.mu.Unlock()
	if c != nil {
		writeJSON(w, http.StatusOK, c.summary())
		return
	}
	if wasFinished {
		writeJSON(w, http.StatusOK, Summary{ID: out.ID, State: out.State, Total: out.Total, Done: out.Total, Counts: out.Counts})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
}

// handleEvents streams a campaign's event log as JSONL: replay from the
// beginning (or from the ?from=N sequence number, the client's resume
// cursor after a dropped connection), then live tail until the campaign
// reaches a terminal state or the client disconnects. Any number of
// clients can stream one campaign.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q", q))
			return
		}
		from = n
	}
	s.mu.Lock()
	c := s.campaigns[id]
	out, wasFinished := s.finished[id]
	s.mu.Unlock()
	if c == nil && !wasFinished {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if c == nil {
		// Finished before this process started: the event history is
		// gone, but the durable outcome still closes the stream.
		enc.Encode(Event{ //nolint:errcheck
			Type: "campaign.done", Campaign: out.ID, State: out.State,
			Done: out.Total, Total: out.Total,
			Computed: out.Counts.Computed, StoreHits: out.Counts.StoreHits,
			Joined: out.Counts.Joined, Errors: out.Counts.Errors,
		})
		return
	}
	next := from
	for {
		evs, notify, done := c.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		next += len(evs)
		if len(evs) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // drain before deciding to wait
		}
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// --- campaign lifecycle ---

// accept validates a spec, registers the campaign, persists its manifest
// and launches the runner. A non-empty id reuses an existing manifest
// (the resume path, exempt from admission rejection — resumed work was
// already accepted once); an empty one allocates the next ID and
// persists, subject to the admission bound.
func (s *Server) accept(spec sweep.Spec, id string) (*campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Cells()
	s.mu.Lock()
	fresh := id == ""
	if fresh {
		if s.draining() {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		if s.queuedLocked() >= s.maxQueued {
			s.mu.Unlock()
			metricCampaignsRejected.Inc()
			return nil, ErrBusy
		}
		s.nextSeq++
		id = campaignID(s.nextSeq, spec)
	}
	c := newCampaign(id, spec, len(cells), time.Now().UTC())
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	if fresh {
		if err := s.writeManifest(manifest{ID: id, Spec: spec, Submitted: c.submitted}); err != nil {
			return nil, err
		}
	}
	metricCampaignsAccepted.Inc()
	c.append(Event{Type: "campaign.accepted", Total: len(cells)})
	s.wg.Add(1)
	go s.runCampaign(c, cells)
	return c, nil
}

// queuedLocked counts campaigns still waiting for an admission slot.
// Caller holds s.mu.
func (s *Server) queuedLocked() int {
	n := 0
	for _, id := range s.order {
		if s.campaigns[id].stateNow() == StateQueued {
			n++
		}
	}
	return n
}

// runCampaign waits for an admission slot, drives the campaign's cells
// over a bounded worker group on the shared engine, then records the
// durable outcome. A drain mid-campaign lets in-flight cells finish,
// then interrupts; a hard Close abandons silently. Either way the
// manifest without an outcome marker makes the next process resume.
func (s *Server) runCampaign(c *campaign, cells []sweep.Cell) {
	defer s.wg.Done()
	select {
	case s.campSem <- struct{}{}:
		defer func() { <-s.campSem }()
	case <-s.drainCh:
		metricCampaignsInterrupted.Inc()
		c.interrupt()
		return
	case <-s.ctx.Done():
		return
	}
	c.start()
	workers := s.eng.Workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	sem := make(chan struct{}, workers)
	var cellWG sync.WaitGroup
dispatch:
	for _, cell := range cells {
		select {
		case sem <- struct{}{}:
		case <-s.drainCh:
			break dispatch
		case <-s.ctx.Done():
			break dispatch
		}
		cellWG.Add(1)
		go func(cell sweep.Cell) {
			defer cellWG.Done()
			defer func() { <-sem }()
			s.runCell(c, cell)
		}(cell)
	}
	cellWG.Wait()
	if s.ctx.Err() != nil && !s.draining() {
		return // hard stop: no outcome written, next start resumes it
	}
	if c.incomplete() {
		metricCampaignsInterrupted.Inc()
		c.interrupt()
		return
	}
	counts := s.finish(c)
	// Crash point between the terminal event and the durable outcome
	// marker: a process killed here restarts with the manifest present
	// and the marker absent, so the campaign resumes — entirely from the
	// store — instead of being forgotten or double-run.
	s.faults.Crash("server.outcome")
	if err := s.writeOutcome(c, counts); err != nil {
		fmt.Fprintf(os.Stderr, "server: recording outcome of %s: %v\n", c.id, err)
	}
}

func (s *Server) finish(c *campaign) Counts { return c.finish() }

// runCell resolves one cell: from the store if a previous campaign
// already ran it, by joining another campaign's in-flight computation,
// or by simulating it now — in which case the finished record is
// persisted before anyone else can observe the flight as complete.
func (s *Server) runCell(c *campaign, cell sweep.Cell) {
	req := requestOf(cell, c.spec)
	addr, err := store.ContentAddress(req)
	if err != nil {
		metricCellsFailed.Inc()
		c.cellError(cell.Key(), err)
		return
	}
	if rec, err := s.backend.Report(addr); err == nil {
		metricCellsStoreHits.Inc()
		c.cellDone(cell.Key(), addr, "store", rec)
		return
	} else if !errors.Is(err, store.ErrNotFound) {
		// A sick store must not fail the cell: count the error and treat
		// it as a miss, computing the result without the store. While the
		// breaker is open these misses are immediate (ErrUnavailable), so
		// degraded mode costs deduplication, never correctness.
		metricCellsStoreErrors.Inc()
	}

	s.flightMu.Lock()
	if f, ok := s.flights[addr]; ok {
		s.flightMu.Unlock()
		select {
		case <-f.done:
		case <-s.ctx.Done():
			return
		}
		if f.err != nil {
			metricCellsFailed.Inc()
			c.cellError(cell.Key(), f.err)
			return
		}
		metricCellsJoined.Inc()
		c.cellDone(cell.Key(), addr, "joined", f.rec)
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[addr] = f
	s.flightMu.Unlock()

	f.rec, f.err = s.compute(addr, req, cell, c.spec)
	s.flightMu.Lock()
	delete(s.flights, addr)
	s.flightMu.Unlock()
	close(f.done)

	if f.err != nil {
		metricCellsFailed.Inc()
		c.cellError(cell.Key(), f.err)
		return
	}
	metricCellsComputed.Inc()
	c.cellDone(cell.Key(), addr, "computed", f.rec)
}

// compute simulates one cell and persists its record. The store is
// re-checked first: between this campaign's store miss and its flight
// registration, another campaign may have finished and unregistered the
// same address — without the re-check that window would simulate the
// cell twice.
func (s *Server) compute(addr string, req engine.Request, cell sweep.Cell, spec sweep.Spec) (*sweep.Record, error) {
	if rec, err := s.backend.Report(addr); err == nil {
		return rec, nil
	}
	rep, err := s.eng.Run(s.ctx, req)
	if err != nil {
		return nil, err
	}
	rec := sweep.RecordOf(cell, spec, rep)
	if err := s.backend.PutReport(addr, &rec); err != nil {
		// The result is good; only its persistence failed. Count it,
		// serve it, and let a later campaign recompute.
		metricCellsStoreErrors.Inc()
		fmt.Fprintf(os.Stderr, "server: persisting %s: %v\n", addr[:12], err)
	}
	return &rec, nil
}

// requestOf maps one sweep cell to the engine request the server
// executes and addresses.
func requestOf(cell sweep.Cell, spec sweep.Spec) engine.Request {
	return engine.Request{
		Workload: cell.Bench,
		Arch:     string(cell.Arch),
		Threads:  cell.Threads,
		Scale:    spec.Scale,
		Seed:     cell.Seed,
		Policy:   cell.Policy,
		Params:   spec.Params(),
	}
}

// --- durable campaign bookkeeping ---

func (s *Server) campaignsDir() string { return filepath.Join(s.st.Root(), "campaigns") }

func (s *Server) writeManifest(m manifest) error {
	dir := s.campaignsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return atomicWrite(filepath.Join(dir, m.ID+".json"), b)
}

func (s *Server) writeOutcome(c *campaign, counts Counts) error {
	sum := c.summary()
	b, err := json.MarshalIndent(outcome{
		ID: c.id, State: sum.State, Total: c.total, Counts: counts,
		Finished: time.Now().UTC(),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return atomicWrite(filepath.Join(s.campaignsDir(), c.id+".done.json"), b)
}

// atomicWrite stages b in a temp file and renames it into place, the
// same crash discipline as store entries.
func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("server: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// resume scans the campaigns directory: finished campaigns become
// listable history; accepted-but-unfinished ones relaunch. Their cells
// hit the store for everything persisted before the crash, so resuming
// costs only the genuinely unfinished work.
func (s *Server) resume() error {
	dir := s.campaignsDir()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	donee := map[string]outcome{}
	var pending []manifest
	maxSeq := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".done.json"):
			var out outcome
			if readJSON(filepath.Join(dir, name), &out) == nil && out.ID != "" {
				donee[out.ID] = out
			}
		case strings.HasSuffix(name, ".json"):
			var m manifest
			if readJSON(filepath.Join(dir, name), &m) == nil && m.ID != "" {
				pending = append(pending, m)
			}
		}
	}
	for _, m := range pending {
		if seq := seqOf(m.ID); seq > maxSeq {
			maxSeq = seq
		}
	}
	for id := range donee {
		if seq := seqOf(id); seq > maxSeq {
			maxSeq = seq
		}
	}
	s.mu.Lock()
	s.nextSeq = maxSeq
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, m := range pending {
		if out, ok := donee[m.ID]; ok {
			s.mu.Lock()
			s.finished[m.ID] = out
			s.mu.Unlock()
			continue
		}
		if _, err := s.accept(m.Spec, m.ID); err != nil {
			fmt.Fprintf(os.Stderr, "server: cannot resume %s: %v\n", m.ID, err)
			continue
		}
		metricCampaignsResumed.Inc()
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// seqOf extracts the sequence number from a campaign ID ("c%06d-...").
func seqOf(id string) int {
	var seq int
	if _, err := fmt.Sscanf(id, "c%d-", &seq); err != nil {
		return 0
	}
	return seq
}
