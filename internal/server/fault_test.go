package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"taskpoint/internal/fault"
	"taskpoint/internal/obs"
	"taskpoint/internal/store"
)

func newFaultServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// streamTerminal reads a campaign's event stream from the given cursor
// until the server closes it, returning the events and the terminal
// (campaign.done or campaign.interrupted) event.
func streamTerminal(t *testing.T, baseURL, id string, from int) ([]Event, Event) {
	t.Helper()
	url := baseURL + "/v1/campaigns/" + id + "/events"
	if from > 0 {
		url += "?from=" + strconv.Itoa(from)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var evs []Event
	var term Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
		if ev.Type == "campaign.done" || ev.Type == "campaign.interrupted" {
			term = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if term.Type == "" {
		t.Fatalf("stream for %s ended without a terminal event (%d events)", id, len(evs))
	}
	return evs, term
}

// TestDegradedModeFullyFailingStore is the ISSUE's degraded-mode
// acceptance scenario: with every store operation failing, a campaign
// still completes — every cell computed, zero errors — while the circuit
// breaker trips (store.degraded) and the store errors are counted, never
// silently dropped.
func TestDegradedModeFullyFailingStore(t *testing.T) {
	degradedBefore := obs.Default().Counter("store.degraded").Value()
	storeErrsBefore := obs.Default().Counter("server.cells.store_errors").Value()

	inj := fault.NewInjector(fault.Spec{Seed: 5, StoreErr: 1})
	_, ts := newFaultServer(t, t.TempDir(), Config{Faults: inj})
	spec := testSpec()
	total := len(spec.Cells())

	sum := submit(t, ts.URL, spec)
	_, done := streamEvents(t, ts.URL, sum.ID)
	if done.State != StateDone || done.Done != total || done.Errors != 0 {
		t.Fatalf("campaign over a dead store did not finish cleanly: %+v", done)
	}
	if done.Computed != total {
		t.Fatalf("degraded mode must compute every cell: %+v", done)
	}
	if got := obs.Default().Counter("store.degraded").Value() - degradedBefore; got < 1 {
		t.Errorf("breaker never tripped: store.degraded delta %d", got)
	}
	if got := obs.Default().Counter("server.cells.store_errors").Value() - storeErrsBefore; got < 1 {
		t.Errorf("store failures not surfaced: server.cells.store_errors delta %d", got)
	}
}

// TestAdmissionQueueBoundsAndRejects: with the single admission slot
// held, one submission queues; the next overflows the bounded queue and
// is answered 429 with a Retry-After hint. Releasing the slot lets the
// queued campaign run to completion.
func TestAdmissionQueueBoundsAndRejects(t *testing.T) {
	rejectedBefore := metricCampaignsRejected.Value()
	srv, ts := newFaultServer(t, t.TempDir(), Config{MaxActive: 1, MaxQueued: 1})
	srv.campSem <- struct{}{} // occupy the only slot

	spec := testSpec()
	sum := submit(t, ts.URL, spec)
	if sum.State != StateQueued {
		t.Fatalf("campaign with the slot held should be queued, got %q", sum.State)
	}

	spec2 := testSpec()
	spec2.Seeds = []uint64{43}
	body, err := json.Marshal(spec2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue overflow: want 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := metricCampaignsRejected.Value() - rejectedBefore; got != 1 {
		t.Errorf("server.campaigns.rejected delta %d, want 1", got)
	}

	<-srv.campSem // release: the queued campaign starts
	_, done := streamEvents(t, ts.URL, sum.ID)
	if done.State != StateDone || done.Done != len(spec.Cells()) {
		t.Fatalf("queued campaign did not finish after release: %+v", done)
	}
}

// TestDrainInterruptsAndResumes: a drain mid-campaign lets in-flight
// cells finish, ends live event streams with a terminal
// campaign.interrupted event, refuses new submissions, and leaves the
// manifest (without a completion marker) for the next process to resume
// — which finishes the campaign without recomputing the finished cells.
func TestDrainInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Seeds = []uint64{1, 2, 3} // 12 cells
	total := len(spec.Cells())
	// Store latency paces the campaign so the drain lands mid-flight.
	inj := fault.NewInjector(fault.Spec{Seed: 2, StoreLatency: 50 * time.Millisecond})
	srv, ts := newFaultServer(t, dir, Config{Workers: 1, Faults: inj})
	sum := submit(t, ts.URL, spec)

	type result struct {
		evs  []Event
		term Event
	}
	ch := make(chan result, 1)
	go func() {
		evs, term := streamTerminal(t, ts.URL, sum.ID, 0)
		ch <- result{evs, term}
	}()

	// Wait for the first resolved cell, then drain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := status(t, ts.URL, sum.ID)
		if s.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Submissions during/after a drain are refused 503.
	body, _ := json.Marshal(testSpec())
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: want 503, got %d", resp.StatusCode)
	}

	res := <-ch
	if res.term.Type != "campaign.interrupted" {
		t.Fatalf("live stream ended with %q, want campaign.interrupted", res.term.Type)
	}
	if res.term.Done >= total {
		t.Fatalf("interrupted campaign reports done=%d of %d", res.term.Done, total)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", sum.ID+".done.json")); !os.IsNotExist(err) {
		t.Fatalf("interrupted campaign must not have a completion marker (err=%v)", err)
	}

	// A fresh process over the same store resumes and completes it; the
	// cells finished before the drain come back as store hits.
	preDone := res.term.Done
	_, ts2 := newFaultServer(t, dir, Config{Workers: 4})
	_, done2 := streamTerminal(t, ts2.URL, sum.ID, 0)
	if done2.Type != "campaign.done" || done2.State != StateDone || done2.Done != total {
		t.Fatalf("resumed campaign did not finish: %+v", done2)
	}
	if done2.StoreHits < preDone {
		t.Errorf("resume recomputed finished cells: %d store hits < %d finished before drain", done2.StoreHits, preDone)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", sum.ID+".done.json")); err != nil {
		t.Fatalf("no completion marker after resume: %v", err)
	}
}

func status(t *testing.T, baseURL, id string) Summary {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestEventStreamResumeCursor: ?from=N replays only events with seq >= N
// — the cursor a client uses to resume a dropped stream without
// re-reading history — and invalid cursors are rejected.
func TestEventStreamResumeCursor(t *testing.T) {
	_, ts := newFaultServer(t, t.TempDir(), Config{})
	spec := testSpec()
	sum := submit(t, ts.URL, spec)
	full, _ := streamEvents(t, ts.URL, sum.ID)

	from := len(full) / 2
	tail, term := streamTerminal(t, ts.URL, sum.ID, from)
	if len(tail) != len(full)-from {
		t.Fatalf("from=%d replayed %d events, want %d", from, len(tail), len(full)-from)
	}
	if tail[0].Seq != from {
		t.Fatalf("first resumed event has seq %d, want %d", tail[0].Seq, from)
	}
	if term.Type != "campaign.done" {
		t.Fatalf("resumed stream ended with %q", term.Type)
	}

	for _, bad := range []string{"x", "-1", "1.5"} {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + sum.ID + "/events?from=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("from=%s: want 400, got %d", bad, resp.StatusCode)
		}
	}
}

// TestInjectedCellPanicFailsCellNotCampaign: a cell-level injected panic
// is recovered into a cell.error; the rest of the campaign completes.
func TestInjectedCellPanicFailsCellNotCampaign(t *testing.T) {
	inj := fault.NewInjector(fault.Spec{Seed: 9, CellPanic: 1})
	_, ts := newFaultServer(t, t.TempDir(), Config{Faults: inj})
	spec := testSpec()
	total := len(spec.Cells())
	sum := submit(t, ts.URL, spec)
	_, done := streamTerminal(t, ts.URL, sum.ID, 0)
	if done.Type != "campaign.done" {
		t.Fatalf("campaign with panicking cells never terminated: %+v", done)
	}
	if done.State != StateFailed || done.Errors != total || done.Done != total {
		t.Fatalf("every cell should fail cleanly (panic=1): %+v", done)
	}
}
