package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"taskpoint/internal/store"
	"taskpoint/internal/sweep"
)

// testSpec is a small campaign over generated scenarios: 2 workloads ×
// 2 policies = 4 cells, seconds of wall time.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Name:       "itest",
		Scale:      1,
		Benchmarks: []string{"gen:forkjoin(tasks=24,mean=300)", "gen:pipeline(depth=4,cv=0.5)"},
		Archs:      []string{"hp"},
		Threads:    []int{2},
		Policies:   []string{"lazy", "periodic(250)"},
		Seeds:      []uint64{42},
	}
}

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server, *store.DiskStore) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, st
}

func submit(t *testing.T, baseURL string, spec sweep.Spec) Summary {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// streamEvents reads a campaign's JSONL event stream to completion and
// returns every event plus the terminal campaign.done event.
func streamEvents(t *testing.T, baseURL, id string) ([]Event, Event) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var evs []Event
	var done Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
		if ev.Type == "campaign.done" {
			done = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done.Type != "campaign.done" {
		t.Fatalf("stream for %s ended without campaign.done (%d events)", id, len(evs))
	}
	return evs, done
}

// TestConcurrentIdenticalCampaignsSingleFlight is the ISSUE's acceptance
// scenario: two clients submit an identical spec concurrently against
// one server, and every cell is simulated exactly once — each cell's
// record comes from exactly one "computed" flight, with the duplicate
// side either joining the in-flight computation or hitting the store.
func TestConcurrentIdenticalCampaignsSingleFlight(t *testing.T) {
	srv, ts, st := newTestServer(t, t.TempDir())
	spec := testSpec()
	total := len(spec.Cells())

	var wg sync.WaitGroup
	dones := make([]Event, 2)
	for i := range dones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum := submit(t, ts.URL, spec)
			_, dones[i] = streamEvents(t, ts.URL, sum.ID)
		}(i)
	}
	wg.Wait()

	computed, rest := 0, 0
	for _, d := range dones {
		if d.State != StateDone || d.Done != total || d.Errors != 0 {
			t.Fatalf("campaign did not finish cleanly: %+v", d)
		}
		computed += d.Computed
		rest += d.StoreHits + d.Joined
	}
	if computed != total {
		t.Errorf("want exactly %d cells computed across both campaigns (single-flight), got %d", total, computed)
	}
	if rest != total {
		t.Errorf("want %d deduplicated cells (store or joined), got %d", total, rest)
	}

	// The store confirms it: one report write per unique cell, one
	// baseline write per unique (workload, arch, threads, scale, seed).
	srv.Close()
	baselines := len(spec.Benchmarks) // one arch × one thread count × one seed
	if got := st.Stats().Writes; got != int64(total+baselines) {
		t.Errorf("want %d store writes (%d reports + %d baselines), got %d", total+baselines, total, baselines, got)
	}
}

// TestRestartServesFromStore is the ISSUE's second acceptance scenario:
// a submission after a server restart completes entirely from the
// persistent store — zero detailed re-simulations.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := newTestServer(t, dir)
	spec := testSpec()
	total := len(spec.Cells())

	sum := submit(t, ts.URL, spec)
	if _, done := streamEvents(t, ts.URL, sum.ID); done.Computed != total {
		t.Fatalf("cold store: want %d computed, got %+v", total, done)
	}

	// "Restart": a fresh server process over the same store directory.
	_, ts2, st2 := newTestServer(t, dir)
	sum2 := submit(t, ts2.URL, spec)
	_, done2 := streamEvents(t, ts2.URL, sum2.ID)
	if done2.State != StateDone || done2.Done != total {
		t.Fatalf("post-restart campaign did not finish: %+v", done2)
	}
	if done2.Computed != 0 {
		t.Errorf("post-restart submission re-simulated %d cells; want 0", done2.Computed)
	}
	if done2.StoreHits != total {
		t.Errorf("want all %d cells from the store, got %d", total, done2.StoreHits)
	}
	if st := st2.Stats(); st.ReportHits != int64(total) {
		t.Errorf("store saw %d report hits, want %d", st.ReportHits, total)
	}
}

// TestEventStreamReplay: a subscriber arriving after completion replays
// the full history, and two concurrent subscribers see identical logs.
func TestEventStreamReplay(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	spec := testSpec()
	sum := submit(t, ts.URL, spec)

	var wg sync.WaitGroup
	live := make([][]Event, 2)
	for i := range live {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			live[i], _ = streamEvents(t, ts.URL, sum.ID)
		}(i)
	}
	wg.Wait()
	if len(live[0]) != len(live[1]) {
		t.Fatalf("concurrent subscribers saw %d vs %d events", len(live[0]), len(live[1]))
	}

	// Late subscriber: full replay after the campaign is done.
	replay, done := streamEvents(t, ts.URL, sum.ID)
	if len(replay) != len(live[0]) {
		t.Fatalf("late subscriber replayed %d events, live saw %d", len(replay), len(live[0]))
	}
	want := 1 + len(spec.Cells()) + 1 // accepted + cells + done
	if len(replay) != want {
		t.Fatalf("want %d events, got %d", want, len(replay))
	}
	if replay[0].Type != "campaign.accepted" || done.Type != "campaign.done" {
		t.Fatalf("malformed log: first=%s", replay[0].Type)
	}
	for i, ev := range replay {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestResumeUnfinishedCampaign: a manifest without a completion marker —
// a campaign accepted by a process that died — is picked up and driven
// to completion by the next server over the same store.
func TestResumeUnfinishedCampaign(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	id := campaignID(1, spec)
	cdir := filepath.Join(dir, "campaigns")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(manifest{ID: id, Spec: spec, Submitted: time.Now().UTC()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cdir, id+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts, _ := newTestServer(t, dir)
	_, done := streamEvents(t, ts.URL, id)
	if done.State != StateDone || done.Done != len(spec.Cells()) {
		t.Fatalf("resumed campaign did not finish: %+v", done)
	}
	// The completion marker must exist so the NEXT restart lists it as
	// history instead of running it a third time.
	if _, err := os.Stat(filepath.Join(cdir, id+".done.json")); err != nil {
		t.Fatalf("no completion marker after resume: %v", err)
	}
}

// TestSubmitRejectsBadSpec: validation failures surface as 400s, not
// half-accepted campaigns.
func TestSubmitRejectsBadSpec(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	for _, body := range []string{
		`{"scale": 1}`, // no dimensions
		`{"scale": 1, "benchmarks": ["no-such-bench"], "archs": ["hp"], "threads": [2], "policies": ["lazy"]}`,
		`{"scale": -1, "benchmarks": ["cholesky"], "archs": ["hp"], "threads": [2], "policies": ["lazy"]}`,
		`not json`,
		`{"unknown_field": true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: want 400, got %d", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var sums []Summary
	json.NewDecoder(resp.Body).Decode(&sums) //nolint:errcheck
	resp.Body.Close()
	if len(sums) != 0 {
		t.Fatalf("rejected specs left %d campaigns behind", len(sums))
	}
}

// TestStatusAndDebugEndpoints: the status, list, health and obs
// endpoints answer.
func TestStatusAndDebugEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	spec := testSpec()
	sum := submit(t, ts.URL, spec)
	streamEvents(t, ts.URL, sum.ID) // wait for completion

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	json.NewDecoder(resp.Body).Decode(&got) //nolint:errcheck
	resp.Body.Close()
	if got.ID != sum.ID || got.State != StateDone || got.Done != got.Total {
		t.Fatalf("status: %+v", got)
	}

	for _, path := range []string{"/healthz", "/debug/obs", "/v1/campaigns"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing campaign: want 404, got %d", resp.StatusCode)
	}
}
