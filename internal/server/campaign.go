// Package server is the campaign service behind taskpointd: it accepts
// design-space sweep specifications over HTTP, executes them through the
// shared experiment engine (internal/engine), deduplicates work across
// campaigns by content address (internal/store), streams per-cell
// progress to any number of clients as JSONL, and survives restarts by
// resuming unfinished campaigns against the persistent result store.
//
// The paper's §V-C argues lazy sampling pays off "during the early phase
// of design space exploration", where many similar campaigns are run;
// this package is that phase as a service — the second submission of an
// overlapping campaign costs only the cells nobody has run before.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"taskpoint/internal/sweep"
)

// Event is one line of a campaign's JSONL progress stream. Type selects
// which fields are meaningful:
//
//	campaign.accepted    — Total
//	cell.done            — Cell, Addr, Source, Done/Total, Record
//	cell.error           — Cell, Error, Done/Total
//	campaign.done        — State, Done/Total, Computed/StoreHits/Joined/Errors
//	campaign.interrupted — same as campaign.done; a drain stopped the
//	                       campaign with cells left, and a later process
//	                       will resume it
type Event struct {
	Type     string `json:"type"`
	Campaign string `json:"campaign"`
	Seq      int    `json:"seq"`
	Time     string `json:"time,omitempty"`

	Total int    `json:"total,omitempty"`
	Done  int    `json:"done,omitempty"`
	Cell  string `json:"cell,omitempty"`
	Addr  string `json:"addr,omitempty"`
	// Source reports where the cell's record came from: "computed" (this
	// server simulated it now), "store" (served from the persistent
	// store), or "joined" (another in-flight campaign was already
	// computing the same cell and this one waited for it).
	Source string        `json:"source,omitempty"`
	Record *sweep.Record `json:"record,omitempty"`
	Error  string        `json:"error,omitempty"`

	State     string `json:"state,omitempty"`
	Computed  int    `json:"computed,omitempty"`
	StoreHits int    `json:"store_hits,omitempty"`
	Joined    int    `json:"joined,omitempty"`
	Errors    int    `json:"errors,omitempty"`
}

// Counts tallies a campaign's cells by outcome.
type Counts struct {
	Computed  int `json:"computed"`
	StoreHits int `json:"store_hits"`
	Joined    int `json:"joined"`
	Errors    int `json:"errors"`
}

// Campaign states. Queued and running are live; done, failed and
// interrupted are terminal for this process — though an interrupted
// campaign's manifest makes the next process resume it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// terminalState reports whether a campaign in state s emits no further
// events in this process.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateInterrupted
}

// Summary is the client-facing view of one campaign, returned by the
// list and status endpoints.
type Summary struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Total     int        `json:"total"`
	Done      int        `json:"done"`
	Counts    Counts     `json:"counts"`
	Submitted time.Time  `json:"submitted"`
	Spec      sweep.Spec `json:"spec"`
}

// campaign is the server-side state of one submitted sweep: its spec,
// its append-only event log, and a broadcast channel subscribers wait on
// for the next append. The event log is the single source of truth —
// a subscriber replays it from any index and then live-tails.
type campaign struct {
	id        string
	spec      sweep.Spec
	total     int
	submitted time.Time

	mu     sync.Mutex
	events []Event
	notify chan struct{} // closed and replaced on every append
	state  string
	done   int
	counts Counts
}

func newCampaign(id string, spec sweep.Spec, total int, submitted time.Time) *campaign {
	return &campaign{
		id:        id,
		spec:      spec,
		total:     total,
		submitted: submitted,
		notify:    make(chan struct{}),
		state:     StateQueued,
	}
}

// start transitions queued → running when the campaign wins an admission
// slot. No event is emitted, so replayed streams are identical whether or
// not the campaign ever waited in the queue.
func (c *campaign) start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateQueued {
		c.state = StateRunning
	}
}

// stateNow returns the campaign's current state.
func (c *campaign) stateNow() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// incomplete reports whether cells remain unresolved.
func (c *campaign) incomplete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done < c.total
}

// append records an event (stamping Seq and Time) and wakes every
// subscriber.
func (c *campaign) append(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev.Campaign = c.id
	ev.Seq = len(c.events)
	ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	c.events = append(c.events, ev)
	close(c.notify)
	c.notify = make(chan struct{})
}

// cellDone records one finished cell and emits its event.
func (c *campaign) cellDone(cell, addr, source string, rec *sweep.Record) {
	c.mu.Lock()
	c.done++
	switch source {
	case "computed":
		c.counts.Computed++
	case "store":
		c.counts.StoreHits++
	case "joined":
		c.counts.Joined++
	}
	done := c.done
	c.mu.Unlock()
	c.append(Event{Type: "cell.done", Cell: cell, Addr: addr, Source: source, Done: done, Total: c.total, Record: rec})
}

// cellError records one failed cell and emits its event.
func (c *campaign) cellError(cell string, err error) {
	c.mu.Lock()
	c.done++
	c.counts.Errors++
	done := c.done
	c.mu.Unlock()
	c.append(Event{Type: "cell.error", Cell: cell, Error: err.Error(), Done: done, Total: c.total})
}

// finish transitions the campaign to its terminal state and emits the
// campaign.done event carrying the outcome tallies.
func (c *campaign) finish() Counts {
	c.mu.Lock()
	counts := c.counts
	state := StateDone
	if counts.Errors > 0 {
		state = StateFailed
	}
	c.state = state
	done := c.done
	c.mu.Unlock()
	c.append(Event{
		Type: "campaign.done", State: state, Done: done, Total: c.total,
		Computed: counts.Computed, StoreHits: counts.StoreHits,
		Joined: counts.Joined, Errors: counts.Errors,
	})
	return counts
}

// interrupt transitions the campaign to the interrupted terminal state —
// a drain stopped it with cells left — and emits the terminal event so
// live subscribers get an explicit end of stream instead of a dropped
// connection. No outcome marker is written for an interrupted campaign:
// its manifest alone makes the next process resume it, and every cell it
// did finish is already in the store.
func (c *campaign) interrupt() {
	c.mu.Lock()
	c.state = StateInterrupted
	done := c.done
	counts := c.counts
	c.mu.Unlock()
	c.append(Event{
		Type: "campaign.interrupted", State: StateInterrupted, Done: done, Total: c.total,
		Computed: counts.Computed, StoreHits: counts.StoreHits,
		Joined: counts.Joined, Errors: counts.Errors,
	})
}

// finished reports whether the campaign reached a terminal state.
func (c *campaign) finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return terminalState(c.state)
}

// eventsFrom returns the events at index >= from, plus the channel that
// closes on the next append and whether the campaign is terminal. A
// subscriber loops: drain, write, and — when the slice is empty and the
// campaign still runs — wait on the channel.
func (c *campaign) eventsFrom(from int) ([]Event, <-chan struct{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var evs []Event
	if from < len(c.events) {
		evs = c.events[from:len(c.events):len(c.events)]
	}
	return evs, c.notify, terminalState(c.state)
}

// summary returns the campaign's client-facing view.
func (c *campaign) summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Summary{
		ID: c.id, State: c.state, Total: c.total, Done: c.done,
		Counts: c.counts, Submitted: c.submitted, Spec: c.spec,
	}
}

// specHash is the stable fingerprint of a spec used in campaign IDs: two
// submissions of one spec share the suffix, so duplicate campaigns are
// visible at a glance in listings and logs.
func specHash(spec sweep.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// campaignID builds the ID of the seq-th accepted campaign.
func campaignID(seq int, spec sweep.Spec) string {
	return fmt.Sprintf("c%06d-%s", seq, specHash(spec))
}

// manifest is the durable record of an accepted campaign, written to
// <store root>/campaigns/<id>.json at acceptance. Its presence without a
// matching <id>.done.json marks a campaign to resume after a restart.
type manifest struct {
	ID        string     `json:"id"`
	Spec      sweep.Spec `json:"spec"`
	Submitted time.Time  `json:"submitted"`
}

// outcome is the durable completion record, written to
// <store root>/campaigns/<id>.done.json when a campaign finishes.
type outcome struct {
	ID       string    `json:"id"`
	State    string    `json:"state"`
	Total    int       `json:"total"`
	Counts   Counts    `json:"counts"`
	Finished time.Time `json:"finished"`
}
