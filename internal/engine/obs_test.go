package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"taskpoint/internal/obs"
)

// TestBaselineCacheStats: the per-cache counters tell the campaign-cost
// story — one miss on first compute, hits on reuse, evictions on drop.
func TestBaselineCacheStats(t *testing.T) {
	cache := NewBaselineCache()
	e := New(WithWorkers(1), WithBaselineCache(cache))
	req := testRequest("swaptions", "lazy", 2)

	if _, err := e.Baseline(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("after first compute: %+v, want 1 miss, 0 hits", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}

	if _, err := e.Baseline(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("after reuse: %+v, want 1 miss, 1 hit", st)
	}

	cache.DropWorkload(req.Workload)
	st = cache.Stats()
	if st.Evictions != 1 {
		t.Errorf("after DropWorkload: %+v, want 1 eviction", st)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d after drop, want 0", st.Entries)
	}
}

// TestRunEmitsFlightRecorderEvents: a traced cell leaves the structured
// span tree the flight recorder promises — a cell span nesting baseline
// and sampled phase spans, plus a cache outcome event — all as whole JSON
// lines with matched begin/end pairs.
func TestRunEmitsFlightRecorderEvents(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	e := New(WithWorkers(1), WithRecorder(rec), WithBaselineCache(NewBaselineCache()))

	if _, err := e.Run(context.Background(), testRequest("cholesky", "lazy", 2)); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	begins := map[string]float64{} // span name → id
	parents := map[string]float64{}
	var endIDs []float64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m struct {
			Kind   string  `json:"kind"`
			Name   string  `json:"name"`
			Span   float64 `json:"span"`
			Parent float64 `json:"parent"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn trace line %q: %v", sc.Text(), err)
		}
		kinds[m.Kind]++
		switch m.Kind {
		case "span.begin":
			begins[m.Name] = m.Span
			parents[m.Name] = m.Parent
		case "span.end":
			endIDs = append(endIDs, m.Span)
		}
	}
	for _, name := range []string{"cell", "baseline", "sampled"} {
		if _, ok := begins[name]; !ok {
			t.Errorf("no %s span in trace (begins: %v)", name, begins)
		}
	}
	if parents["baseline"] != begins["cell"] || parents["sampled"] != begins["cell"] {
		t.Errorf("baseline/sampled spans not parented under the cell span: begins %v parents %v", begins, parents)
	}
	if kinds["span.begin"] != kinds["span.end"] {
		t.Errorf("unbalanced spans: %d begins vs %d ends", kinds["span.begin"], kinds["span.end"])
	}
	ended := map[float64]bool{}
	for _, id := range endIDs {
		ended[id] = true
	}
	for name, id := range begins {
		if !ended[id] {
			t.Errorf("span %s (id %v) never ended", name, id)
		}
	}
	if kinds["cache.miss"] == 0 {
		t.Errorf("fresh cache produced no cache.miss event (kinds: %v)", kinds)
	}
}
