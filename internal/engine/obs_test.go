package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"taskpoint/internal/obs"
)

// TestBaselineCacheStats: the per-cache counters tell the campaign-cost
// story — one miss on first compute, hits on reuse, evictions on drop.
func TestBaselineCacheStats(t *testing.T) {
	cache := NewBaselineCache()
	e := New(WithWorkers(1), WithBaselineCache(cache))
	req := testRequest("swaptions", "lazy", 2)

	if _, err := e.Baseline(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("after first compute: %+v, want 1 miss, 0 hits", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}

	if _, err := e.Baseline(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("after reuse: %+v, want 1 miss, 1 hit", st)
	}

	cache.DropWorkload(req.Workload)
	st = cache.Stats()
	if st.Evictions != 1 {
		t.Errorf("after DropWorkload: %+v, want 1 eviction", st)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d after drop, want 0", st.Entries)
	}
}

// TestRunEmitsFlightRecorderEvents: a traced cell leaves the lifecycle
// events the flight recorder promises — cell.start, a cache outcome, and
// cell.finish — all as whole JSON lines.
func TestRunEmitsFlightRecorderEvents(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	e := New(WithWorkers(1), WithRecorder(rec), WithBaselineCache(NewBaselineCache()))

	if _, err := e.Run(context.Background(), testRequest("cholesky", "lazy", 2)); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn trace line %q: %v", sc.Text(), err)
		}
		kinds[m.Kind]++
	}
	for _, k := range []string{"cell.start", "cell.finish", "baseline.computed"} {
		if kinds[k] == 0 {
			t.Errorf("no %s event in trace (kinds: %v)", k, kinds)
		}
	}
	if kinds["cache.miss"] == 0 {
		t.Errorf("fresh cache produced no cache.miss event (kinds: %v)", kinds)
	}
}
