package engine

import (
	"fmt"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/core"
)

// Request declares one experiment cell: a single workload simulated on one
// architecture at one thread count under one sampling policy, compared
// against its detailed reference. It is the one request shape behind the
// evaluation runner, the design-space sweep engine and the generated
// corpus — a cell means the same thing, and is keyed the same way, in all
// of them.
//
// The zero value of every optional field selects a documented default, so
// a Request can be as small as {Workload: "cholesky"}.
type Request struct {
	// Workload names what to simulate: a Table I benchmark name or a
	// generated-scenario spec ("gen:family(knob=value,...)").
	Workload string `json:"workload"`
	// Arch is the architecture name in any form arch.Parse accepts
	// ("high-performance"/"hp", "low-power"/"lp", "native"). Empty
	// selects the high-performance configuration.
	Arch string `json:"arch,omitempty"`
	// Threads is the simulated thread count (default 1).
	Threads int `json:"threads,omitempty"`
	// Scale is the workload scale (1.0 = Table I instance counts);
	// zero and negative select 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives workload generation and the noise model. Zero is a
	// valid seed, not a default marker.
	Seed uint64 `json:"seed,omitempty"`
	// Policy is the resampling policy in any form core.ParsePolicy
	// accepts ("lazy", "periodic(250)", "stratified:400"). Empty selects
	// lazy sampling. The engine builds a fresh policy value per run, so
	// stateful policies (stratified) never leak state across cells.
	Policy string `json:"policy,omitempty"`
	// Params are the sampling parameters; the zero value selects the
	// paper's defaults (W=2, H=4).
	Params core.Params `json:"params,omitzero"`
	// PolicyValue, when non-nil, is used instead of parsing Policy — for
	// callers holding a policy value carrying configuration beyond its
	// textual name (a custom strata.Config). The value is stateful and
	// reset per run; do not share one across concurrent requests.
	PolicyValue core.Policy `json:"-"`
}

// normalized returns the request with every defaulted field filled and
// the policy/arch names canonicalised where cheaply possible — the form
// Run executes and Report echoes back.
func (r Request) normalized() Request {
	if r.Arch == "" {
		r.Arch = string(arch.HighPerf)
	}
	if r.Threads == 0 {
		r.Threads = 1
	}
	if r.Scale <= 0 {
		r.Scale = 1
	}
	if r.PolicyValue != nil {
		r.Policy = r.PolicyValue.Name()
	} else if r.Policy == "" {
		r.Policy = "lazy"
	}
	if r.Params == (core.Params{}) {
		r.Params = core.DefaultParams()
	}
	return r
}

// Normalized returns the request in canonical form: every defaulted
// field filled and every name reduced to its one canonical spelling —
// the architecture via arch.Parse ("hp" → "high-performance"), the
// policy via core.ParsePolicy round-tripped through Policy.Name (so
// "periodic( 250 )", "periodic:250" and "periodic(250)" all normalise
// to "periodic(250)"), and the workload via the benchmark registry (so
// a "gen:" scenario spec is rewritten to gen.Scenario.Spec's canonical
// knob order with defaults elided). Two requests meaning the same cell
// therefore normalise to one identical value, which is what the
// content-address scheme of internal/store hashes: equivalent spellings
// collide on one address, distinct cells never share one.
//
// Names that do not resolve are left as given — Validate reports them;
// Normalized never invents a meaning for an invalid request.
func (r Request) Normalized() Request {
	n := r.normalized()
	if spec, err := bench.ByName(n.Workload); err == nil && spec.Name != "" {
		n.Workload = spec.Name
	}
	if a, err := arch.Parse(n.Arch); err == nil {
		n.Arch = string(a)
	}
	if n.PolicyValue == nil {
		if pol, err := core.ParsePolicy(n.Policy); err == nil {
			n.Policy = pol.Name()
		}
	}
	return n
}

// resolve normalises the request and eagerly resolves every name it
// carries, so an invalid cell fails before any simulation runs. The
// returned request has canonical Arch and Policy spellings; the policy
// value is freshly built (or the caller's PolicyValue, reset by the
// sampler at run start).
func (r Request) resolve() (Request, core.Policy, error) {
	n := r.normalized()
	if n.Workload == "" {
		return n, nil, fmt.Errorf("engine: request without workload")
	}
	if _, err := bench.ByName(n.Workload); err != nil {
		return n, nil, fmt.Errorf("engine: %w", err)
	}
	a, err := arch.Parse(n.Arch)
	if err != nil {
		return n, nil, fmt.Errorf("engine: %w", err)
	}
	n.Arch = string(a)
	pol := n.PolicyValue
	if pol == nil {
		pol, err = core.ParsePolicy(n.Policy)
		if err != nil {
			return n, nil, fmt.Errorf("engine: %w", err)
		}
	}
	n.Policy = pol.Name()
	if err := n.Params.Validate(); err != nil {
		return n, nil, fmt.Errorf("engine: %w", err)
	}
	return n, pol, nil
}

// Validate normalises the request and resolves its workload, architecture,
// policy and parameters, reporting the first failure. Unknown architecture
// names report arch.ErrUnknown and unknown workload names
// bench.ErrUnknownName, so front ends can print the matching "valid
// values" listing.
func (r Request) Validate() error {
	_, _, err := r.resolve()
	return err
}

// Key is the cell's stable identity: workload, canonical architecture,
// thread count, canonical policy name and seed, pipe-separated. It is THE
// cell key of the repository — sweep resume files, corpus records and
// baseline bookkeeping all derive from it (scale and sampling parameters
// are deliberately excluded; durable records carry them alongside the key
// and cross-check on resume).
func (r Request) Key() string {
	n := r.Normalized()
	return CellKey(n.Workload, n.Arch, n.Threads, n.Policy, n.Seed)
}

// CellKey formats the canonical cell identity from its parts. Callers that
// already hold canonical spellings (sweep cells) use it directly; Request.Key
// canonicalises first.
func CellKey(workload, archName string, threads int, policy string, seed uint64) string {
	return fmt.Sprintf("%s|%s|%d|%s|%d", workload, archName, threads, policy, seed)
}
