package engine

import (
	"sync"
	"sync/atomic"

	"taskpoint/internal/bench"
	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// Process-wide cache metrics, aggregated across every BaselineCache in
// the process; CacheStats carries the per-cache view.
var (
	metricCacheHits      = obs.Default().Counter("engine.baseline.cache.hits")
	metricCacheMisses    = obs.Default().Counter("engine.baseline.cache.misses")
	metricCacheEvictions = obs.Default().Counter("engine.baseline.cache.evictions")
)

// progKey identifies a generated program: the same (workload, scale, seed)
// always materialises the identical trace.
type progKey struct {
	workload string
	scale    float64
	seed     uint64
}

// detKey identifies a detailed reference simulation. The noise model of
// the native architecture is seeded from (seed, threads), so the key
// fields pin it too.
type detKey struct {
	progKey
	arch    string
	threads int
}

// BaselineID is the exported identity of one detailed reference
// simulation — the fields a persistent tier needs to derive its content
// address. Arch is the canonical architecture name.
type BaselineID struct {
	Workload string
	Scale    float64
	Seed     uint64
	Arch     string
	Threads  int
}

// BaselineTier is a persistent second tier under the in-memory
// BaselineCache — internal/store's content-addressed disk store
// implements it. The cache reads through it on a memory miss and writes
// freshly computed references behind it asynchronously, so every Engine
// sharing the cache also shares the durable layer. Implementations must
// be safe for concurrent use; a load failure of any kind is reported as
// a plain miss (ok=false) so the engine recomputes.
type BaselineTier interface {
	LoadBaseline(id BaselineID) (*sim.Result, bool)
	SaveBaseline(id BaselineID, res *sim.Result)
}

func (k detKey) id() BaselineID {
	return BaselineID{Workload: k.workload, Scale: k.scale, Seed: k.seed, Arch: k.arch, Threads: k.threads}
}

// BaselineCache caches generated programs and detailed reference results
// across experiment cells, keyed by their full identity, so the expensive
// cycle-level baseline of (workload, arch, threads, scale, seed) is paid
// once no matter how many policies, figures or campaign cells sweep over
// it. One cache can back any number of Engines; it is safe for concurrent
// use.
//
// Concurrent cells racing to fill the same slot may both compute it; the
// first stored value wins and every later reader adopts it, so all
// consumers observe one canonical result per key.
type BaselineCache struct {
	mu    sync.Mutex
	progs map[progKey]*trace.Program
	dets  map[detKey]*sim.Result

	// tier is the optional persistent layer under the in-memory maps:
	// read-through on a memory miss, write-behind on a fresh store.
	// pending tracks in-flight write-behind saves for Sync.
	tier    BaselineTier
	pending sync.WaitGroup

	// Lookup tallies for the detailed-reference map (the expensive slot):
	// one hit or miss per logical cell lookup, one eviction per detailed
	// entry DropWorkload deletes.
	hits, misses, evictions atomic.Int64
}

// SetTier installs the persistent tier. Call it before the cache is
// shared with running engines; a nil tier keeps the cache memory-only.
func (c *BaselineCache) SetTier(t BaselineTier) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tier = t
}

// Sync blocks until every write-behind save issued so far has reached
// the tier. Callers that must observe their results durably — a server
// shutting down, a test asserting on-disk state — call it; the hot path
// never does.
func (c *BaselineCache) Sync() { c.pending.Wait() }

// CacheStats is a point-in-time view of a cache's detailed-reference
// behaviour — the numbers the sweep/corpus end-of-run summaries print,
// since baseline computation dominates campaign cost.
type CacheStats struct {
	// Hits and Misses tally detailed-reference lookups by outcome.
	Hits, Misses int64
	// Evictions counts detailed entries dropped by DropWorkload.
	Evictions int64
	// Entries is the current number of cached detailed references.
	Entries int
}

// Stats returns the cache's current lookup tallies.
func (c *BaselineCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.dets)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// noteHit and noteMiss record one logical detailed-reference lookup, in
// both the per-cache tallies and the process-wide metrics.
func (c *BaselineCache) noteHit()  { c.hits.Add(1); metricCacheHits.Inc() }
func (c *BaselineCache) noteMiss() { c.misses.Add(1); metricCacheMisses.Inc() }

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{
		progs: make(map[progKey]*trace.Program),
		dets:  make(map[detKey]*sim.Result),
	}
}

// Program returns the (cached) generated program of a workload at the
// given scale and seed.
func (c *BaselineCache) Program(workload string, scale float64, seed uint64) (*trace.Program, error) {
	key := progKey{workload: workload, scale: scale, seed: seed}
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	spec, err := bench.ByName(workload)
	if err != nil {
		return nil, err
	}
	p, err := spec.Build(scale, seed)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.progs[key]; ok {
		return prev, nil
	}
	c.progs[key] = p
	return p, nil
}

// DropWorkload evicts every cached program and detailed reference of the
// named workload, whatever its scale, seed, architecture or thread count.
// Long-running drivers over unbounded workload streams — the estimator
// fuzzer draws a fresh scenario every round, forever — call it once a
// workload's cells are done, so the cache stays bounded by the working set
// instead of growing with the stream's history.
func (c *BaselineCache) DropWorkload(workload string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.progs {
		if k.workload == workload {
			delete(c.progs, k)
		}
	}
	for k := range c.dets {
		if k.workload == workload {
			delete(c.dets, k)
			c.evictions.Add(1)
			metricCacheEvictions.Inc()
		}
	}
}

// detailed returns the cached reference result for key, or nil. A memory
// miss reads through the persistent tier (when one is installed): a tier
// hit is adopted into memory — without a write-behind echo — and served
// like any other hit.
func (c *BaselineCache) detailed(key detKey) *sim.Result {
	c.mu.Lock()
	res, tier := c.dets[key], c.tier
	c.mu.Unlock()
	if res != nil || tier == nil {
		return res
	}
	loaded, ok := tier.LoadBaseline(key.id())
	if !ok {
		return nil
	}
	return c.adopt(key, loaded)
}

// adopt records a reference loaded from the tier, returning the stored
// canonical value (an earlier writer's result wins the race).
func (c *BaselineCache) adopt(key detKey, res *sim.Result) *sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.dets[key]; ok {
		return prev
	}
	c.dets[key] = res
	return res
}

// storeDetailed records a freshly computed reference, returning the
// stored canonical value (an earlier writer's result wins the race). The
// winning result is written behind to the persistent tier asynchronously;
// Sync waits for those writes.
func (c *BaselineCache) storeDetailed(key detKey, res *sim.Result) *sim.Result {
	c.mu.Lock()
	if prev, ok := c.dets[key]; ok {
		c.mu.Unlock()
		return prev
	}
	c.dets[key] = res
	tier := c.tier
	if tier != nil {
		c.pending.Add(1)
	}
	c.mu.Unlock()
	if tier != nil {
		go func() {
			defer c.pending.Done()
			tier.SaveBaseline(key.id(), res)
		}()
	}
	return res
}
