package engine

import (
	"sync"

	"taskpoint/internal/bench"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// progKey identifies a generated program: the same (workload, scale, seed)
// always materialises the identical trace.
type progKey struct {
	workload string
	scale    float64
	seed     uint64
}

// detKey identifies a detailed reference simulation. The noise model of
// the native architecture is seeded from (seed, threads), so the key
// fields pin it too.
type detKey struct {
	progKey
	arch    string
	threads int
}

// BaselineCache caches generated programs and detailed reference results
// across experiment cells, keyed by their full identity, so the expensive
// cycle-level baseline of (workload, arch, threads, scale, seed) is paid
// once no matter how many policies, figures or campaign cells sweep over
// it. One cache can back any number of Engines; it is safe for concurrent
// use.
//
// Concurrent cells racing to fill the same slot may both compute it; the
// first stored value wins and every later reader adopts it, so all
// consumers observe one canonical result per key.
type BaselineCache struct {
	mu    sync.Mutex
	progs map[progKey]*trace.Program
	dets  map[detKey]*sim.Result
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{
		progs: make(map[progKey]*trace.Program),
		dets:  make(map[detKey]*sim.Result),
	}
}

// Program returns the (cached) generated program of a workload at the
// given scale and seed.
func (c *BaselineCache) Program(workload string, scale float64, seed uint64) (*trace.Program, error) {
	key := progKey{workload: workload, scale: scale, seed: seed}
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	spec, err := bench.ByName(workload)
	if err != nil {
		return nil, err
	}
	p, err := spec.Build(scale, seed)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.progs[key]; ok {
		return prev, nil
	}
	c.progs[key] = p
	return p, nil
}

// DropWorkload evicts every cached program and detailed reference of the
// named workload, whatever its scale, seed, architecture or thread count.
// Long-running drivers over unbounded workload streams — the estimator
// fuzzer draws a fresh scenario every round, forever — call it once a
// workload's cells are done, so the cache stays bounded by the working set
// instead of growing with the stream's history.
func (c *BaselineCache) DropWorkload(workload string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.progs {
		if k.workload == workload {
			delete(c.progs, k)
		}
	}
	for k := range c.dets {
		if k.workload == workload {
			delete(c.dets, k)
		}
	}
}

// detailed returns the cached reference result for key, or nil.
func (c *BaselineCache) detailed(key detKey) *sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dets[key]
}

// storeDetailed records a freshly computed reference, returning the stored
// canonical value (an earlier writer's result wins the race).
func (c *BaselineCache) storeDetailed(key detKey, res *sim.Result) *sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.dets[key]; ok {
		return prev
	}
	c.dets[key] = res
	return res
}
