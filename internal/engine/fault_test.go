package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

var faultReq = Request{Workload: "gen:forkjoin(tasks=16,mean=200)", Threads: 2, Scale: 1, Seed: 11}

// TestCellPanicRecovered: a panic inside the cell body becomes a
// structured PanicError — the engine survives and keeps serving cells on
// the same (single) worker slot afterwards.
func TestCellPanicRecovered(t *testing.T) {
	panicked := metricCellsPanicked.Value()
	failed := metricCellsFailed.Value()
	var calls int
	eng := New(WithWorkers(1), WithCellFault(func(key string) error {
		calls++
		if calls == 1 {
			panic(fmt.Sprintf("poisoned cell %s", key))
		}
		return nil
	}))

	_, err := eng.Run(context.Background(), faultReq)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Key != faultReq.normalized().Key() {
		t.Fatalf("PanicError key %q, want %q", pe.Key, faultReq.normalized().Key())
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "poisoned cell") || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack not preserved: %v / %d bytes", pe.Value, len(pe.Stack))
	}
	if got := metricCellsPanicked.Value() - panicked; got != 1 {
		t.Fatalf("engine.cells.panicked delta %d, want 1", got)
	}
	if got := metricCellsFailed.Value() - failed; got != 1 {
		t.Fatalf("a panicking cell must count as failed; delta %d", got)
	}

	// The worker slot was not leaked: the next cell completes on the same
	// 1-worker engine well within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := eng.Run(ctx, faultReq); err != nil {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
}

// TestCellFaultErrorPropagates: a hook error fails the cell cleanly — no
// panic accounting, ordinary error path.
func TestCellFaultErrorPropagates(t *testing.T) {
	panicked := metricCellsPanicked.Value()
	errInjected := errors.New("injected cell error")
	eng := New(WithWorkers(1), WithCellFault(func(string) error { return errInjected }))
	_, err := eng.Run(context.Background(), faultReq)
	if !errors.Is(err, errInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatal("hook error must not be a PanicError")
	}
	if got := metricCellsPanicked.Value() - panicked; got != 0 {
		t.Fatalf("clean hook error counted as panic: delta %d", got)
	}
}

// TestRunAllContinuesPastPanickingCell: one poisoned cell in a campaign
// fails alone; every other cell still completes and yields in order.
func TestRunAllContinuesPastPanickingCell(t *testing.T) {
	reqs := []Request{
		{Workload: "gen:forkjoin(tasks=16,mean=200)", Threads: 2, Scale: 1, Seed: 1},
		{Workload: "gen:forkjoin(tasks=16,mean=200)", Threads: 2, Scale: 1, Seed: 2},
		{Workload: "gen:forkjoin(tasks=16,mean=200)", Threads: 2, Scale: 1, Seed: 3},
	}
	poison := reqs[1].Key()
	eng := New(WithWorkers(2), WithCellFault(func(key string) error {
		if key == poison {
			panic("poisoned")
		}
		return nil
	}))
	var ok, failed int
	for rep, err := range eng.RunAll(context.Background(), reqs) {
		if err != nil {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			failed++
			continue
		}
		if rep.Sampled == nil {
			t.Fatal("completed cell missing result")
		}
		ok++
	}
	if ok != 2 || failed != 1 {
		t.Fatalf("want 2 completed / 1 panicked, got %d/%d", ok, failed)
	}
}
