package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"taskpoint/internal/sim"
)

// fakeTier is an in-memory BaselineTier recording its traffic.
type fakeTier struct {
	mu     sync.Mutex
	data   map[BaselineID]*sim.Result
	loads  int
	saves  int
	hits   int
	frozen bool // when set, SaveBaseline drops writes (simulates a full disk)
}

func newFakeTier() *fakeTier { return &fakeTier{data: map[BaselineID]*sim.Result{}} }

func (t *fakeTier) LoadBaseline(id BaselineID) (*sim.Result, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads++
	res, ok := t.data[id]
	if ok {
		t.hits++
	}
	return res, ok
}

func (t *fakeTier) SaveBaseline(id BaselineID, res *sim.Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.saves++
	if !t.frozen {
		t.data[id] = res
	}
}

func (t *fakeTier) counts() (loads, hits, saves int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.loads, t.hits, t.saves
}

var tierReq = Request{Workload: "gen:forkjoin(tasks=24,mean=300)", Threads: 2, Scale: 1, Seed: 7}

// TestBaselineCacheWriteBehind: a computed reference reaches the tier
// after Sync, and a fresh cache over the same tier serves it without
// recomputation (read-through).
func TestBaselineCacheWriteBehind(t *testing.T) {
	tier := newFakeTier()
	cache := NewBaselineCache()
	cache.SetTier(tier)
	eng := New(WithBaselineCache(cache), WithWorkers(1))

	res, err := eng.Baseline(context.Background(), tierReq)
	if err != nil {
		t.Fatal(err)
	}
	cache.Sync()
	if _, _, saves := tier.counts(); saves != 1 {
		t.Fatalf("want exactly 1 write-behind save, got %d", saves)
	}

	// A second engine with a cold in-memory cache must read through the
	// tier instead of simulating.
	cold := NewBaselineCache()
	cold.SetTier(tier)
	eng2 := New(WithBaselineCache(cold), WithWorkers(1))
	res2, err := eng2.Baseline(context.Background(), tierReq)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles || res2.TotalInstructions != res.TotalInstructions {
		t.Fatalf("tier round trip changed the result: %v cycles vs %v", res2.Cycles, res.Cycles)
	}
	if _, hits, _ := tier.counts(); hits != 1 {
		t.Fatalf("want exactly 1 tier hit on the cold cache, got %d", hits)
	}
	cold.Sync()
	if _, _, saves := tier.counts(); saves != 1 {
		t.Fatalf("tier-loaded result must not be written back; saves = %d", saves)
	}
	if stats := cold.Stats(); stats.Hits != 1 || stats.Misses != 0 {
		t.Fatalf("tier hit should count as a cache hit: %+v", stats)
	}
}

// slowTier blocks every SaveBaseline until release is closed, exposing
// the write-behind window Sync must cover.
type slowTier struct {
	fakeTier
	gate chan struct{}
}

func (t *slowTier) SaveBaseline(id BaselineID, res *sim.Result) {
	<-t.gate
	t.fakeTier.SaveBaseline(id, res)
}

// TestBaselineCacheSyncWaitsForWriteBehind: Sync must not return while a
// write-behind save is still in flight — a server draining on shutdown
// relies on it to make every computed baseline durable.
func TestBaselineCacheSyncWaitsForWriteBehind(t *testing.T) {
	tier := &slowTier{fakeTier: fakeTier{data: map[BaselineID]*sim.Result{}}, gate: make(chan struct{})}
	cache := NewBaselineCache()
	cache.SetTier(tier)
	eng := New(WithBaselineCache(cache), WithWorkers(1))
	if _, err := eng.Baseline(context.Background(), tierReq); err != nil {
		t.Fatal(err)
	}

	synced := make(chan struct{})
	go func() { cache.Sync(); close(synced) }()
	select {
	case <-synced:
		t.Fatal("Sync returned while the write-behind save was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(tier.gate)
	select {
	case <-synced:
	case <-time.After(10 * time.Second):
		t.Fatal("Sync never returned after the save completed")
	}
	if _, _, saves := tier.counts(); saves != 1 {
		t.Fatalf("want the save durably recorded after Sync, got %d", saves)
	}
}

// TestBaselineCacheSyncNoTier: Sync on a memory-only cache (and on one
// with nothing pending) is an immediate no-op.
func TestBaselineCacheSyncNoTier(t *testing.T) {
	cache := NewBaselineCache()
	done := make(chan struct{})
	go func() { cache.Sync(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sync blocked on an empty cache")
	}
}

// TestBaselineCacheTierMissRecomputes: a tier that loses its writes never
// blocks progress — the cache recomputes on every cold start.
func TestBaselineCacheTierMissRecomputes(t *testing.T) {
	tier := newFakeTier()
	tier.frozen = true
	cache := NewBaselineCache()
	cache.SetTier(tier)
	eng := New(WithBaselineCache(cache), WithWorkers(1))
	if _, err := eng.Baseline(context.Background(), tierReq); err != nil {
		t.Fatal(err)
	}
	cache.Sync()
	loads, hits, saves := tier.counts()
	if loads < 1 || hits != 0 || saves != 1 {
		t.Fatalf("want >=1 loads / 0 hits / 1 save, got %d/%d/%d", loads, hits, saves)
	}
	if stats := cache.Stats(); stats.Misses != 1 {
		t.Fatalf("frozen tier should leave the miss a miss: %+v", stats)
	}
}
