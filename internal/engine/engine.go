// Package engine is the unified experiment engine: one context-aware,
// cancellable entry point that turns a Request (workload × architecture ×
// threads × parameters × policy) into a Report (sampled result, sampler
// statistics, accuracy against the cached detailed reference, optional
// confidence interval).
//
// Every driver of the repository routes through it — the evaluation
// runner (internal/results), the design-space sweep engine
// (internal/sweep), the generated accuracy corpus (internal/gen/corpus)
// and the command front ends — so worker pooling, baseline caching and
// cell identity exist exactly once.
package engine

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/core"
	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/stats"
	"taskpoint/internal/strata"
	"taskpoint/internal/trace"

	// Register the "gen:" scenario resolver so generated workloads run
	// wherever a Table I benchmark name does, mirroring how the strata
	// import below registers the "stratified" policy parser.
	_ "taskpoint/internal/gen"
)

// Report is the outcome of one experiment cell: the sampled run, its
// detailed reference, and the derived accuracy/speedup metrics every
// consumer reports.
type Report struct {
	// Request echoes the executed request in normalized form: defaults
	// filled, architecture and policy names canonical. Request.Key() is
	// the cell's durable identity.
	Request Request
	// Program is the generated workload the cell simulated.
	Program *trace.Program
	// Config is the resolved machine configuration.
	Config sim.Config
	// Sampled and Detailed are the two simulation results; Detailed is
	// shared with every other cell of the same baseline via the engine's
	// cache.
	Sampled  *sim.Result
	Detailed *sim.Result
	// Sampler reports the sampling controller's internal statistics.
	Sampler core.Stats
	// Confidence is the stratified estimate of total task cycles with
	// its confidence interval; nil unless the policy reports one.
	Confidence *strata.Confidence
	// ErrPct is the absolute execution-time error of the sampled run
	// against the detailed reference, in percent — the paper's accuracy
	// metric.
	ErrPct float64
	// SpeedupWall is detailed wall time / sampled wall time.
	SpeedupWall float64
	// SpeedupDetail is total instructions / instructions simulated in
	// detail — the machine-independent speedup proxy.
	SpeedupDetail float64
	// DetailFraction is the fraction of instructions simulated in detail.
	DetailFraction float64
	// DetailedTaskCycles is the detailed reference's total task execution
	// time (Σ per-instance durations) — the quantity a stratified
	// Confidence estimates.
	DetailedTaskCycles float64
	// SampledWall and DetailedWall are the host wall-clock times of the
	// two runs (the only non-deterministic fields of a report).
	SampledWall, DetailedWall time.Duration
}

// confidencePolicy is the optional policy surface the engine wires up:
// strata.Stratified implements it, and so can any future budgeted policy
// that prescans the program and reports a confidence interval.
type confidencePolicy interface {
	core.Policy
	Prescan(prog *trace.Program)
	Confidence() strata.Confidence
}

// Engine executes experiment requests over a bounded worker pool with a
// shared baseline cache. The zero configuration is usable: New() gives
// one worker slot per CPU and a private cache. Engines are safe for
// concurrent use.
type Engine struct {
	workers   int
	cache     *BaselineCache
	progress  func(done, total int, rep Report)
	rec       *obs.Recorder
	prof      *obs.SlowProfiler
	cellFault func(key string) error

	semOnce sync.Once
	sem     chan struct{}
}

// Engine metrics in the default registry: cell throughput and latency,
// worker-pool occupancy, and baseline computation volume. The baseline
// cache's hit/miss/eviction counters live in cache.go.
var (
	metricCellsCompleted = obs.Default().Counter("engine.cells.completed")
	metricCellsFailed    = obs.Default().Counter("engine.cells.failed")
	metricCellsPanicked  = obs.Default().Counter("engine.cells.panicked")
	metricCellWallMS     = obs.Default().Histogram("engine.cell.wall_ms")
	metricWorkersBusy    = obs.Default().Gauge("engine.workers.busy")
	metricBaselineRuns   = obs.Default().Counter("engine.baseline.computed")
)

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of concurrently running simulations
// (minimum 1). It sizes both the RunAll worker pool and the semaphore
// throttling concurrent Run callers.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithBaselineCache shares an existing baseline cache, so detailed
// references computed by other engines (or earlier campaigns in the same
// process) are reused instead of re-simulated.
func WithBaselineCache(c *BaselineCache) Option {
	return func(e *Engine) {
		if c != nil {
			e.cache = c
		}
	}
}

// WithProgress installs a completion observer: RunAll invokes it once per
// successfully completed request, in deterministic request order, with
// done counting completions so far and total the request count.
func WithProgress(fn func(done, total int, rep Report)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithRecorder attaches a flight recorder: the engine emits cell
// lifecycle, baseline-computation and sampler-decision events to it. A
// nil recorder (the default) is the free disabled path — the same call
// sites compile to immediate returns.
func WithRecorder(r *obs.Recorder) Option {
	return func(e *Engine) { e.rec = r }
}

// WithSlowProfiler attaches a slow-cell profiler: every cell registers
// with it for the duration of its run, so cells exceeding the profiler's
// threshold get a pprof CPU capture. A nil profiler (the default) is the
// free disabled path.
func WithSlowProfiler(p *obs.SlowProfiler) Option {
	return func(e *Engine) { e.prof = p }
}

// WithCellFault installs a fault hook invoked with the cell key at the
// start of every Run, inside the engine's panic-recovery boundary. It is
// the per-cell seam of internal/fault: the hook may return an error (the
// cell fails cleanly) or panic (the cell fails as a PanicError, like any
// other poisoned cell). A nil hook (the default) costs nothing.
func WithCellFault(fn func(key string) error) Option {
	return func(e *Engine) { e.cellFault = fn }
}

// PanicError is the structured error a recovered per-cell panic turns
// into: a poisoned scenario fails its own cell — with the panic value
// and stack preserved for diagnosis — instead of killing the campaign
// that contains it (or the server running that campaign).
type PanicError struct {
	// Key is the panicking cell's identity (Request.Key()).
	Key string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: cell %s panicked: %v", p.Key, p.Value)
}

// New builds an engine. Defaults: one worker slot per CPU, a fresh
// private baseline cache, no progress observer.
func New(opts ...Option) *Engine {
	e := &Engine{workers: runtime.NumCPU(), cache: NewBaselineCache()}
	if e.workers < 1 {
		e.workers = 1
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's baseline cache (shared or private).
func (e *Engine) Cache() *BaselineCache { return e.cache }

// acquire claims one simulation slot, honouring cancellation while
// queued. The returned release must be called exactly once.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	e.semOnce.Do(func() { e.sem = make(chan struct{}, e.workers) })
	select {
	case e.sem <- struct{}{}:
		metricWorkersBusy.Add(1)
		return func() { <-e.sem; metricWorkersBusy.Add(-1) }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Baseline returns the (cached) detailed reference simulation of the
// request's (workload, arch, threads, scale, seed) cell — the run every
// sampled result is measured against. The request's policy and sampling
// parameters are irrelevant and ignored.
func (e *Engine) Baseline(ctx context.Context, req Request) (*sim.Result, error) {
	n := req.normalized()
	a, err := arch.Parse(n.Arch)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return e.baseline(ctx, n, a)
}

// detailedKey is the cache identity of a cell's detailed reference.
func detailedKey(n Request, a arch.Arch) detKey {
	return detKey{
		progKey: progKey{workload: n.Workload, scale: n.Scale, seed: n.Seed},
		arch:    string(a),
		threads: n.Threads,
	}
}

// detailedFor returns the cached detailed reference for key, computing
// it on the caller's simulation engine when absent. ran reports whether
// se executed a run (the caller must Reset it before reusing it); the
// returned result is always the cache's canonical value for the key.
func (e *Engine) detailedFor(ctx context.Context, key detKey, se *sim.Engine) (res *sim.Result, ran bool, err error) {
	if res := e.cache.detailed(key); res != nil {
		e.cache.noteHit()
		e.rec.Emit("cache.hit", obs.String("workload", key.workload), obs.String("arch", key.arch), obs.Int("threads", key.threads))
		return res, false, nil
	}
	e.cache.noteMiss()
	e.rec.Emit("cache.miss", obs.String("workload", key.workload), obs.String("arch", key.arch), obs.Int("threads", key.threads))
	// The baseline span covers queue wait plus the detailed run; wall_ms on
	// span.end is the pure simulation time — the quantity a later cache.hit
	// on the same (workload, arch, threads) saves.
	sp := obs.ChildSpan(ctx, e.rec, "baseline",
		obs.String("workload", key.workload), obs.String("arch", key.arch), obs.Int("threads", key.threads))
	release, err := e.acquire(ctx)
	if err != nil {
		sp.End(obs.String("status", "error"))
		return nil, false, err
	}
	// The slot is released by defer so a panicking simulation unwinds
	// through the engine's recovery boundary without leaking a worker.
	func() {
		defer release()
		res, err = se.RunContext(ctx, sim.DetailedController{})
	}()
	if err != nil {
		sp.End(obs.String("status", "error"))
		return nil, false, err
	}
	metricBaselineRuns.Inc()
	sp.End(obs.String("status", "ok"), obs.Float("wall_ms", float64(res.Wall.Microseconds())/1e3))
	return e.cache.storeDetailed(key, res), true, nil
}

func (e *Engine) baseline(ctx context.Context, n Request, a arch.Arch) (*sim.Result, error) {
	key := detailedKey(n, a)
	if res := e.cache.detailed(key); res != nil {
		e.cache.noteHit()
		return res, nil
	}
	prog, err := e.cache.Program(n.Workload, n.Scale, n.Seed)
	if err != nil {
		return nil, err
	}
	cfg, err := arch.ConfigFor(a, n.Threads)
	if err != nil {
		return nil, err
	}
	se, err := sim.NewEngine(cfg, prog, arch.SimOptions(a, n.Seed, n.Threads)...)
	if err != nil {
		return nil, err
	}
	res, _, err := e.detailedFor(ctx, key, se)
	return res, err
}

// Run executes one experiment cell: the detailed reference (cached), the
// sampled run under the request's policy, and the comparison between
// them. Cancellation of ctx abandons the cell mid-simulation with ctx's
// error.
//
// The cell builds one simulation engine and reuses it (sim.Engine.Reset)
// for the detailed reference and the sampled run, so the expensive
// simulator state — cache arrays, core rings, scheduler storage — is
// paid once per cell instead of once per run. Reset restores the engine
// (including the native architecture's noise model) bit-for-bit, so the
// results are identical to building two engines.
func (e *Engine) Run(ctx context.Context, req Request) (Report, error) {
	n := req.normalized()
	key := n.Key()
	sp := obs.ChildSpan(ctx, e.rec, "cell",
		obs.String("key", key),
		obs.String("workload", n.Workload),
		obs.String("arch", n.Arch),
		obs.Int("threads", n.Threads),
		obs.String("policy", n.Policy),
		obs.Uint64("seed", n.Seed))
	ctx = obs.ContextWithSpan(ctx, sp)
	cellDone := e.prof.CellStarted(key)
	rep, err := e.runSafe(ctx, req, key)
	cellDone()
	if err != nil {
		metricCellsFailed.Inc()
		sp.Emit("cell.error", obs.String("key", key), obs.String("err", err.Error()))
		sp.End(obs.String("status", "error"))
		return rep, err
	}
	metricCellsCompleted.Inc()
	wallMS := float64((rep.SampledWall + rep.DetailedWall).Microseconds()) / 1e3
	metricCellWallMS.Observe(wallMS)
	sp.End(
		obs.String("status", "ok"),
		obs.Float("err_pct", rep.ErrPct),
		obs.Float("detail_fraction", rep.DetailFraction),
		obs.Float("wall_ms", wallMS))
	return rep, nil
}

// runSafe is the engine's panic boundary: a panic anywhere in the cell
// body — a poisoned generated scenario, a simulator bug on a pathological
// configuration, an injected fault — is recovered into a structured
// PanicError so the cell fails and the campaign continues. The cellFault
// hook fires first, inside the boundary, so injected panics take the
// same recovery path as organic ones.
func (e *Engine) runSafe(ctx context.Context, req Request, key string) (rep Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			metricCellsPanicked.Inc()
			err = &PanicError{Key: key, Value: v, Stack: debug.Stack()}
		}
	}()
	if e.cellFault != nil {
		if ferr := e.cellFault(key); ferr != nil {
			return Report{}, ferr
		}
	}
	return e.run(ctx, req)
}

func (e *Engine) run(ctx context.Context, req Request) (Report, error) {
	n, policy, err := req.resolve()
	if err != nil {
		return Report{}, err
	}
	a := arch.Arch(n.Arch)
	prog, err := e.cache.Program(n.Workload, n.Scale, n.Seed)
	if err != nil {
		return Report{}, err
	}
	cfg, err := arch.ConfigFor(a, n.Threads)
	if err != nil {
		return Report{}, err
	}
	se, err := sim.NewEngine(cfg, prog, arch.SimOptions(a, n.Seed, n.Threads)...)
	if err != nil {
		return Report{}, err
	}
	det, ran, err := e.detailedFor(ctx, detailedKey(n, a), se)
	if err != nil {
		return Report{}, err
	}
	if ran {
		if err := se.Reset(nil); err != nil {
			return Report{}, err
		}
	}
	params := n.Params
	strat, _ := policy.(confidencePolicy)
	if strat != nil {
		// A confidence-reporting policy is prescanned over the program
		// (exact stratum populations) and implies size-class histories.
		strat.Prescan(prog)
		params.SizeClasses = true
	}
	sampler, err := core.New(params, policy)
	if err != nil {
		return Report{}, err
	}
	sampler.SetTrace(e.rec, n.Key())
	// The sampled-phase span nests under the cell span Run put in ctx; a
	// tracing-aware policy (strata.Stratified) opens its pilot/allocation/
	// directed phase spans beneath it.
	ssp := obs.ChildSpan(ctx, e.rec, "sampled")
	if tr, ok := policy.(interface {
		SetTrace(*obs.Recorder, obs.Span)
	}); ok {
		tr.SetTrace(e.rec, ssp)
	}
	release, err := e.acquire(ctx)
	if err != nil {
		ssp.End(obs.String("status", "error"))
		return Report{}, err
	}
	var res *sim.Result
	func() {
		defer release()
		res, err = se.RunContext(ctx, sampler)
	}()
	if err != nil {
		ssp.End(obs.String("status", "error"))
		return Report{}, err
	}
	ssp.End(obs.String("status", "ok"), obs.Float("wall_ms", float64(res.Wall.Microseconds())/1e3))

	rep := Report{
		Request:            n,
		Program:            prog,
		Config:             cfg,
		Sampled:            res,
		Detailed:           det,
		Sampler:            sampler.Stats(),
		ErrPct:             stats.AbsPctError(res.Cycles, det.Cycles),
		SpeedupDetail:      float64(res.TotalInstructions) / float64(max(res.DetailedInstructions, 1)),
		DetailFraction:     res.DetailFraction(),
		DetailedTaskCycles: det.TotalTaskCycles(),
		SampledWall:        res.Wall,
		DetailedWall:       det.Wall,
	}
	if res.Wall > 0 {
		rep.SpeedupWall = float64(det.Wall) / float64(res.Wall)
	}
	if strat != nil {
		conf := strat.Confidence()
		rep.Confidence = &conf
	}
	return rep, nil
}

// RunAll executes the requests across the engine's worker pool and yields
// one (Report, error) pair per request, in request order regardless of
// worker count or completion order — so record streams derived from the
// sequence are deterministic. A failing cell yields its error and the
// iteration continues; once ctx is cancelled, in-flight simulations stop
// promptly and every remaining request yields ctx's error. Breaking out
// of the iteration cancels the outstanding work.
//
// Dispatch is throttled to a bounded window ahead of the yield frontier,
// so the reorder buffer holds at most a few reports (with their full
// per-instance results) even when one slow early cell stalls the ordered
// output of a huge campaign.
func (e *Engine) RunAll(ctx context.Context, reqs []Request) iter.Seq2[Report, error] {
	return func(yield func(Report, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		camp := obs.ChildSpan(ctx, e.rec, "campaign",
			obs.Int("requests", len(reqs)), obs.Int("workers", e.workers))
		ctx = obs.ContextWithSpan(ctx, camp)
		completed := 0
		defer func() {
			camp.End(obs.Int("requests", len(reqs)), obs.Int("completed", completed))
		}()

		type outcome struct {
			idx int
			rep Report
			err error
		}
		// Buffered to the full request count so producers never block:
		// an early break from the consumer cannot strand a goroutine.
		out := make(chan outcome, len(reqs))
		feed := make(chan int)
		// Dispatch credits: one is taken per dispatched request and
		// returned per yielded outcome, bounding dispatched-but-unyielded
		// work (and with it the reorder buffer) to the window size while
		// still keeping every worker busy.
		window := 4 * e.workers
		if window < 8 {
			window = 8
		}
		credits := make(chan struct{}, window)
		for i := 0; i < window; i++ {
			credits <- struct{}{}
		}
		var wg sync.WaitGroup
		for w := 0; w < min(e.workers, len(reqs)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range feed {
					rep, err := e.Run(ctx, reqs[idx])
					if err != nil {
						err = fmt.Errorf("engine: request %s: %w", reqs[idx].Key(), err)
					}
					out <- outcome{idx: idx, rep: rep, err: err}
				}
			}()
		}
		go func() {
			defer close(feed)
			for i := range reqs {
				// Undispatched requests fail with the cancellation error;
				// dispatched ones report through their worker.
				select {
				case <-credits:
				case <-ctx.Done():
					for j := i; j < len(reqs); j++ {
						out <- outcome{idx: j, err: fmt.Errorf("engine: request %s: %w", reqs[j].Key(), ctx.Err())}
					}
					return
				}
				select {
				case feed <- i:
				case <-ctx.Done():
					for j := i; j < len(reqs); j++ {
						out <- outcome{idx: j, err: fmt.Errorf("engine: request %s: %w", reqs[j].Key(), ctx.Err())}
					}
					return
				}
			}
		}()

		pending := make(map[int]outcome)
		next, done := 0, 0
		for received := 0; received < len(reqs); received++ {
			o := <-out
			pending[o.idx] = o
			for {
				po, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				// Return the dispatch credit non-blockingly: after a
				// cancellation the feeder emits the tail without taking
				// credits, so the channel may already be full.
				select {
				case credits <- struct{}{}:
				default:
				}
				if po.err == nil {
					done++
					completed = done
					if e.progress != nil {
						e.progress(done, len(reqs), po.rep)
					}
				}
				if !yield(po.rep, po.err) {
					return
				}
			}
		}
		wg.Wait()
	}
}
