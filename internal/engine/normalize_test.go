package engine

import (
	"testing"

	"taskpoint/internal/core"
)

// TestNormalizedCanonicalizesEquivalentSpellings: every group lists
// spellings of ONE experiment cell; Normalized must map all of them to
// the group's canonical form, so they share one Key and (through
// internal/store) one content address.
func TestNormalizedCanonicalizesEquivalentSpellings(t *testing.T) {
	groups := []struct {
		name string
		want Request // the canonical form every member must normalise to
		reqs []Request
	}{
		{
			name: "policy whitespace and colon form",
			want: Request{Workload: "cholesky", Arch: "high-performance", Threads: 1, Scale: 1, Policy: "periodic(250)"},
			reqs: []Request{
				{Workload: "cholesky", Policy: "periodic(250)"},
				{Workload: "cholesky", Policy: "periodic( 250 )"},
				{Workload: "cholesky", Policy: "periodic:250"},
				{Workload: "cholesky", Policy: " periodic(250)"},
			},
		},
		{
			name: "stratified policy forms",
			want: Request{Workload: "knn", Arch: "high-performance", Threads: 1, Scale: 1, Policy: "stratified(400)"},
			reqs: []Request{
				{Workload: "knn", Policy: "stratified(400)"},
				{Workload: "knn", Policy: "stratified:400"},
				{Workload: "knn", Policy: "stratified( 400 )"},
			},
		},
		{
			name: "defaulted fields and arch short form",
			want: Request{Workload: "cholesky", Arch: "high-performance", Threads: 8, Scale: 1, Policy: "lazy"},
			reqs: []Request{
				{Workload: "cholesky", Arch: "hp", Threads: 8},
				{Workload: "cholesky", Arch: "high-performance", Threads: 8, Policy: "lazy"},
				{Workload: "cholesky", Arch: "hp", Threads: 8, Scale: 1, Policy: " lazy "},
			},
		},
		{
			name: "low-power arch alias",
			want: Request{Workload: "3d-stencil", Arch: "low-power", Threads: 2, Scale: 1, Policy: "lazy"},
			reqs: []Request{
				{Workload: "3d-stencil", Arch: "lp", Threads: 2},
				{Workload: "3d-stencil", Arch: "low-power", Threads: 2},
			},
		},
		{
			name: "gen scenario knob order, spacing and elided defaults",
			want: Request{Workload: "gen:forkjoin(tasks=96,mean=600)", Arch: "high-performance", Threads: 1, Scale: 1, Policy: "lazy"},
			reqs: []Request{
				{Workload: "gen:forkjoin(tasks=96,mean=600)"},
				{Workload: "gen:forkjoin(mean=600,tasks=96)"},
				{Workload: "gen:forkjoin( tasks=96, mean=600 )"},
			},
		},
	}
	for _, g := range groups {
		t.Run(g.name, func(t *testing.T) {
			g.want.Params = core.DefaultParams()
			for _, req := range g.reqs {
				got := req.Normalized()
				if got != g.want {
					t.Errorf("Normalized(%+v) = %+v, want %+v", req, got, g.want)
				}
				if got.Key() != g.want.Key() {
					t.Errorf("Key(%+v) = %q, want %q", req, got.Key(), g.want.Key())
				}
			}
		})
	}
}

// TestNormalizedKeepsDistinctCellsDistinct: requests that differ in any
// identity dimension must stay distinct after normalization — collisions
// here would silently merge different experiments into one stored result.
func TestNormalizedKeepsDistinctCellsDistinct(t *testing.T) {
	reqs := []Request{
		{Workload: "cholesky"},
		{Workload: "knn"},
		{Workload: "cholesky", Arch: "lp"},
		{Workload: "cholesky", Threads: 8},
		{Workload: "cholesky", Seed: 1},
		{Workload: "cholesky", Policy: "periodic(250)"},
		{Workload: "cholesky", Policy: "periodic(251)"},
		{Workload: "cholesky", Policy: "stratified(250)"},
		{Workload: "gen:forkjoin(tasks=96)"},
		{Workload: "gen:forkjoin(tasks=97)"},
		{Workload: "gen:pipeline(tasks=96)"},
	}
	seen := map[string]Request{}
	for _, req := range reqs {
		key := req.Key()
		if prev, dup := seen[key]; dup {
			t.Errorf("distinct requests %+v and %+v share key %q", prev, req, key)
		}
		seen[key] = req
	}
}

// TestNormalizedLeavesInvalidNamesAlone: Normalized never rewrites a name
// it cannot resolve — Validate owns rejection.
func TestNormalizedLeavesInvalidNamesAlone(t *testing.T) {
	req := Request{Workload: "no-such-benchmark", Arch: "vax", Policy: "periodic(-3)"}
	n := req.Normalized()
	if n.Workload != "no-such-benchmark" || n.Arch != "vax" || n.Policy != "periodic(-3)" {
		t.Fatalf("Normalized rewrote unresolvable names: %+v", n)
	}
	if err := req.Validate(); err == nil {
		t.Fatal("Validate accepted an invalid request")
	}
}
