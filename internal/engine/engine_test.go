package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/bench"
	"taskpoint/internal/core"
)

// testScale keeps unit-test simulations fast.
const testScale = 1.0 / 64

func testRequest(workload, policy string, threads int) Request {
	return Request{
		Workload: workload,
		Arch:     "hp",
		Threads:  threads,
		Scale:    testScale,
		Seed:     7,
		Policy:   policy,
	}
}

func TestRequestDefaultsAndKey(t *testing.T) {
	r := Request{Workload: "cholesky"}
	n := r.normalized()
	if n.Arch != string(arch.HighPerf) || n.Threads != 1 || n.Scale != 1 || n.Policy != "lazy" {
		t.Errorf("defaults not applied: %+v", n)
	}
	if n.Params != core.DefaultParams() {
		t.Errorf("zero params did not default: %+v", n.Params)
	}
	// Key canonicalises short arch names and policy spellings, and
	// matches CellKey exactly — the resume identity of sweep records.
	r = Request{Workload: "dedup", Arch: "lp", Threads: 4, Seed: 9, Policy: "periodic:250"}
	want := CellKey("dedup", string(arch.LowPower), 4, "periodic(250)", 9)
	if got := r.Key(); got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestRequestValidate(t *testing.T) {
	if err := testRequest("cholesky", "lazy", 2).Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if err := (Request{}).Validate(); err == nil {
		t.Error("empty request accepted")
	}
	err := testRequest("no-such-bench", "lazy", 2).Validate()
	if !errors.Is(err, bench.ErrUnknownName) {
		t.Errorf("unknown workload error %v, want bench.ErrUnknownName", err)
	}
	req := testRequest("cholesky", "lazy", 2)
	req.Arch = "tpu"
	if err := req.Validate(); !errors.Is(err, arch.ErrUnknown) {
		t.Errorf("unknown arch error %v, want arch.ErrUnknown", err)
	}
	if err := testRequest("cholesky", "eager", 2).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	req = testRequest("cholesky", "lazy", 2)
	req.Params = core.Params{W: -1, H: 4, RareCutoff: 5, ResampleWarmup: 1, ConcurrencyTolerance: 0.25, ConcurrencyPatience: 2}
	if err := req.Validate(); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunReportShape(t *testing.T) {
	e := New(WithWorkers(2))
	rep, err := e.Run(context.Background(), testRequest("cholesky", "lazy", 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Request.Arch != string(arch.HighPerf) || rep.Request.Policy != "lazy" {
		t.Errorf("report request not canonical: %+v", rep.Request)
	}
	if rep.Program == nil || rep.Sampled == nil || rep.Detailed == nil {
		t.Fatal("report missing program or results")
	}
	if rep.Sampled.Cycles <= 0 || rep.Detailed.Cycles <= 0 {
		t.Errorf("nonpositive cycles: %v / %v", rep.Sampled.Cycles, rep.Detailed.Cycles)
	}
	if rep.SpeedupDetail < 1 || rep.DetailFraction <= 0 || rep.DetailFraction >= 1 {
		t.Errorf("speedup %v, detail fraction %v out of range", rep.SpeedupDetail, rep.DetailFraction)
	}
	if rep.Confidence != nil {
		t.Error("lazy run carries a confidence interval")
	}
	if rep.DetailedTaskCycles <= 0 {
		t.Error("missing detailed task-cycle reference")
	}

	// The detailed baseline is shared: a second policy over the same
	// cell reuses the identical result value.
	rep2, err := e.Run(context.Background(), testRequest("cholesky", "periodic(100)", 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Detailed != rep.Detailed {
		t.Error("detailed baseline not shared across policies of one cell")
	}

	// Stratified cells report their interval.
	rep3, err := e.Run(context.Background(), testRequest("cholesky", "stratified(120)", 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Confidence == nil || rep3.Confidence.Strata == 0 {
		t.Errorf("stratified run lacks a confidence interval: %+v", rep3.Confidence)
	}
}

func TestBaselineCacheSharedAcrossEngines(t *testing.T) {
	cache := NewBaselineCache()
	e1 := New(WithWorkers(1), WithBaselineCache(cache))
	e2 := New(WithWorkers(1), WithBaselineCache(cache))
	a, err := e1.Baseline(context.Background(), testRequest("swaptions", "lazy", 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Baseline(context.Background(), testRequest("swaptions", "lazy", 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("engines sharing a cache recomputed the baseline")
	}
	c, err := e2.Baseline(context.Background(), testRequest("swaptions", "lazy", 4))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct thread counts shared one baseline")
	}
}

// deterministic strips a report down to the fields that must be identical
// across runs and worker counts (host wall clocks are not).
type deterministic struct {
	key                     string
	errPct, sampledCycles   float64
	detailedCycles          float64
	detailFrac              float64
	detailedStarted, fastSt int
}

func determ(rep Report) deterministic {
	return deterministic{
		key:             rep.Request.Key(),
		errPct:          rep.ErrPct,
		sampledCycles:   rep.Sampled.Cycles,
		detailedCycles:  rep.Detailed.Cycles,
		detailFrac:      rep.DetailFraction,
		detailedStarted: rep.Sampler.DetailedStarted,
		fastSt:          rep.Sampler.FastStarted,
	}
}

func testGrid() []Request {
	var reqs []Request
	for _, wl := range []string{"cholesky", "vector-operation"} {
		for _, pol := range []string{"lazy", "periodic(150)", "stratified(100)"} {
			reqs = append(reqs, testRequest(wl, pol, 4))
		}
	}
	return reqs
}

// TestRunAllDeterministicOrder: RunAll must yield identical reports in
// identical (request) order at any worker count — the invariant record
// streams and resume files build on. Run under -race in CI, this also
// exercises the worker pool for data races.
func TestRunAllDeterministicOrder(t *testing.T) {
	reqs := testGrid()
	collect := func(workers int) []deterministic {
		var out []deterministic
		for rep, err := range New(WithWorkers(workers)).RunAll(context.Background(), reqs) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, determ(rep))
		}
		return out
	}
	one := collect(1)
	eight := collect(8)
	if len(one) != len(reqs) || len(eight) != len(reqs) {
		t.Fatalf("got %d and %d reports for %d requests", len(one), len(eight), len(reqs))
	}
	for i := range one {
		if one[i].key != reqs[i].Key() {
			t.Errorf("report %d out of order: %q, want %q", i, one[i].key, reqs[i].Key())
		}
		if one[i] != eight[i] {
			t.Errorf("report %d differs between 1 and 8 workers:\n%+v\nvs\n%+v", i, one[i], eight[i])
		}
	}
}

// TestRunAllContinuesPastFailures: one bad cell yields its error in
// position; the rest of the campaign still runs.
func TestRunAllContinuesPastFailures(t *testing.T) {
	reqs := []Request{
		testRequest("cholesky", "lazy", 2),
		testRequest("no-such-bench", "lazy", 2),
		testRequest("vector-operation", "lazy", 2),
	}
	var errs []error
	var keys []string
	for rep, err := range New(WithWorkers(2)).RunAll(context.Background(), reqs) {
		errs = append(errs, err)
		if err == nil {
			keys = append(keys, rep.Request.Key())
		}
	}
	if len(errs) != 3 || errs[0] != nil || errs[2] != nil {
		t.Fatalf("unexpected error layout: %v", errs)
	}
	if !errors.Is(errs[1], bench.ErrUnknownName) {
		t.Errorf("bad cell error %v, want bench.ErrUnknownName", errs[1])
	}
	if len(keys) != 2 {
		t.Errorf("campaign did not continue past the failure: %v", keys)
	}
}

// TestRunAllProgressOrder: the progress observer sees successes in
// deterministic order with a monotonically increasing done count.
func TestRunAllProgressOrder(t *testing.T) {
	reqs := testGrid()
	var dones []int
	var keys []string
	eng := New(WithWorkers(4), WithProgress(func(done, total int, rep Report) {
		if total != len(reqs) {
			t.Errorf("progress total %d, want %d", total, len(reqs))
		}
		dones = append(dones, done)
		keys = append(keys, rep.Request.Key())
	}))
	for _, err := range eng.RunAll(context.Background(), reqs) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range dones {
		if dones[i] != i+1 {
			t.Fatalf("done sequence %v not monotone", dones)
		}
		if keys[i] != reqs[i].Key() {
			t.Fatalf("progress out of order at %d: %q", i, keys[i])
		}
	}
}

// TestRunAllPreCancelled: a context cancelled before iteration fails
// every request with the cancellation error without simulating anything.
func TestRunAllPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	n := 0
	for _, err := range New(WithWorkers(2)).RunAll(ctx, testGrid()) {
		n++
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("request error %v, want context.Canceled", err)
		}
	}
	if n != len(testGrid()) {
		t.Errorf("yielded %d outcomes, want %d", n, len(testGrid()))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled RunAll took %v", elapsed)
	}
}

// TestRunCancelledMidSimulation: cancelling the context while the
// simulator is deep in its scheduler loop abandons the run promptly —
// well before the full simulation would have finished. The test first
// measures the uncancelled cell to calibrate "promptly" against the host.
func TestRunCancelledMidSimulation(t *testing.T) {
	// A deliberately heavy cell: ~1s of detailed simulation on the
	// calibration run.
	req := Request{Workload: "cholesky", Arch: "hp", Threads: 8, Scale: 0.25, Seed: 42, Policy: "lazy"}

	full := New(WithWorkers(1))
	start := time.Now()
	if _, err := full.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(start)

	// Fresh engine (empty cache) so the detailed baseline really
	// re-simulates; cancel a tenth of the way in.
	eng := New(WithWorkers(1))
	ctx, cancel := context.WithTimeout(context.Background(), fullDur/10)
	defer cancel()
	start = time.Now()
	_, err := eng.Run(ctx, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled run returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > fullDur/2 {
		t.Errorf("cancelled run took %v of an uncancelled %v — not prompt", elapsed, fullDur)
	}
}

// TestRunAllCancelMidCampaign: cancelling after the first yielded report
// stops the campaign promptly and surfaces the cancellation on the
// remaining cells.
func TestRunAllCancelMidCampaign(t *testing.T) {
	reqs := make([]Request, 6)
	for i := range reqs {
		// Distinct seeds defeat the baseline cache, so every cell pays
		// a full simulation — the campaign would be slow uncancelled.
		reqs[i] = Request{Workload: "cholesky", Arch: "hp", Threads: 8, Scale: 0.25, Seed: uint64(i + 1), Policy: "lazy"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ok, cancelled := 0, 0
	for _, err := range New(WithWorkers(1)).RunAll(ctx, reqs) {
		switch {
		case err == nil:
			ok++
			cancel()
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 || cancelled == 0 || ok+cancelled != len(reqs) {
		t.Errorf("got %d completed + %d cancelled of %d cells", ok, cancelled, len(reqs))
	}
}
