package bench

import (
	"math"
	"reflect"
	"testing"

	"taskpoint/internal/taskgraph"
	"taskpoint/internal/trace"
)

func TestRegistryMatchesTable1(t *testing.T) {
	specs := Registry()
	if len(specs) != 19 {
		t.Fatalf("registry has %d benchmarks, Table I lists 19", len(specs))
	}
	// Exact Table I rows.
	want := map[string][2]int{ // name -> {types, instances}
		"2d-convolution":                      {1, 16384},
		"3d-stencil":                          {1, 16370},
		"atomic-monte-carlo-dynamics":         {1, 16384},
		"dense-matrix-multiplication":         {1, 17576},
		"histogram":                           {1, 16384},
		"n-body":                              {2, 25000},
		"reduction":                           {2, 16384},
		"sparse-matrix-vector-multiplication": {1, 1024},
		"vector-operation":                    {1, 16400},
		"checkSparseLU":                       {11, 22058},
		"cholesky":                            {4, 19600},
		"kmeans":                              {6, 16337},
		"knn":                                 {2, 18400},
		"blackscholes":                        {2, 24500},
		"bodytrack":                           {7, 21439},
		"canneal":                             {1, 16384},
		"dedup":                               {4, 15738},
		"freqmine":                            {7, 1932},
		"swaptions":                           {1, 16384},
	}
	for _, s := range specs {
		row, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", s.Name)
			continue
		}
		if s.Types != row[0] || s.Instances != row[1] {
			t.Errorf("%s: types/instances = %d/%d, Table I says %d/%d",
				s.Name, s.Types, s.Instances, row[0], row[1])
		}
	}
}

func TestAllBenchmarksBuildSmallScale(t *testing.T) {
	for _, s := range Registry() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, err := s.Build(1.0/16, 42)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			if len(p.Types) != s.Types {
				t.Errorf("types = %d, want %d", len(p.Types), s.Types)
			}
			if _, err := taskgraph.Build(p); err != nil {
				t.Errorf("graph: %v", err)
			}
			if p.TotalInstructions() <= 0 {
				t.Error("no instructions")
			}
			// Every declared type must actually be instantiated.
			hist := typeHistogram(p)
			for typ := range p.Types {
				if hist[trace.TypeID(typ)] == 0 {
					t.Errorf("type %d (%s) has no instances", typ, p.Types[typ].Name)
				}
			}
		})
	}
}

func TestFullScaleInstanceCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	for _, s := range Registry() {
		p, err := s.Build(1, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		got := p.NumTasks()
		diff := math.Abs(float64(got-s.Instances)) / float64(s.Instances)
		if diff > 0.05 {
			t.Errorf("%s: %d instances at scale 1, Table I says %d (%.1f%% off)",
				s.Name, got, s.Instances, diff*100)
		}
	}
}

func TestCholeskyExactCount(t *testing.T) {
	s, err := ByName("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	p := s.MustBuild(1, 1)
	if p.NumTasks() != 19600 {
		t.Errorf("cholesky at scale 1 has %d tasks, want exactly 19600 (K=48)", p.NumTasks())
	}
	// Type population: K potrf, K(K-1)/2 trsm, K(K-1)/2 syrk, rest gemm.
	hist := typeHistogram(p)
	if hist[0] != 48 || hist[1] != 1128 || hist[2] != 1128 || hist[3] != 17296 {
		t.Errorf("cholesky type histogram = %v", hist)
	}
}

func TestFreqmineDominantType(t *testing.T) {
	s, _ := ByName("freqmine")
	p := s.MustBuild(1, 3)
	if share := dominantShare(p); share < 0.85 {
		t.Errorf("dominant type share = %.2f, paper says ~93%%", share)
	}
	// Size spread of the dominant type spans orders of magnitude.
	var lo, hi int64 = math.MaxInt64, 0
	for i := range p.Instances {
		if p.Instances[i].Type != 3 { // mine_subtree
			continue
		}
		n := p.Instances[i].Instructions()
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi < 50*lo {
		t.Errorf("mine_subtree size spread %d..%d too narrow (want >50x)", lo, hi)
	}
}

func TestDedupDominantAndSpread(t *testing.T) {
	s, _ := ByName("dedup")
	p := s.MustBuild(1, 3)
	if share := dominantShare(p); share < 0.8 {
		t.Errorf("dominant share = %.2f, paper says chunk type dominates", share)
	}
	var lo, hi int64 = math.MaxInt64, 0
	for i := range p.Instances {
		if p.Instances[i].Type != 1 { // chunk_hash
			continue
		}
		n := p.Instances[i].Instructions()
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi < 5*lo {
		t.Errorf("chunk size spread %d..%d too narrow (paper: ~7x)", lo, hi)
	}
}

func TestReductionParallelismDecreases(t *testing.T) {
	s, _ := ByName("reduction")
	p := s.MustBuild(1.0/16, 5)
	g, err := taskgraph.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	width := g.WidthProfile()
	if len(width) < 3 {
		t.Fatalf("reduction tree too shallow: %v", width)
	}
	for l := 1; l < len(width); l++ {
		if width[l] > width[l-1] {
			t.Errorf("parallelism grows from level %d (%d) to %d (%d)",
				l-1, width[l-1], l, width[l])
		}
	}
	if width[len(width)-1] != 1 {
		t.Errorf("reduction should end in a single task, got %d", width[len(width)-1])
	}
}

func TestSpMVLoadImbalance(t *testing.T) {
	s, _ := ByName("sparse-matrix-vector-multiplication")
	p := s.MustBuild(1, 9)
	var lo, hi int64 = math.MaxInt64, 0
	for i := range p.Instances {
		n := p.Instances[i].Instructions()
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi < 3*lo {
		t.Errorf("spmv block sizes %d..%d lack load imbalance", lo, hi)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"cholesky", "dedup", "freqmine"} {
		s, _ := ByName(name)
		a := s.MustBuild(1.0/16, 11)
		b := s.MustBuild(1.0/16, 11)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different programs", name)
		}
		c := s.MustBuild(1.0/16, 12)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical programs", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("cholesky"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 19 || names[0] != "2d-convolution" || names[18] != "swaptions" {
		t.Errorf("names wrong or out of Table I order: %v", names)
	}
}

func TestSensitivityNamesExist(t *testing.T) {
	for _, n := range SensitivityNames() {
		if _, err := ByName(n); err != nil {
			t.Errorf("sensitivity benchmark %q not in registry", n)
		}
	}
}

func TestBuildRejectsBadScale(t *testing.T) {
	s, _ := ByName("cholesky")
	for _, scale := range []float64{0, -1, 1.5} {
		if _, err := s.Build(scale, 1); err == nil {
			t.Errorf("scale %v accepted", scale)
		}
	}
}

func TestHistogramUsesAtomics(t *testing.T) {
	s, _ := ByName("histogram")
	p := s.MustBuild(1.0/16, 2)
	found := false
	for i := range p.Instances {
		for _, seg := range p.Instances[i].Segments {
			if seg.Atomic {
				found = true
			}
		}
	}
	if !found {
		t.Error("histogram has no atomic segments")
	}
}

func TestSharedRegionsAreShared(t *testing.T) {
	// dmm uses one shared B panel per accumulation step, each reused by
	// every tile task of that step: far fewer panels than instances.
	s, _ := ByName("dense-matrix-multiplication")
	p := s.MustBuild(1.0/16, 2)
	bases := map[uint64]int{}
	for i := range p.Instances {
		bases[p.Instances[i].Segments[0].Base]++
	}
	if len(bases) >= p.NumTasks()/4 {
		t.Errorf("gemm B panels are not shared: %d bases for %d tasks", len(bases), p.NumTasks())
	}
	for base, uses := range bases {
		if uses < 2 {
			t.Errorf("panel %#x used once, expected reuse", base)
		}
	}
}
