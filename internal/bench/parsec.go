package bench

import "taskpoint/internal/trace"

// Task-based PARSEC benchmarks (Table I, lower block). These reproduce the
// paper's OmpSs ports: blackscholes, bodytrack, canneal, dedup, freqmine,
// swaptions (swaptions lives in kernels.go with the other Monte-Carlo
// kernel).

// buildBlackScholes: option batches priced independently (dominant type)
// with one aggregation task per batch group — floating-point heavy and
// very regular.
func buildBlackScholes(n int, seed uint64) *trace.Program {
	const (
		tPrice = iota
		tAggregate
	)
	b := newBuilder(seed, "price_chunk", "aggregate")
	group := 48
	groups := n / (group + 1)
	if groups < 1 {
		groups = 1
	}
	for g := 0; g < groups; g++ {
		var in []uint64
		for c := 0; c < group; c++ {
			ct := tok(50, g, c)
			in = append(in, ct)
			b.add(tPrice, []trace.Segment{{
				N: int64(2900 * b.jitter(0.02)), MemRatio: 0.08, StoreFrac: 0.3,
				Pat: trace.PatStride, Base: b.private(), Footprint: 16 << 10,
				Stride: 8, DepDist: 3, FPFrac: 0.65,
			}}, nil, []uint64{ct}, nil)
		}
		b.add(tAggregate, []trace.Segment{{
			N: int64(500 * b.jitter(0.05)), MemRatio: 0.12, StoreFrac: 0.4,
			Pat: trace.PatStride, Base: b.private(), Footprint: 8 << 10,
			Stride: 8, DepDist: 5, FPFrac: 0.2,
		}}, in, []uint64{tok(51, g, 0)}, nil)
	}
	return b.prog
}

// buildBodytrack: per-frame pipeline of seven phases (read, edge detect,
// gradient, particle weights, resample, annealing update, pose estimate);
// phases synchronise within a frame and frames chain, so different types
// dominate different intervals.
func buildBodytrack(n int, seed uint64) *trace.Program {
	const (
		tRead = iota
		tEdge
		tGradient
		tWeights
		tResample
		tAnneal
		tEstimate
	)
	b := newBuilder(seed, "read_frame", "edge_detect", "gradient",
		"particle_weights", "resample", "anneal_update", "estimate_pose")
	const perFrame = 1 + 60 + 60 + 160 + 20 + 40 + 1
	frames := n / perFrame
	if frames < 1 {
		frames = 1
	}
	for f := 0; f < frames; f++ {
		var prev []uint64
		if f > 0 {
			prev = []uint64{tok(60, f-1, 6)}
		}
		read := tok(60, f, 0)
		b.add(tRead, []trace.Segment{{
			N: 900, MemRatio: 0.18, StoreFrac: 0.6, Pat: trace.PatStride,
			Base: b.private(), Footprint: 96 << 10, Stride: 8, DepDist: 9,
		}}, prev, []uint64{read}, nil)

		// Edge detection and gradient over image tiles.
		var edgeToks, gradToks, weightToks, resToks, annToks []uint64
		for i := 0; i < 60; i++ {
			et := tok(61, f, i)
			edgeToks = append(edgeToks, et)
			b.add(tEdge, []trace.Segment{{
				N: int64(1700 * b.jitter(0.04)), MemRatio: 0.13, StoreFrac: 0.3,
				Pat: trace.PatStride, Base: b.private(), Footprint: 48 << 10,
				Stride: 8, DepDist: 5, FPFrac: 0.25,
			}}, []uint64{read}, []uint64{et}, nil)
		}
		for i := 0; i < 60; i++ {
			gt := tok(62, f, i)
			gradToks = append(gradToks, gt)
			b.add(tGradient, []trace.Segment{{
				N: int64(1500 * b.jitter(0.04)), MemRatio: 0.12, StoreFrac: 0.3,
				Pat: trace.PatStride, Base: b.private(), Footprint: 48 << 10,
				Stride: 8, DepDist: 4.5, FPFrac: 0.35,
			}}, []uint64{edgeToks[i]}, []uint64{gt}, nil)
		}
		for i := 0; i < 160; i++ {
			wt := tok(63, f, i)
			weightToks = append(weightToks, wt)
			b.add(tWeights, []trace.Segment{{
				N: int64(2100 * b.jitter(0.05)), MemRatio: 0.1, StoreFrac: 0.1,
				Pat: trace.PatGaussian, Base: b.private(), Footprint: 64 << 10,
				DepDist: 3.5, FPFrac: 0.5,
			}}, []uint64{gradToks[i%60]}, []uint64{wt}, nil)
		}
		for i := 0; i < 20; i++ {
			rt := tok(64, f, i)
			resToks = append(resToks, rt)
			in := make([]uint64, 0, 8)
			for w := i * 8; w < (i+1)*8; w++ {
				in = append(in, weightToks[w])
			}
			b.add(tResample, []trace.Segment{{
				N: int64(1000 * b.jitter(0.06)), MemRatio: 0.12, StoreFrac: 0.4,
				Pat: trace.PatRandom, Base: b.private(), Footprint: 32 << 10,
				DepDist: 3, FPFrac: 0.2,
			}}, in, []uint64{rt}, nil)
		}
		for i := 0; i < 40; i++ {
			at := tok(65, f, i)
			annToks = append(annToks, at)
			b.add(tAnneal, []trace.Segment{{
				N: int64(1300 * b.jitter(0.05)), MemRatio: 0.1, StoreFrac: 0.3,
				Pat: trace.PatStride, Base: b.private(), Footprint: 24 << 10,
				Stride: 8, DepDist: 4, FPFrac: 0.45,
			}}, []uint64{resToks[i%20]}, []uint64{at}, nil)
		}
		b.add(tEstimate, []trace.Segment{{
			N: 800, MemRatio: 0.12, StoreFrac: 0.4, Pat: trace.PatStride,
			Base: b.private(), Footprint: 16 << 10, Stride: 8, DepDist: 4, FPFrac: 0.3,
		}}, annToks, []uint64{tok(60, f, 6)}, nil)
	}
	return b.prog
}

// buildCanneal: simulated annealing over a netlist far larger than the
// last-level cache — uniformly random accesses to one big shared region,
// the paper's "cache-aware simulated annealing" with low IPC. Because the
// netlist (512 MiB) dwarfs every cache, the steady state is miss-dominated
// and early instances behave like late ones.
func buildCanneal(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "swap_batch")
	netlist := b.shared()
	for i := 0; i < n; i++ {
		b.add(0, []trace.Segment{{
			N: int64(2300 * b.jitter(0.04)), MemRatio: 0.2, StoreFrac: 0.25,
			Pat: trace.PatRandom, Base: netlist, Footprint: 512 << 20,
			DepDist: 5, FPFrac: 0.15,
		}}, nil, nil, nil)
	}
	return b.prog
}

// buildDedup: the deduplication pipeline. The dominant chunk type performs
// hashing and compression whose instruction count and ILP depend on the
// input content (paper: instance sizes 3.5M..25.1M, "highly input
// dependent"), giving the second largest sampling error of the evaluation.
func buildDedup(n int, seed uint64) *trace.Program {
	const (
		tFragment = iota
		tChunk
		tCompress
		tWrite
	)
	b := newBuilder(seed, "fragment", "chunk_hash", "compress", "write_out")
	fragments := min(32, max(1, n/16))
	writes := fragments
	compress := max(1, n/32)
	chunks := n - fragments - writes - compress
	if chunks < fragments {
		chunks = fragments
	}
	perFrag := max(1, chunks/fragments)

	for fr := 0; fr < fragments; fr++ {
		ft := tok(70, fr, 0)
		b.add(tFragment, []trace.Segment{{
			N: 800, MemRatio: 0.18, StoreFrac: 0.4, Pat: trace.PatStride,
			Base: b.private(), Footprint: 64 << 10, Stride: 8, DepDist: 8,
		}}, nil, []uint64{ft}, nil)
		for c := 0; c < perFrag; c++ {
			// Input-dependent: size spread ~7x and per-instance ILP and
			// locality spread (compressibility of the data).
			instr := int64(b.logUniform(1200, 8600))
			b.add(tChunk, []trace.Segment{{
				N: instr, MemRatio: 0.08 + 0.15*b.rng.Float64(), StoreFrac: 0.25,
				Pat: trace.PatStride, Base: b.private(), Footprint: 64 << 10,
				Stride: 8, DepDist: 1.4 + 4.5*b.rng.Float64(),
				FPFrac: 0.05 + 0.15*b.rng.Float64(),
			}}, []uint64{ft}, []uint64{tok(71, fr, c)}, nil)
		}
	}
	for cp := 0; cp < compress; cp++ {
		fr := cp % fragments
		c := cp % perFrag
		instr := int64(b.logUniform(900, 4000))
		b.add(tCompress, []trace.Segment{{
			N: instr, MemRatio: 0.1, StoreFrac: 0.4, Pat: trace.PatStride,
			Base: b.private(), Footprint: 32 << 10, Stride: 8,
			DepDist: 1.6 + 2*b.rng.Float64(), FPFrac: 0.05,
		}}, []uint64{tok(71, fr, c)}, []uint64{tok(72, cp, 0)}, nil)
	}
	for w := 0; w < writes; w++ {
		var in []uint64
		for cp := w; cp < compress; cp += writes {
			in = append(in, tok(72, cp, 0))
		}
		b.add(tWrite, []trace.Segment{{
			N: 700, MemRatio: 0.18, StoreFrac: 0.8, Pat: trace.PatStride,
			Base: b.private(), Footprint: 64 << 10, Stride: 8, DepDist: 9,
		}}, in, nil, nil)
	}
	return b.prog
}

// buildFreqmine: FP-growth frequent itemset mining. One dominant type
// (mine_subtree, ~93% of dynamic instructions) whose instances follow
// completely unrelated control-flow paths through nested conditionals: the
// instruction count spans nearly three orders of magnitude and the
// instruction mix varies per instance — the paper's worst case for
// sampling (§V-B: "avoid large-scale control flow divergence among
// instances of the same task type").
func buildFreqmine(n int, seed uint64) *trace.Program {
	const (
		tHeader = iota
		tInsert
		tBuild
		tMine
		tPrune
		tAggregate
		tOutput
	)
	b := newBuilder(seed, "build_header", "insert_block", "build_tree",
		"mine_subtree", "prune", "aggregate", "output")
	inserts := n / 20
	builds := n / 60
	prunes := n / 40
	aggs := n / 60
	outs := n / 120
	mines := n - 1 - inserts - builds - prunes - aggs - outs
	if mines < 1 {
		mines = 1
	}

	ht := tok(80, 0, 0)
	b.add(tHeader, []trace.Segment{{
		N: 900, MemRatio: 0.15, StoreFrac: 0.6, Pat: trace.PatStride,
		Base: b.private(), Footprint: 32 << 10, Stride: 8, DepDist: 6,
	}}, nil, []uint64{ht}, nil)

	var insertToks []uint64
	for i := 0; i < inserts; i++ {
		it := tok(81, i, 0)
		insertToks = append(insertToks, it)
		b.add(tInsert, []trace.Segment{{
			N: int64(b.logUniform(400, 2000)), MemRatio: 0.18, StoreFrac: 0.5,
			Pat: trace.PatRandom, Base: b.private(), Footprint: 48 << 10,
			DepDist: 2.2, FPFrac: 0.05,
		}}, []uint64{ht}, []uint64{it}, nil)
	}
	var buildToks []uint64
	for i := 0; i < builds; i++ {
		bt := tok(82, i, 0)
		buildToks = append(buildToks, bt)
		b.add(tBuild, []trace.Segment{{
			N: int64(b.logUniform(600, 3000)), MemRatio: 0.15, StoreFrac: 0.5,
			Pat: trace.PatChase, Base: b.private(), Footprint: 96 << 10,
			DepDist: 2, FPFrac: 0.05,
		}}, []uint64{insertToks[i%len(insertToks)]}, []uint64{bt}, nil)
	}
	var mineToks []uint64
	for i := 0; i < mines; i++ {
		// Control-flow divergence: per-instance instruction counts span
		// ~120x and the mix varies between pointer chasing and dense
		// scanning, depending on the subtree shape.
		instr := int64(b.logUniform(200, 24000))
		pat := trace.PatChase
		if b.rng.IntN(3) == 0 {
			pat = trace.PatStride
		}
		mt := tok(83, i, 0)
		mineToks = append(mineToks, mt)
		b.add(tMine, []trace.Segment{{
			N: instr, MemRatio: 0.08 + 0.18*b.rng.Float64(), StoreFrac: 0.2,
			Pat: pat, Base: b.private(), Footprint: 64 << 10, Stride: 8,
			DepDist: 1.3 + 4.5*b.rng.Float64(), FPFrac: 0.1 * b.rng.Float64(),
		}}, []uint64{buildToks[i%len(buildToks)]}, []uint64{mt}, nil)
	}
	var pruneToks []uint64
	for i := 0; i < prunes; i++ {
		pt := tok(84, i, 0)
		pruneToks = append(pruneToks, pt)
		b.add(tPrune, []trace.Segment{{
			N: int64(b.logUniform(300, 1500)), MemRatio: 0.14, StoreFrac: 0.3,
			Pat: trace.PatRandom, Base: b.private(), Footprint: 24 << 10,
			DepDist: 2.5, FPFrac: 0.05,
		}}, []uint64{mineToks[i%len(mineToks)]}, []uint64{pt}, nil)
	}
	var aggToks []uint64
	for i := 0; i < aggs; i++ {
		at := tok(85, i, 0)
		aggToks = append(aggToks, at)
		b.add(tAggregate, []trace.Segment{{
			N: int64(b.logUniform(300, 1200)), MemRatio: 0.12, StoreFrac: 0.4,
			Pat: trace.PatStride, Base: b.private(), Footprint: 16 << 10,
			Stride: 8, DepDist: 4, FPFrac: 0.1,
		}}, []uint64{pruneToks[i%len(pruneToks)]}, []uint64{at}, nil)
	}
	for i := 0; i < outs; i++ {
		b.add(tOutput, []trace.Segment{{
			N: 600, MemRatio: 0.18, StoreFrac: 0.8, Pat: trace.PatStride,
			Base: b.private(), Footprint: 32 << 10, Stride: 8, DepDist: 8,
		}}, []uint64{aggToks[i%len(aggToks)]}, nil, nil)
	}
	return b.prog
}
