package bench

import (
	"math"

	"taskpoint/internal/trace"
)

// Kernel benchmarks (Table I, upper block). Each models the memory and ILP
// character the paper names for it. Per-type IPC regularity (Fig 1: within
// ±5% for these kernels) comes from over-decomposition: every instance
// works on its own data block with the same access pattern, so instances
// differ only by the seed-driven instruction mix.

// build2DConvolution: one type, tile-parallel convolution with strided
// reads of the image block and a private output tile.
func build2DConvolution(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "conv2d_tile")
	for i := 0; i < n; i++ {
		instr := int64(2800 * b.jitter(0.02))
		b.add(0, []trace.Segment{
			{
				N: instr * 3 / 4, MemRatio: 0.12, StoreFrac: 0.2,
				Pat: trace.PatStride, Base: b.private(), Footprint: 48 << 10,
				Stride: 8, DepDist: 4.5, FPFrac: 0.35,
			},
			{
				N: instr / 4, MemRatio: 0.08, StoreFrac: 0.5,
				Pat: trace.PatStride, Base: b.private(), Footprint: 16 << 10,
				Stride: 8, DepDist: 3.5, FPFrac: 0.3,
			},
		}, nil, nil, nil)
	}
	return b.prog
}

// build3DStencil: one type, tiles swept over timesteps; a tile at step t
// depends on its neighbourhood at step t-1, keeping parallelism wide and
// constant. Strided plane-walking accesses.
func build3DStencil(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "stencil_tile")
	steps := 10
	tiles := n / steps
	if tiles < 4 {
		tiles = 4
	}
	for t := 0; t < steps; t++ {
		for i := 0; i < tiles; i++ {
			var in []uint64
			if t > 0 {
				for _, d := range []int{-1, 0, 1} {
					j := i + d
					if j >= 0 && j < tiles {
						in = append(in, tok(1, t-1, j))
					}
				}
			}
			instr := int64(2600 * b.jitter(0.03))
			b.add(0, []trace.Segment{{
				N: instr, MemRatio: 0.13, StoreFrac: 0.25,
				Pat: trace.PatStride, Base: b.private(), Footprint: 64 << 10,
				Stride: 8, DepDist: 5, FPFrac: 0.3,
			}}, in, []uint64{tok(1, t, i)}, nil)
		}
	}
	return b.prog
}

// buildAtomicMonteCarlo: one type, embarrassingly parallel compute-bound
// particles with negligible memory traffic.
func buildAtomicMonteCarlo(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "mc_particle_block")
	for i := 0; i < n; i++ {
		instr := int64(3000 * b.jitter(0.04))
		b.add(0, []trace.Segment{{
			N: instr, MemRatio: 0.05, StoreFrac: 0.3,
			Pat: trace.PatStride, Base: b.private(), Footprint: 8 << 10,
			Stride: 8, DepDist: 3, FPFrac: 0.55,
		}}, nil, nil, nil)
	}
	return b.prog
}

// buildDenseMatMul: one type, blocked GEMM. Each task multiplies into a C
// tile (inout chains over k) while reading a shared B panel with high
// reuse (Gaussian hot-spot pattern) — compute bound.
func buildDenseMatMul(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "gemm_tile")
	// n = K^3 tiles for a K x K blocked matrix with K accumulation steps.
	k := int(math.Cbrt(float64(n)))
	if k < 2 {
		k = 2
	}
	// One shared read-only B panel reused by every tile task; it becomes
	// cache resident during warm-up and stays hot (high data reuse).
	panel := b.shared()
	for kk := 0; kk < k; kk++ {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				instr := int64(3200 * b.jitter(0.02))
				b.add(0, []trace.Segment{
					{
						N: instr * 2 / 3, MemRatio: 0.1, StoreFrac: 0,
						Pat: trace.PatGaussian, Base: panel, Footprint: 16 << 10,
						DepDist: 2.8, FPFrac: 0.6,
					},
					{
						N: instr / 3, MemRatio: 0.1, StoreFrac: 0.4,
						Pat: trace.PatStride, Base: b.private(), Footprint: 32 << 10,
						Stride: 8, DepDist: 3, FPFrac: 0.5,
					},
				}, nil, nil, []uint64{tok(2, i, j)})
			}
		}
	}
	return b.prog
}

// buildHistogram: one type, private input scan plus atomic increments into
// a small shared bin array (coherence traffic between threads).
func buildHistogram(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "hist_block")
	bins := b.shared()
	for i := 0; i < n; i++ {
		instr := int64(2400 * b.jitter(0.03))
		b.add(0, []trace.Segment{
			{
				N: instr * 3 / 4, MemRatio: 0.12, StoreFrac: 0,
				Pat: trace.PatStride, Base: b.private(), Footprint: 48 << 10,
				Stride: 8, DepDist: 6,
			},
			{
				N: instr / 4, MemRatio: 0.2, StoreFrac: 1,
				Pat: trace.PatRandom, Base: bins, Footprint: 16 << 10,
				Atomic: true, DepDist: 8,
			},
		}, nil, nil, nil)
	}
	return b.prog
}

// buildNBody: two types. Force tasks chase a shared neighbour list
// (irregular accesses); update tasks integrate positions and gate the next
// step's forces.
func buildNBody(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "nbody_forces", "nbody_update")
	steps := 10
	forces := n * 4 / 5 / steps
	updates := n / 5 / steps
	if forces < 4 {
		forces = 4
	}
	if updates < 1 {
		updates = 1
	}
	positions := b.shared()
	for t := 0; t < steps; t++ {
		for f := 0; f < forces; f++ {
			var in []uint64
			if t > 0 {
				in = append(in, tok(3, t-1, f%updates))
			}
			instr := int64(2800 * b.jitter(0.04))
			b.add(0, []trace.Segment{
				{
					// Each force task chases its own neighbour list.
					N: instr * 3 / 4, MemRatio: 0.08, StoreFrac: 0.1,
					Pat: trace.PatChase, Base: b.private(), Footprint: 64 << 10,
					DepDist: 4, FPFrac: 0.5,
				},
				{
					// Read-only gathers from the small shared position
					// array, cache resident after the first tasks.
					N: instr / 4, MemRatio: 0.12, StoreFrac: 0,
					Pat: trace.PatGaussian, Base: positions, Footprint: 24 << 10,
					DepDist: 4, FPFrac: 0.4,
				},
			}, in, []uint64{tok(4, t, f)}, nil)
		}
		for u := 0; u < updates; u++ {
			var in []uint64
			for f := 0; f < forces; f++ {
				if f%updates == u {
					in = append(in, tok(4, t, f))
				}
			}
			instr := int64(1200 * b.jitter(0.03))
			b.add(1, []trace.Segment{{
				N: instr, MemRatio: 0.12, StoreFrac: 0.5,
				Pat: trace.PatStride, Base: b.private(), Footprint: 16 << 10,
				Stride: 8, DepDist: 5, FPFrac: 0.4,
			}}, in, []uint64{tok(3, t, u)}, nil)
		}
	}
	return b.prog
}

// buildReduction: two types forming a binary combining tree; available
// parallelism halves level by level, exercising TaskPoint's resampling on
// parallelism change (paper Fig 4a).
func buildReduction(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "reduce_leaf", "reduce_combine")
	// leaves + (leaves-1) combines ~= n; round leaves to a power of two.
	leaves := 1
	for leaves*2 <= (n+1)/2 {
		leaves *= 2
	}
	for i := 0; i < leaves; i++ {
		instr := int64(2200 * b.jitter(0.03))
		b.add(0, []trace.Segment{{
			N: instr, MemRatio: 0.15, StoreFrac: 0.1,
			Pat: trace.PatStride, Base: b.private(), Footprint: 64 << 10,
			Stride: 8, DepDist: 7, FPFrac: 0.25,
		}}, nil, []uint64{tok(5, 0, i)}, nil)
	}
	level := 0
	width := leaves
	for width > 1 {
		for i := 0; i < width/2; i++ {
			instr := int64(1100 * b.jitter(0.03))
			b.add(1, []trace.Segment{{
				N: instr, MemRatio: 0.1, StoreFrac: 0.3,
				Pat: trace.PatStride, Base: b.private(), Footprint: 8 << 10,
				Stride: 8, DepDist: 4, FPFrac: 0.35,
			}},
				[]uint64{tok(5, level, 2*i), tok(5, level, 2*i+1)},
				[]uint64{tok(5, level+1, i)}, nil)
		}
		width /= 2
		level++
	}
	return b.prog
}

// buildSpMV: one type, memory bound with load imbalance — the dynamic
// instruction count of a row block depends on its nonzero count, and the
// gather from the shared x vector is irregular.
func buildSpMV(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "spmv_rowblock")
	xvec := b.shared()
	for i := 0; i < n; i++ {
		// Row-block populations are heavily skewed (load imbalance).
		instr := int64(2600 * b.logUniform(0.4, 2.5))
		memRatio := 0.25 // memory bound; imbalance comes from block sizes
		b.add(0, []trace.Segment{
			{
				N: instr / 2, MemRatio: memRatio, StoreFrac: 0.05,
				Pat: trace.PatStride, Base: b.private(), Footprint: 96 << 10,
				Stride: 8, DepDist: 6, FPFrac: 0.3,
			},
			{
				// The source vector is small enough to cache; it warms
				// during the first instances and stays resident.
				N: instr / 2, MemRatio: memRatio, StoreFrac: 0,
				Pat: trace.PatRandom, Base: xvec, Footprint: 32 << 10,
				DepDist: 6, FPFrac: 0.3,
			},
		}, nil, nil, nil)
	}
	return b.prog
}

// buildVectorOp: one type, regular streaming, memory bound: saturates DRAM
// bandwidth as thread counts grow.
func buildVectorOp(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "vec_block")
	for i := 0; i < n; i++ {
		instr := int64(2500 * b.jitter(0.01))
		b.add(0, []trace.Segment{{
			N: instr, MemRatio: 0.3, StoreFrac: 0.35,
			Pat: trace.PatStride, Base: b.private(), Footprint: 256 << 10,
			Stride: 8, DepDist: 10, FPFrac: 0.25,
		}}, nil, nil, nil)
	}
	return b.prog
}

// buildSwaptions: one type, Monte-Carlo pricing — floating-point compute
// with tiny working sets and very regular behaviour.
func buildSwaptions(n int, seed uint64) *trace.Program {
	b := newBuilder(seed, "swaption_sim")
	for i := 0; i < n; i++ {
		instr := int64(3400 * b.jitter(0.02))
		b.add(0, []trace.Segment{{
			N: instr, MemRatio: 0.08, StoreFrac: 0.3,
			Pat: trace.PatStride, Base: b.private(), Footprint: 12 << 10,
			Stride: 8, DepDist: 3.2, FPFrac: 0.6,
		}}, nil, nil, nil)
	}
	return b.prog
}
