package bench

import (
	"math"

	"taskpoint/internal/trace"
)

// HPC application benchmarks (Table I, middle block).

// checkSparseLU: sparse LU decomposition over a blocked matrix with a
// deterministic sparsity mask, followed by a verification sweep — 11 task
// types in total. Instances of the dominant bmod type diverge strongly
// (sparse fill-in makes some block updates nearly empty and others dense),
// reproducing the paper's largest IPC variation (Fig 1: -28%..+24%).
const sparseLUDensityMod = 10 // block (i,j) is populated when hash%10 < 6

func sparseLUMask(i, j int) bool {
	return (i*31+j*17+i*j)%sparseLUDensityMod < 6
}

// sparseLUCount returns the number of task instances the generator emits
// for a K-block matrix, without building them.
func sparseLUCount(k int) int {
	count := 1 // genmat
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if sparseLUMask(i, j) {
				count += 3 // init_block, copy_block, compare_block
			}
		}
	}
	for kk := 0; kk < k; kk++ {
		count += 2 // lu0 + sparse_check
		for j := kk + 1; j < k; j++ {
			if sparseLUMask(kk, j) {
				count++ // fwd
			}
			if sparseLUMask(j, kk) {
				count++ // bdiv
			}
		}
		for i := kk + 1; i < k; i++ {
			if !sparseLUMask(i, kk) {
				continue
			}
			for j := kk + 1; j < k; j++ {
				if sparseLUMask(kk, j) {
					count++ // bmod
				}
			}
		}
	}
	count += 2 // free_blocks, collect_result
	return count
}

func buildCheckSparseLU(n int, seed uint64) *trace.Program {
	const (
		tGenmat = iota
		tInit
		tLU0
		tFwd
		tBdiv
		tBmod
		tCopy
		tSparseCheck
		tCompare
		tFree
		tCollect
	)
	b := newBuilder(seed, "genmat", "init_block", "lu0", "fwd", "bdiv",
		"bmod", "copy_block", "sparse_check", "compare_block",
		"free_blocks", "collect_result")

	// Choose the block count whose instance total lands closest to n.
	k0 := int(math.Cbrt(3 * float64(n) / 0.36))
	bestK, bestDiff := 2, math.MaxInt
	for k := max(2, k0-8); k <= k0+8; k++ {
		d := abs(sparseLUCount(k) - n)
		if d < bestDiff {
			bestK, bestDiff = k, d
		}
	}
	k := bestK

	blk := func(i, j int) uint64 { return tok(10, i, j) }
	bkup := func(i, j int) uint64 { return tok(11, i, j) }

	b.add(tGenmat, []trace.Segment{{
		N: 2000, MemRatio: 0.12, StoreFrac: 0.8, Pat: trace.PatStride,
		Base: b.private(), Footprint: 64 << 10, Stride: 8, DepDist: 6,
	}}, nil, []uint64{tok(12, 0, 0)}, nil)

	// init and backup copies of every populated block.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if !sparseLUMask(i, j) {
				continue
			}
			b.add(tInit, []trace.Segment{{
				N: int64(900 * b.jitter(0.1)), MemRatio: 0.15, StoreFrac: 0.9,
				Pat: trace.PatStride, Base: b.private(), Footprint: 32 << 10,
				Stride: 8, DepDist: 7,
			}}, []uint64{tok(12, 0, 0)}, []uint64{blk(i, j)}, nil)
			b.add(tCopy, []trace.Segment{{
				N: int64(700 * b.jitter(0.1)), MemRatio: 0.15, StoreFrac: 0.5,
				Pat: trace.PatStride, Base: b.private(), Footprint: 32 << 10,
				Stride: 8, DepDist: 8,
			}}, []uint64{blk(i, j)}, []uint64{bkup(i, j)}, nil)
		}
	}

	// The factorisation proper: the heavy types (lu0/fwd/bdiv/bmod) show
	// moderate load imbalance but regular IPC. The paper's large
	// checkSparseLU variation comes from the light, data-dependent
	// verification types below, which contribute big whiskers to the
	// pooled variation but little execution time — which is why the
	// benchmark still samples accurately (Fig 7/9 vs Fig 1/5).
	factorSeg := func(base int64) trace.Segment {
		instr := int64(float64(base) * b.logUniform(0.7, 1.4))
		return trace.Segment{
			N: instr, MemRatio: 0.1, StoreFrac: 0.3,
			Pat: trace.PatStride, Base: b.private(), Footprint: 32 << 10,
			Stride: 8, DepDist: 3, FPFrac: 0.4,
		}
	}
	// divergentSeg models data-dependent control flow: sparse blocks are
	// skipped in a few hundred instructions, dense ones processed word by
	// word with unpredictable mixes.
	divergentSeg := func(base int64) trace.Segment {
		instr := int64(float64(base) * b.logUniform(0.3, 3))
		pat := trace.PatStride
		if b.rng.IntN(2) == 0 {
			pat = trace.PatRandom
		}
		return trace.Segment{
			N: instr, MemRatio: 0.08 + 0.22*b.rng.Float64(), StoreFrac: 0.3,
			Pat: pat, Base: b.private(), Footprint: 32 << 10, Stride: 8,
			DepDist: 1.5 + 5*b.rng.Float64(), FPFrac: 0.2 + 0.3*b.rng.Float64(),
		}
	}
	for kk := 0; kk < k; kk++ {
		b.add(tLU0, []trace.Segment{factorSeg(2200)},
			nil, nil, []uint64{blk(kk, kk)})
		for j := kk + 1; j < k; j++ {
			if sparseLUMask(kk, j) {
				b.add(tFwd, []trace.Segment{factorSeg(1800)},
					[]uint64{blk(kk, kk)}, nil, []uint64{blk(kk, j)})
			}
			if sparseLUMask(j, kk) {
				b.add(tBdiv, []trace.Segment{factorSeg(1800)},
					[]uint64{blk(kk, kk)}, nil, []uint64{blk(j, kk)})
			}
		}
		for i := kk + 1; i < k; i++ {
			if !sparseLUMask(i, kk) {
				continue
			}
			for j := kk + 1; j < k; j++ {
				if sparseLUMask(kk, j) {
					b.add(tBmod, []trace.Segment{factorSeg(2600)},
						[]uint64{blk(i, kk), blk(kk, j)}, nil,
						[]uint64{blk(i, j)})
				}
			}
		}
		b.add(tSparseCheck, []trace.Segment{{
			N: int64(400 * b.jitter(0.2)), MemRatio: 0.12, StoreFrac: 0.1,
			Pat: trace.PatRandom, Base: b.private(), Footprint: 8 << 10,
			DepDist: 3,
		}}, []uint64{blk(kk, kk)}, nil, nil)
	}

	// Verification: compare factorised blocks against backups.
	var compareToks []uint64
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if !sparseLUMask(i, j) {
				continue
			}
			ct := tok(13, i, j)
			compareToks = append(compareToks, ct)
			b.add(tCompare, []trace.Segment{divergentSeg(700)},
				[]uint64{blk(i, j), bkup(i, j)}, []uint64{ct}, nil)
		}
	}
	b.add(tFree, []trace.Segment{{
		N: 500, MemRatio: 0.1, StoreFrac: 0.9, Pat: trace.PatStride,
		Base: b.private(), Footprint: 16 << 10, Stride: 8, DepDist: 8,
	}}, compareToks, nil, nil)
	b.add(tCollect, []trace.Segment{{
		N: 600, MemRatio: 0.12, StoreFrac: 0.2, Pat: trace.PatStride,
		Base: b.private(), Footprint: 8 << 10, Stride: 8, DepDist: 4,
	}}, compareToks, nil, nil)
	return b.prog
}

// buildCholesky: blocked Cholesky factorisation with the classic
// potrf/trsm/syrk/gemm dataflow. K=48 blocks reproduce Table I's 19600
// instances exactly: K potrf + K(K-1)/2 trsm + K(K-1)/2 syrk +
// K(K-1)(K-2)/6 gemm.
func buildCholesky(n int, seed uint64) *trace.Program {
	const (
		tPotrf = iota
		tTrsm
		tSyrk
		tGemm
	)
	b := newBuilder(seed, "potrf", "trsm", "syrk", "gemm")
	total := func(k int) int { return k + k*(k-1) + k*(k-1)*(k-2)/6 }
	k := 2
	for total(k+1) <= n {
		k++
	}
	if total(k+1)-n < n-total(k) {
		k++
	}

	blk := func(i, j int) uint64 { return tok(20, i, j) }
	seg := func(base int64, fp float64) []trace.Segment {
		return []trace.Segment{{
			N: int64(float64(base) * b.jitter(0.03)), MemRatio: 0.1,
			StoreFrac: 0.3, Pat: trace.PatStride, Base: b.private(),
			Footprint: 32 << 10, Stride: 8, DepDist: 2.8, FPFrac: fp,
		}}
	}
	for kk := 0; kk < k; kk++ {
		b.add(tPotrf, seg(2400, 0.5), nil, nil, []uint64{blk(kk, kk)})
		for i := kk + 1; i < k; i++ {
			b.add(tTrsm, seg(2600, 0.55), []uint64{blk(kk, kk)}, nil, []uint64{blk(i, kk)})
		}
		for i := kk + 1; i < k; i++ {
			b.add(tSyrk, seg(2600, 0.55), []uint64{blk(i, kk)}, nil, []uint64{blk(i, i)})
			for j := kk + 1; j < i; j++ {
				b.add(tGemm, seg(3000, 0.6), []uint64{blk(i, kk), blk(j, kk)}, nil, []uint64{blk(i, j)})
			}
		}
	}
	return b.prog
}

// buildKMeans: Lloyd's algorithm. Iterations of parallel assignment over
// point blocks, tree-style partial reductions, centroid merge/update and a
// convergence check gating the next iteration — six task types.
func buildKMeans(n int, seed uint64) *trace.Program {
	const (
		tInit = iota
		tAssign
		tPartial
		tMerge
		tUpdate
		tConverge
	)
	b := newBuilder(seed, "init_centroids", "assign", "partial_reduce",
		"merge_centroids", "update_centroids", "converge_check")
	iters := 16
	perIter := (n - 1) / iters
	blocks := (perIter - 10) * 8 / 9
	if blocks < 8 {
		blocks = 8
	}
	partials := blocks / 8
	centroids := b.shared()

	b.add(tInit, []trace.Segment{{
		N: 800, MemRatio: 0.12, StoreFrac: 0.8, Pat: trace.PatStride,
		Base: centroids, Footprint: 16 << 10, Stride: 8, DepDist: 6,
	}}, nil, []uint64{tok(30, 0, 0)}, nil)

	for it := 0; it < iters; it++ {
		gate := tok(30, it, 0)
		for blo := 0; blo < blocks; blo++ {
			b.add(tAssign, []trace.Segment{
				{
					N: int64(1800 * b.jitter(0.03)), MemRatio: 0.12, StoreFrac: 0.15,
					Pat: trace.PatStride, Base: b.private(), Footprint: 48 << 10,
					Stride: 8, DepDist: 4, FPFrac: 0.45,
				},
				{
					N: int64(600 * b.jitter(0.03)), MemRatio: 0.12, StoreFrac: 0,
					Pat: trace.PatGaussian, Base: centroids, Footprint: 16 << 10,
					DepDist: 3, FPFrac: 0.5,
				},
			}, []uint64{gate}, []uint64{tok(31, it, blo)}, nil)
		}
		for pr := 0; pr < partials; pr++ {
			var in []uint64
			for blo := pr * 8; blo < (pr+1)*8 && blo < blocks; blo++ {
				in = append(in, tok(31, it, blo))
			}
			b.add(tPartial, []trace.Segment{{
				N: int64(900 * b.jitter(0.05)), MemRatio: 0.12, StoreFrac: 0.4,
				Pat: trace.PatStride, Base: b.private(), Footprint: 16 << 10,
				Stride: 8, DepDist: 5, FPFrac: 0.3,
			}}, in, []uint64{tok(32, it, pr)}, nil)
		}
		var mergeIn []uint64
		for pr := 0; pr < partials; pr++ {
			mergeIn = append(mergeIn, tok(32, it, pr))
		}
		b.add(tMerge, []trace.Segment{{
			N: 700, MemRatio: 0.12, StoreFrac: 0.5, Pat: trace.PatStride,
			Base: b.private(), Footprint: 16 << 10, Stride: 8, DepDist: 4, FPFrac: 0.3,
		}}, mergeIn, []uint64{tok(33, it, 0)}, nil)
		b.add(tUpdate, []trace.Segment{{
			N: 600, MemRatio: 0.15, StoreFrac: 0.7, Pat: trace.PatStride,
			Base: centroids, Footprint: 16 << 10, Stride: 8, DepDist: 5, FPFrac: 0.35,
		}}, []uint64{tok(33, it, 0)}, []uint64{tok(34, it, 0)}, nil)
		b.add(tConverge, []trace.Segment{{
			N: 300, MemRatio: 0.1, StoreFrac: 0.1, Pat: trace.PatStride,
			Base: b.private(), Footprint: 4 << 10, Stride: 8, DepDist: 3,
		}}, []uint64{tok(34, it, 0)}, []uint64{tok(30, it+1, 0)}, nil)
	}
	return b.prog
}

// buildKNN: k-nearest-neighbour classification — distance computation over
// training chunks (dominant type) followed by a per-query selection of the
// nearest candidates (irregular).
func buildKNN(n int, seed uint64) *trace.Program {
	const (
		tDistance = iota
		tSelect
	)
	b := newBuilder(seed, "distance_block", "select_neighbours")
	perQuery := 7
	queries := n / (perQuery + 1)
	if queries < 1 {
		queries = 1
	}
	// Every distance task gathers from the same hot region of the
	// training set, which becomes cache resident during warm-up.
	train := b.shared()
	for q := 0; q < queries; q++ {
		var in []uint64
		for d := 0; d < perQuery; d++ {
			instr := int64(2400 * b.jitter(0.03))
			dt := tok(40, q, d)
			in = append(in, dt)
			b.add(tDistance, []trace.Segment{
				{
					N: instr * 3 / 4, MemRatio: 0.1, StoreFrac: 0.05,
					Pat: trace.PatStride, Base: b.private(), Footprint: 64 << 10,
					Stride: 8, DepDist: 4.5, FPFrac: 0.5,
				},
				{
					N: instr / 4, MemRatio: 0.1, StoreFrac: 0,
					Pat: trace.PatGaussian, Base: train, Footprint: 24 << 10,
					DepDist: 4, FPFrac: 0.4,
				},
			}, nil, []uint64{dt}, nil)
		}
		b.add(tSelect, []trace.Segment{{
			N: int64(800 * b.jitter(0.08)), MemRatio: 0.05, StoreFrac: 0.2,
			Pat: trace.PatRandom, Base: b.private(), Footprint: 2 << 10,
			DepDist: 2.5, FPFrac: 0.1,
		}}, in, []uint64{tok(41, q, 0)}, nil)
	}
	return b.prog
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
