// Package bench provides synthetic workload generators reproducing the 19
// task-based benchmarks of the paper's Table I. The original applications
// are OmpSs programs traced on native hardware; here each generator emits a
// trace.Program with the same task-type count, a dependency structure
// matching the algorithm, and per-type performance characters matching the
// paper's description (strided/irregular/atomic access, load imbalance,
// control-flow divergence, input dependence, shrinking parallelism).
//
// Instance counts reproduce Table I at Scale=1; smaller scales shrink the
// instance count while preserving the task-type structure, so the sampling
// dynamics per thread stay intact at CI-friendly runtimes.
package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"taskpoint/internal/trace"
)

// ErrUnknownName marks lookup failures caused by a name that matches no
// registry benchmark, resolver scheme or resolver family — the one error
// class a "valid names" listing fixes. Resolvers wrap it for their own
// unknown-name cases; malformed-argument errors deliberately do not
// carry it.
var ErrUnknownName = errors.New("unknown benchmark name")

// Spec describes one benchmark of Table I.
type Spec struct {
	// Name is the benchmark name as printed in the paper.
	Name string
	// Types is the task-type count of Table I.
	Types int
	// Instances is the task-instance count of Table I (Scale = 1).
	Instances int
	// Properties quotes the paper's characterisation.
	Properties string
	// build generates a program with roughly n instances.
	build func(n int, seed uint64) *trace.Program
}

// Build generates the benchmark at the given scale (0 < scale <= 1) with a
// deterministic seed. At scale 1 the instance count matches Table I.
func (s *Spec) Build(scale float64, seed uint64) (*trace.Program, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("bench: scale %v out of (0,1]", scale)
	}
	n := int(math.Round(float64(s.Instances) * scale))
	if n < 64 {
		n = 64
	}
	if n > s.Instances {
		n = s.Instances
	}
	p := s.build(n, seed)
	p.Name = s.Name
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", s.Name, err)
	}
	if len(p.Types) != s.Types {
		return nil, fmt.Errorf("bench: %s built %d types, want %d", s.Name, len(p.Types), s.Types)
	}
	return p, nil
}

// MustBuild is Build for callers with statically valid arguments.
func (s *Spec) MustBuild(scale float64, seed uint64) *trace.Program {
	p, err := s.Build(scale, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Registry returns the 19 benchmarks in Table I order.
func Registry() []*Spec {
	return []*Spec{
		{Name: "2d-convolution", Types: 1, Instances: 16384,
			Properties: "Kernel: strided memory accesses", build: build2DConvolution},
		{Name: "3d-stencil", Types: 1, Instances: 16370,
			Properties: "Kernel: strided memory accesses", build: build3DStencil},
		{Name: "atomic-monte-carlo-dynamics", Types: 1, Instances: 16384,
			Properties: "Kernel: embarrassingly parallel", build: buildAtomicMonteCarlo},
		{Name: "dense-matrix-multiplication", Types: 1, Instances: 17576,
			Properties: "Kernel: high data reuse, compute bound", build: buildDenseMatMul},
		{Name: "histogram", Types: 1, Instances: 16384,
			Properties: "Kernel: atomic operations", build: buildHistogram},
		{Name: "n-body", Types: 2, Instances: 25000,
			Properties: "Kernel: irregular memory accesses", build: buildNBody},
		{Name: "reduction", Types: 2, Instances: 16384,
			Properties: "Kernel: parallelism decreases over time", build: buildReduction},
		{Name: "sparse-matrix-vector-multiplication", Types: 1, Instances: 1024,
			Properties: "Kernel: load imbalance, memory bound", build: buildSpMV},
		{Name: "vector-operation", Types: 1, Instances: 16400,
			Properties: "Kernel: regular, memory bound", build: buildVectorOp},
		{Name: "checkSparseLU", Types: 11, Instances: 22058,
			Properties: "Decomposition of large, sparse matrices", build: buildCheckSparseLU},
		{Name: "cholesky", Types: 4, Instances: 19600,
			Properties: "Decomposition of Hermitian positive-definite matrices", build: buildCholesky},
		{Name: "kmeans", Types: 6, Instances: 16337,
			Properties: "Clustering based on Lloyd's algorithm", build: buildKMeans},
		{Name: "knn", Types: 2, Instances: 18400,
			Properties: "Instance-based machine learning algorithm", build: buildKNN},
		{Name: "blackscholes", Types: 2, Instances: 24500,
			Properties: "Option price calculation", build: buildBlackScholes},
		{Name: "bodytrack", Types: 7, Instances: 21439,
			Properties: "Human body tracking with multiple cameras", build: buildBodytrack},
		{Name: "canneal", Types: 1, Instances: 16384,
			Properties: "Cache-aware simulated annealing", build: buildCanneal},
		{Name: "dedup", Types: 4, Instances: 15738,
			Properties: "Deduplication: global and local compression", build: buildDedup},
		{Name: "freqmine", Types: 7, Instances: 1932,
			Properties: "Frequent Pattern Growth for Frequent Item Mining", build: buildFreqmine},
		{Name: "swaptions", Types: 1, Instances: 16384,
			Properties: "Monte-Carlo simulation of swaption prices", build: buildSwaptions},
	}
}

// NewSpec builds a benchmark spec outside the Table I registry — the
// constructor resolver packages (internal/gen) use to adapt their
// workloads to the registry's lookup-and-Build contract. build must
// generate a program with exactly types task types and roughly n
// instances; Build validates both.
func NewSpec(name string, types, instances int, properties string, build func(n int, seed uint64) *trace.Program) *Spec {
	return &Spec{Name: name, Types: types, Instances: instances,
		Properties: properties, build: build}
}

// Resolver resolves a scheme-prefixed benchmark name ("gen:forkjoin(...)")
// into a Spec. Resolvers must be strict: a malformed name is an error,
// never a silent default.
type Resolver func(name string) (*Spec, error)

// resolvers maps name schemes ("gen") to their resolver.
var resolvers = map[string]Resolver{}

// RegisterResolver registers a resolver for names of the form
// "scheme:rest". Extension packages (internal/gen) register themselves in
// init; registering a duplicate or empty scheme panics.
func RegisterResolver(scheme string, r Resolver) {
	if scheme == "" || r == nil {
		panic("bench: RegisterResolver with empty scheme or nil resolver")
	}
	if _, dup := resolvers[scheme]; dup {
		panic(fmt.Sprintf("bench: resolver scheme %q registered twice", scheme))
	}
	resolvers[scheme] = r
}

// Schemes returns the registered resolver schemes in sorted order.
func Schemes() []string {
	out := make([]string, 0, len(resolvers))
	for s := range resolvers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ByName returns the benchmark with the given Table I name, or resolves a
// scheme-prefixed name ("gen:pipeline(depth=6)") through its registered
// resolver.
func ByName(name string) (*Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	if scheme, _, ok := strings.Cut(name, ":"); ok {
		if r := resolvers[scheme]; r != nil {
			return r(name)
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q: %w", name, ErrUnknownName)
}

// Names returns all benchmark names in Table I order.
func Names() []string {
	specs := Registry()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SensitivityNames returns the benchmarks the paper uses for its parameter
// sensitivity analysis (§V-A): those with error above 5% for at least one
// history size.
func SensitivityNames() []string {
	return []string{
		"2d-convolution", "3d-stencil", "atomic-monte-carlo-dynamics",
		"knn", "blackscholes",
	}
}

// --- generator plumbing ----------------------------------------------------

// Address-space layout: private per-instance blocks are spaced 1 MiB apart
// from privateBase; shared regions get 1 GiB slots from sharedBase.
const (
	privateBase   = uint64(1) << 32
	privateSpace  = uint64(1) << 20
	sharedBase    = uint64(1) << 44
	sharedSpace   = uint64(1) << 30
	tokenKindBits = 40
)

// builder accumulates a program under construction.
type builder struct {
	prog       *trace.Program
	rng        *rand.Rand
	nextPriv   uint64
	nextShared uint64
}

func newBuilder(seed uint64, typeNames ...string) *builder {
	b := &builder{
		prog: &trace.Program{},
		rng:  rand.New(rand.NewPCG(seed, 0x5851f42d4c957f2d)),
	}
	for _, n := range typeNames {
		b.prog.Types = append(b.prog.Types, trace.TypeInfo{Name: n})
	}
	return b
}

// private returns a fresh private data block base address.
func (b *builder) private() uint64 {
	a := privateBase + b.nextPriv*privateSpace
	b.nextPriv++
	return a
}

// shared returns a fresh shared region base address.
func (b *builder) shared() uint64 {
	a := sharedBase + b.nextShared*sharedSpace
	b.nextShared++
	return a
}

// tok builds a dependency token from a kind and two indices.
func tok(kind, i, j int) uint64 {
	return uint64(kind)<<tokenKindBits | uint64(i)<<20 | uint64(j)
}

// add appends a task instance and returns its ID.
func (b *builder) add(typ trace.TypeID, segs []trace.Segment, in, out, inout []uint64) int32 {
	id := int32(len(b.prog.Instances))
	b.prog.Instances = append(b.prog.Instances, trace.Instance{
		ID: id, Type: typ, Seed: b.rng.Uint64(),
		Segments: segs, In: in, Out: out, InOut: inout,
	})
	return id
}

// jitter returns a deterministic multiplicative factor in [1-j, 1+j].
func (b *builder) jitter(j float64) float64 {
	return 1 + j*(2*b.rng.Float64()-1)
}

// logUniform returns a value log-uniformly distributed in [lo, hi].
func (b *builder) logUniform(lo, hi float64) float64 {
	return lo * math.Exp(b.rng.Float64()*math.Log(hi/lo))
}

// typeHistogram returns instance counts per type, for tests and reports.
func typeHistogram(p *trace.Program) map[trace.TypeID]int {
	h := make(map[trace.TypeID]int)
	for i := range p.Instances {
		h[p.Instances[i].Type]++
	}
	return h
}

// dominantShare returns the fraction of total instructions contributed by
// the single heaviest task type.
func dominantShare(p *trace.Program) float64 {
	perType := make(map[trace.TypeID]int64)
	var total int64
	for i := range p.Instances {
		n := p.Instances[i].Instructions()
		perType[p.Instances[i].Type] += n
		total += n
	}
	var counts []int64
	for _, n := range perType {
		counts = append(counts, n)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	if total == 0 || len(counts) == 0 {
		return 0
	}
	return float64(counts[0]) / float64(total)
}
