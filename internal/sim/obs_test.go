package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"taskpoint/internal/obs"
)

// TestResultEventCounters: every run reports how many scheduler events it
// processed and the deepest the event heap got — the occupancy evidence
// the kernel's metrics flush from.
func TestResultEventCounters(t *testing.T) {
	p := independentProgram(8, 2000)
	res, err := Simulate(smallCfg(2), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events <= 0 {
		t.Errorf("Events = %d, want > 0", res.Events)
	}
	// At least one event per task must flow through the heap.
	if res.Events < int64(len(p.Instances)) {
		t.Errorf("Events = %d, want >= %d (one per task)", res.Events, len(p.Instances))
	}
	if res.MaxHeapDepth <= 0 {
		t.Errorf("MaxHeapDepth = %d, want > 0", res.MaxHeapDepth)
	}

	// Determinism: an identical run reports identical counters.
	res2, err := Simulate(smallCfg(2), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Events != res.Events || res2.MaxHeapDepth != res.MaxHeapDepth {
		t.Errorf("counters differ across identical runs: %d/%d vs %d/%d",
			res.Events, res.MaxHeapDepth, res2.Events, res2.MaxHeapDepth)
	}
}

// TestTimelineAdapter: the Result → obs.TimelineSpan adapter produces one span
// per executed instance, on the right core track, with the type name and
// mode category, and the whole thing renders as loadable trace JSON.
func TestTimelineAdapter(t *testing.T) {
	p := independentProgram(6, 1500)
	res, err := Simulate(smallCfg(2), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}

	spans := res.TimelineSpans(p, 1)
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	for i, s := range spans {
		if s.Name != "work" {
			t.Errorf("span %d name = %q, want the task type name", i, s.Name)
		}
		if s.Cat != "task,detailed" {
			t.Errorf("span %d cat = %q, want task,detailed", i, s.Cat)
		}
		if s.PID != 1 || s.TID < 0 || s.TID >= 2 {
			t.Errorf("span %d placed at pid %d tid %d", i, s.PID, s.TID)
		}
		if s.Dur <= 0 {
			t.Errorf("span %d has dur %d", i, s.Dur)
		}
	}

	proc := res.TimelineProcess(p, 1)
	if proc.Name != p.Name {
		t.Errorf("process name = %q, want %q", proc.Name, p.Name)
	}
	if len(proc.Threads) == 0 || len(proc.Threads) > 2 {
		t.Errorf("process has %d threads, want 1-2 cores", len(proc.Threads))
	}

	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, []obs.Process{proc}, spans); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(proc.Threads) + len(spans); len(tf.TraceEvents) != want {
		t.Errorf("got %d trace events, want %d", len(tf.TraceEvents), want)
	}
}
