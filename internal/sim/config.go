// Package sim implements the multi-core architectural simulator that plays
// TaskSim's role in the paper: a deterministic, trace-driven, discrete-event
// engine with a cycle-level detailed mode (cpu + mem models) and a fast
// "burst" mode that advances a task instance at a user-specified IPC — the
// two capabilities §III-A lists as the only requirements TaskPoint places
// on its host simulator.
//
// Mode selection happens at task-instance boundaries through the Controller
// interface, which keeps the sampling methodology (internal/core) decoupled
// from the simulator, mirroring the paper's mechanism/policy separation.
package sim

import (
	"fmt"

	"taskpoint/internal/cpu"
	"taskpoint/internal/mem"
	"taskpoint/internal/sched"
)

// Config describes one simulated machine.
type Config struct {
	// Name identifies the configuration in reports.
	Name string
	// Cores is the number of simulated execution threads.
	Cores int
	// CPU is the core timing model configuration.
	CPU cpu.Config
	// Mem is the memory hierarchy configuration.
	Mem mem.Config
	// Quantum is the length in cycles of one detailed-core time slice:
	// the engine advances the earliest core by at most this many cycles
	// before re-interleaving cores in global time order. It bounds the
	// timing skew observable on shared caches and DRAM queues.
	Quantum int64
	// Policy orders the ready queue (FIFO reproduces the paper setup).
	Policy sched.Policy
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		return fmt.Errorf("sim: cores %d out of range [1,64]", c.Cores)
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("sim: quantum %d must be positive", c.Quantum)
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// HighPerfConfig returns the paper's high-performance architecture
// (Table II): large ROB, three-level cache hierarchy, as found in HPC
// systems.
func HighPerfConfig(cores int) Config {
	return Config{
		Name:  "high-performance",
		Cores: cores,
		CPU: cpu.Config{
			ROB:         168,
			IssueWidth:  4,
			CommitWidth: 4,
			IntLat:      1,
			FPLat:       4,
			StoreLat:    2,
		},
		Mem: mem.Config{
			LineSize:          64,
			L1:                mem.CacheCfg{Size: 32 * 1024, Ways: 8, Lat: 4},
			L2:                mem.CacheCfg{Size: 2 * 1024 * 1024, Ways: 8, Lat: 11},
			L2Shared:          false,
			HasL3:             true,
			L3:                mem.CacheCfg{Size: 20 * 1024 * 1024, Ways: 20, Lat: 28},
			DRAMLat:           200,
			DRAMCyclesPerLine: 1.2, // four DDR3-1600 channels at 2.6 GHz
			SharedBanks:       16,
			BankCycles:        1,
			CoherenceLat:      40,
			AtomicLat:         15,
		},
		Quantum: 2000,
		Policy:  sched.FIFO,
	}
}

// LowPowerConfig returns the paper's low-power architecture (Table II):
// small ROB, two cache levels with a shared L2, as in mobile platforms.
func LowPowerConfig(cores int) Config {
	return Config{
		Name:  "low-power",
		Cores: cores,
		CPU: cpu.Config{
			ROB:         40,
			IssueWidth:  3,
			CommitWidth: 3,
			IntLat:      1,
			FPLat:       5,
			StoreLat:    2,
		},
		Mem: mem.Config{
			LineSize:          64,
			L1:                mem.CacheCfg{Size: 32 * 1024, Ways: 2, Lat: 4},
			L2:                mem.CacheCfg{Size: 1024 * 1024, Ways: 16, Lat: 21},
			L2Shared:          true,
			HasL3:             false,
			DRAMLat:           170,
			DRAMCyclesPerLine: 6, // single low-power channel
			SharedBanks:       8,
			BankCycles:        1,
			CoherenceLat:      30,
			AtomicLat:         15,
		},
		Quantum: 2000,
		Policy:  sched.FIFO,
	}
}

// NativeConfig returns the configuration standing in for the paper's
// native SandyBridge-EP machine in the Figure 1 experiment. Its
// parameters match the high-performance configuration (as the paper
// matches its simulated parameters to the native machine "as far as they
// are publicly available").
func NativeConfig(cores int) Config {
	cfg := HighPerfConfig(cores)
	cfg.Name = "native"
	return cfg
}
