package sim

import "taskpoint/internal/trace"

// Mode is the simulation mode of one task instance.
type Mode uint8

const (
	// ModeDetailed runs the instance through the cycle-level cpu+mem
	// models.
	ModeDetailed Mode = iota
	// ModeFast advances the instance as a single burst at a fixed IPC
	// without touching micro-architectural state.
	ModeFast
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeFast {
		return "fast"
	}
	return "detailed"
}

// Decision is the controller's choice for one task instance.
type Decision struct {
	// Mode selects detailed or fast simulation.
	Mode Mode
	// IPC is the fixed rate for ModeFast (must be positive).
	IPC float64
}

// Detailed is the decision that runs an instance in detailed mode.
func Detailed() Decision { return Decision{Mode: ModeDetailed} }

// Fast is the decision that runs an instance in fast mode at ipc.
func Fast(ipc float64) Decision { return Decision{Mode: ModeFast, IPC: ipc} }

// StartInfo describes a task instance about to start.
type StartInfo struct {
	// Thread is the simulated thread (core) executing the instance.
	Thread int
	// Instance is the task instance.
	Instance *trace.Instance
	// Now is the simulated start time in cycles.
	Now float64
	// Running is the number of threads executing a task instance at
	// this moment, including this one. TaskPoint's resampling trigger
	// for parallelism changes (paper Fig 4a) observes it.
	Running int
}

// FinishInfo describes a completed task instance.
type FinishInfo struct {
	// Thread is the simulated thread that executed the instance.
	Thread int
	// Instance is the task instance.
	Instance *trace.Instance
	// Start and End delimit its execution in cycles.
	Start, End float64
	// Mode is the mode it was simulated in.
	Mode Mode
	// IPC is the measured IPC (detailed) or the applied IPC (fast).
	IPC float64
}

// Controller decides, at every task-instance boundary, which mode the
// instance is simulated in. TaskPoint (internal/core) is a Controller;
// DetailedController gives the full-detail baseline.
type Controller interface {
	// TaskStart is invoked when a thread picks up an instance and must
	// return the simulation decision for it.
	TaskStart(StartInfo) Decision
	// TaskFinish is invoked when an instance completes.
	TaskFinish(FinishInfo)
}

// DetailedController simulates every task instance in detailed mode. It is
// the reference baseline of every experiment.
type DetailedController struct{}

// TaskStart always selects detailed mode.
func (DetailedController) TaskStart(StartInfo) Decision { return Detailed() }

// TaskFinish is a no-op.
func (DetailedController) TaskFinish(FinishInfo) {}

// FixedIPCController simulates every instance in fast mode at one IPC.
// It is used in tests and as the crudest possible baseline.
type FixedIPCController struct {
	// IPC is the rate applied to every instance.
	IPC float64
}

// TaskStart always selects fast mode at the fixed IPC.
func (c FixedIPCController) TaskStart(StartInfo) Decision { return Fast(c.IPC) }

// TaskFinish is a no-op.
func (FixedIPCController) TaskFinish(FinishInfo) {}
