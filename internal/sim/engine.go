package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"taskpoint/internal/cpu"
	"taskpoint/internal/mem"
	"taskpoint/internal/sched"
	"taskpoint/internal/taskgraph"
	"taskpoint/internal/trace"
)

// Perturber injects execution-time perturbation into detailed task
// instances. The noise package implements it to model native-execution
// system noise for the Figure 1 experiment; architectural simulations use
// no perturber.
type Perturber interface {
	// Perturb returns extra cycles to add to a task instance that ran
	// on thread, started at start and took dur cycles.
	Perturb(thread int, start, dur float64) float64
}

// InstanceRecord is the per-task-instance outcome of a simulation.
type InstanceRecord struct {
	// Type is the instance's task type.
	Type trace.TypeID
	// Thread is the core that executed it.
	Thread int
	// Start and End delimit its execution in cycles.
	Start, End float64
	// Instr is its dynamic instruction count.
	Instr int64
	// IPC is measured (detailed) or applied (fast).
	IPC float64
	// Mode is the simulation mode used.
	Mode Mode
}

// Result summarises one simulation run.
type Result struct {
	// Cycles is the simulated execution time of the program.
	Cycles float64
	// TotalInstructions is the program's dynamic instruction count.
	TotalInstructions int64
	// DetailedInstructions counts instructions simulated cycle by cycle.
	DetailedInstructions int64
	// DetailedTasks and FastTasks count instances per mode.
	DetailedTasks, FastTasks int
	// PerInstance holds one record per task instance, indexed by
	// instance ID.
	PerInstance []InstanceRecord
	// Mem is the memory hierarchy statistics (meaningful for the
	// detailed portions of the run).
	Mem mem.Stats
	// Wall is the host wall-clock time the simulation took.
	Wall time.Duration
}

// DetailFraction returns the fraction of instructions simulated in detail.
func (r *Result) DetailFraction() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return float64(r.DetailedInstructions) / float64(r.TotalInstructions)
}

// TotalTaskCycles returns the summed execution time of all task instances
// (Σ End−Start) — the total work performed, as opposed to Cycles, the
// makespan. The stratified confidence estimator targets this quantity.
func (r *Result) TotalTaskCycles() float64 {
	var sum float64
	for i := range r.PerInstance {
		sum += r.PerInstance[i].End - r.PerInstance[i].Start
	}
	return sum
}

// IPCOfType returns the measured IPC values of all detailed instances of
// type t, in completion order of recording.
func (r *Result) IPCOfType(t trace.TypeID) []float64 {
	var out []float64
	for i := range r.PerInstance {
		rec := &r.PerInstance[i]
		if rec.Type == t && rec.Mode == ModeDetailed {
			out = append(out, rec.IPC)
		}
	}
	return out
}

// Engine simulates one program on one machine configuration. Engines are
// single-use: build one per run.
type Engine struct {
	cfg     Config
	prog    *trace.Program
	graph   *taskgraph.Graph
	memsys  *mem.System
	cpus    []*cpu.Core
	state   []coreState
	sched   *sched.State
	noise   Perturber
	running int
}

type coreState struct {
	clock   float64
	busy    bool
	taskID  int
	start   float64
	mode    Mode
	exec    *cpu.Exec // detailed mode only
	fastEnd float64   // fast mode only
	ipc     float64   // fast mode only
	instr   int64
}

// memPort binds a mem.System to one core for the cpu model.
type memPort struct {
	sys  *mem.System
	core int
}

func (p memPort) Access(addr uint64, write, atomic bool, now float64) float64 {
	return p.sys.Access(p.core, addr, write, atomic, now)
}

// Option configures an Engine.
type Option func(*Engine)

// WithPerturber installs a detailed-task execution-time perturber.
func WithPerturber(p Perturber) Option {
	return func(e *Engine) { e.noise = p }
}

// NewEngine builds an engine for prog on cfg. The task graph is derived
// from the program's dependency annotations.
func NewEngine(cfg Config, prog *trace.Program, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := taskgraph.Build(prog)
	if err != nil {
		return nil, err
	}
	ms, err := mem.NewSystem(cfg.Mem, cfg.Cores)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		prog:   prog,
		graph:  g,
		memsys: ms,
		state:  make([]coreState, cfg.Cores),
		sched:  sched.New(g, cfg.Policy),
	}
	for i := 0; i < cfg.Cores; i++ {
		e.cpus = append(e.cpus, cpu.New(cfg.CPU, memPort{sys: ms, core: i}))
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// ErrDeadlock is returned if the scheduler stalls with work remaining;
// it indicates a corrupt dependency graph.
var ErrDeadlock = errors.New("sim: scheduler deadlock with tasks remaining")

// Run simulates the whole program under the given controller and returns
// the result. The engine must not be reused afterwards.
func (e *Engine) Run(ctrl Controller) (*Result, error) {
	return e.RunContext(context.Background(), ctrl)
}

// cancelCheckMask bounds how many scheduler iterations may pass between
// context checks in the hot loop. Each iteration advances one core by at
// most one quantum, so 64 iterations keep cancellation latency well under
// a millisecond of host time while the check itself (one atomic-ish
// ctx.Err call per 64 events) stays invisible in profiles.
const cancelCheckMask = 63

// RunContext is Run with cooperative cancellation: the scheduler loop
// polls ctx every few events and abandons the simulation with ctx's error
// mid-program, so callers driving large campaigns can stop promptly. The
// engine must not be reused after either outcome.
func (e *Engine) RunContext(ctx context.Context, ctrl Controller) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	res := &Result{
		TotalInstructions: e.prog.TotalInstructions(),
		PerInstance:       make([]InstanceRecord, len(e.prog.Instances)),
	}

	for iter := 0; !e.sched.Done(); iter++ {
		if iter&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := e.assign(ctrl); err != nil {
			return nil, err
		}
		core := e.nextBusyCore()
		if core < 0 {
			if e.sched.Done() {
				break
			}
			return nil, ErrDeadlock
		}
		e.advance(core, ctrl, res)
	}

	for i := range e.state {
		if e.state[i].clock > res.Cycles {
			res.Cycles = e.state[i].clock
		}
	}
	res.Mem = e.memsys.Stats()
	res.Wall = time.Since(wallStart)
	return res, nil
}

// assign hands ready tasks to idle cores: each queued-ready task goes to
// the idle core that can start it earliest (ties to the lowest index),
// like a runtime waking the first available worker.
func (e *Engine) assign(ctrl Controller) error {
	for {
		ready, ok := e.sched.NextReadyTime()
		if !ok {
			return nil
		}
		best, bestStart := -1, math.Inf(1)
		for i := range e.state {
			if e.state[i].busy {
				continue
			}
			start := math.Max(e.state[i].clock, ready)
			if start < bestStart {
				best, bestStart = i, start
			}
		}
		if best < 0 {
			return nil // all cores busy
		}
		id, ok := e.sched.Pop(bestStart)
		if !ok {
			return nil
		}
		if err := e.startTask(best, id, bestStart, ctrl); err != nil {
			return err
		}
	}
}

func (e *Engine) startTask(core, id int, start float64, ctrl Controller) error {
	inst := &e.prog.Instances[id]
	e.running++
	dec := ctrl.TaskStart(StartInfo{
		Thread:   core,
		Instance: inst,
		Now:      start,
		Running:  e.running,
	})
	cs := &e.state[core]
	cs.busy = true
	cs.taskID = id
	cs.start = start
	cs.clock = start
	cs.instr = inst.Instructions()
	cs.mode = dec.Mode
	switch dec.Mode {
	case ModeDetailed:
		cs.exec = cpu.NewExec(inst)
	case ModeFast:
		if !(dec.IPC > 0) || math.IsInf(dec.IPC, 0) {
			return fmt.Errorf("sim: controller requested fast mode with invalid IPC %v", dec.IPC)
		}
		cs.ipc = dec.IPC
		cs.fastEnd = start + float64(cs.instr)/dec.IPC
	default:
		return fmt.Errorf("sim: unknown mode %d", dec.Mode)
	}
	return nil
}

// nextBusyCore picks the busy core with the earliest next event: the local
// clock for detailed cores (the next quantum continues there) or the burst
// completion time for fast cores. This keeps cores interleaved in global
// time order so shared-resource contention is observed consistently.
func (e *Engine) nextBusyCore() int {
	best, bestT := -1, math.Inf(1)
	for i := range e.state {
		cs := &e.state[i]
		if !cs.busy {
			continue
		}
		t := cs.clock
		if cs.mode == ModeFast {
			t = cs.fastEnd
		}
		if t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

func (e *Engine) advance(core int, ctrl Controller, res *Result) {
	cs := &e.state[core]
	switch cs.mode {
	case ModeFast:
		cs.clock = cs.fastEnd
		e.finishTask(core, ctrl, res, cs.ipc)
	case ModeDetailed:
		// Advance by one bounded time slice: the deadline keeps cross-
		// core skew on shared resources within one quantum; the
		// instruction limit bounds the slice for high-IPC code.
		end, fin := e.cpus[core].Run(cs.exec, 8*e.cfg.Quantum,
			cs.clock+float64(e.cfg.Quantum), cs.start)
		cs.clock = end
		if !fin {
			return
		}
		if e.noise != nil {
			extra := e.noise.Perturb(core, cs.start, end-cs.start)
			if extra < 0 {
				extra = 0
			}
			cs.clock = end + extra
		}
		dur := cs.clock - cs.start
		ipc := math.Inf(1)
		if dur > 0 {
			ipc = float64(cs.instr) / dur
		}
		res.DetailedInstructions += cs.instr
		e.finishTask(core, ctrl, res, ipc)
	}
}

func (e *Engine) finishTask(core int, ctrl Controller, res *Result, ipc float64) {
	cs := &e.state[core]
	e.running--
	rec := InstanceRecord{
		Type:   e.prog.Instances[cs.taskID].Type,
		Thread: core,
		Start:  cs.start,
		End:    cs.clock,
		Instr:  cs.instr,
		IPC:    ipc,
		Mode:   cs.mode,
	}
	res.PerInstance[cs.taskID] = rec
	if cs.mode == ModeDetailed {
		res.DetailedTasks++
	} else {
		res.FastTasks++
	}
	ctrl.TaskFinish(FinishInfo{
		Thread:   core,
		Instance: &e.prog.Instances[cs.taskID],
		Start:    cs.start,
		End:      cs.clock,
		Mode:     cs.mode,
		IPC:      ipc,
	})
	e.sched.Complete(cs.taskID, cs.clock)
	cs.busy = false
	cs.exec = nil
}

// Simulate is the convenience entry point: build an engine and run prog on
// cfg under ctrl.
func Simulate(cfg Config, prog *trace.Program, ctrl Controller, opts ...Option) (*Result, error) {
	return SimulateContext(context.Background(), cfg, prog, ctrl, opts...)
}

// SimulateContext is Simulate with cooperative cancellation: the run is
// abandoned with ctx's error when ctx is cancelled mid-simulation.
func SimulateContext(ctx context.Context, cfg Config, prog *trace.Program, ctrl Controller, opts ...Option) (*Result, error) {
	e, err := NewEngine(cfg, prog, opts...)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, ctrl)
}
