package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"taskpoint/internal/cpu"
	"taskpoint/internal/mem"
	"taskpoint/internal/sched"
	"taskpoint/internal/taskgraph"
	"taskpoint/internal/trace"
)

// Perturber injects execution-time perturbation into detailed task
// instances. The noise package implements it to model native-execution
// system noise for the Figure 1 experiment; architectural simulations use
// no perturber.
type Perturber interface {
	// Perturb returns extra cycles to add to a task instance that ran
	// on thread, started at start and took dur cycles.
	Perturb(thread int, start, dur float64) float64
}

// InstanceRecord is the per-task-instance outcome of a simulation.
type InstanceRecord struct {
	// Type is the instance's task type.
	Type trace.TypeID
	// Thread is the core that executed it.
	Thread int
	// Start and End delimit its execution in cycles.
	Start, End float64
	// Instr is its dynamic instruction count.
	Instr int64
	// IPC is measured (detailed) or applied (fast).
	IPC float64
	// Mode is the simulation mode used.
	Mode Mode
}

// Result summarises one simulation run.
type Result struct {
	// Cycles is the simulated execution time of the program.
	Cycles float64
	// TotalInstructions is the program's dynamic instruction count.
	TotalInstructions int64
	// DetailedInstructions counts instructions simulated cycle by cycle.
	DetailedInstructions int64
	// DetailedTasks and FastTasks count instances per mode.
	DetailedTasks, FastTasks int
	// PerInstance holds one record per task instance, indexed by
	// instance ID.
	PerInstance []InstanceRecord
	// Mem is the memory hierarchy statistics (meaningful for the
	// detailed portions of the run).
	Mem mem.Stats
	// Wall is the host wall-clock time the simulation took.
	Wall time.Duration
	// Events is the number of scheduler events the run processed (one
	// per core advance: a detailed quantum or a fast-burst completion).
	Events int64
	// MaxHeapDepth is the deepest the event heap got — an upper bound on
	// simultaneously busy cores, the occupancy evidence an intra-run
	// parallelisation of the kernel would start from.
	MaxHeapDepth int
}

// DetailFraction returns the fraction of instructions simulated in detail.
func (r *Result) DetailFraction() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return float64(r.DetailedInstructions) / float64(r.TotalInstructions)
}

// TotalTaskCycles returns the summed execution time of all task instances
// (Σ End−Start) — the total work performed, as opposed to Cycles, the
// makespan. The stratified confidence estimator targets this quantity.
func (r *Result) TotalTaskCycles() float64 {
	var sum float64
	for i := range r.PerInstance {
		sum += r.PerInstance[i].End - r.PerInstance[i].Start
	}
	return sum
}

// IPCOfType returns the measured IPC values of all detailed instances of
// type t, in completion order of recording.
func (r *Result) IPCOfType(t trace.TypeID) []float64 {
	var out []float64
	for i := range r.PerInstance {
		rec := &r.PerInstance[i]
		if rec.Type == t && rec.Mode == ModeDetailed {
			out = append(out, rec.IPC)
		}
	}
	return out
}

// Engine simulates one program on one machine configuration. One engine
// serves one run at a time: after Run returns (or is cancelled), call
// Reset before running again — a second Run without Reset fails with
// ErrFinished. Resetting instead of rebuilding reuses the expensive
// state (cache arrays, core rings, scheduler storage, cursor free list)
// across the repeated runs of an experiment cell.
type Engine struct {
	cfg     Config
	prog    *trace.Program
	graph   *taskgraph.Graph
	memsys  *mem.System
	cpus    []*cpu.Core
	state   []coreState
	sched   *sched.State
	noise   Perturber
	running int

	// events holds the busy cores keyed by their next event time; idle
	// is the complementary bitmask of idle cores (Cores <= 64). Together
	// they replace the per-event O(cores) scans of the scheduler loop.
	events  eventHeap
	idle    uint64
	idleAll uint64 // idle mask with every core set

	// execFree pools task-instance execution cursors: steady-state task
	// starts reuse a cursor instead of allocating one (plus its two
	// generators) per instance.
	execFree []*cpu.Exec

	used bool // a run has started; Reset required before the next
}

// coreEvent is one busy core's next event: the local clock of a detailed
// core (its next quantum continues there) or the burst completion time of
// a fast core.
type coreEvent struct {
	t    float64
	core int32
}

// before orders events by (time, core index) — a strict total order, so
// the heap's pop sequence reproduces the earliest-time/lowest-index
// selection of the linear scan it replaced exactly.
func (ev coreEvent) before(o coreEvent) bool {
	return ev.t < o.t || (ev.t == o.t && ev.core < o.core)
}

// eventHeap is a binary min-heap of core events. The engine only ever
// mutates the top (the minimum event is advanced, then either re-keyed
// or removed), so the heap needs no position index.
type eventHeap []coreEvent

func (h *eventHeap) push(ev coreEvent) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h eventHeap) siftDown() {
	n := len(h)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		child := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			child = r
		}
		if !h[child].before(h[i]) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// fixTop re-keys the minimum event (a detailed core advanced one quantum).
func (h eventHeap) fixTop(t float64) {
	h[0].t = t
	h.siftDown()
}

// popTop removes the minimum event (its core finished a task).
func (h *eventHeap) popTop() {
	q := *h
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	(*h).siftDown()
}

type coreState struct {
	clock   float64
	busy    bool
	taskID  int
	start   float64
	mode    Mode
	exec    *cpu.Exec // detailed mode only
	fastEnd float64   // fast mode only
	ipc     float64   // fast mode only
	instr   int64
}

// memPort binds a mem.System to one core for the cpu model.
type memPort struct {
	sys  *mem.System
	core int
}

func (p memPort) Access(addr uint64, write, atomic bool, now float64) float64 {
	return p.sys.Access(p.core, addr, write, atomic, now)
}

// Option configures an Engine.
type Option func(*Engine)

// WithPerturber installs a detailed-task execution-time perturber.
func WithPerturber(p Perturber) Option {
	return func(e *Engine) { e.noise = p }
}

// NewEngine builds an engine for prog on cfg. The task graph is derived
// from the program's dependency annotations.
func NewEngine(cfg Config, prog *trace.Program, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := taskgraph.Build(prog)
	if err != nil {
		return nil, err
	}
	ms, err := mem.NewSystem(cfg.Mem, cfg.Cores)
	if err != nil {
		return nil, err
	}
	ms.PresizeDirectory(estimateFootprintLines(prog, cfg.Mem.LineSize))
	e := &Engine{
		cfg:     cfg,
		prog:    prog,
		graph:   g,
		memsys:  ms,
		state:   make([]coreState, cfg.Cores),
		sched:   sched.New(g, cfg.Policy),
		events:  make(eventHeap, 0, cfg.Cores),
		idleAll: ^uint64(0) >> (64 - uint(cfg.Cores)),
	}
	e.idle = e.idleAll
	for i := 0; i < cfg.Cores; i++ {
		e.cpus = append(e.cpus, cpu.New(cfg.CPU, memPort{sys: ms, core: i}))
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// estimateFootprintLines estimates how many distinct cache lines prog
// touches: segments sharing a base address are counted once at their
// largest footprint. The estimate presizes the coherence directory; it
// does not affect results.
func estimateFootprintLines(prog *trace.Program, lineSize int) int {
	if lineSize <= 0 {
		return 0
	}
	regions := make(map[uint64]uint64, len(prog.Instances))
	for i := range prog.Instances {
		segs := prog.Instances[i].Segments
		for j := range segs {
			if fp := segs[j].Footprint; fp > regions[segs[j].Base] {
				regions[segs[j].Base] = fp
			}
		}
	}
	var lines uint64
	for _, fp := range regions {
		lines += (fp + uint64(lineSize) - 1) / uint64(lineSize)
	}
	const clamp = 1 << 24
	if lines > clamp {
		lines = clamp
	}
	return int(lines)
}

// resetter is implemented by perturbers whose state must be restored to
// run start for Engine.Reset to reproduce a fresh engine bit-for-bit
// (noise.Model implements it; stateless perturbers need not).
type resetter interface{ Reset() }

// Reset restores the engine to run a program from scratch, reusing every
// allocation a fresh NewEngine would repeat: cache arrays, core rings,
// scheduler storage and pooled execution cursors. Passing the engine's
// current program (or nil) reuses the derived task graph; a different
// program rebuilds graph and scheduler state. Results after Reset are
// bit-identical to a freshly built engine's.
func (e *Engine) Reset(prog *trace.Program) error {
	e.memsys.Reset()
	if prog == nil || prog == e.prog {
		e.sched.Reset()
	} else {
		g, err := taskgraph.Build(prog)
		if err != nil {
			return err
		}
		e.prog = prog
		e.graph = g
		e.sched = sched.New(g, e.cfg.Policy)
		e.memsys.PresizeDirectory(estimateFootprintLines(prog, e.cfg.Mem.LineSize))
	}
	for _, c := range e.cpus {
		c.Reset()
	}
	for i := range e.state {
		if ex := e.state[i].exec; ex != nil {
			e.execFree = append(e.execFree, ex) // run was cancelled mid-task
		}
	}
	clear(e.state)
	e.events = e.events[:0]
	e.idle = e.idleAll
	e.running = 0
	e.used = false
	if r, ok := e.noise.(resetter); ok {
		r.Reset()
	}
	return nil
}

// ErrDeadlock is returned if the scheduler stalls with work remaining;
// it indicates a corrupt dependency graph.
var ErrDeadlock = errors.New("sim: scheduler deadlock with tasks remaining")

// ErrFinished is returned when Run is called on an engine whose previous
// run already started (finished or cancelled) without an intervening
// Reset. The guard turns silent state corruption into a diagnosable
// error.
var ErrFinished = errors.New("sim: engine already ran; call Reset before reusing it")

// Run simulates the whole program under the given controller and returns
// the result. Call Reset before reusing the engine.
func (e *Engine) Run(ctrl Controller) (*Result, error) {
	return e.RunContext(context.Background(), ctrl)
}

// cancelCheckMask bounds how many scheduler iterations may pass between
// context checks in the hot loop. Each iteration advances one core by at
// most one quantum, so 64 iterations keep cancellation latency well under
// a millisecond of host time while the check itself (one atomic-ish
// ctx.Err call per 64 events) stays invisible in profiles.
const cancelCheckMask = 63

// RunContext is Run with cooperative cancellation: the scheduler loop
// polls ctx every few events and abandons the simulation with ctx's error
// mid-program, so callers driving large campaigns can stop promptly.
// After either outcome the engine requires Reset before its next run.
func (e *Engine) RunContext(ctx context.Context, ctrl Controller) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.used {
		return nil, ErrFinished
	}
	e.used = true
	wallStart := time.Now()
	res := &Result{
		TotalInstructions: e.prog.TotalInstructions(),
		PerInstance:       make([]InstanceRecord, len(e.prog.Instances)),
	}

	// Plain locals keep the per-event cost of the observability counters
	// at two register operations; they flush to the shared metrics
	// registry once, after the loop.
	var events int64
	maxDepth := 0
	for iter := 0; !e.sched.Done(); iter++ {
		if iter&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := e.assign(ctrl); err != nil {
			return nil, err
		}
		// The heap top is the busy core with the earliest next event —
		// the role the per-event O(cores) scan used to play. Advancing
		// cores in global event order keeps shared-resource contention
		// observed consistently.
		if len(e.events) == 0 {
			if e.sched.Done() {
				break
			}
			return nil, ErrDeadlock
		}
		if d := len(e.events); d > maxDepth {
			maxDepth = d
		}
		events++
		e.advance(int(e.events[0].core), ctrl, res)
	}

	for i := range e.state {
		if e.state[i].clock > res.Cycles {
			res.Cycles = e.state[i].clock
		}
	}
	res.Mem = e.memsys.Stats()
	res.Wall = time.Since(wallStart)
	res.Events = events
	res.MaxHeapDepth = maxDepth
	recordRunMetrics(res)
	return res, nil
}

// assign hands ready tasks to idle cores: each queued-ready task goes to
// the idle core that can start it earliest (ties to the lowest index),
// like a runtime waking the first available worker. The idle bitmask
// makes the common all-cores-busy case a single comparison; otherwise
// only idle cores are visited, in index order, with an early exit on the
// first core that can start at the task's readiness time (any such core
// achieves the minimum possible start, and the lowest index wins ties —
// the exact selection of the full scan this replaced).
func (e *Engine) assign(ctrl Controller) error {
	for {
		ready, ok := e.sched.NextReadyTime()
		if !ok || e.idle == 0 {
			return nil
		}
		best, bestStart := -1, math.Inf(1)
		for m := e.idle; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if c := e.state[i].clock; c <= ready {
				best, bestStart = i, ready
				break
			} else if c < bestStart {
				best, bestStart = i, c
			}
		}
		id, ok := e.sched.Pop(bestStart)
		if !ok {
			return nil
		}
		if err := e.startTask(best, id, bestStart, ctrl); err != nil {
			return err
		}
	}
}

func (e *Engine) startTask(core, id int, start float64, ctrl Controller) error {
	inst := &e.prog.Instances[id]
	e.running++
	dec := ctrl.TaskStart(StartInfo{
		Thread:   core,
		Instance: inst,
		Now:      start,
		Running:  e.running,
	})
	cs := &e.state[core]
	cs.busy = true
	cs.taskID = id
	cs.start = start
	cs.clock = start
	cs.instr = inst.Instructions()
	cs.mode = dec.Mode
	e.idle &^= 1 << uint(core)
	switch dec.Mode {
	case ModeDetailed:
		if n := len(e.execFree); n > 0 {
			cs.exec = e.execFree[n-1]
			e.execFree = e.execFree[:n-1]
			cs.exec.Reset(inst)
		} else {
			cs.exec = cpu.NewExec(inst)
		}
		e.events.push(coreEvent{t: start, core: int32(core)})
	case ModeFast:
		if !(dec.IPC > 0) || math.IsInf(dec.IPC, 0) {
			return fmt.Errorf("sim: controller requested fast mode with invalid IPC %v", dec.IPC)
		}
		cs.ipc = dec.IPC
		cs.fastEnd = start + float64(cs.instr)/dec.IPC
		e.events.push(coreEvent{t: cs.fastEnd, core: int32(core)})
	default:
		return fmt.Errorf("sim: unknown mode %d", dec.Mode)
	}
	return nil
}

// advance moves the heap-top core (the earliest next event) forward: a
// fast core completes its burst; a detailed core runs one bounded time
// slice and is re-keyed at its new clock, or finishes.
func (e *Engine) advance(core int, ctrl Controller, res *Result) {
	cs := &e.state[core]
	switch cs.mode {
	case ModeFast:
		cs.clock = cs.fastEnd
		e.events.popTop()
		e.finishTask(core, ctrl, res, cs.ipc)
	case ModeDetailed:
		// Advance by one bounded time slice: the deadline keeps cross-
		// core skew on shared resources within one quantum; the
		// instruction limit bounds the slice for high-IPC code.
		end, fin := e.cpus[core].Run(cs.exec, 8*e.cfg.Quantum,
			cs.clock+float64(e.cfg.Quantum), cs.start)
		cs.clock = end
		if !fin {
			e.events.fixTop(end)
			return
		}
		if e.noise != nil {
			extra := e.noise.Perturb(core, cs.start, end-cs.start)
			if extra < 0 {
				extra = 0
			}
			cs.clock = end + extra
		}
		dur := cs.clock - cs.start
		ipc := math.Inf(1)
		if dur > 0 {
			ipc = float64(cs.instr) / dur
		}
		res.DetailedInstructions += cs.instr
		e.events.popTop()
		e.finishTask(core, ctrl, res, ipc)
	}
}

func (e *Engine) finishTask(core int, ctrl Controller, res *Result, ipc float64) {
	cs := &e.state[core]
	e.running--
	rec := InstanceRecord{
		Type:   e.prog.Instances[cs.taskID].Type,
		Thread: core,
		Start:  cs.start,
		End:    cs.clock,
		Instr:  cs.instr,
		IPC:    ipc,
		Mode:   cs.mode,
	}
	res.PerInstance[cs.taskID] = rec
	if cs.mode == ModeDetailed {
		res.DetailedTasks++
	} else {
		res.FastTasks++
	}
	ctrl.TaskFinish(FinishInfo{
		Thread:   core,
		Instance: &e.prog.Instances[cs.taskID],
		Start:    cs.start,
		End:      cs.clock,
		Mode:     cs.mode,
		IPC:      ipc,
	})
	e.sched.Complete(cs.taskID, cs.clock)
	cs.busy = false
	e.idle |= 1 << uint(core)
	if cs.exec != nil {
		e.execFree = append(e.execFree, cs.exec)
		cs.exec = nil
	}
}

// Simulate is the convenience entry point: build an engine and run prog on
// cfg under ctrl.
func Simulate(cfg Config, prog *trace.Program, ctrl Controller, opts ...Option) (*Result, error) {
	return SimulateContext(context.Background(), cfg, prog, ctrl, opts...)
}

// SimulateContext is Simulate with cooperative cancellation: the run is
// abandoned with ctx's error when ctx is cancelled mid-simulation.
func SimulateContext(ctx context.Context, cfg Config, prog *trace.Program, ctrl Controller, opts ...Option) (*Result, error) {
	e, err := NewEngine(cfg, prog, opts...)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, ctrl)
}
