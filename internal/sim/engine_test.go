package sim

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"taskpoint/internal/trace"
)

// independentProgram builds n independent single-type tasks of instr
// instructions each.
func independentProgram(n int, instr int64) *trace.Program {
	p := &trace.Program{Name: "indep", Types: []trace.TypeInfo{{Name: "work"}}}
	for i := 0; i < n; i++ {
		p.Instances = append(p.Instances, trace.Instance{
			ID: int32(i), Type: 0, Seed: uint64(i + 1),
			Segments: []trace.Segment{{
				N: instr, MemRatio: 0.2, Pat: trace.PatStride, Stride: 64,
				Base: uint64(i) << 24, Footprint: 1 << 16, DepDist: 4,
			}},
		})
	}
	return p
}

// chainProgram builds n tasks forming a single dependency chain.
func chainProgram(n int, instr int64) *trace.Program {
	p := &trace.Program{Name: "chain", Types: []trace.TypeInfo{{Name: "link"}}}
	for i := 0; i < n; i++ {
		inst := trace.Instance{
			ID: int32(i), Type: 0, Seed: uint64(i + 1),
			Segments: []trace.Segment{{N: instr, DepDist: 2}},
			Out:      []uint64{uint64(i + 1)},
		}
		if i > 0 {
			inst.In = []uint64{uint64(i)}
		}
		p.Instances = append(p.Instances, inst)
	}
	return p
}

// smallCfg is a fast configuration for unit tests.
func smallCfg(cores int) Config {
	cfg := HighPerfConfig(cores)
	cfg.Quantum = 500
	return cfg
}

func TestTable2ConfigsValid(t *testing.T) {
	for _, cfg := range []Config{HighPerfConfig(8), LowPowerConfig(8), NativeConfig(8)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	// Spot-check Table II parameters.
	hp := HighPerfConfig(1)
	if hp.CPU.ROB != 168 || hp.CPU.IssueWidth != 4 || hp.CPU.CommitWidth != 4 {
		t.Errorf("high-perf core parameters wrong: %+v", hp.CPU)
	}
	if hp.Mem.L3.Size != 20*1024*1024 || hp.Mem.L3.Ways != 20 || !hp.Mem.HasL3 {
		t.Errorf("high-perf L3 wrong: %+v", hp.Mem.L3)
	}
	lp := LowPowerConfig(1)
	if lp.CPU.ROB != 40 || lp.CPU.IssueWidth != 3 || lp.CPU.CommitWidth != 3 {
		t.Errorf("low-power core parameters wrong: %+v", lp.CPU)
	}
	if !lp.Mem.L2Shared || lp.Mem.HasL3 || lp.Mem.L2.Size != 1024*1024 || lp.Mem.L2.Ways != 16 {
		t.Errorf("low-power cache hierarchy wrong: %+v", lp.Mem)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cfg := HighPerfConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("0 cores accepted")
	}
	cfg = HighPerfConfig(8)
	cfg.Quantum = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestDetailedRunCompletes(t *testing.T) {
	p := independentProgram(8, 2000)
	res, err := Simulate(smallCfg(2), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no simulated time elapsed")
	}
	if res.DetailedTasks != 8 || res.FastTasks != 0 {
		t.Errorf("task counts = %d/%d, want 8/0", res.DetailedTasks, res.FastTasks)
	}
	if res.DetailFraction() != 1 {
		t.Errorf("detail fraction = %v, want 1", res.DetailFraction())
	}
	if res.TotalInstructions != 8*2000 {
		t.Errorf("total instructions = %d", res.TotalInstructions)
	}
	for i, rec := range res.PerInstance {
		if rec.End <= rec.Start {
			t.Errorf("instance %d: end %v <= start %v", i, rec.End, rec.Start)
		}
		if rec.IPC <= 0 {
			t.Errorf("instance %d: IPC %v", i, rec.IPC)
		}
	}
}

func TestFixedIPCExactCycles(t *testing.T) {
	// One core, fast mode at IPC 2: the program takes exactly
	// totalInstr/2 cycles (tasks execute back to back).
	p := independentProgram(5, 1000)
	res, err := Simulate(smallCfg(1), p, FixedIPCController{IPC: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(5*1000) / 2
	if math.Abs(res.Cycles-want) > 1e-6 {
		t.Errorf("cycles = %v, want %v", res.Cycles, want)
	}
	if res.FastTasks != 5 || res.DetailedTasks != 0 {
		t.Errorf("task counts = %d/%d, want 0/5", res.DetailedTasks, res.FastTasks)
	}
	if res.DetailFraction() != 0 {
		t.Errorf("detail fraction = %v, want 0", res.DetailFraction())
	}
}

func TestInvalidFastIPCRejected(t *testing.T) {
	p := independentProgram(2, 100)
	if _, err := Simulate(smallCfg(1), p, FixedIPCController{IPC: 0}); err == nil {
		t.Error("IPC=0 fast mode should fail")
	}
	if _, err := Simulate(smallCfg(1), p, FixedIPCController{IPC: math.Inf(1)}); err == nil {
		t.Error("IPC=+Inf fast mode should fail")
	}
}

func TestDependenciesRespected(t *testing.T) {
	p := chainProgram(6, 500)
	res, err := Simulate(smallCfg(4), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerInstance); i++ {
		prev, cur := res.PerInstance[i-1], res.PerInstance[i]
		if cur.Start < prev.End-1e-9 {
			t.Errorf("task %d started at %v before dependency finished at %v", i, cur.Start, prev.End)
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	p1 := independentProgram(16, 2000)
	p4 := independentProgram(16, 2000)
	r1, err := Simulate(smallCfg(1), p1, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(smallCfg(4), p4, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cycles >= r1.Cycles {
		t.Errorf("4 cores (%v cycles) not faster than 1 core (%v)", r4.Cycles, r1.Cycles)
	}
	if r4.Cycles < r1.Cycles/4.5 {
		t.Errorf("speedup beyond core count: %v vs %v", r1.Cycles, r4.Cycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		p := independentProgram(12, 1500)
		res, err := Simulate(smallCfg(3), p, DetailedController{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs differ: %v vs %v", a, b)
	}
}

// alternatingController runs even instances detailed and odd ones fast.
type alternatingController struct{ ipc float64 }

func (c alternatingController) TaskStart(si StartInfo) Decision {
	if si.Instance.ID%2 == 0 {
		return Detailed()
	}
	return Fast(c.ipc)
}
func (alternatingController) TaskFinish(FinishInfo) {}

func TestMixedModes(t *testing.T) {
	p := independentProgram(10, 1000)
	res, err := Simulate(smallCfg(2), p, alternatingController{ipc: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetailedTasks != 5 || res.FastTasks != 5 {
		t.Errorf("task counts = %d/%d, want 5/5", res.DetailedTasks, res.FastTasks)
	}
	for i, rec := range res.PerInstance {
		wantMode := ModeDetailed
		if i%2 == 1 {
			wantMode = ModeFast
		}
		if rec.Mode != wantMode {
			t.Errorf("instance %d mode = %v, want %v", i, rec.Mode, wantMode)
		}
		if rec.Mode == ModeFast && math.Abs(rec.IPC-1.5) > 1e-12 {
			t.Errorf("fast instance %d IPC = %v, want 1.5", i, rec.IPC)
		}
	}
	if res.DetailedInstructions != 5*1000 {
		t.Errorf("detailed instructions = %d, want 5000", res.DetailedInstructions)
	}
}

// cancellingController cancels its context after `after` task starts.
type cancellingController struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancellingController) TaskStart(StartInfo) Decision {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
	return Detailed()
}
func (*cancellingController) TaskFinish(FinishInfo) {}

// constantPerturber adds fixed extra cycles per task.
type constantPerturber struct{ extra float64 }

func (p constantPerturber) Perturb(thread int, start, dur float64) float64 { return p.extra }

func TestPerturberExtendsRuntime(t *testing.T) {
	clean, err := Simulate(smallCfg(1), independentProgram(4, 1000), DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(smallCfg(1), independentProgram(4, 1000), DetailedController{},
		WithPerturber(constantPerturber{extra: 100}))
	if err != nil {
		t.Fatal(err)
	}
	// Four serial tasks, 100 extra cycles each. Task boundaries shift the
	// pipeline and memory alignment, so allow a generous band around the
	// nominal 400 extra cycles.
	wantExtra := 4 * 100.0
	diff := noisy.Cycles - clean.Cycles
	if diff < wantExtra*0.75 || diff > wantExtra*1.25 {
		t.Errorf("perturbation added %v cycles, want about %v", diff, wantExtra)
	}
}

// runningProbe records the max Running value the controller observes.
type runningProbe struct {
	max int
}

func (r *runningProbe) TaskStart(si StartInfo) Decision {
	if si.Running > r.max {
		r.max = si.Running
	}
	return Detailed()
}
func (*runningProbe) TaskFinish(FinishInfo) {}

func TestRunningCountBounded(t *testing.T) {
	probe := &runningProbe{}
	p := independentProgram(20, 500)
	if _, err := Simulate(smallCfg(4), p, probe); err != nil {
		t.Fatal(err)
	}
	if probe.max < 2 || probe.max > 4 {
		t.Errorf("max running = %d, want in [2,4]", probe.max)
	}
}

func TestIPCOfType(t *testing.T) {
	p := independentProgram(6, 1000)
	res, err := Simulate(smallCfg(2), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	ipcs := res.IPCOfType(0)
	if len(ipcs) != 6 {
		t.Errorf("IPCOfType returned %d values, want 6", len(ipcs))
	}
	if got := res.IPCOfType(5); got != nil {
		t.Errorf("unknown type should yield nil, got %v", got)
	}
}

func TestNewEngineRejectsBadProgram(t *testing.T) {
	if _, err := NewEngine(smallCfg(1), &trace.Program{Name: "empty"}); err == nil {
		t.Error("empty program accepted")
	}
}

// sameResult compares every deterministic field of two results.
func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.TotalInstructions != b.TotalInstructions ||
		a.DetailedInstructions != b.DetailedInstructions ||
		a.DetailedTasks != b.DetailedTasks || a.FastTasks != b.FastTasks {
		t.Fatalf("headline results differ: %+v vs %+v", a, b)
	}
	if a.Mem != b.Mem {
		t.Fatalf("memory stats differ: %+v vs %+v", a.Mem, b.Mem)
	}
	for i := range a.PerInstance {
		if a.PerInstance[i] != b.PerInstance[i] {
			t.Fatalf("instance %d differs: %+v vs %+v", i, a.PerInstance[i], b.PerInstance[i])
		}
	}
}

func TestEngineRunWithoutResetFails(t *testing.T) {
	p := independentProgram(4, 500)
	e, err := NewEngine(smallCfg(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(DetailedController{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(DetailedController{}); !errors.Is(err, ErrFinished) {
		t.Fatalf("second Run without Reset: err = %v, want ErrFinished", err)
	}
	if err := e.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(DetailedController{}); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
}

// TestEngineResetReproducesFreshRun is the engine-reuse determinism
// contract: a reset engine must reproduce a fresh engine's result bit for
// bit — including when a perturber is installed (its state must rewind
// too) and when the program changes between runs.
func TestEngineResetReproducesFreshRun(t *testing.T) {
	p := independentProgram(12, 1500)
	fresh, err := Simulate(smallCfg(3), p, DetailedController{},
		WithPerturber(constantPerturber{extra: 50}))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(smallCfg(3), p, WithPerturber(constantPerturber{extra: 50}))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// A mixed-mode run first dirties every engine structure.
		if _, err := e.Run(alternatingController{ipc: 2}); err != nil {
			t.Fatal(err)
		}
		if err := e.Reset(nil); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(DetailedController{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fresh, res)
		if err := e.Reset(nil); err != nil {
			t.Fatal(err)
		}
	}

	// Resetting to a different program rebuilds graph and scheduler.
	chain := chainProgram(6, 500)
	freshChain, err := Simulate(smallCfg(3), chain, DetailedController{},
		WithPerturber(constantPerturber{extra: 50}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(chain); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, freshChain, res)
}

// TestEngineResetAfterCancel: a cancelled run leaves the engine
// resumable through Reset, with cursors recovered from mid-task cores.
func TestEngineResetAfterCancel(t *testing.T) {
	p := independentProgram(64, 5000)
	fresh, err := Simulate(smallCfg(4), p, DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(smallCfg(4), p)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from inside the run, so cores are abandoned mid-task and the
	// engine's pooled cursors must be recovered by Reset.
	ctx, cancel := context.WithCancel(context.Background())
	ctrl := &cancellingController{cancel: cancel, after: 10}
	if _, err := e.RunContext(ctx, ctrl); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v", err)
	}
	if err := e.Reset(nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, fresh, res)
}

// Property: random DAG programs complete under any controller mix; records
// are consistent (start <= end, per-mode counts add up, makespan equals the
// max end time, dependencies ordered).
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 3 + r.IntN(25)
		p := &trace.Program{Name: "q", Types: []trace.TypeInfo{{Name: "a"}, {Name: "b"}}}
		for i := 0; i < n; i++ {
			inst := trace.Instance{
				ID: int32(i), Type: trace.TypeID(r.IntN(2)), Seed: uint64(i) + seed,
				Segments: []trace.Segment{{
					N: 200 + int64(r.IntN(800)), MemRatio: 0.3 * r.Float64(),
					Pat: trace.PatRandom, Footprint: 1 << 14, DepDist: 1 + 6*r.Float64(),
				}},
			}
			for k := 0; k < r.IntN(2); k++ {
				inst.In = append(inst.In, uint64(r.IntN(6)))
			}
			for k := 0; k < r.IntN(2); k++ {
				inst.Out = append(inst.Out, uint64(r.IntN(6)))
			}
			p.Instances = append(p.Instances, inst)
		}
		cores := 1 + r.IntN(4)
		res, err := Simulate(smallCfg(cores), p, alternatingController{ipc: 0.5 + r.Float64()})
		if err != nil {
			return false
		}
		if res.DetailedTasks+res.FastTasks != n {
			return false
		}
		maxEnd := 0.0
		for _, rec := range res.PerInstance {
			if rec.End < rec.Start {
				return false
			}
			if rec.End > maxEnd {
				maxEnd = rec.End
			}
		}
		return math.Abs(maxEnd-res.Cycles) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
