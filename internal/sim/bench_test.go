package sim

import (
	"testing"

	"taskpoint/internal/trace"
)

// kernelProgram builds a scheduler- and memory-realistic workload for the
// kernel microbenchmarks: ntasks instances of instr instructions each, a
// light dependency lattice (every fourth task reads its predecessor's
// output), strided and random memory segments, and a store fraction that
// exercises the coherence directory.
func kernelProgram(ntasks int, instr int64) *trace.Program {
	p := &trace.Program{Name: "kernel", Types: []trace.TypeInfo{{Name: "stride"}, {Name: "rand"}}}
	for i := 0; i < ntasks; i++ {
		inst := trace.Instance{
			ID: int32(i), Type: trace.TypeID(i % 2), Seed: uint64(i + 1),
			Out: []uint64{uint64(i)},
		}
		if i%4 == 3 {
			inst.In = []uint64{uint64(i - 1)}
		}
		seg := trace.Segment{
			N: instr, MemRatio: 0.3, StoreFrac: 0.3, DepDist: 4,
			Base: uint64(i%8) << 24, Footprint: 1 << 18, Stride: 64,
		}
		if i%2 == 1 {
			seg.Pat = trace.PatRandom
		}
		inst.Segments = []trace.Segment{seg}
		p.Instances = append(p.Instances, inst)
	}
	return p
}

// benchSimulate measures full detailed simulations of prog on cfg,
// reporting simulated instructions per host second — the kernel
// throughput metric the perf gate tracks.
func benchSimulate(b *testing.B, cfg Config, prog *trace.Program, ctrl Controller) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg, prog, ctrl)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.DetailedInstructions
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(instr)/s, "instr/s")
	}
}

// BenchmarkKernelDetailedHP8 is the headline detailed-simulation
// microbenchmark: 8 high-performance cores, full detail, fresh engine per
// run (the campaign cold path).
func BenchmarkKernelDetailedHP8(b *testing.B) {
	benchSimulate(b, HighPerfConfig(8), kernelProgram(256, 4000), DetailedController{})
}

// BenchmarkKernelDetailedLP4 covers the shared-L2 low-power hierarchy,
// whose bank contention and coherence path differ from the HP config.
func BenchmarkKernelDetailedLP4(b *testing.B) {
	benchSimulate(b, LowPowerConfig(4), kernelProgram(256, 4000), DetailedController{})
}

// BenchmarkKernelMixed runs the sampled shape: half the instances
// detailed, half fast-forwarded, exercising both event kinds in the
// scheduler core loop.
func BenchmarkKernelMixed(b *testing.B) {
	benchSimulate(b, HighPerfConfig(8), kernelProgram(512, 2000), alternatingController{ipc: 1.5})
}

// BenchmarkKernelManyCores64 is scheduler-bound: 64 cores and many tiny
// tasks make the per-event core selection (idle lookup + next-event pick)
// the dominant cost.
func BenchmarkKernelManyCores64(b *testing.B) {
	benchSimulate(b, HighPerfConfig(64), kernelProgram(2048, 200), DetailedController{})
}

// BenchmarkKernelReuseHP8 is the steady-state campaign shape: one engine
// reset and rerun per iteration, the way the experiment engine reuses a
// simulation engine across the runs of a cell. Allocations per op are the
// true hot-loop budget (the result buffers only — no engine, cursor or
// generator construction).
func BenchmarkKernelReuseHP8(b *testing.B) {
	prog := kernelProgram(256, 4000)
	e, err := NewEngine(HighPerfConfig(8), prog)
	if err != nil {
		b.Fatal(err)
	}
	// One untimed warm-up run: first-run process overhead (pool pins,
	// lazily grown runtime structures) would otherwise amortize over the
	// few iterations a short benchtime yields and swamp the steady-state
	// allocs/op this benchmark gates.
	if _, err := e.Run(DetailedController{}); err != nil {
		b.Fatal(err)
	}
	if err := e.Reset(nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(DetailedController{})
		if err != nil {
			b.Fatal(err)
		}
		instr += res.DetailedInstructions
		if err := e.Reset(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(instr)/s, "instr/s")
	}
}
