package sim

import (
	"fmt"

	"taskpoint/internal/obs"
	"taskpoint/internal/trace"
)

// TimelineSpans renders the result's per-core task schedule as timeline
// spans for obs.WriteTimeline: one span per executed task instance,
// placed on the core (thread) that ran it, named by its task type and
// categorised by simulation mode — so an estimator violation caught by
// the fuzzer can be inspected visually in Perfetto. pid labels the
// process track (several results can share one timeline). Instances the
// run never executed (an interrupted simulation) are skipped.
func (r *Result) TimelineSpans(prog *trace.Program, pid int) []obs.TimelineSpan {
	spans := make([]obs.TimelineSpan, 0, len(r.PerInstance))
	for id := range r.PerInstance {
		rec := &r.PerInstance[id]
		if rec.End <= 0 && rec.Start <= 0 && rec.Instr == 0 {
			continue // never executed
		}
		name := fmt.Sprintf("type%d", rec.Type)
		if t := int(rec.Type); t >= 0 && t < len(prog.Types) && prog.Types[t].Name != "" {
			name = prog.Types[t].Name
		}
		dur := rec.End - rec.Start
		if dur < 0 {
			dur = 0
		}
		spans = append(spans, obs.TimelineSpan{
			Name:  name,
			Cat:   "task," + rec.Mode.String(),
			PID:   pid,
			TID:   rec.Thread,
			Start: int64(rec.Start),
			Dur:   int64(dur),
			Args: map[string]any{
				"instance": id,
				"instr":    rec.Instr,
				"ipc":      rec.IPC,
				"mode":     rec.Mode.String(),
			},
		})
	}
	return spans
}

// TimelineProcess builds the process track for TimelineSpans: one thread
// per core that executed at least one instance, named "core N".
func (r *Result) TimelineProcess(prog *trace.Program, pid int) obs.Process {
	threads := make(map[int]string)
	for id := range r.PerInstance {
		rec := &r.PerInstance[id]
		if rec.End <= 0 && rec.Start <= 0 && rec.Instr == 0 {
			continue
		}
		if _, ok := threads[rec.Thread]; !ok {
			threads[rec.Thread] = fmt.Sprintf("core %d", rec.Thread)
		}
	}
	return obs.Process{PID: pid, Name: prog.Name, Threads: threads}
}
