package sim

import "taskpoint/internal/obs"

// Kernel metrics, registered once in the default registry. The scheduler
// loop itself touches none of them — it accumulates plain locals and
// RunContext flushes a handful of atomic adds per run, so the steady-state
// path stays allocation-free and within the kernel-perf gate.
var (
	metricRuns          = obs.Default().Counter("sim.runs")
	metricEvents        = obs.Default().Counter("sim.events")
	metricInstrTotal    = obs.Default().Counter("sim.instr.total")
	metricInstrDetailed = obs.Default().Counter("sim.instr.detailed")
	metricHeapDepth     = obs.Default().Histogram("sim.heap.depth.max")
	metricInstrPerSec   = obs.Default().Gauge("sim.instr_per_sec")
)

// recordRunMetrics flushes one completed run's tallies to the registry.
func recordRunMetrics(res *Result) {
	metricRuns.Inc()
	metricEvents.Add(res.Events)
	metricInstrTotal.Add(res.TotalInstructions)
	metricInstrDetailed.Add(res.DetailedInstructions)
	metricHeapDepth.Observe(float64(res.MaxHeapDepth))
	if s := res.Wall.Seconds(); s > 0 {
		metricInstrPerSec.Set(float64(res.TotalInstructions) / s)
	}
}
