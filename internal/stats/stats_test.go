package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean([1,4]) = %v, want 2", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positive values = %v, want 0", got)
	}
	// Non-positive values are skipped, not zeroing the result.
	if got := GeoMean([]float64{-1, 9}); !almostEq(got, 9, 1e-12) {
		t.Errorf("GeoMean([-1,9]) = %v, want 9", got)
	}
}

func TestVarianceAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {10, 14},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) error = %v, want ErrEmpty", err)
	}
}

func TestPercentileClampsRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	lo, _ := Percentile(xs, -10)
	hi, _ := Percentile(xs, 200)
	if lo != 1 || hi != 3 {
		t.Errorf("clamped percentiles = %v, %v; want 1, 3", lo, hi)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestBoxOf(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	b, err := BoxOf(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 0 || b.Max != 100 || b.N != 101 {
		t.Errorf("Min/Max/N = %v/%v/%v", b.Min, b.Max, b.N)
	}
	if !almostEq(b.Median, 50, 1e-9) || !almostEq(b.Q1, 25, 1e-9) ||
		!almostEq(b.Q3, 75, 1e-9) || !almostEq(b.P5, 5, 1e-9) || !almostEq(b.P95, 95, 1e-9) {
		t.Errorf("quartiles wrong: %+v", b)
	}
	if _, err := BoxOf(nil); err != ErrEmpty {
		t.Errorf("BoxOf(nil) error = %v, want ErrEmpty", err)
	}
}

func TestWhiskerSpread(t *testing.T) {
	b := Box{P5: -3, P95: 7}
	if got := b.WhiskerSpread(); got != 7 {
		t.Errorf("WhiskerSpread = %v, want 7", got)
	}
	b = Box{P5: -9, P95: 2}
	if got := b.WhiskerSpread(); got != 9 {
		t.Errorf("WhiskerSpread = %v, want 9", got)
	}
}

func TestNormalizePct(t *testing.T) {
	out, err := NormalizePct([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-50, 0, 50}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-9) {
			t.Errorf("NormalizePct[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := NormalizePct(nil); err != ErrEmpty {
		t.Errorf("NormalizePct(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := NormalizePct([]float64{-1, 1}); err == nil {
		t.Error("NormalizePct with zero mean should fail")
	}
}

func TestAbsPctError(t *testing.T) {
	if got := AbsPctError(102, 100); !almostEq(got, 2, 1e-12) {
		t.Errorf("AbsPctError = %v, want 2", got)
	}
	if got := AbsPctError(98, 100); !almostEq(got, 2, 1e-12) {
		t.Errorf("AbsPctError = %v, want 2", got)
	}
	if got := AbsPctError(0, 0); got != 0 {
		t.Errorf("AbsPctError(0,0) = %v, want 0", got)
	}
	if got := AbsPctError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsPctError(1,0) = %v, want +Inf", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{3.5, -2, 0, 7, 7, 1.25, -0.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d, want %d", o.N(), len(xs))
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Online.Mean = %v, batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Online.Variance = %v, batch %v", o.Variance(), Variance(xs))
	}
}

func TestOnlineCoV(t *testing.T) {
	var o Online
	if o.CoV() != 0 {
		t.Error("CoV of empty accumulator should be 0")
	}
	o.Add(10)
	o.Add(10)
	if o.CoV() != 0 {
		t.Errorf("CoV of constant data = %v, want 0", o.CoV())
	}
}

// Property: Online accumulation agrees with batch formulas for random data.
func TestQuickOnlineAgreesWithBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 16
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEq(o.Mean(), Mean(xs), 1e-6*scale) &&
			almostEq(o.Variance(), Variance(xs), 1e-4*math.Max(1, Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		va, _ := Percentile(xs, a)
		vb, _ := Percentile(xs, b)
		mn, _ := Percentile(xs, 0)
		mx, _ := Percentile(xs, 100)
		return va <= vb+1e-9 && va >= mn-1e-9 && vb <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizePct output always has (approximately) zero mean.
func TestQuickNormalizeZeroMean(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		out, err := NormalizePct(xs)
		if err != nil {
			return false
		}
		return almostEq(Mean(out), 0, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: box statistics are ordered Min<=P5<=Q1<=Median<=Q3<=P95<=Max.
func TestQuickBoxOrdered(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		b, err := BoxOf(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.P5 && b.P5 <= b.Q1 && b.Q1 <= b.Median &&
			b.Median <= b.Q3 && b.Q3 <= b.P95 && b.P95 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineSampleVariance(t *testing.T) {
	var o Online
	if o.SampleVariance() != 0 {
		t.Error("empty accumulator should report 0 sample variance")
	}
	o.Add(2)
	if o.SampleVariance() != 0 {
		t.Error("single value should report 0 sample variance")
	}
	for _, x := range []float64{4, 4, 4, 5, 5, 7} {
		o.Add(x)
	}
	// Values {2,4,4,4,5,5,7}: mean 31/7, unbiased variance Σ(x-m)²/6.
	xs := []float64{2, 4, 4, 4, 5, 5, 7}
	m := Mean(xs)
	var want float64
	for _, x := range xs {
		want += (x - m) * (x - m)
	}
	want /= float64(len(xs) - 1)
	if got := o.SampleVariance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if popWant := want * 6 / 7; math.Abs(o.Variance()-popWant) > 1e-12 {
		t.Errorf("Variance = %v, want %v", o.Variance(), popWant)
	}
}
