// Package stats provides the descriptive statistics used throughout the
// TaskPoint evaluation: means, percentiles, box-plot summaries of per-task
// IPC variation (Figures 1 and 5 of the paper), and the execution-time
// error metric used in Figures 6-10.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped. Returns 0 if no positive values exist.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes the percentile of already-sorted data.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box summarises a distribution the way the paper's box plots do: the solid
// box spans the first to third quartile and the whiskers extend from the 5th
// to the 95th percentile. Values beyond the whiskers are outliers.
type Box struct {
	Min, P5, Q1, Median, Q3, P95, Max float64
	N                                 int
}

// BoxOf computes the box-plot summary of xs.
func BoxOf(xs []float64) (Box, error) {
	if len(xs) == 0 {
		return Box{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Box{
		Min:    sorted[0],
		P5:     percentileSorted(sorted, 5),
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}, nil
}

// WhiskerSpread returns the larger absolute deviation of the whiskers from
// zero, in the same unit as the data. For IPC-variation data normalised to
// per-type means and expressed in percent, a WhiskerSpread below 5 means the
// benchmark falls in the paper's "within ±5%" class.
func (b Box) WhiskerSpread() float64 {
	return math.Max(math.Abs(b.P5), math.Abs(b.P95))
}

// NormalizePct converts raw values to percent deviation from their mean:
// 100*(x/mean - 1). This is the per-task-type normalisation used in
// Figures 1 and 5. Returns ErrEmpty for empty input and an error if the
// mean is zero.
func NormalizePct(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	m := Mean(xs)
	if m == 0 {
		return nil, errors.New("stats: zero mean, cannot normalise")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * (x/m - 1)
	}
	return out, nil
}

// AbsPctError returns |measured-reference|/reference in percent. It is the
// execution-time error metric of the evaluation. Returns +Inf if reference
// is zero and measured is not.
func AbsPctError(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(measured-reference) / math.Abs(reference) * 100
}

// Online accumulates mean and variance incrementally (Welford's algorithm).
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of accumulated values.
func (o *Online) N() int { return o.n }

// Mean returns the current mean, or 0 if no values were added.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the current population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVariance returns the unbiased (n-1 denominator) sample variance,
// for estimating a population's variance from a sample, or 0 if fewer
// than two values were added. Compare Variance, the population variance.
func (o *Online) SampleVariance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the current population standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Variance()) }

// CoV returns the coefficient of variation (stddev/mean), or 0 if the mean
// is zero.
func (o *Online) CoV() float64 {
	if o.mean == 0 {
		return 0
	}
	return o.Stddev() / math.Abs(o.mean)
}
