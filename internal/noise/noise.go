// Package noise models the system noise of native execution. The paper's
// Figure 1 measures IPC variation on a real SandyBridge-EP machine, where
// two consecutive runs differ because of OS interrupts, frequency drift
// and scheduler jitter (§I: "due to system noise and variation in
// scheduling decisions"). We do not have that machine, so the Figure 1
// experiment runs the detailed simulator with this perturber installed:
// every task instance is stretched by a small multiplicative jitter, a
// slowly drifting per-thread bias, and occasional fixed-cost interrupt
// events drawn from a Poisson process over the task's duration.
package noise

import (
	"math"
	"math/rand/v2"
)

// Config parameterises the noise model.
type Config struct {
	// JitterStd is the standard deviation of the per-task multiplicative
	// slowdown (cache/TLB/alignment luck of the draw).
	JitterStd float64
	// DriftMax bounds the slowly varying per-thread bias (frequency
	// governor, shared-machine interference).
	DriftMax float64
	// DriftStep is the per-task random-walk step of the drift.
	DriftStep float64
	// InterruptMeanGap is the mean number of cycles between OS
	// interrupts on one thread.
	InterruptMeanGap float64
	// InterruptCost is the cycle cost of servicing one interrupt.
	InterruptCost float64
}

// DefaultConfig returns noise magnitudes producing the few-percent IPC
// variation Figure 1 shows for regular benchmarks.
func DefaultConfig() Config {
	return Config{
		JitterStd:        0.008,
		DriftMax:         0.005,
		DriftStep:        0.001,
		InterruptMeanGap: 150000,
		InterruptCost:    1000,
	}
}

// Model implements sim.Perturber. It is deterministic for a given seed.
type Model struct {
	cfg   Config
	seed  uint64
	src   rand.PCG
	rng   *rand.Rand
	drift map[int]float64
}

// New builds a noise model with the given seed.
func New(cfg Config, seed uint64) *Model {
	m := &Model{cfg: cfg, seed: seed, drift: make(map[int]float64)}
	m.src.Seed(seed, 0xa0761d6478bd642f)
	m.rng = rand.New(&m.src)
	return m
}

// Reset restores the model to its initial state, so a reused simulation
// engine (sim.Engine.Reset) observes the exact noise stream a fresh
// model would produce.
func (m *Model) Reset() {
	m.src.Seed(m.seed, 0xa0761d6478bd642f)
	clear(m.drift)
}

// Perturb returns the extra cycles system noise adds to a task of duration
// dur on the given thread. The result is always non-negative.
func (m *Model) Perturb(thread int, start, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	// Per-thread drift: bounded random walk in [0, DriftMax].
	d := m.drift[thread]
	d += m.cfg.DriftStep * (2*m.rng.Float64() - 1)
	if d < 0 {
		d = 0
	}
	if d > m.cfg.DriftMax {
		d = m.cfg.DriftMax
	}
	m.drift[thread] = d

	// Multiplicative jitter, truncated at zero slowdown.
	eta := d + m.cfg.JitterStd*math.Abs(m.rng.NormFloat64())
	extra := dur * eta

	// Poisson interrupt arrivals over the task's duration.
	if m.cfg.InterruptMeanGap > 0 && m.cfg.InterruptCost > 0 {
		lambda := dur / m.cfg.InterruptMeanGap
		extra += float64(m.poisson(lambda)) * m.cfg.InterruptCost
	}
	return extra
}

// poisson draws from a Poisson distribution with mean lambda (Knuth's
// algorithm; lambda is small here — tasks last far less than the mean
// interrupt gap).
func (m *Model) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= m.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological lambda
			return k
		}
	}
}
