package noise

import (
	"testing"
	"testing/quick"

	"taskpoint/internal/sim"
)

// The model must satisfy the simulator's Perturber interface.
var _ sim.Perturber = (*Model)(nil)

func TestPerturbNonNegative(t *testing.T) {
	m := New(DefaultConfig(), 1)
	for i := 0; i < 1000; i++ {
		if extra := m.Perturb(i%4, float64(i)*100, 5000); extra < 0 {
			t.Fatalf("negative perturbation %v", extra)
		}
	}
}

func TestPerturbZeroDuration(t *testing.T) {
	m := New(DefaultConfig(), 1)
	if extra := m.Perturb(0, 0, 0); extra != 0 {
		t.Errorf("zero-duration task perturbed by %v", extra)
	}
	if extra := m.Perturb(0, 0, -5); extra != 0 {
		t.Errorf("negative-duration task perturbed by %v", extra)
	}
}

func TestPerturbMagnitude(t *testing.T) {
	// Average relative slowdown should be small (a few percent), in line
	// with the paper's native variation for regular benchmarks.
	m := New(DefaultConfig(), 7)
	dur := 5000.0
	total := 0.0
	n := 5000
	for i := 0; i < n; i++ {
		total += m.Perturb(i%8, float64(i)*dur, dur)
	}
	meanRel := total / float64(n) / dur
	if meanRel <= 0 {
		t.Fatal("noise added nothing")
	}
	if meanRel > 0.15 {
		t.Errorf("mean relative slowdown %.3f too large for a native machine", meanRel)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func(seed uint64) []float64 {
		m := New(DefaultConfig(), seed)
		out := make([]float64, 100)
		for i := range out {
			out[i] = m.Perturb(i%2, float64(i), 3000)
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestInterruptsDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptMeanGap = 0
	cfg.JitterStd = 0
	cfg.DriftMax = 0
	cfg.DriftStep = 0
	m := New(cfg, 1)
	if extra := m.Perturb(0, 0, 1e6); extra != 0 {
		t.Errorf("all-zero config should add no noise, got %v", extra)
	}
}

func TestPoissonMean(t *testing.T) {
	m := New(DefaultConfig(), 3)
	lambda := 2.5
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += m.poisson(lambda)
	}
	mean := float64(sum) / float64(n)
	if mean < 2.2 || mean > 2.8 {
		t.Errorf("poisson(%v) sample mean = %v", lambda, mean)
	}
	if m.poisson(0) != 0 || m.poisson(-1) != 0 {
		t.Error("poisson of non-positive lambda should be 0")
	}
}

// Property: perturbation is finite and bounded relative to duration for
// any thread/duration combination.
func TestQuickPerturbBounded(t *testing.T) {
	m := New(DefaultConfig(), 11)
	f := func(thread uint8, durRaw uint32) bool {
		dur := float64(durRaw%1000000) + 1
		extra := m.Perturb(int(thread%64), 0, dur)
		// Bound: full drift + 6 sigma jitter + generous interrupt count.
		bound := dur*(DefaultConfig().DriftMax+6*DefaultConfig().JitterStd) +
			(10+6*dur/DefaultConfig().InterruptMeanGap)*DefaultConfig().InterruptCost
		return extra >= 0 && extra < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
