package core

import (
	"testing"

	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// scriptedBudget is a minimal BudgetedPolicy: it forces detail on a fixed
// set of instance IDs, records every observation, and supplies no IPC
// estimate of its own.
type scriptedBudget struct {
	force    map[int32]bool
	resets   int
	observed map[int32]SampleKind
}

func (b *scriptedBudget) Name() string                 { return "scripted" }
func (b *scriptedBudget) ShouldResample(_, _ int) bool { return false }
func (b *scriptedBudget) WantDetailed(si sim.StartInfo) bool {
	return b.force[si.Instance.ID]
}
func (b *scriptedBudget) Observe(fi sim.FinishInfo, kind SampleKind) {
	b.observed[fi.Instance.ID] = kind
}
func (b *scriptedBudget) FastIPC(sim.StartInfo) (float64, bool) { return 0, false }
func (b *scriptedBudget) ResetRun() {
	b.resets++
	b.observed = map[int32]SampleKind{}
}

// drive pushes one instance through the sampler, reporting measuredIPC
// for detailed decisions, and returns the decision.
func drive(s *Sampler, id int, typ trace.TypeID, measuredIPC float64) sim.Decision {
	in := makeSizedInst(id, typ, 1000)
	dec := s.TaskStart(sim.StartInfo{Thread: 0, Instance: in, Now: 0, Running: 1})
	ipc := measuredIPC
	if dec.Mode == sim.ModeFast {
		ipc = dec.IPC
	}
	s.TaskFinish(sim.FinishInfo{Thread: 0, Instance: in, Start: 0, End: 1000 / ipc, Mode: dec.Mode, IPC: ipc})
	return dec
}

func TestBudgetedPolicyDirectedSamples(t *testing.T) {
	pol := &scriptedBudget{force: map[int32]bool{3: true, 5: true}}
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 0
	s := MustNew(p, pol)
	if pol.resets != 1 {
		t.Fatalf("core.New reset the policy %d times, want 1", pol.resets)
	}

	drive(s, 0, 0, 2.0) // sampling phase: fills the history, transition
	if dec := drive(s, 1, 0, 0); dec.Mode != sim.ModeFast {
		t.Fatalf("instance 1 = %+v, want fast", dec)
	}
	// Instance 3 is forced: detailed without leaving the fast phase.
	if dec := drive(s, 3, 0, 4.0); dec.Mode != sim.ModeDetailed {
		t.Fatalf("directed instance 3 = %+v, want detailed", dec)
	}
	// Still in fast phase: the next undirected instance fast-forwards,
	// now at the directed sample's refreshed IPC (H=1).
	if dec := drive(s, 4, 0, 0); dec.Mode != sim.ModeFast || dec.IPC != 4.0 {
		t.Fatalf("instance 4 = %+v, want fast at the directed IPC 4.0", dec)
	}

	st := s.Stats()
	if st.DirectedStarted != 1 {
		t.Errorf("DirectedStarted = %d, want 1", st.DirectedStarted)
	}
	if st.Resamples != 0 {
		t.Errorf("directed sampling caused %d resamples", st.Resamples)
	}
	// Observation kinds: 0 was a valid sampling-phase measurement (W=0),
	// 1 fast, 3 directed.
	if pol.observed[0] != KindValid || pol.observed[1] != KindFast || pol.observed[3] != KindDirected {
		t.Errorf("observed kinds = %v", pol.observed)
	}
}

// fixedIPCBudget always offers its own fast IPC estimate.
type fixedIPCBudget struct {
	scriptedBudget
	ipc float64
}

func (b *fixedIPCBudget) FastIPC(sim.StartInfo) (float64, bool) { return b.ipc, true }

func TestBudgetedPolicyFastIPCOverridesHistory(t *testing.T) {
	pol := &fixedIPCBudget{ipc: 7.5}
	pol.force = map[int32]bool{}
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 0
	s := MustNew(p, pol)
	drive(s, 0, 0, 2.0) // history holds 2.0; policy says 7.5
	if dec := drive(s, 1, 0, 0); dec.Mode != sim.ModeFast || dec.IPC != 7.5 {
		t.Fatalf("decision %+v, want fast at the policy's 7.5", dec)
	}
}

func TestWarmupObservedAsWarmup(t *testing.T) {
	pol := &scriptedBudget{force: map[int32]bool{}}
	p := DefaultParams()
	p.W = 1 // first instance per thread is warm-up
	s := MustNew(p, pol)
	drive(s, 0, 0, 2.0)
	if pol.observed[0] != KindWarmup {
		t.Errorf("warm-up instance observed as %v, want KindWarmup", pol.observed[0])
	}
}

// TestDirectedStraddlingResampleDoesNotPolluteHistory: a directed sample
// in flight when a resample clears the valid histories must not re-seed
// them with a measurement from the discarded regime.
func TestDirectedStraddlingResampleDoesNotPolluteHistory(t *testing.T) {
	pol := &scriptedBudget{force: map[int32]bool{2: true}}
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 0
	s := MustNew(p, pol)

	drive(s, 0, 0, 2.0) // sample type 0, transition to fast
	if s.phase != phaseFast {
		t.Fatal("setup: not in fast phase")
	}
	// Thread 0 starts the directed sample of type 0 but does not finish.
	in2 := makeSizedInst(2, 0, 1000)
	if dec := s.TaskStart(sim.StartInfo{Thread: 0, Instance: in2, Running: 2}); dec.Mode != sim.ModeDetailed {
		t.Fatalf("directed start = %+v, want detailed", dec)
	}
	// Thread 1 starts an unknown type: resample clears valid histories.
	in3 := makeSizedInst(3, 1, 1000)
	if dec := s.TaskStart(sim.StartInfo{Thread: 1, Instance: in3, Running: 2}); dec.Mode != sim.ModeDetailed {
		t.Fatalf("new-type start = %+v, want detailed via resample", dec)
	}
	if s.Stats().ResamplesNewType != 1 {
		t.Fatalf("setup: expected a new-type resample, got %+v", s.Stats())
	}
	// The straddling directed sample finishes now, in the new regime.
	s.TaskFinish(sim.FinishInfo{Thread: 0, Instance: in2, Start: 0, End: 100, Mode: sim.ModeDetailed, IPC: 10})
	if got := s.typeState(typeKey{typ: 0}).valid.Len(); got != 0 {
		t.Errorf("straddling directed sample re-seeded the cleared valid history (len %d)", got)
	}
	// It still reaches the budgeted policy as an observation.
	if pol.observed[2] != KindDirected {
		t.Errorf("straddling sample observed as %v, want KindDirected", pol.observed[2])
	}
}
