package core

import "testing"

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"lazy", "lazy"},
		{" lazy ", "lazy"},
		{"periodic(250)", "periodic(250)"},
		{"periodic:1000", "periodic(1000)"},
		{"periodic( 42 )", "periodic(42)"},
	}
	for _, tc := range cases {
		p, err := ParsePolicy(tc.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.in, err)
			continue
		}
		if p.Name() != tc.want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", tc.in, p.Name(), tc.want)
		}
	}
	for _, bad := range []string{"", "eager", "periodic", "periodic()", "periodic(0)", "periodic:-5", "periodic(x)"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q): expected error", bad)
		}
	}
}

func TestParsePolicyRoundTripsName(t *testing.T) {
	for _, p := range StandardPolicies() {
		back, err := ParsePolicy(p.Name())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.Name(), err)
		}
		if back.Name() != p.Name() {
			t.Errorf("round trip changed %q to %q", p.Name(), back.Name())
		}
	}
}
