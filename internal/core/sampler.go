// Package core implements TaskPoint, the paper's contribution: sampled
// simulation of dynamically scheduled task-based programs. Task instances
// are the sampling unit. A small number of instances per task type is
// simulated in detail to warm micro-architectural state and measure IPC
// samples; the remaining instances are fast-forwarded at the mean IPC of
// their type's sample history, so each thread advances at a rate matching
// the task type it is executing (paper §III).
//
// The Sampler implements sim.Controller and works with any simulator that
// offers a detailed mode and a fixed-IPC fast mode — the paper's two
// requirements (§III-A).
package core

import (
	"fmt"
	"math"
	"math/bits"

	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// Params are TaskPoint's model parameters (paper §V-A).
type Params struct {
	// W is the number of task instances each thread simulates in detail
	// for warm-up at simulation start. The paper selects W=2.
	W int
	// H is the sample history size per task type. The paper selects H=4.
	H int
	// RareCutoff ends the sampling phase early: when every active
	// thread has started RareCutoff consecutive instances without
	// encountering a type whose valid history is not yet full, sampling
	// is cut off (paper uses 5).
	RareCutoff int
	// ResampleWarmup is the number of detailed instances per thread
	// that re-warm stale micro-architectural state before resampling
	// measurements become valid (paper: one per thread).
	ResampleWarmup int
	// ConcurrencyTolerance is the relative change in the number of
	// threads participating in task execution that triggers resampling
	// (paper Fig 4a names the trigger; the threshold is this
	// implementation's documented choice).
	ConcurrencyTolerance float64
	// ConcurrencyPatience is the number of consecutive out-of-tolerance
	// task starts required before the parallelism trigger fires. It
	// absorbs momentary serial tasks (a convergence check between
	// parallel phases) while still catching sustained changes like a
	// shrinking reduction tree.
	ConcurrencyPatience int
	// SizeClasses enables the paper's future-work extension (§V-B):
	// instances of a task type are clustered into classes of similar
	// dynamic instruction count (power-of-four buckets) and each class
	// keeps its own sample histories. This counters the sampling bias of
	// input-dependent types whose IPC correlates with instance size
	// (dedup, freqmine). Off by default: the paper's evaluation does not
	// use it.
	SizeClasses bool
}

// DefaultParams returns the parameter values the paper's sensitivity
// analysis selects: W=2, H=4, rare-type cut-off 5, one warm-up instance
// per thread before resampling.
func DefaultParams() Params {
	return Params{
		W:                    2,
		H:                    4,
		RareCutoff:           5,
		ResampleWarmup:       1,
		ConcurrencyTolerance: 0.25,
		ConcurrencyPatience:  2,
	}
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.W < 0:
		return fmt.Errorf("core: W=%d must be >= 0", p.W)
	case p.H < 1:
		return fmt.Errorf("core: H=%d must be >= 1", p.H)
	case p.RareCutoff < 1:
		return fmt.Errorf("core: rare cutoff %d must be >= 1", p.RareCutoff)
	case p.ResampleWarmup < 0:
		return fmt.Errorf("core: resample warmup %d must be >= 0", p.ResampleWarmup)
	case p.ConcurrencyTolerance <= 0:
		return fmt.Errorf("core: concurrency tolerance %v must be > 0", p.ConcurrencyTolerance)
	case p.ConcurrencyPatience < 1:
		return fmt.Errorf("core: concurrency patience %d must be >= 1", p.ConcurrencyPatience)
	}
	return nil
}

// phase is the global sampling state.
type phase uint8

const (
	// phaseSampling covers initial warm-up, re-warm-up and sample
	// measurement: every starting instance is simulated in detail.
	phaseSampling phase = iota
	// phaseFast fast-forwards every starting instance at its type's
	// history IPC.
	phaseFast
)

// Stats reports what the sampler did during a run.
type Stats struct {
	// DetailedStarted and FastStarted count instances per chosen mode.
	DetailedStarted, FastStarted int
	// ValidSamples counts detailed instances whose IPC entered a valid
	// history.
	ValidSamples int
	// Transitions counts sampling-to-fast transitions.
	Transitions int
	// Resamples counts fast-to-sampling transitions, by trigger.
	Resamples            int
	ResamplesPeriodic    int
	ResamplesNewType     int
	ResamplesParallelism int
	// DirectedStarted counts instances a BudgetedPolicy forced into
	// detailed mode during the fast phase (also counted in
	// DetailedStarted).
	DirectedStarted int
}

// typeState is the per-task-type sampling state.
type typeState struct {
	valid *History // samples measured after warm-up (paper: "history of valid samples")
	all   *History // every detailed sample (paper: "history of all samples")
	seen  bool
}

// threadState is the per-thread sampling state.
type threadState struct {
	active       bool // started at least one instance in current sampling phase
	detDone      int  // detailed instances completed in current sampling phase
	noRareStreak int  // consecutive starts of fully sampled types
	fastRetired  int  // fast instances retired since last sampling
	curValid     bool // current instance counts as a valid sample
	curPhaseSeq  int  // phase sequence at current instance start
	curDirected  bool // current instance is a budget-directed sample
}

// Sampler is the TaskPoint controller: it decides per task instance
// whether to simulate it in detailed or fast mode and maintains the IPC
// histories that drive accurate fast-forwarding.
type Sampler struct {
	params   Params
	policy   Policy
	budgeted BudgetedPolicy // non-nil when policy is a BudgetedPolicy

	phase      phase
	phaseSeq   int // incremented at every phase change
	warmupNeed int // per-thread detailed completions before samples are valid

	types   map[typeKey]*typeState
	threads map[int]*threadState

	// concurrency reference recorded during sampling (mean of Running
	// observed at valid sample starts).
	concSum, concN float64
	refConcurrency float64
	concBreaches   int

	stats Stats

	// rec, when non-nil, receives phase-transition events tagged with
	// cell (the experiment cell's key). The nil default costs one branch
	// per transition — transitions, not task starts, so the hot path is
	// untouched.
	rec  *obs.Recorder
	cell string
}

var _ sim.Controller = (*Sampler)(nil)

// New creates a sampler with the given parameters and resampling policy.
// Policies implementing BudgetedPolicy are consulted per task start for
// directed samples; stateful policies exposing ResetRun() are reset here so
// one policy value can serve consecutive runs.
func New(params Params, policy Policy) (*Sampler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("core: nil policy")
	}
	if rp, ok := policy.(interface{ ResetRun() }); ok {
		rp.ResetRun()
	}
	s := &Sampler{
		params:     params,
		policy:     policy,
		phase:      phaseSampling,
		warmupNeed: params.W,
		types:      make(map[typeKey]*typeState),
		threads:    make(map[int]*threadState),
	}
	if bp, ok := policy.(BudgetedPolicy); ok {
		s.budgeted = bp
	}
	return s, nil
}

// MustNew is New for callers with statically valid parameters.
func MustNew(params Params, policy Policy) *Sampler {
	s, err := New(params, policy)
	if err != nil {
		panic(err)
	}
	return s
}

// Stats returns what the sampler did so far.
func (s *Sampler) Stats() Stats { return s.stats }

// SetTrace attaches a flight recorder for phase-transition events
// (sampling→fast, resamples with their trigger), tagging each event with
// cell — the experiment cell's key. A nil recorder disables tracing.
func (s *Sampler) SetTrace(rec *obs.Recorder, cell string) {
	s.rec = rec
	s.cell = cell
}

// Policy returns the resampling policy in use.
func (s *Sampler) Policy() Policy { return s.policy }

// typeKey identifies a sampling unit: a task type, refined by a size
// class when the SizeClasses extension is enabled.
type typeKey struct {
	typ   trace.TypeID
	class uint8
}

// SizeClass buckets dynamic instruction counts into powers of four, so
// instances whose sizes differ by orders of magnitude (freqmine's
// mine_subtree spans ~120x) land in separate classes while ordinary
// size jitter does not split a type. The strata package shares these
// buckets so its strata align with the sampler's per-class histories.
func SizeClass(instr int64) uint8 {
	if instr <= 0 {
		return 0
	}
	return uint8(bits.Len64(uint64(instr)) / 2)
}

func (s *Sampler) keyFor(inst *trace.Instance) typeKey {
	k := typeKey{typ: inst.Type}
	if s.params.SizeClasses {
		k.class = SizeClass(inst.Instructions())
	}
	return k
}

func (s *Sampler) typeState(k typeKey) *typeState {
	ts, ok := s.types[k]
	if !ok {
		ts = &typeState{
			valid: NewHistory(s.params.H),
			all:   NewHistory(s.params.H),
		}
		s.types[k] = ts
	}
	return ts
}

func (s *Sampler) threadState(t int) *threadState {
	th, ok := s.threads[t]
	if !ok {
		th = &threadState{}
		s.threads[t] = th
	}
	return th
}

// TaskStart implements sim.Controller.
func (s *Sampler) TaskStart(si sim.StartInfo) sim.Decision {
	ts := s.typeState(s.keyFor(si.Instance))
	ts.seen = true
	th := s.threadState(si.Thread)

	// A budgeted policy sees every start; its verdict only matters in
	// fast phase (the sampling phase simulates everything in detail).
	wantDirected := false
	if s.budgeted != nil {
		wantDirected = s.budgeted.WantDetailed(si)
	}

	if s.phase == phaseFast {
		// Parallelism change invalidates the samples (paper Fig 4a).
		// A sustained change is required (patience) so that a single
		// serial task between parallel phases does not thrash.
		if s.refConcurrency > 0 {
			diff := math.Abs(float64(si.Running) - s.refConcurrency)
			if diff > math.Max(1, s.params.ConcurrencyTolerance*s.refConcurrency) {
				s.concBreaches++
				if s.concBreaches >= s.params.ConcurrencyPatience {
					s.resample(&s.stats.ResamplesParallelism, "parallelism")
				}
			} else {
				s.concBreaches = 0
			}
		}
	}
	if s.phase == phaseFast {
		if wantDirected {
			// The budget demands a sample of this instance's stratum:
			// simulate it in detail without leaving the fast phase
			// (directed sample).
			return s.startDirected(th)
		}
		// A budgeted policy's stratum estimate takes precedence over
		// the windowed histories.
		if s.budgeted != nil {
			if ipc, ok := s.budgeted.FastIPC(si); ok && ipc > 0 {
				return s.startFast(th, ipc)
			}
		}
		// Fast-forward at the type's sample-history IPC; fall back to
		// the history of all samples for rare types (paper §III-B).
		switch {
		case ts.valid.Len() > 0:
			return s.startFast(th, ts.valid.Mean())
		case ts.all.Len() > 0:
			return s.startFast(th, ts.all.Mean())
		default:
			// First instance of a previously unknown task type: its
			// history is empty, fast simulation is impossible, so
			// resample (paper Fig 4b).
			s.resample(&s.stats.ResamplesNewType, "new-type")
		}
	}

	// Sampling phase: detailed simulation.
	th.active = true
	th.curDirected = false
	th.curPhaseSeq = s.phaseSeq
	th.curValid = th.detDone >= s.warmupNeed
	if th.curValid {
		s.concSum += float64(si.Running)
		s.concN++
		// Rare-type cut-off bookkeeping: a start of a type whose valid
		// history is already full extends the streak; anything else
		// resets it (paper: "5 task instances without encountering an
		// instance of a previously observed rare task type").
		if ts.valid.Full() {
			th.noRareStreak++
		} else {
			th.noRareStreak = 0
		}
		s.maybeFinishSampling()
	}
	s.stats.DetailedStarted++
	return sim.Detailed()
}

func (s *Sampler) startFast(th *threadState, ipc float64) sim.Decision {
	th.curDirected = false
	th.curPhaseSeq = s.phaseSeq
	s.stats.FastStarted++
	return sim.Fast(ipc)
}

// startDirected runs one instance in detailed mode during the fast phase
// on a BudgetedPolicy's demand. The global phase is untouched: no
// histories are cleared and no re-warm-up is required; the measurement
// refreshes the type's histories when it completes.
func (s *Sampler) startDirected(th *threadState) sim.Decision {
	th.curDirected = true
	th.curValid = false
	th.curPhaseSeq = s.phaseSeq
	s.stats.DetailedStarted++
	s.stats.DirectedStarted++
	return sim.Detailed()
}

// TaskFinish implements sim.Controller.
func (s *Sampler) TaskFinish(fi sim.FinishInfo) {
	th := s.threadState(fi.Thread)
	kind := KindFast
	if fi.Mode == sim.ModeDetailed {
		kind = KindWarmup
	}
	if s.budgeted != nil {
		// Every finish is observed, whichever mode it ran in, so the
		// policy's population counts are exact.
		defer func() { s.budgeted.Observe(fi, kind) }()
	}
	if fi.Mode == sim.ModeFast {
		// Count toward the policy's period only while still in fast
		// phase (instances straddling a resample do not).
		if s.phase == phaseFast && th.curPhaseSeq == s.phaseSeq {
			th.fastRetired++
			if s.policy.ShouldResample(fi.Thread, th.fastRetired) {
				s.resample(&s.stats.ResamplesPeriodic, "periodic")
			}
		}
		return
	}

	// Detailed instance: always feeds the history of all samples.
	ts := s.typeState(s.keyFor(fi.Instance))
	ts.all.Push(fi.IPC)

	if th.curDirected {
		// A directed sample is a fresh measurement of its type: it also
		// refreshes the valid history, so subsequent fast-forwarding of
		// the type tracks the budget-driven measurements — unless a
		// resample intervened while it ran: the cleared histories must
		// not be re-seeded with a measurement from the discarded regime.
		th.curDirected = false
		kind = KindDirected
		if th.curPhaseSeq == s.phaseSeq {
			ts.valid.Push(fi.IPC)
		}
		return
	}

	if s.phase == phaseSampling && th.curPhaseSeq == s.phaseSeq {
		th.detDone++
		if th.curValid {
			// Valid sample (paper §III-B, "Sampling").
			kind = KindValid
			ts.valid.Push(fi.IPC)
			s.stats.ValidSamples++
			s.maybeFinishSampling()
		}
	}
	// Instances finishing after the transition to fast mode are only
	// added to the history of all samples (paper §III-B) — nothing more
	// to do for them.
}

// maybeFinishSampling transitions to fast mode when either every seen
// type's valid history is full, or the rare-type cut-off fires.
func (s *Sampler) maybeFinishSampling() {
	if s.phase != phaseSampling {
		return
	}
	if s.stats.ValidSamples == 0 {
		return
	}
	allFull := true
	for _, ts := range s.types {
		if ts.seen && !ts.valid.Full() {
			allFull = false
			break
		}
	}
	if !allFull {
		// Rare-type cut-off: every active thread must have a streak of
		// RareCutoff starts without hitting an unfilled type.
		active := 0
		for _, th := range s.threads {
			if !th.active {
				continue
			}
			active++
			if th.noRareStreak < s.params.RareCutoff {
				return
			}
		}
		if active == 0 {
			return
		}
	}
	// Transition to fast-forward mode.
	s.phase = phaseFast
	s.phaseSeq++
	s.stats.Transitions++
	if s.concN > 0 {
		s.refConcurrency = s.concSum / s.concN
	}
	for _, th := range s.threads {
		th.fastRetired = 0
	}
	if s.rec != nil {
		s.rec.Emit("sampler.fast",
			obs.String("cell", s.cell),
			obs.Int("valid_samples", s.stats.ValidSamples),
			obs.Int("transitions", s.stats.Transitions))
	}
}

// resample switches back to sampling: valid histories are discarded and
// every thread re-warms with ResampleWarmup detailed instances before its
// measurements count (paper §III-B/C). trigger names what fired, for the
// flight recorder.
func (s *Sampler) resample(reason *int, trigger string) {
	if s.phase != phaseFast {
		return
	}
	if s.rec != nil {
		s.rec.Emit("sampler.resample",
			obs.String("cell", s.cell),
			obs.String("trigger", trigger),
			obs.Int("resamples", s.stats.Resamples+1))
	}
	s.phase = phaseSampling
	s.phaseSeq++
	s.stats.Resamples++
	*reason++
	s.warmupNeed = s.params.ResampleWarmup
	for _, ts := range s.types {
		ts.valid.Clear()
	}
	for _, th := range s.threads {
		th.active = false
		th.detDone = 0
		th.noRareStreak = 0
		th.fastRetired = 0
	}
	s.concSum, s.concN = 0, 0
	s.refConcurrency = 0
	s.concBreaches = 0
}
