package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

func makeInst(id int, typ trace.TypeID) *trace.Instance {
	return &trace.Instance{
		ID: int32(id), Type: typ, Seed: uint64(id + 1),
		Segments: []trace.Segment{{N: 1000, DepDist: 2}},
	}
}

// driver drives a Sampler through start/finish pairs by hand, playing the
// simulator's role with scripted measured IPCs.
type driver struct {
	s   *Sampler
	id  int
	now float64
}

// run starts and immediately finishes one instance on the given thread,
// reporting measuredIPC if the sampler chose detailed mode. It returns the
// decision.
func (d *driver) run(thread int, typ trace.TypeID, running int, measuredIPC float64) sim.Decision {
	inst := makeInst(d.id, typ)
	d.id++
	dec := d.s.TaskStart(sim.StartInfo{Thread: thread, Instance: inst, Now: d.now, Running: running})
	ipc := measuredIPC
	if dec.Mode == sim.ModeFast {
		ipc = dec.IPC
	}
	dur := float64(inst.Instructions()) / ipc
	d.s.TaskFinish(sim.FinishInfo{
		Thread: thread, Instance: inst,
		Start: d.now, End: d.now + dur,
		Mode: dec.Mode, IPC: ipc,
	})
	d.now += dur
	return dec
}

func TestParamsValidate(t *testing.T) {
	def := DefaultParams()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{W: -1, H: 4, RareCutoff: 5, ResampleWarmup: 1, ConcurrencyTolerance: 0.25},
		{W: 2, H: 0, RareCutoff: 5, ResampleWarmup: 1, ConcurrencyTolerance: 0.25},
		{W: 2, H: 4, RareCutoff: 0, ResampleWarmup: 1, ConcurrencyTolerance: 0.25},
		{W: 2, H: 4, RareCutoff: 5, ResampleWarmup: -1, ConcurrencyTolerance: 0.25},
		{W: 2, H: 4, RareCutoff: 5, ResampleWarmup: 1, ConcurrencyTolerance: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := New(DefaultParams(), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestWarmupThenSampleThenFast(t *testing.T) {
	p := DefaultParams()
	p.W = 2
	p.H = 2
	s := MustNew(p, Lazy{})
	d := &driver{s: s}

	// Two warm-up instances (IPC 1.0 must NOT enter the valid history),
	// then two valid samples at IPC 2.0, then fast mode.
	for i := 0; i < 2; i++ {
		if dec := d.run(0, 0, 1, 1.0); dec.Mode != sim.ModeDetailed {
			t.Fatalf("warmup instance %d not detailed", i)
		}
	}
	for i := 0; i < 2; i++ {
		if dec := d.run(0, 0, 1, 2.0); dec.Mode != sim.ModeDetailed {
			t.Fatalf("sample instance %d not detailed", i)
		}
	}
	dec := d.run(0, 0, 1, 0)
	if dec.Mode != sim.ModeFast {
		t.Fatalf("expected fast mode after history filled, got %v", dec.Mode)
	}
	if math.Abs(dec.IPC-2.0) > 1e-12 {
		t.Errorf("fast IPC = %v, want 2.0 (warmup samples excluded)", dec.IPC)
	}
	st := s.Stats()
	if st.ValidSamples != 2 || st.Transitions != 1 || st.DetailedStarted != 4 || st.FastStarted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestZeroWarmupAllValid(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	if dec := d.run(0, 0, 1, 3.0); dec.Mode != sim.ModeDetailed {
		t.Fatal("first instance should be detailed")
	}
	dec := d.run(0, 0, 1, 0)
	if dec.Mode != sim.ModeFast || dec.IPC != 3.0 {
		t.Errorf("decision = %+v, want fast at 3.0", dec)
	}
}

func TestRareTypeCutoffAndAllHistoryFallback(t *testing.T) {
	p := DefaultParams()
	p.W = 1
	p.H = 2
	p.RareCutoff = 2
	s := MustNew(p, Lazy{})
	d := &driver{s: s}

	// Thread's first instance is type B (rare): consumed as warm-up, so
	// its IPC 3.0 lands only in the history of all samples.
	d.run(0, 1, 1, 3.0)
	// Type A instances: two valid samples fill A's history (H=2).
	d.run(0, 0, 1, 2.0)
	d.run(0, 0, 1, 2.0)
	// Two more A starts extend the no-rare streak to the cutoff.
	d.run(0, 0, 1, 2.0)
	d.run(0, 0, 1, 2.0)
	if s.Stats().Transitions != 1 {
		t.Fatalf("expected sampling cut-off, stats = %+v", s.Stats())
	}
	// A rides its valid history.
	if dec := d.run(0, 0, 1, 0); dec.Mode != sim.ModeFast || math.Abs(dec.IPC-2.0) > 1e-12 {
		t.Errorf("A decision = %+v, want fast at 2.0", dec)
	}
	// B has no valid samples: it must fall back to the all-history mean.
	dec := d.run(0, 1, 1, 0)
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-3.0) > 1e-12 {
		t.Errorf("B decision = %+v, want fast at 3.0 via all-history", dec)
	}
	if s.Stats().Resamples != 0 {
		t.Errorf("no resample expected, stats = %+v", s.Stats())
	}
}

func TestUnknownTypeTriggersResample(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 0
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	d.run(0, 0, 1, 2.0) // sample type A
	if dec := d.run(0, 0, 1, 0); dec.Mode != sim.ModeFast {
		t.Fatalf("expected fast phase, got %+v", dec)
	}
	// First instance of type B arrives in fast mode: no history at all,
	// so TaskPoint resamples and runs it in detail (paper Fig 4b).
	dec := d.run(0, 1, 1, 4.0)
	if dec.Mode != sim.ModeDetailed {
		t.Fatalf("unknown type should run detailed, got %+v", dec)
	}
	st := s.Stats()
	if st.Resamples != 1 || st.ResamplesNewType != 1 {
		t.Errorf("stats = %+v, want one new-type resample", st)
	}
	// After resampling both types fill again and fast mode resumes with
	// B's fresh sample.
	d.run(0, 0, 1, 2.0)
	dec = d.run(0, 1, 1, 0)
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-4.0) > 1e-12 {
		t.Errorf("B after resample = %+v, want fast at 4.0", dec)
	}
}

func TestResampleWarmupExcludesFirstInstances(t *testing.T) {
	// With ResampleWarmup=1, the first detailed instance per thread
	// after a resample re-warms state and must not enter the valid
	// history.
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 1
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	d.run(0, 0, 1, 2.0) // valid sample, transition to fast
	dec := d.run(0, 1, 1, 9.0)
	if dec.Mode != sim.ModeDetailed || s.Stats().ResamplesNewType != 1 {
		t.Fatalf("unknown type should resample, got %+v stats %+v", dec, s.Stats())
	}
	// B's first post-resample instance (IPC 9.0) was warm-up: B's valid
	// history is still empty, so the next B sample (IPC 4.0) defines it.
	d.run(0, 1, 1, 4.0) // valid sample for B
	d.run(0, 0, 1, 2.0) // valid sample for A -> all types full -> fast
	dec = d.run(0, 1, 1, 0)
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-4.0) > 1e-12 {
		t.Errorf("B = %+v, want fast at 4.0 (warm-up 9.0 excluded)", dec)
	}
}

func TestPeriodicPolicyResamples(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ResampleWarmup = 0
	s := MustNew(p, Periodic{P: 3})
	d := &driver{s: s}
	d.run(0, 0, 1, 2.0) // fills history
	for i := 0; i < 3; i++ {
		if dec := d.run(0, 0, 1, 0); dec.Mode != sim.ModeFast {
			t.Fatalf("fast instance %d got %+v", i, dec)
		}
	}
	st := s.Stats()
	if st.Resamples != 1 || st.ResamplesPeriodic != 1 {
		t.Fatalf("stats after period = %+v, want one periodic resample", st)
	}
	// Next instance re-samples in detail; a new IPC replaces the
	// discarded history.
	dec := d.run(0, 0, 1, 5.0)
	if dec.Mode != sim.ModeDetailed {
		t.Fatalf("post-resample instance should be detailed, got %+v", dec)
	}
	dec = d.run(0, 0, 1, 0)
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-5.0) > 1e-12 {
		t.Errorf("decision = %+v, want fast at 5.0 (valid history was discarded)", dec)
	}
}

func TestLazyNeverResamplesPeriodically(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	d.run(0, 0, 1, 2.0)
	for i := 0; i < 5000; i++ {
		if dec := d.run(0, 0, 1, 0); dec.Mode != sim.ModeFast {
			t.Fatalf("lazy resampled at instance %d", i)
		}
	}
	if s.Stats().Resamples != 0 {
		t.Errorf("lazy resampled: %+v", s.Stats())
	}
}

func TestParallelismChangeTriggersResample(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ConcurrencyPatience = 1
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	// Sample with 6 threads' worth of concurrency.
	d.run(0, 0, 6, 2.0)
	if dec := d.run(0, 0, 6, 0); dec.Mode != sim.ModeFast {
		t.Fatal("expected fast phase")
	}
	// Parallelism collapses to 3 (diff 3 > max(1, 0.25*6)=1.5).
	dec := d.run(0, 0, 3, 2.5)
	if dec.Mode != sim.ModeDetailed {
		t.Fatalf("parallelism change should resample, got %+v", dec)
	}
	st := s.Stats()
	if st.ResamplesParallelism != 1 {
		t.Errorf("stats = %+v, want one parallelism resample", st)
	}
}

func TestParallelismPatienceAbsorbsTransient(t *testing.T) {
	// With patience 2, a single serial task between parallel phases (a
	// convergence check) must not resample, but a sustained collapse
	// must.
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.ConcurrencyPatience = 2
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	d.run(0, 0, 6, 2.0)
	if dec := d.run(0, 0, 6, 0); dec.Mode != sim.ModeFast {
		t.Fatal("expected fast phase")
	}
	// One transient serial task: still fast, no resample.
	if dec := d.run(0, 0, 1, 0); dec.Mode != sim.ModeFast {
		t.Fatalf("single transient should not resample, got %+v", dec)
	}
	// Back to full parallelism: breach streak resets.
	if dec := d.run(0, 0, 6, 0); dec.Mode != sim.ModeFast {
		t.Fatal("expected fast")
	}
	if s.Stats().Resamples != 0 {
		t.Fatalf("transient caused resample: %+v", s.Stats())
	}
	// Sustained collapse: two consecutive breaches trigger.
	if dec := d.run(0, 0, 2, 0); dec.Mode != sim.ModeFast {
		t.Fatal("first breach should still be fast")
	}
	dec := d.run(0, 0, 2, 2.5)
	if dec.Mode != sim.ModeDetailed {
		t.Fatalf("sustained change should resample, got %+v", dec)
	}
	if s.Stats().ResamplesParallelism != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestSmallParallelismChangeTolerated(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	s := MustNew(p, Lazy{})
	d := &driver{s: s}
	d.run(0, 0, 8, 2.0)
	if dec := d.run(0, 0, 8, 0); dec.Mode != sim.ModeFast {
		t.Fatal("expected fast phase")
	}
	// 8 -> 7 threads is within tolerance (max(1, 2)=2 >= diff 1).
	if dec := d.run(0, 0, 7, 0); dec.Mode != sim.ModeFast {
		t.Errorf("small concurrency change should not resample, got %+v", dec)
	}
	if s.Stats().Resamples != 0 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestStraddlingInstanceOnlyFeedsAllHistory(t *testing.T) {
	p := DefaultParams()
	p.W = 0
	p.H = 1
	s := MustNew(p, Lazy{})
	// Thread 0 starts a detailed instance; while it runs, thread 1
	// fills the history and flips the phase to fast. Thread 0's sample
	// must then land only in the all-history.
	instA := makeInst(0, 0)
	decA := s.TaskStart(sim.StartInfo{Thread: 0, Instance: instA, Now: 0, Running: 1})
	if decA.Mode != sim.ModeDetailed {
		t.Fatal("first instance should be detailed")
	}
	instB := makeInst(1, 0)
	decB := s.TaskStart(sim.StartInfo{Thread: 1, Instance: instB, Now: 0, Running: 2})
	if decB.Mode != sim.ModeDetailed {
		t.Fatal("second instance should be detailed")
	}
	// B finishes first with IPC 2 -> history full -> fast phase.
	s.TaskFinish(sim.FinishInfo{Thread: 1, Instance: instB, Start: 0, End: 500, Mode: sim.ModeDetailed, IPC: 2.0})
	if s.Stats().Transitions != 1 {
		t.Fatal("expected transition after B's sample")
	}
	// A finishes after the transition with a wild IPC 9; it must not
	// disturb the valid history.
	s.TaskFinish(sim.FinishInfo{Thread: 0, Instance: instA, Start: 0, End: 111, Mode: sim.ModeDetailed, IPC: 9.0})
	dec := s.TaskStart(sim.StartInfo{Thread: 0, Instance: makeInst(2, 0), Now: 600, Running: 1})
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-2.0) > 1e-12 {
		t.Errorf("decision = %+v, want fast at 2.0 (straddler excluded)", dec)
	}
	if s.Stats().ValidSamples != 1 {
		t.Errorf("valid samples = %d, want 1", s.Stats().ValidSamples)
	}
}

func TestSamplerWithEngineLazy(t *testing.T) {
	// End-to-end: sampled simulation must agree with detailed simulation
	// while simulating far fewer instructions in detail.
	prog := uniformProgram(128, 2000, 3)
	cfg := sim.HighPerfConfig(2)
	cfg.Quantum = 1000

	det, err := sim.Simulate(cfg, prog, sim.DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(DefaultParams(), Lazy{})
	samp, err := sim.Simulate(cfg, prog, s)
	if err != nil {
		t.Fatal(err)
	}
	errPct := math.Abs(samp.Cycles-det.Cycles) / det.Cycles * 100
	if errPct > 10 {
		t.Errorf("execution time error %.2f%% too high (sampled %v vs detailed %v)", errPct, samp.Cycles, det.Cycles)
	}
	if samp.DetailFraction() > 0.5 {
		t.Errorf("detail fraction %.2f, expected sampling to skip most instructions", samp.DetailFraction())
	}
	if samp.FastTasks == 0 {
		t.Error("no instances fast-forwarded")
	}
}

func TestSamplerWithEnginePeriodic(t *testing.T) {
	prog := uniformProgram(256, 1500, 5)
	cfg := sim.HighPerfConfig(2)
	cfg.Quantum = 1000
	s := MustNew(DefaultParams(), Periodic{P: 20})
	res, err := sim.Simulate(cfg, prog, s)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ResamplesPeriodic == 0 {
		t.Errorf("expected periodic resamples with P=20 over 256 tasks, stats = %+v", st)
	}
	if res.DetailFraction() >= 1 {
		t.Error("periodic sampling simulated everything in detail")
	}
}

// uniformProgram builds n independent instances of a single type, each
// working on its own data block (over-decomposition: every instance sees
// the same cold-miss profile, so per-type IPC is regular — the property
// the paper's §II-B establishes for task-based programs).
func uniformProgram(n int, instr int64, seedBase uint64) *trace.Program {
	p := &trace.Program{Name: "uniform", Types: []trace.TypeInfo{{Name: "work"}}}
	for i := 0; i < n; i++ {
		p.Instances = append(p.Instances, trace.Instance{
			ID: int32(i), Type: 0, Seed: seedBase + uint64(i),
			Segments: []trace.Segment{{
				N: instr, MemRatio: 0.25, Pat: trace.PatStride, Stride: 64,
				Base: uint64(i) << 22, Footprint: 1 << 15, DepDist: 4,
			}},
		})
	}
	return p
}

// Property: any legal interleaving of starts/finishes keeps the sampler's
// bookkeeping consistent and never panics.
func TestQuickSamplerConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		params := Params{
			W:                    r.IntN(3),
			H:                    1 + r.IntN(4),
			RareCutoff:           1 + r.IntN(4),
			ResampleWarmup:       r.IntN(2),
			ConcurrencyTolerance: 0.25,
			ConcurrencyPatience:  1 + r.IntN(3),
		}
		var pol Policy = Lazy{}
		if r.IntN(2) == 0 {
			pol = Periodic{P: 1 + r.IntN(10)}
		}
		s, err := New(params, pol)
		if err != nil {
			return false
		}
		threads := 1 + r.IntN(4)
		type inflight struct {
			inst *trace.Instance
			dec  sim.Decision
		}
		cur := make([]*inflight, threads)
		id := 0
		starts, finishes := 0, 0
		for op := 0; op < 300; op++ {
			th := r.IntN(threads)
			if cur[th] == nil {
				inst := makeInst(id, trace.TypeID(r.IntN(3)))
				id++
				running := 0
				for _, c := range cur {
					if c != nil {
						running++
					}
				}
				dec := s.TaskStart(sim.StartInfo{
					Thread: th, Instance: inst,
					Now: float64(op), Running: running + 1,
				})
				if dec.Mode == sim.ModeFast && dec.IPC <= 0 {
					return false
				}
				cur[th] = &inflight{inst: inst, dec: dec}
				starts++
			} else {
				fl := cur[th]
				ipc := fl.dec.IPC
				if fl.dec.Mode == sim.ModeDetailed {
					ipc = 0.5 + 3*r.Float64()
				}
				s.TaskFinish(sim.FinishInfo{
					Thread: th, Instance: fl.inst,
					Start: 0, End: float64(op + 1),
					Mode: fl.dec.Mode, IPC: ipc,
				})
				cur[th] = nil
				finishes++
			}
		}
		st := s.Stats()
		return st.DetailedStarted+st.FastStarted == starts &&
			st.ValidSamples <= st.DetailedStarted &&
			st.Resamples == st.ResamplesPeriodic+st.ResamplesNewType+st.ResamplesParallelism
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
