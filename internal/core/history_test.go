package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistoryBasics(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 || h.Full() || h.Mean() != 0 {
		t.Error("new history should be empty with mean 0")
	}
	h.Push(1)
	h.Push(2)
	if h.Len() != 2 || h.Full() {
		t.Errorf("len=%d full=%v, want 2,false", h.Len(), h.Full())
	}
	if got := h.Mean(); got != 1.5 {
		t.Errorf("mean = %v, want 1.5", got)
	}
	h.Push(3)
	if !h.Full() {
		t.Error("should be full after 3 pushes")
	}
	if got := h.Mean(); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestHistoryFIFOEviction(t *testing.T) {
	h := NewHistory(2)
	h.Push(10)
	h.Push(20)
	h.Push(30) // evicts 10
	if got := h.Mean(); got != 25 {
		t.Errorf("mean = %v, want 25 (oldest evicted)", got)
	}
	h.Push(40) // evicts 20
	if got := h.Mean(); got != 35 {
		t.Errorf("mean = %v, want 35", got)
	}
	if h.Len() != 2 {
		t.Errorf("len = %d, want 2", h.Len())
	}
}

func TestHistoryClear(t *testing.T) {
	h := NewHistory(4)
	h.Push(5)
	h.Push(6)
	h.Clear()
	if h.Len() != 0 || h.Full() || h.Mean() != 0 {
		t.Error("clear did not reset history")
	}
	h.Push(7)
	if h.Mean() != 7 {
		t.Errorf("mean after clear+push = %v, want 7", h.Mean())
	}
}

// Property: after any push sequence, Mean equals the arithmetic mean of
// the last min(len(seq), cap) values.
func TestQuickHistoryMeanMatchesWindow(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		capacity := 1 + int(capRaw%8)
		h := NewHistory(capacity)
		var seq []float64
		for _, v := range raw {
			x := float64(v) / 4
			seq = append(seq, x)
			h.Push(x)
		}
		if len(seq) == 0 {
			return h.Len() == 0
		}
		w := capacity
		if len(seq) < w {
			w = len(seq)
		}
		sum := 0.0
		for _, x := range seq[len(seq)-w:] {
			sum += x
		}
		want := sum / float64(w)
		return h.Len() == w && math.Abs(h.Mean()-want) < 1e-9 &&
			h.Full() == (len(seq) >= capacity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyPeriodic(t *testing.T) {
	p := Periodic{P: 3}
	if p.ShouldResample(0, 2) {
		t.Error("should not trigger below P")
	}
	if !p.ShouldResample(0, 3) {
		t.Error("should trigger at P")
	}
	if p.Name() != "periodic(3)" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestPolicyLazy(t *testing.T) {
	l := Lazy{}
	for _, n := range []int{0, 1, 100, 1 << 20} {
		if l.ShouldResample(0, n) {
			t.Errorf("lazy triggered at %d", n)
		}
	}
	if l.Name() != "lazy" {
		t.Errorf("name = %q", l.Name())
	}
}
