package core

// History is a FIFO (exported within the module so the strata package
// shares the same structure for its per-stratum IPC windows).
//
// A History is a FIFO buffer of the most recent IPC samples of one task
// type (paper §III-B: "two vectors holding the IPC histories of the most
// recently simulated task instances... FIFO buffers in which a newly added
// element replaces the oldest one").
type History struct {
	buf  []float64
	n    int // number of valid entries (<= cap)
	next int // slot the next push writes to
	sum  float64
}

func NewHistory(capacity int) *History {
	return &History{buf: make([]float64, capacity)}
}

// Push inserts a sample, evicting the oldest when full.
func (h *History) Push(x float64) {
	if h.n == len(h.buf) {
		h.sum -= h.buf[h.next]
	} else {
		h.n++
	}
	h.buf[h.next] = x
	h.sum += x
	h.next = (h.next + 1) % len(h.buf)
}

// Len returns the number of stored samples.
func (h *History) Len() int { return h.n }

// Full reports whether the buffer holds its capacity of samples.
func (h *History) Full() bool { return h.n == len(h.buf) }

// Mean returns the average of the stored samples, or 0 when empty.
func (h *History) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Clear discards all samples.
func (h *History) Clear() {
	h.n = 0
	h.next = 0
	h.sum = 0
	for i := range h.buf {
		h.buf[i] = 0
	}
}
