package core

import (
	"math"
	"testing"

	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

func makeSizedInst(id int, typ trace.TypeID, instr int64) *trace.Instance {
	return &trace.Instance{
		ID: int32(id), Type: typ, Seed: uint64(id + 1),
		Segments: []trace.Segment{{N: instr, DepDist: 2}},
	}
}

func TestSizeClassBuckets(t *testing.T) {
	// Power-of-four buckets: sizes within ~4x share a class, sizes
	// orders of magnitude apart do not.
	if SizeClass(0) != 0 || SizeClass(-5) != 0 {
		t.Error("non-positive sizes must map to class 0")
	}
	if SizeClass(1000) != SizeClass(1800) {
		t.Errorf("similar sizes split: %d vs %d", SizeClass(1000), SizeClass(1800))
	}
	if SizeClass(500) == SizeClass(50000) {
		t.Error("100x size difference landed in one class")
	}
	// Monotone in size.
	prev := uint8(0)
	for n := int64(1); n < 1<<40; n *= 4 {
		c := SizeClass(n)
		if c < prev {
			t.Fatalf("sizeClass not monotone at %d", n)
		}
		prev = c
	}
}

// runSized drives a sampler with an instance of the given size, reporting
// measuredIPC for detailed decisions.
func runSized(s *Sampler, d *int, thread int, typ trace.TypeID, instr int64, measuredIPC float64) sim.Decision {
	inst := makeSizedInst(*d, typ, instr)
	*d++
	dec := s.TaskStart(sim.StartInfo{Thread: thread, Instance: inst, Now: 0, Running: 1})
	ipc := measuredIPC
	if dec.Mode == sim.ModeFast {
		ipc = dec.IPC
	}
	s.TaskFinish(sim.FinishInfo{Thread: thread, Instance: inst, Start: 0, End: float64(instr) / ipc, Mode: dec.Mode, IPC: ipc})
	return dec
}

func TestSizeClassesSeparateHistories(t *testing.T) {
	// One task type with bimodal sizes: small instances run at IPC 1,
	// large ones at IPC 3 (input-dependent control flow). With size
	// classes each class is predicted with its own IPC.
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.SizeClasses = true
	p.ResampleWarmup = 0
	s := MustNew(p, Lazy{})
	id := 0
	runSized(s, &id, 0, 0, 1000, 1.0)  // small sample; transition to fast
	runSized(s, &id, 0, 0, 60000, 3.0) // new size class: resample, sample it
	runSized(s, &id, 0, 0, 1000, 1.0)  // re-fill the small class after resample
	small := runSized(s, &id, 0, 0, 1100, 0)
	if small.Mode != sim.ModeFast || math.Abs(small.IPC-1.0) > 1e-12 {
		t.Errorf("small instance = %+v, want fast at 1.0", small)
	}
	large := runSized(s, &id, 0, 0, 55000, 0)
	if large.Mode != sim.ModeFast || math.Abs(large.IPC-3.0) > 1e-12 {
		t.Errorf("large instance = %+v, want fast at 3.0", large)
	}
}

func TestWithoutSizeClassesOneHistory(t *testing.T) {
	// Same scenario with the extension off: both sizes share a history,
	// so the prediction is the blended mean — the paper's §V-B bias.
	p := DefaultParams()
	p.W = 0
	p.H = 2
	p.ResampleWarmup = 0
	s := MustNew(p, Lazy{})
	id := 0
	runSized(s, &id, 0, 0, 1000, 1.0)
	runSized(s, &id, 0, 0, 60000, 3.0)
	dec := runSized(s, &id, 0, 0, 1100, 0)
	if dec.Mode != sim.ModeFast || math.Abs(dec.IPC-2.0) > 1e-12 {
		t.Errorf("decision = %+v, want blended fast at 2.0", dec)
	}
}

func TestSizeClassNewClassTriggersResample(t *testing.T) {
	// A never-seen size class arriving in fast mode behaves like a new
	// task type (paper Fig 4b): resample and run it detailed.
	p := DefaultParams()
	p.W = 0
	p.H = 1
	p.SizeClasses = true
	p.ResampleWarmup = 0
	s := MustNew(p, Lazy{})
	id := 0
	runSized(s, &id, 0, 0, 1000, 1.0)
	if dec := runSized(s, &id, 0, 0, 1000, 0); dec.Mode != sim.ModeFast {
		t.Fatalf("expected fast phase, got %+v", dec)
	}
	dec := runSized(s, &id, 0, 0, 70000, 2.5)
	if dec.Mode != sim.ModeDetailed {
		t.Fatalf("new size class should resample + run detailed, got %+v", dec)
	}
	if s.Stats().ResamplesNewType != 1 {
		t.Errorf("stats = %+v, want one new-type resample", s.Stats())
	}
}

func TestSizeClassingReducesDedupStyleError(t *testing.T) {
	// End-to-end: a workload whose per-instance IPC correlates with
	// instance size. Size classing must predict total time better than
	// the plain per-type history.
	prog := &trace.Program{Name: "bimodal", Types: []trace.TypeInfo{{Name: "chunk"}}}
	for i := 0; i < 256; i++ {
		instr := int64(900)
		dep := 1.2 // slow, serial (small compressible chunks)
		if i%2 == 1 {
			instr = 24000
			dep = 8 // fast, parallel (large incompressible chunks)
		}
		prog.Instances = append(prog.Instances, trace.Instance{
			ID: int32(i), Type: 0, Seed: uint64(i + 1),
			Segments: []trace.Segment{{
				N: instr, MemRatio: 0.08, Pat: trace.PatStride, Stride: 8,
				Base: uint64(1)<<32 + uint64(i)<<20, Footprint: 16 << 10, DepDist: dep,
			}},
		})
	}
	cfg := sim.HighPerfConfig(4)
	det, err := sim.Simulate(cfg, prog, sim.DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(classes bool) float64 {
		p := DefaultParams()
		p.SizeClasses = classes
		s := MustNew(p, Lazy{})
		res, err := sim.Simulate(cfg, prog, s)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Cycles-det.Cycles) / det.Cycles * 100
	}
	plain := run(false)
	classed := run(true)
	if classed > plain {
		t.Errorf("size classing worsened error: plain %.2f%% vs classed %.2f%%", plain, classed)
	}
	if classed > 10 {
		t.Errorf("size-classed error %.2f%% still high on bimodal workload", classed)
	}
}
