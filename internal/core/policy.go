package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"taskpoint/internal/sim"
)

// Policy decides when a simulation running in fast-forward mode is
// resampled (paper §III-C). The separation between the sampling mechanism
// (Sampler) and the policy allows integrating other policies with low
// implementation effort, as the paper emphasises.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ShouldResample is consulted when a thread retires a task instance
	// in fast mode; fastOnThread is the number of instances that thread
	// has retired in fast mode since the last (re)sampling.
	ShouldResample(thread, fastOnThread int) bool
}

// BudgetedPolicy is an optional Policy extension the Sampler consults at
// every task start. It lets a policy direct detailed simulation toward
// specific task instances — per-stratum sample quotas, variance-driven
// budgets — instead of relying solely on the global sampling/fast phase
// machinery. A budgeted policy can thereby force detail where its budget
// demands it (a "directed sample") and suppress resampling elsewhere by
// returning false from ShouldResample.
type BudgetedPolicy interface {
	Policy
	// WantDetailed is consulted once per task start, before the phase
	// machinery decides. Returning true while the sampler is
	// fast-forwarding turns the instance into a directed sample: it is
	// simulated in detail and its IPC refreshes the type's histories
	// without a full resampling transition. During the sampling phase
	// the instance is simulated in detail regardless of the return
	// value.
	WantDetailed(si sim.StartInfo) bool
	// Observe is invoked once per task finish, for every instance in
	// either mode, so the policy can track stratum populations and
	// accumulate measurements. kind tells the policy how trustworthy
	// the measurement is and under which contention regime it was
	// taken (see SampleKind).
	Observe(fi sim.FinishInfo, kind SampleKind)
	// FastIPC returns the policy's own fast-forward IPC estimate for a
	// starting instance, if it has one. The sampler prefers it over its
	// bounded per-type histories: a stratum's cumulative mean over all
	// detailed samples is a lower-variance predictor than the paper's
	// H-deep window, and it reflects the stratifier's finer partition.
	FastIPC(si sim.StartInfo) (float64, bool)
}

// SampleKind classifies a finished instance for BudgetedPolicy.Observe.
type SampleKind uint8

const (
	// KindFast is a fast-forwarded instance: its duration derives from
	// a history IPC, not a measurement.
	KindFast SampleKind = iota
	// KindWarmup is a detailed instance measured with cold or stale
	// micro-architectural state (warm-up); its IPC is biased low and
	// must not enter estimators.
	KindWarmup
	// KindValid is a post-warm-up sampling-phase measurement: every
	// active thread was simulating in detail, so it saw the realistic
	// memory contention of the full-detail reference.
	KindValid
	// KindDirected is a budget-directed measurement taken during the
	// fast phase: co-running threads were fast-forwarding and generated
	// no memory traffic, so its duration is biased low by the missing
	// contention. Estimators should calibrate it against KindValid
	// samples of the same strata.
	KindDirected
)

// Periodic is the paper's periodic sampling policy: resample once any
// thread has executed P task instances in fast-forward mode.
type Periodic struct {
	// P is the sampling period.
	P int
}

// Name returns "periodic(P)".
func (p Periodic) Name() string { return fmt.Sprintf("periodic(%d)", p.P) }

// ShouldResample triggers when the thread's fast count reaches P.
func (p Periodic) ShouldResample(_, fastOnThread int) bool {
	return fastOnThread >= p.P
}

// Lazy is periodic sampling with an infinite period: the policy itself
// never triggers resampling; only unknown task types and parallelism
// changes do.
type Lazy struct{}

// Name returns "lazy".
func (Lazy) Name() string { return "lazy" }

// ShouldResample never triggers.
func (Lazy) ShouldResample(_, _ int) bool { return false }

// policyParsers holds the argument parsers of registered policy families,
// keyed by family name ("periodic", "stratified", ...).
var policyParsers = map[string]func(arg string) (Policy, error){
	"periodic": func(arg string) (Policy, error) {
		p, err := PositiveIntArg(arg, "periodic period")
		if err != nil {
			return nil, err
		}
		return Periodic{P: p}, nil
	},
}

// RegisterPolicyParser registers the argument parser of a policy family so
// ParsePolicy accepts "name(ARG)" and "name:ARG". Extension packages
// (internal/strata) register themselves in init; registering a duplicate
// name panics.
func RegisterPolicyParser(name string, parse func(arg string) (Policy, error)) {
	if name == "" || parse == nil {
		panic("core: RegisterPolicyParser with empty name or nil parser")
	}
	if _, dup := policyParsers[name]; dup || name == "lazy" {
		panic(fmt.Sprintf("core: policy %q registered twice", name))
	}
	policyParsers[name] = parse
}

// PositiveIntArg parses a policy argument as a strictly positive integer,
// rejecting malformed input (empty, non-numeric, zero, negative) with an
// error naming what the argument is — policies must never silently default
// a malformed argument.
func PositiveIntArg(arg, what string) (int, error) {
	trimmed := strings.TrimSpace(arg)
	if trimmed == "" {
		return 0, fmt.Errorf("core: missing %s", what)
	}
	v, err := strconv.Atoi(trimmed)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("core: invalid %s %q: want a positive integer", what, arg)
	}
	return v, nil
}

// ParsePolicy builds a Policy from its textual name, the inverse of
// Policy.Name. Accepted forms are "lazy", "NAME(ARG)" and the
// flag-friendly "NAME:ARG" for every registered policy family, e.g.
// "periodic(250)", "periodic:1000" or "stratified(400)". Declarative
// sweep specs and command-line flags use it to enumerate the policy
// dimension of a design space. Malformed arguments are an error, never a
// silent default.
func ParsePolicy(s string) (Policy, error) {
	name := strings.TrimSpace(s)
	if name == "lazy" {
		return Lazy{}, nil
	}
	base, arg, ok := splitPolicyArg(name)
	if ok {
		if parse, known := policyParsers[base]; known {
			return parse(arg)
		}
	}
	return nil, fmt.Errorf("core: unknown policy %q (want %s)", s, policyForms())
}

// splitPolicyArg splits "name(arg)" or "name:arg" into its family name and
// argument text.
func splitPolicyArg(s string) (base, arg string, ok bool) {
	if i := strings.IndexByte(s, '('); i > 0 && strings.HasSuffix(s, ")") {
		return s[:i], s[i+1 : len(s)-1], true
	}
	if i := strings.IndexByte(s, ':'); i > 0 {
		return s[:i], s[i+1:], true
	}
	return "", "", false
}

// policyForms lists the accepted policy spellings for error messages, in
// deterministic order.
func policyForms() string {
	names := make([]string, 0, len(policyParsers))
	for n := range policyParsers {
		names = append(names, n)
	}
	sort.Strings(names)
	forms := []string{`"lazy"`}
	for _, n := range names {
		forms = append(forms, fmt.Sprintf("%q or %q", n+"(N)", n+":N"))
	}
	return strings.Join(forms, ", ")
}

// StandardPolicies returns the resampling policies the paper evaluates
// head to head (§V-C): lazy sampling and periodic sampling at the period
// used for Figures 7-10.
func StandardPolicies() []Policy {
	return []Policy{Lazy{}, Periodic{P: 250}}
}
