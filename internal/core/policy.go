package core

import "fmt"

// Policy decides when a simulation running in fast-forward mode is
// resampled (paper §III-C). The separation between the sampling mechanism
// (Sampler) and the policy allows integrating other policies with low
// implementation effort, as the paper emphasises.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ShouldResample is consulted when a thread retires a task instance
	// in fast mode; fastOnThread is the number of instances that thread
	// has retired in fast mode since the last (re)sampling.
	ShouldResample(thread, fastOnThread int) bool
}

// Periodic is the paper's periodic sampling policy: resample once any
// thread has executed P task instances in fast-forward mode.
type Periodic struct {
	// P is the sampling period.
	P int
}

// Name returns "periodic(P)".
func (p Periodic) Name() string { return fmt.Sprintf("periodic(%d)", p.P) }

// ShouldResample triggers when the thread's fast count reaches P.
func (p Periodic) ShouldResample(_, fastOnThread int) bool {
	return fastOnThread >= p.P
}

// Lazy is periodic sampling with an infinite period: the policy itself
// never triggers resampling; only unknown task types and parallelism
// changes do.
type Lazy struct{}

// Name returns "lazy".
func (Lazy) Name() string { return "lazy" }

// ShouldResample never triggers.
func (Lazy) ShouldResample(_, _ int) bool { return false }
