package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Policy decides when a simulation running in fast-forward mode is
// resampled (paper §III-C). The separation between the sampling mechanism
// (Sampler) and the policy allows integrating other policies with low
// implementation effort, as the paper emphasises.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ShouldResample is consulted when a thread retires a task instance
	// in fast mode; fastOnThread is the number of instances that thread
	// has retired in fast mode since the last (re)sampling.
	ShouldResample(thread, fastOnThread int) bool
}

// Periodic is the paper's periodic sampling policy: resample once any
// thread has executed P task instances in fast-forward mode.
type Periodic struct {
	// P is the sampling period.
	P int
}

// Name returns "periodic(P)".
func (p Periodic) Name() string { return fmt.Sprintf("periodic(%d)", p.P) }

// ShouldResample triggers when the thread's fast count reaches P.
func (p Periodic) ShouldResample(_, fastOnThread int) bool {
	return fastOnThread >= p.P
}

// Lazy is periodic sampling with an infinite period: the policy itself
// never triggers resampling; only unknown task types and parallelism
// changes do.
type Lazy struct{}

// Name returns "lazy".
func (Lazy) Name() string { return "lazy" }

// ShouldResample never triggers.
func (Lazy) ShouldResample(_, _ int) bool { return false }

// ParsePolicy builds a Policy from its textual name, the inverse of
// Policy.Name. Accepted forms are "lazy", "periodic(P)" and the
// flag-friendly "periodic:P", e.g. "periodic(250)" or "periodic:1000".
// Declarative sweep specs and command-line flags use it to enumerate the
// policy dimension of a design space.
func ParsePolicy(s string) (Policy, error) {
	name := strings.TrimSpace(s)
	if name == "lazy" {
		return Lazy{}, nil
	}
	var arg string
	switch {
	case strings.HasPrefix(name, "periodic(") && strings.HasSuffix(name, ")"):
		arg = name[len("periodic(") : len(name)-1]
	case strings.HasPrefix(name, "periodic:"):
		arg = name[len("periodic:"):]
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want \"lazy\", \"periodic(P)\" or \"periodic:P\")", s)
	}
	p, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || p < 1 {
		return nil, fmt.Errorf("core: invalid periodic period %q: want a positive integer", arg)
	}
	return Periodic{P: p}, nil
}

// StandardPolicies returns the resampling policies the paper evaluates
// head to head (§V-C): lazy sampling and periodic sampling at the period
// used for Figures 7-10.
func StandardPolicies() []Policy {
	return []Policy{Lazy{}, Periodic{P: 250}}
}
