package gen

import (
	"fmt"
	"strconv"
	"strings"

	"taskpoint/internal/bench"
	"taskpoint/internal/trace"
)

// Scheme is the bench.Resolver scheme generated scenarios are named
// under: "gen:family(knob=value,...)".
const Scheme = "gen"

func init() {
	bench.RegisterResolver(Scheme, func(name string) (*bench.Spec, error) {
		sc, err := Parse(name)
		if err != nil {
			return nil, err
		}
		return sc.BenchSpec(), nil
	})
}

// Parse builds a Scenario from its spec string, the inverse of
// Scenario.Spec. The grammar is strict:
//
//	gen:FAMILY
//	gen:FAMILY(knob=value,knob=value,...)
//
// (the "gen:" prefix is optional, so bare "forkjoin(width=8)" parses
// too). Knobs are tasks, width, depth, types, mean, phases (positive
// integers), cv, inputdep (floats in [0,1]) and size (loguniform, fixed,
// bimodal, heavytail). Unknown families, unknown or duplicate knobs and
// out-of-range values are errors, never silent defaults.
func Parse(spec string) (*Scenario, error) {
	s := strings.TrimSpace(spec)
	s = strings.TrimPrefix(s, Scheme+":")
	name, args := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("gen: malformed spec %q: unbalanced parentheses", spec)
		}
		name, args = s[:i], s[i+1:len(s)-1]
	}
	fam, err := FamilyByName(name)
	if err != nil {
		return nil, err
	}
	k := DefaultKnobs()
	if strings.TrimSpace(args) != "" {
		seen := map[string]bool{}
		for _, pair := range strings.Split(args, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			if !ok || key == "" || val == "" {
				return nil, fmt.Errorf("gen: malformed knob %q in %q (want knob=value)", pair, spec)
			}
			if seen[key] {
				return nil, fmt.Errorf("gen: duplicate knob %q in %q", key, spec)
			}
			seen[key] = true
			if err := setKnob(&k, key, val); err != nil {
				return nil, err
			}
		}
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{Family: fam, Knobs: k}, nil
}

// setKnob applies one parsed knob=value pair.
func setKnob(k *Knobs, key, val string) error {
	intKnob := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("gen: knob %s=%q: want an integer", key, val)
		}
		*dst = v
		return nil
	}
	floatKnob := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("gen: knob %s=%q: want a number", key, val)
		}
		*dst = v
		return nil
	}
	switch key {
	case "tasks":
		return intKnob(&k.Tasks)
	case "width":
		return intKnob(&k.Width)
	case "depth":
		return intKnob(&k.Depth)
	case "types":
		return intKnob(&k.Types)
	case "mean":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("gen: knob mean=%q: want an integer", val)
		}
		k.Mean = v
		return nil
	case "phases":
		return intKnob(&k.Phases)
	case "cv":
		return floatKnob(&k.CV)
	case "inputdep":
		return floatKnob(&k.InputDep)
	case "size":
		d, err := ParseSizeDist(val)
		if err != nil {
			return err
		}
		k.Size = d
		return nil
	default:
		return fmt.Errorf("gen: unknown knob %q (want tasks, width, depth, types, size, mean, cv, phases or inputdep)", key)
	}
}

// Spec returns the canonical spec string: "gen:family" with every
// non-default knob listed in fixed order, so Parse(sc.Spec()) rebuilds an
// identical scenario and the string is a stable cache/report key.
func (sc *Scenario) Spec() string {
	def := DefaultKnobs()
	k := sc.Knobs
	var args []string
	add := func(key, val string) { args = append(args, key+"="+val) }
	if k.Tasks != def.Tasks {
		add("tasks", strconv.Itoa(k.Tasks))
	}
	if k.Width != def.Width {
		add("width", strconv.Itoa(k.Width))
	}
	if k.Depth != def.Depth {
		add("depth", strconv.Itoa(k.Depth))
	}
	if k.Types != def.Types {
		add("types", strconv.Itoa(k.Types))
	}
	if k.Size != def.Size {
		add("size", k.Size.String())
	}
	if k.Mean != def.Mean {
		add("mean", strconv.FormatInt(k.Mean, 10))
	}
	if k.CV != def.CV {
		add("cv", strconv.FormatFloat(k.CV, 'g', -1, 64))
	}
	if k.Phases != def.Phases {
		add("phases", strconv.Itoa(k.Phases))
	}
	if k.InputDep != def.InputDep {
		add("inputdep", strconv.FormatFloat(k.InputDep, 'g', -1, 64))
	}
	if len(args) == 0 {
		return Scheme + ":" + sc.Family.Name
	}
	return Scheme + ":" + sc.Family.Name + "(" + strings.Join(args, ",") + ")"
}

// BenchSpec adapts the scenario to the benchmark registry's
// lookup-and-Build contract: Name is the canonical spec, Instances the
// tasks knob, and the build function the seeded materialiser. Through it,
// scenario specs work everywhere a Table I name does (results.Runner,
// sweep campaigns, cmd/tracegen).
func (sc *Scenario) BenchSpec() *bench.Spec {
	return bench.NewSpec(sc.Spec(), len(sc.Family.typeNames(sc.Knobs)), sc.Knobs.Tasks,
		sc.Family.Blurb, sc.build)
}

// Build generates the scenario's program at the given scale and seed,
// validating the result — the direct-use path mirroring bench.Spec.Build.
func (sc *Scenario) Build(scale float64, seed uint64) (*trace.Program, error) {
	return sc.BenchSpec().Build(scale, seed)
}
