package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkShrinks asserts the two contracts minimization rests on for one
// scenario: every candidate parses under the strict grammar back to itself
// (valid, canonical) and strictly decreases the shrink measure (greedy
// descent terminates). It also re-generates the candidate list to pin the
// deterministic order.
func checkShrinks(t *testing.T, sc *Scenario) {
	t.Helper()
	cands := sc.Shrinks()
	measure := sc.shrinkMeasure()
	for _, c := range cands {
		if err := c.Knobs.Validate(); err != nil {
			t.Fatalf("shrink of %s yields invalid %s: %v", sc.Spec(), c.Spec(), err)
		}
		back, err := Parse(c.Spec())
		if err != nil {
			t.Fatalf("shrink of %s yields unparseable spec %q: %v", sc.Spec(), c.Spec(), err)
		}
		if back.Family != c.Family || back.Knobs != c.Knobs {
			t.Fatalf("shrink spec %q of %s does not round-trip", c.Spec(), sc.Spec())
		}
		if m := c.shrinkMeasure(); m >= measure {
			t.Fatalf("shrink %s of %s does not decrease the measure (%v >= %v)",
				c.Spec(), sc.Spec(), m, measure)
		}
	}
	again := sc.Shrinks()
	if len(again) != len(cands) {
		t.Fatalf("Shrinks of %s is non-deterministic: %d then %d candidates",
			sc.Spec(), len(cands), len(again))
	}
	for i := range cands {
		if again[i].Spec() != cands[i].Spec() {
			t.Fatalf("Shrinks of %s is non-deterministic at %d: %s then %s",
				sc.Spec(), i, cands[i].Spec(), again[i].Spec())
		}
	}
}

// TestShrinksProperties quick-checks the shrink hooks over random valid
// knob sets, plus the fixed points the fuzzer's minimizer bottoms out at.
func TestShrinksProperties(t *testing.T) {
	fams := Families()
	if err := quick.Check(func(famIdx uint8, raw Knobs) bool {
		sc := &Scenario{Family: fams[int(famIdx)%len(fams)]}
		// Values produces arbitrary (mostly invalid) knob structs; map them
		// into range through arbitraryKnobs' generator when invalid.
		sc.Knobs = raw
		if sc.Knobs.Validate() != nil {
			sc.Knobs = arbitraryKnobs(rand.New(rand.NewSource(int64(famIdx))))
		}
		checkShrinks(t, sc)
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	// The fully shrunk scenario is a fixed point: no candidates at all.
	min := &Scenario{Family: fams[0], Knobs: DefaultKnobs()}
	min.Knobs.Tasks, min.Knobs.Mean = 8, 64
	if cands := min.Shrinks(); len(cands) != 0 {
		t.Fatalf("minimal scenario %s still shrinks to %d candidates, e.g. %s",
			min.Spec(), len(cands), cands[0].Spec())
	}
}

// TestShrinkDescentTerminates walks greedy always-take-first descent from
// adversarial corners and asserts it reaches a fixed point in bounded
// steps — the terminating-minimizer property end to end.
func TestShrinkDescentTerminates(t *testing.T) {
	for _, spec := range []string{
		"gen:forkjoin(tasks=1048576,width=4096,depth=64,types=16,size=fixed,mean=1048576,cv=1,phases=16,inputdep=1)",
		"gen:pipeline(tasks=9,mean=65,cv=0.01)",
		"gen:random(width=1,depth=1,types=1,cv=0,inputdep=0.005)",
	} {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for {
			cands := sc.Shrinks()
			if len(cands) == 0 {
				break
			}
			sc = cands[0]
			if steps++; steps > 10000 {
				t.Fatalf("descent from %s has not terminated after %d steps (at %s)",
					spec, steps, sc.Spec())
			}
		}
	}
}

// FuzzShrinkSpec is the grammar-level lock: for any spec the strict parser
// accepts, every shrink candidate re-parses, the candidate order is
// deterministic, and the measure strictly decreases.
func FuzzShrinkSpec(f *testing.F) {
	f.Add("gen:forkjoin")
	f.Add("gen:forkjoin(tasks=192,width=4,depth=7,size=bimodal,mean=3237,cv=0.48,inputdep=0.78)")
	f.Add("gen:pipeline(tasks=76,width=128,depth=12,types=6,size=bimodal,mean=1552,cv=0.5,phases=2,inputdep=0.11)")
	f.Add("gen:chains(tasks=8,mean=64)")
	f.Add("gen:wavefront(cv=0.005,inputdep=0.995)")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			return
		}
		checkShrinks(t, sc)
	})
}
