package gen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"taskpoint/internal/bench"
	"taskpoint/internal/taskgraph"
)

// arbitraryKnobs draws a uniformly random valid knob set.
func arbitraryKnobs(r *rand.Rand) Knobs {
	return Knobs{
		Tasks:    8 + r.Intn(1200),
		Width:    1 + r.Intn(64),
		Depth:    1 + r.Intn(16),
		Types:    1 + r.Intn(16),
		Size:     SizeDist(r.Intn(int(numSizeDists))),
		Mean:     64 + int64(r.Intn(8000)),
		CV:       float64(r.Intn(101)) / 100,
		Phases:   1 + r.Intn(4),
		InputDep: float64(r.Intn(101)) / 100,
	}
}

// scenarioProps checks the generator invariants for one (scenario, seed):
// the built program validates, derives an acyclic task graph, covers the
// declared type count, and is bit-identical on a second build.
func scenarioProps(t *testing.T, sc *Scenario, scale float64, seed uint64) {
	t.Helper()
	prog, err := sc.Build(scale, seed)
	if err != nil {
		t.Fatalf("%s seed %d: %v", sc.Spec(), seed, err)
	}
	// Every family must track the requested instance count (bench.Build's
	// scaled n): trees may overshoot by a final sub-tree, nothing more.
	want := int(float64(sc.Knobs.Tasks)*scale + 0.5)
	if want < 64 {
		want = 64
	}
	if want > sc.Knobs.Tasks {
		want = sc.Knobs.Tasks
	}
	if got := prog.NumTasks(); got < want-1 || got > want+3 {
		t.Fatalf("%s seed %d: built %d instances, want ~%d", sc.Spec(), seed, got, want)
	}
	g, err := taskgraph.Build(prog)
	if err != nil {
		t.Fatalf("%s seed %d: task graph: %v", sc.Spec(), seed, err)
	}
	if g.NumTasks() != prog.NumTasks() {
		t.Fatalf("%s seed %d: graph has %d nodes, program %d instances",
			sc.Spec(), seed, g.NumTasks(), prog.NumTasks())
	}
	again, err := sc.Build(scale, seed)
	if err != nil {
		t.Fatalf("%s seed %d: rebuild: %v", sc.Spec(), seed, err)
	}
	if !reflect.DeepEqual(prog, again) {
		t.Fatalf("%s seed %d: program differs between identical builds", sc.Spec(), seed)
	}
}

// TestFamiliesQuick is the property-based sweep: for every family, any
// valid knob set and any seed must yield a valid, acyclic, deterministic
// program.
func TestFamiliesQuick(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			prop := func(seed uint64) bool {
				r := rand.New(rand.NewSource(int64(seed)))
				sc := &Scenario{Family: fam, Knobs: arbitraryKnobs(r)}
				scenarioProps(t, sc, 1, seed)
				return !t.Failed()
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFamilyDefaults: every family at default knobs builds across scales
// and distinct seeds give distinct programs.
func TestFamilyDefaults(t *testing.T) {
	for _, fam := range Families() {
		sc := &Scenario{Family: fam, Knobs: DefaultKnobs()}
		for _, scale := range []float64{1.0 / 4, 1} {
			scenarioProps(t, sc, scale, 42)
		}
		a, _ := sc.Build(1, 1)
		b, _ := sc.Build(1, 2)
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: seeds 1 and 2 built identical programs", fam.Name)
		}
	}
}

// TestKnobsShapeStructure: structural knobs must show up in the derived
// graph — reduction trees shrink, chains serialise, wavefronts ramp.
func TestKnobsShapeStructure(t *testing.T) {
	build := func(spec string) ([]int, int) {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := sc.Build(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		g, err := taskgraph.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		return g.WidthProfile(), g.NumEdges()
	}

	if width, _ := build("gen:reduce(tasks=256)"); width[0] <= width[len(width)-1]*4 {
		t.Errorf("reduce: width profile does not shrink: first %d, last %d", width[0], width[len(width)-1])
	}
	if width, _ := build("gen:chains(width=2,tasks=128)"); len(width) < 32 {
		t.Errorf("chains(width=2): depth %d, want a deep graph", len(width))
	}
	if width, _ := build("gen:forkjoin(width=32,tasks=256)"); width[0] != 32 {
		t.Errorf("forkjoin(width=32): first level has %d tasks, want 32", width[0])
	}
	if _, edges := build("gen:random(tasks=256)"); edges == 0 {
		t.Error("random: no dependency edges")
	}
}

// TestInputDepAndPhasesMatter: the input-dependence and phase knobs must
// change instance sizes of the same structural scenario.
func TestInputDepAndPhasesMatter(t *testing.T) {
	sizes := func(spec string) []int64 {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := sc.Build(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, prog.NumTasks())
		for i := range prog.Instances {
			out[i] = prog.Instances[i].Instructions()
		}
		return out
	}
	base := sizes("gen:wavefront(tasks=128,size=fixed,cv=0)")
	for i := 1; i < len(base); i++ {
		if base[i] != base[0] {
			t.Fatalf("fixed size, cv=0: instance sizes differ (%d vs %d)", base[i], base[0])
		}
	}
	dep := sizes("gen:wavefront(tasks=128,size=fixed,cv=0,inputdep=0.8)")
	if reflect.DeepEqual(base, dep) {
		t.Error("inputdep=0.8 did not change instance sizes")
	}
	ph := sizes("gen:wavefront(tasks=128,size=fixed,cv=0,phases=4)")
	if reflect.DeepEqual(base, ph) {
		t.Error("phases=4 did not change instance sizes")
	}
}

// TestParseRoundTrip: Parse(sc.Spec()) must rebuild identical knobs for
// arbitrary valid knob sets.
func TestParseRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		fam := Families()[r.Intn(len(Families()))]
		sc := &Scenario{Family: fam, Knobs: arbitraryKnobs(r)}
		back, err := Parse(sc.Spec())
		if err != nil {
			t.Errorf("Parse(%q): %v", sc.Spec(), err)
			return false
		}
		if back.Family != fam || back.Knobs != sc.Knobs {
			t.Errorf("round trip of %q: got %+v, want %+v", sc.Spec(), back.Knobs, sc.Knobs)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestParseErrors: the grammar is strict — malformed specs are rejected
// with an error, never silently defaulted.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"gen:",
		"gen:unknownfamily",
		"gen:forkjoin(",
		"gen:forkjoin)",
		"gen:forkjoin(width)",
		"gen:forkjoin(width=)",
		"gen:forkjoin(=8)",
		"gen:forkjoin(width=eight)",
		"gen:forkjoin(width=0)",
		"gen:forkjoin(width=8,width=9)",
		"gen:forkjoin(bogus=1)",
		"gen:forkjoin(size=normal)",
		"gen:forkjoin(cv=1.5)",
		"gen:forkjoin(inputdep=-0.1)",
		"gen:forkjoin(tasks=4)",
		"gen:forkjoin(phases=0)",
		"gen:pipeline(depth=65)",
		"gen:random(types=17)",
		"gen:forkjoin(mean=1)",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// The gen: prefix is optional; whitespace around knobs is tolerated.
	for _, ok := range []string{"forkjoin", "gen:forkjoin", "gen:forkjoin( width=8 , depth=2 )"} {
		if _, err := Parse(ok); err != nil {
			t.Errorf("Parse(%q): %v", ok, err)
		}
	}
}

// TestBenchLookup: scenario specs resolve through the benchmark registry
// and honour its Build contract (scaling, validation, canonical naming).
func TestBenchLookup(t *testing.T) {
	spec, err := bench.ByName("gen:divide(tasks=256,size=heavytail)")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Types != 3 {
		t.Errorf("divide spec declares %d types, want 3", spec.Types)
	}
	prog, err := spec.Build(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "gen:divide(tasks=256,size=heavytail)" {
		t.Errorf("program name %q is not the canonical spec", prog.Name)
	}
	if prog.NumTypes() != 3 {
		t.Errorf("program has %d types, want 3", prog.NumTypes())
	}
	if _, err := bench.ByName("gen:nope"); err == nil {
		t.Error("unknown family resolved through bench.ByName")
	}
	if !contains(bench.Schemes(), Scheme) {
		t.Errorf("bench.Schemes() = %v does not list %q", bench.Schemes(), Scheme)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestSpecDefaultsCanonical: a scenario at pure defaults canonicalises to
// the bare family name.
func TestSpecDefaultsCanonical(t *testing.T) {
	for _, fam := range Families() {
		sc := &Scenario{Family: fam, Knobs: DefaultKnobs()}
		if got, want := sc.Spec(), "gen:"+fam.Name; got != want {
			t.Errorf("default spec %q, want %q", got, want)
		}
		if !strings.HasPrefix(sc.Spec(), Scheme+":") {
			t.Errorf("spec %q lacks scheme prefix", sc.Spec())
		}
	}
}
