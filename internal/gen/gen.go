// Package gen is a seeded, property-driven synthetic workload generator:
// composable DAG pattern families (fork-join, pipeline, wavefront,
// divide-and-conquer, reduction tree, irregular random-token graphs, deep
// chains) expressed over trace.Program, with orthogonal knobs for
// task-size distributions (log-uniform, bimodal, heavy-tail), per-type
// behaviour variability, phase changes mid-program and input dependence
// (instance attributes drawn from a latent input seed).
//
// The paper validates TaskPoint on 12-19 fixed benchmarks and names
// input-dependent task behaviour (dedup, freqmine) as the residual failure
// mode — exactly the structure a fixed registry under-samples. This
// package manufactures adversarial scenarios on demand so the corpus
// harness (gen/corpus) can measure where each sampling policy's error and
// CI coverage actually break.
//
// A scenario is named by a spec string in the strict
// "gen:family(knob=value,...)" grammar (see Parse); the package registers
// a bench.Resolver for the "gen" scheme, so scenario names work anywhere a
// Table I benchmark name does: bench.ByName, results.Runner, sweep
// campaigns, cmd/tracegen.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"taskpoint/internal/trace"
)

// SizeDist selects the task-size (dynamic instruction count) distribution.
type SizeDist uint8

// Supported size distributions.
const (
	// SizeLogUniform draws sizes log-uniformly over [Mean/8, Mean*8] —
	// the paper's size-class stressor.
	SizeLogUniform SizeDist = iota
	// SizeFixed gives every instance exactly Mean instructions.
	SizeFixed
	// SizeBimodal mixes a small mode (80% at Mean/3) with a large one
	// (20% at 4*Mean) — dedup-like duplicate/unique behaviour.
	SizeBimodal
	// SizeHeavyTail draws from a Pareto(α=1.5) tail — freqmine-like
	// subtree mining where a few instances dominate total work.
	SizeHeavyTail
	numSizeDists
)

// String returns the distribution name used in spec strings.
func (d SizeDist) String() string {
	switch d {
	case SizeLogUniform:
		return "loguniform"
	case SizeFixed:
		return "fixed"
	case SizeBimodal:
		return "bimodal"
	case SizeHeavyTail:
		return "heavytail"
	default:
		return fmt.Sprintf("sizedist(%d)", uint8(d))
	}
}

// ParseSizeDist is the inverse of SizeDist.String.
func ParseSizeDist(s string) (SizeDist, error) {
	for d := SizeDist(0); d < numSizeDists; d++ {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown size distribution %q (want loguniform, fixed, bimodal or heavytail)", s)
}

// Knobs are the orthogonal scenario parameters. Every family accepts the
// full set; structural knobs (Width, Depth, Types) are interpreted
// per family and ignored where they have no meaning.
type Knobs struct {
	// Tasks is the approximate instance count at scale 1.
	Tasks int
	// Width is the parallelism degree: workers per fork-join round,
	// chain count, dependency window radius of the irregular family.
	Width int
	// Depth is the stage/level count: pipeline stages, tree depth.
	Depth int
	// Types is the task-type count of the irregular family.
	Types int
	// Size selects the task-size distribution.
	Size SizeDist
	// Mean is the scale parameter of the size distribution, in dynamic
	// instructions per task.
	Mean int64
	// CV is the per-type behaviour variability across instances: a
	// coefficient-of-variation-style multiplicative jitter on size and
	// ILP, which turns into per-type IPC variance.
	CV float64
	// Phases is the number of behaviour regimes over program duration;
	// each phase rescales per-type size and memory intensity, stressing
	// resampling policies the way program phases do.
	Phases int
	// InputDep in [0,1] is the input-dependence strength: each instance
	// draws a latent input value that shifts its size, ILP and memory
	// intensity, so instances of one type differ in ways no per-type
	// history can predict (the paper's dedup/freqmine failure mode).
	InputDep float64
}

// DefaultKnobs returns the knob defaults every unspecified spec key takes.
func DefaultKnobs() Knobs {
	return Knobs{
		Tasks: 512, Width: 16, Depth: 8, Types: 3,
		Size: SizeLogUniform, Mean: 2600, CV: 0.1, Phases: 1, InputDep: 0,
	}
}

// Validate checks every knob range. Specs with out-of-range knobs are
// rejected, never clamped.
func (k *Knobs) Validate() error {
	switch {
	case k.Tasks < 8 || k.Tasks > 1<<20:
		return fmt.Errorf("gen: tasks=%d out of [8, %d]", k.Tasks, 1<<20)
	case k.Width < 1 || k.Width > 4096:
		return fmt.Errorf("gen: width=%d out of [1, 4096]", k.Width)
	case k.Depth < 1 || k.Depth > 64:
		return fmt.Errorf("gen: depth=%d out of [1, 64]", k.Depth)
	case k.Types < 1 || k.Types > 16:
		return fmt.Errorf("gen: types=%d out of [1, 16]", k.Types)
	case k.Size < 0 || k.Size >= numSizeDists:
		return fmt.Errorf("gen: invalid size distribution %d", k.Size)
	case k.Mean < 64 || k.Mean > 1<<20:
		return fmt.Errorf("gen: mean=%d out of [64, %d]", k.Mean, 1<<20)
	// The float ranges are phrased positively so NaN — which fails every
	// comparison — is rejected too, not silently accepted.
	case !(k.CV >= 0 && k.CV <= 1):
		return fmt.Errorf("gen: cv=%v out of [0, 1]", k.CV)
	case k.Phases < 1 || k.Phases > 16:
		return fmt.Errorf("gen: phases=%d out of [1, 16]", k.Phases)
	case !(k.InputDep >= 0 && k.InputDep <= 1):
		return fmt.Errorf("gen: inputdep=%v out of [0, 1]", k.InputDep)
	}
	return nil
}

// node is one task of a family shape: its type index and the indices of
// the earlier nodes it depends on. Shapes emit nodes in creation order, so
// every predecessor index is smaller than the node's own index and the
// derived task graph is acyclic by construction.
type node struct {
	typ   int
	preds []int32
}

// Family is one DAG pattern family.
type Family struct {
	// Name is the family name used in spec strings ("forkjoin").
	Name string
	// Blurb is a one-line description for listings.
	Blurb string
	// typeNames returns the task-type names the family declares for the
	// given knobs; instance counts per type depend on the shape.
	typeNames func(k Knobs) []string
	// shape emits roughly n nodes in creation order. The rng is the
	// scenario's seeded stream; shapes that need no randomness ignore it.
	shape func(k Knobs, n int, rng *rand.Rand) []node
}

// Scenario is a fully parameterised generated workload: a family plus its
// knobs. Build it directly or via Parse.
type Scenario struct {
	Family *Family
	Knobs  Knobs
}

// --- materialisation -------------------------------------------------------

// Address-space layout of generated programs, disjoint from the registry
// generators' ranges: private per-instance blocks from genPrivateBase,
// per-type shared regions from genSharedBase.
const (
	genPrivateBase  = uint64(1) << 33
	genPrivateSpace = uint64(1) << 20
	genSharedBase   = uint64(3) << 44
	genSharedSpace  = uint64(1) << 30
	// genTokenBase keeps dependency tokens of generated programs in a
	// range of their own; node i's output token is genTokenBase+i.
	genTokenBase = uint64(7) << 40
)

// typeProfile is the drawn behaviour of one task type: the base memory/ILP
// character, an input-dependence response, and per-phase gains.
type typeProfile struct {
	mem, store, dep, fp float64
	pat                 trace.Pattern
	stride              int64
	foot                uint64
	shared              uint64 // shared region base; 0 = private per instance
	atomic              bool
	bins                uint64 // shared atomic-bin region when atomic

	sizeGain []float64 // per-phase size multiplier (phase 0 = 1)
	memShift []float64 // per-phase additive memory-ratio shift
}

// drawProfiles draws one behaviour profile per task type from the
// scenario's rng stream.
func drawProfiles(k Knobs, types int, rng *rand.Rand) []typeProfile {
	var nextShared uint64
	shared := func() uint64 {
		a := genSharedBase + nextShared*genSharedSpace
		nextShared++
		return a
	}
	out := make([]typeProfile, types)
	for t := range out {
		p := &out[t]
		p.mem = 0.05 + 0.25*rng.Float64()
		p.store = 0.5 * rng.Float64()
		p.dep = 2 + 6*rng.Float64()
		p.fp = 0.6 * rng.Float64()
		p.pat = trace.Pattern(rng.IntN(4))
		p.stride = []int64{8, 16, 64}[rng.IntN(3)]
		p.foot = uint64(4<<10) << rng.IntN(6) // 4 KiB .. 128 KiB
		if rng.Float64() < 0.3 {
			p.shared = shared()
		}
		if rng.Float64() < 0.1 {
			p.atomic = true
			p.bins = shared()
		}
		p.sizeGain = make([]float64, k.Phases)
		p.memShift = make([]float64, k.Phases)
		p.sizeGain[0] = 1
		for ph := 1; ph < k.Phases; ph++ {
			p.sizeGain[ph] = math.Exp(1.4*rng.Float64() - 0.7)
			p.memShift[ph] = 0.1*rng.Float64() - 0.05
		}
	}
	return out
}

// drawSize draws a task size from the knob-selected distribution.
func drawSize(k Knobs, rng *rand.Rand) float64 {
	m := float64(k.Mean)
	switch k.Size {
	case SizeFixed:
		return m
	case SizeBimodal:
		jit := 1 + 0.1*(2*rng.Float64()-1)
		if rng.Float64() < 0.8 {
			return m / 3 * jit
		}
		return 4 * m * jit
	case SizeHeavyTail:
		// Pareto(α=1.5) with x_m = Mean/3, clamped: a few instances
		// dominate total work, most are small.
		x := m / 3 / math.Pow(1-rng.Float64(), 1/1.5)
		return math.Min(x, 64*m)
	default: // SizeLogUniform
		lo, hi := m/8, m*8
		return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
	}
}

func clampF(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }

// build materialises the scenario at roughly n instances. It is the
// bench.Spec build function: deterministic per (knobs, seed), independent
// of everything else.
func (sc *Scenario) build(n int, seed uint64) *trace.Program {
	k := sc.Knobs
	// Mix the canonical spec into the seed so every scenario of a corpus
	// is a decorrelated draw even when the campaign uses one seed.
	rng := rand.New(rand.NewPCG(seed^specHash(sc.Spec()), 0x9e3779b97f4a7c15))

	names := sc.Family.typeNames(k)
	prog := &trace.Program{Name: sc.Spec()}
	for _, nm := range names {
		prog.Types = append(prog.Types, trace.TypeInfo{Name: nm})
	}
	profiles := drawProfiles(k, len(names), rng)
	nodes := sc.Family.shape(k, n, rng)

	var nextPriv uint64
	private := func() uint64 {
		a := genPrivateBase + nextPriv*genPrivateSpace
		nextPriv++
		return a
	}
	for i, nd := range nodes {
		p := &profiles[nd.typ]
		phase := i * k.Phases / len(nodes)

		// Latent input: unobservable from the task type, it shifts
		// size, ILP and memory intensity together — per-type histories
		// cannot predict it.
		u := rng.Float64()
		size := drawSize(k, rng) * p.sizeGain[phase]
		size *= math.Exp(k.InputDep * (2*u - 1) * math.Log(3))
		size *= 1 + k.CV*(2*rng.Float64()-1)
		instr := int64(clampF(size, 32, 4<<20))

		dep := p.dep * (1 + 0.5*k.InputDep*(2*u-1)) * (1 + 0.5*k.CV*(2*rng.Float64()-1))
		mem := clampF(p.mem+p.memShift[phase]+0.6*k.InputDep*(u-0.5)*p.mem, 0, 0.95)
		fp := clampF(p.fp*(1+0.3*k.CV*(2*rng.Float64()-1)), 0, 1)

		base := p.shared
		if base == 0 {
			base = private()
		}
		segs := make([]trace.Segment, 0, 2)
		main := trace.Segment{
			N: instr, MemRatio: mem, StoreFrac: p.store,
			Pat: p.pat, Base: base, Footprint: p.foot,
			Stride: p.stride, DepDist: clampF(dep, 1, 16), FPFrac: fp,
		}
		if p.atomic && instr >= 160 {
			atom := instr / 5
			main.N = instr - atom
			segs = append(segs, main, trace.Segment{
				N: atom, MemRatio: 0.2, StoreFrac: 1,
				Pat: trace.PatRandom, Base: p.bins, Footprint: 16 << 10,
				Atomic: true, DepDist: 8,
			})
		} else {
			segs = append(segs, main)
		}

		in := make([]uint64, 0, len(nd.preds))
		for _, pr := range nd.preds {
			in = append(in, genTokenBase+uint64(pr))
		}
		prog.Instances = append(prog.Instances, trace.Instance{
			ID: int32(i), Type: trace.TypeID(nd.typ), Seed: rng.Uint64(),
			Segments: segs, In: in, Out: []uint64{genTokenBase + uint64(i)},
		})
	}
	return prog
}

// specHash is FNV-1a over the canonical spec string, mixed into the build
// seed so distinct scenarios decorrelate under a shared campaign seed.
func specHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
