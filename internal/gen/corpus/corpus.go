// Package corpus is the accuracy-stress harness over the scenario
// generator: it draws N scenarios across the family × knob grid
// deterministically from a master seed, runs every sampling policy
// against the detailed reference in parallel across the sweep engine's
// worker pool (scenarios are embarrassingly parallel while each
// simulation stays single-threaded), and emits per-scenario error,
// CI-coverage and speedup records in the exact JSONL/CSV shape
// internal/sweep already uses — so campaigns can sweep over generated
// workloads, not just the Table I registry.
package corpus

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"

	"taskpoint/internal/gen"
	"taskpoint/internal/results"
	"taskpoint/internal/stats"
	"taskpoint/internal/sweep"
)

// Spec declares a corpus campaign. Zero values select the defaults noted
// per field; Draw and Run normalise them.
type Spec struct {
	// Name labels the campaign.
	Name string `json:"name,omitempty"`
	// Scenarios is N, the number of generated scenarios.
	Scenarios int `json:"scenarios"`
	// Families restricts the family pool (default: every gen family).
	// Scenarios round-robin over the pool so each family is covered.
	Families []string `json:"families,omitempty"`
	// Arch is the simulated architecture (default high-performance).
	Arch string `json:"arch,omitempty"`
	// Threads is the simulated thread count (default 4).
	Threads int `json:"threads,omitempty"`
	// Policies are the sampling policies under test (default lazy,
	// periodic(64) and stratified(256); the default period is sized so
	// periodic resampling actually fires at corpus task counts — the
	// paper's periodic(250) cannot trigger within ~50-160 fast
	// instances per thread and would duplicate lazy cell for cell).
	Policies []string `json:"policies,omitempty"`
	// Seed is the master seed: it drives both the knob draws and every
	// scenario's generative model (default 42).
	Seed uint64 `json:"seed,omitempty"`
	// MinTasks and MaxTasks bound the per-scenario instance count draw
	// (default 192..640).
	MinTasks int `json:"min_tasks,omitempty"`
	MaxTasks int `json:"max_tasks,omitempty"`
	// W and H override the paper's sampling parameters when positive.
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
}

// DefaultSpec returns a corpus campaign of n scenarios at the default
// grid: all seven families, high-performance architecture, 4 threads,
// lazy/periodic/stratified policies, master seed 42.
func DefaultSpec(n int) Spec { return Spec{Scenarios: n} }

// Normalized returns the spec with every defaulted field filled — what
// Draw and Run actually execute, and the single source of truth for
// reports that record the campaign configuration.
func (s Spec) Normalized() Spec {
	if s.Name == "" {
		s.Name = "corpus"
	}
	if len(s.Families) == 0 {
		s.Families = gen.FamilyNames()
	}
	if s.Arch == "" {
		s.Arch = string(results.HighPerf)
	}
	if s.Threads == 0 {
		s.Threads = 4
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"lazy", "periodic(64)", "stratified(256)"}
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.MinTasks == 0 {
		s.MinTasks = 192
	}
	if s.MaxTasks == 0 {
		s.MaxTasks = 640
	}
	return s
}

// Validate checks the campaign after normalisation: the draw dimensions
// directly, and the architecture/threads/policies/sampling parameters
// through the sweep spec the corpus expands into.
func (s Spec) Validate() error {
	if err := s.validateDraw(); err != nil {
		return err
	}
	sw, err := s.SweepSpec()
	if err != nil {
		return err
	}
	return sw.Validate()
}

// validateDraw checks the fields Draw consumes.
func (s Spec) validateDraw() error {
	n := s.Normalized()
	if n.Scenarios < 1 {
		return fmt.Errorf("corpus: scenario count %d must be >= 1", s.Scenarios)
	}
	for _, f := range n.Families {
		if _, err := gen.FamilyByName(f); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	if n.MinTasks < 8 || n.MaxTasks < n.MinTasks {
		return fmt.Errorf("corpus: task range [%d, %d] invalid (want 8 <= min <= max)", n.MinTasks, n.MaxTasks)
	}
	return nil
}

// Draw expands the campaign into its N scenarios. The draw is
// deterministic per master seed and — because each scenario derives its
// own PCG stream from (seed, index) — a prefix of a larger corpus is
// identical to a smaller one, so fixed-seed gate corpora stay stable as
// campaigns grow. Duplicate knob draws are nudged until every canonical
// spec is unique (specs are cache and resume keys downstream).
func (s Spec) Draw() ([]*gen.Scenario, error) {
	n := s.Normalized()
	if err := n.validateDraw(); err != nil {
		return nil, err
	}
	fams := make([]*gen.Family, len(n.Families))
	for i, name := range n.Families {
		fams[i], _ = gen.FamilyByName(name)
	}
	widths := []int{4, 8, 16, 32}
	seen := make(map[string]bool, n.Scenarios)
	out := make([]*gen.Scenario, 0, n.Scenarios)
	for i := 0; i < n.Scenarios; i++ {
		rng := rand.New(rand.NewPCG(n.Seed, 0xC0FFEE^uint64(i)))
		k := gen.DefaultKnobs()
		k.Tasks = n.MinTasks + rng.IntN(n.MaxTasks-n.MinTasks+1)
		k.Width = widths[rng.IntN(len(widths))]
		k.Depth = 2 + rng.IntN(9)
		k.Types = 2 + rng.IntN(5)
		k.Size = gen.SizeDist(rng.IntN(4))
		k.Mean = 2000 + int64(rng.IntN(1601))
		k.CV = float64(rng.IntN(51)) / 100
		k.Phases = 1 + rng.IntN(3)
		k.InputDep = float64(rng.IntN(101)) / 100
		sc := &gen.Scenario{Family: fams[i%len(fams)], Knobs: k}
		for seen[sc.Spec()] {
			sc.Knobs.Tasks++
		}
		seen[sc.Spec()] = true
		out = append(out, sc)
	}
	return out, nil
}

// SweepSpec expands the corpus into the design-space sweep it is: the N
// scenario specs as the benchmark dimension, one architecture, one thread
// count, the policies under test, the master seed.
func (s Spec) SweepSpec() (sweep.Spec, error) {
	n := s.Normalized()
	scs, err := n.Draw()
	if err != nil {
		return sweep.Spec{}, err
	}
	benchNames := make([]string, len(scs))
	for i, sc := range scs {
		benchNames[i] = sc.Spec()
	}
	return sweep.Spec{
		Name:       n.Name,
		Scale:      1,
		Benchmarks: benchNames,
		Archs:      []string{n.Arch},
		Threads:    []int{n.Threads},
		Policies:   n.Policies,
		Seeds:      []uint64{n.Seed},
		W:          n.W,
		H:          n.H,
	}, nil
}

// Run executes the corpus campaign across a pool of workers goroutines,
// streaming one JSONL record per completed (scenario, policy) cell to out
// (nil discards) and reporting progress through onRecord (also nil-able).
// completed records from a previous run (sweep.LoadCompleted) are skipped,
// making corpora resumable exactly like sweeps. Records come back in
// deterministic scenario-major order regardless of worker count.
func Run(s Spec, workers int, out io.Writer, completed map[string]sweep.Record,
	onRecord func(done, total int, rec sweep.Record)) ([]sweep.Record, error) {
	return RunContext(context.Background(), s, workers, out, completed, onRecord)
}

// RunContext is Run with cooperative cancellation: the corpus is a thin
// adapter over the sweep engine — itself an adapter over the unified
// experiment engine — so cancelling ctx stops in-flight simulations
// promptly and fails the remaining cells with ctx's error. The optional
// tune functions adjust the underlying sweep engine before it runs
// (e.g. attaching a flight recorder).
func RunContext(ctx context.Context, s Spec, workers int, out io.Writer, completed map[string]sweep.Record,
	onRecord func(done, total int, rec sweep.Record), tune ...func(*sweep.Engine)) ([]sweep.Record, error) {
	sw, err := s.SweepSpec()
	if err != nil {
		return nil, err
	}
	eng, err := sweep.New(sw, workers)
	if err != nil {
		return nil, err
	}
	eng.OnRecord = onRecord
	for _, fn := range tune {
		fn(eng)
	}
	return eng.RunContext(ctx, out, completed)
}

// PolicySummary aggregates one policy over every scenario of a corpus —
// the harness's headline: where does the policy's error and CI coverage
// actually break.
type PolicySummary struct {
	Policy string `json:"policy"`
	// Scenarios is the number of corpus cells the policy ran.
	Scenarios int `json:"scenarios"`
	// MeanErrPct and WorstErrPct summarise execution-time error against
	// the detailed reference; WorstBench names the scenario behind the
	// worst case.
	MeanErrPct  float64 `json:"mean_err_pct"`
	WorstErrPct float64 `json:"worst_err_pct"`
	WorstBench  string  `json:"worst_bench,omitempty"`
	// GeoSpeedupDetail and MeanDetailFrac summarise the sampling
	// speedup.
	GeoSpeedupDetail float64 `json:"geo_speedup_detail"`
	MeanDetailFrac   float64 `json:"mean_detail_frac"`
	// CICells counts cells reporting a confidence interval; CICovered of
	// them covered the detailed reference, CoverRate is their ratio and
	// MeanCIRelWidth the mean relative interval width.
	CICells        int     `json:"ci_cells,omitempty"`
	CICovered      int     `json:"ci_covered,omitempty"`
	CoverRate      float64 `json:"cover_rate,omitempty"`
	MeanCIRelWidth float64 `json:"mean_ci_rel_width,omitempty"`
}

// Summarize folds corpus records into per-policy summaries, sorted by
// policy name.
func Summarize(recs []sweep.Record) []PolicySummary {
	groups := make(map[string][]sweep.Record)
	for _, r := range recs {
		groups[r.Policy] = append(groups[r.Policy], r)
	}
	names := make([]string, 0, len(groups))
	for p := range groups {
		names = append(names, p)
	}
	sort.Strings(names)
	out := make([]PolicySummary, 0, len(names))
	for _, p := range names {
		group := groups[p]
		sum := PolicySummary{Policy: p, Scenarios: len(group)}
		var errs, det, frac, ciw []float64
		for _, r := range group {
			errs = append(errs, r.ErrPct)
			det = append(det, r.SpeedupDetail)
			frac = append(frac, r.DetailFraction)
			if r.ErrPct > sum.WorstErrPct {
				sum.WorstErrPct = r.ErrPct
				sum.WorstBench = r.Bench
			}
			if r.CIStrata > 0 {
				ciw = append(ciw, r.CIRelWidth)
				sum.CICells++
				if r.CICovered {
					sum.CICovered++
				}
			}
		}
		sum.MeanErrPct = stats.Mean(errs)
		sum.GeoSpeedupDetail = stats.GeoMean(det)
		sum.MeanDetailFrac = stats.Mean(frac)
		if sum.CICells > 0 {
			sum.CoverRate = float64(sum.CICovered) / float64(sum.CICells)
			sum.MeanCIRelWidth = stats.Mean(ciw)
		}
		out = append(out, sum)
	}
	return out
}

// RenderSummary renders per-policy corpus summaries as an aligned text
// table, the cmd/corpus report.
func RenderSummary(title string, sums []PolicySummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %9s %10s %10s %9s %9s %9s %9s\n",
		"policy", "scenarios", "mean-err%", "worst-err%", "x-detail", "%detail", "ci-width%", "covered")
	for _, s := range sums {
		ciWidth, covered := "-", "-"
		if s.CICells > 0 {
			ciWidth = fmt.Sprintf("%.2f", 100*s.MeanCIRelWidth)
			covered = fmt.Sprintf("%d/%d", s.CICovered, s.CICells)
		}
		fmt.Fprintf(&b, "%-16s %9d %10.2f %10.2f %9.1f %9.1f %9s %9s\n",
			s.Policy, s.Scenarios, s.MeanErrPct, s.WorstErrPct,
			s.GeoSpeedupDetail, 100*s.MeanDetailFrac, ciWidth, covered)
	}
	worstIdx := -1
	for i, s := range sums {
		if s.WorstBench != "" && (worstIdx < 0 || s.WorstErrPct > sums[worstIdx].WorstErrPct) {
			worstIdx = i
		}
	}
	if worstIdx >= 0 {
		fmt.Fprintf(&b, "worst cell: %s at %.2f%% (%s)\n",
			sums[worstIdx].Policy, sums[worstIdx].WorstErrPct, sums[worstIdx].WorstBench)
	}
	return b.String()
}
