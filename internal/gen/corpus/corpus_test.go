package corpus

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strconv"
	"testing"

	"taskpoint/internal/sweep"
)

// smallSpec is a corpus small enough for unit tests: 6 scenarios covering
// 6 families at reduced task counts.
func smallSpec() Spec {
	return Spec{Scenarios: 6, MinTasks: 96, MaxTasks: 160, Threads: 2,
		Policies: []string{"lazy", "stratified(96)"}}
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec(10).Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{Scenarios: 0},
		{Scenarios: 5, Families: []string{"nope"}},
		{Scenarios: 5, MinTasks: 4, MaxTasks: 2},
		{Scenarios: 5, Policies: []string{"bogus(1)"}},
		{Scenarios: 5, Arch: "quantum"},
		{Scenarios: 5, Threads: -2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

// TestDrawDeterministicPrefix: the draw is deterministic per seed, unique
// per scenario, and a smaller corpus is a prefix of a larger one at the
// same seed — the property that keeps fixed-seed gate corpora stable.
func TestDrawDeterministicPrefix(t *testing.T) {
	small, err := DefaultSpec(10).Draw()
	if err != nil {
		t.Fatal(err)
	}
	large, err := DefaultSpec(50).Draw()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, sc := range large {
		if seen[sc.Spec()] {
			t.Fatalf("duplicate scenario %q", sc.Spec())
		}
		seen[sc.Spec()] = true
		if i < len(small) && small[i].Spec() != sc.Spec() {
			t.Fatalf("scenario %d differs between corpus sizes: %q vs %q", i, small[i].Spec(), sc.Spec())
		}
	}
	again, err := DefaultSpec(10).Draw()
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if small[i].Spec() != again[i].Spec() {
			t.Fatalf("draw not deterministic at %d", i)
		}
	}
	// Every family of the pool appears in a 10-scenario corpus.
	fams := map[string]bool{}
	for _, sc := range small {
		fams[sc.Family.Name] = true
	}
	if len(fams) != 7 {
		t.Errorf("10-scenario corpus covers %d families, want all 7", len(fams))
	}
}

// normalizeWall clears host wall-clock dependent fields, the only
// non-deterministic part of a record.
func normalizeWall(recs []sweep.Record) []sweep.Record {
	out := make([]sweep.Record, len(recs))
	for i, r := range recs {
		r.SampledWallMS, r.DetailedWallMS, r.SpeedupWall = 0, 0, 0
		out[i] = r
	}
	return out
}

// TestRunParallelDeterminism: the same corpus seed must yield identical
// simulated records (modulo wall clocks) regardless of worker count —
// run under -race in CI, this also exercises the worker pool for data
// races.
func TestRunParallelDeterminism(t *testing.T) {
	one, err := Run(smallSpec(), 1, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(smallSpec(), 4, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := normalizeWall(one), normalizeWall(four)
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("record %d differs between 1 and 4 workers:\n%+v\nvs\n%+v", i, a[i], b[i])
			}
		}
		t.Fatal("records differ between 1 and 4 workers")
	}
}

// TestJSONLRoundTripAndResume: records stream as JSONL that loads back
// bit-identically, and a resumed run returns the loaded records without
// re-simulating different values.
func TestJSONLRoundTripAndResume(t *testing.T) {
	var buf bytes.Buffer
	recs, err := Run(smallSpec(), 2, &buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := sweep.LoadCompleted(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(recs) {
		t.Fatalf("loaded %d records, wrote %d", len(loaded), len(recs))
	}
	for _, r := range recs {
		got, ok := loaded[r.Key]
		if !ok {
			t.Fatalf("record %q missing after round trip", r.Key)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("record %q changed in JSONL round trip:\n%+v\nvs\n%+v", r.Key, got, r)
		}
	}
	// Resume: every cell completed, so no new simulation runs and the
	// records come back as loaded.
	resumed, err := Run(smallSpec(), 2, nil, loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, recs) {
		t.Fatal("resumed corpus differs from original records")
	}
}

// TestCSVExportRoundTrip: the CSV export carries one row per record with
// the numeric columns surviving to reasonable precision.
func TestCSVExportRoundTrip(t *testing.T) {
	recs, err := Run(smallSpec(), 2, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(recs)+1 {
		t.Fatalf("%d CSV rows for %d records", len(rows)-1, len(recs))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for i, r := range recs {
		row := rows[i+1]
		if row[col["key"]] != r.Key {
			t.Fatalf("row %d key %q, want %q", i, row[col["key"]], r.Key)
		}
		for name, want := range map[string]float64{
			"err_pct":        r.ErrPct,
			"sampled_cycles": r.SampledCycles,
			"ci_lo":          r.CILo,
			"ci_hi":          r.CIHi,
		} {
			got, err := strconv.ParseFloat(row[col[name]], 64)
			if err != nil {
				t.Fatalf("row %d %s: %v", i, name, err)
			}
			if diff := math.Abs(got - want); diff > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("row %d %s = %v, want %v", i, name, got, want)
			}
		}
		covered := row[col["ci_covered"]] == "true"
		if covered != r.CICovered {
			t.Fatalf("row %d ci_covered %v, want %v", i, covered, r.CICovered)
		}
	}
}

// TestSummarizeCoverageAccounting: per-policy summaries fold CI cells and
// worst cases correctly.
func TestSummarizeCoverageAccounting(t *testing.T) {
	recs := []sweep.Record{
		{Policy: "lazy", Bench: "a", ErrPct: 2, SpeedupDetail: 4, DetailFraction: 0.2},
		{Policy: "lazy", Bench: "b", ErrPct: 6, SpeedupDetail: 1, DetailFraction: 0.4},
		{Policy: "stratified(96)", Bench: "a", ErrPct: 1, SpeedupDetail: 2, DetailFraction: 0.5,
			CIStrata: 3, CIRelWidth: 0.04, CICovered: true},
		{Policy: "stratified(96)", Bench: "b", ErrPct: 3, SpeedupDetail: 2, DetailFraction: 0.5,
			CIStrata: 4, CIRelWidth: 0.08, CICovered: false},
	}
	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	lazy, strat := sums[0], sums[1]
	if lazy.Policy != "lazy" || strat.Policy != "stratified(96)" {
		t.Fatalf("summary order %q, %q", lazy.Policy, strat.Policy)
	}
	if lazy.WorstErrPct != 6 || lazy.WorstBench != "b" || lazy.MeanErrPct != 4 {
		t.Errorf("lazy summary %+v", lazy)
	}
	if lazy.CICells != 0 || lazy.CoverRate != 0 {
		t.Errorf("lazy has CI cells: %+v", lazy)
	}
	if strat.CICells != 2 || strat.CICovered != 1 || strat.CoverRate != 0.5 {
		t.Errorf("stratified CI accounting %+v", strat)
	}
	if math.Abs(strat.MeanCIRelWidth-0.06) > 1e-12 {
		t.Errorf("mean CI width %v, want 0.06", strat.MeanCIRelWidth)
	}
	out := RenderSummary("t", sums)
	if out == "" || !bytes.Contains([]byte(out), []byte("worst cell: lazy at 6.00%")) {
		t.Errorf("rendered summary missing worst cell:\n%s", out)
	}
}

// TestCorpusAccuracyGate is the CI accuracy gate: a fixed-seed
// 10-scenario corpus whose per-policy mean error must stay under
// checked-in thresholds, and whose stratified confidence intervals must
// keep covering the detailed reference. A regression in the sampler, the
// stratified estimator or the generator moves these numbers.
func TestCorpusAccuracyGate(t *testing.T) {
	recs, err := Run(DefaultSpec(10), 4, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := map[string]float64{
		"lazy":            45,
		"periodic(64)":    45,
		"stratified(256)": 8,
	}
	sums := Summarize(recs)
	if len(sums) != len(thresholds) {
		t.Fatalf("%d policies in gate corpus, want %d", len(sums), len(thresholds))
	}
	for _, s := range sums {
		limit, ok := thresholds[s.Policy]
		if !ok {
			t.Errorf("unexpected policy %q in gate corpus", s.Policy)
			continue
		}
		if s.Scenarios != 10 {
			t.Errorf("%s ran %d scenarios, want 10", s.Policy, s.Scenarios)
		}
		if s.MeanErrPct > limit {
			t.Errorf("%s mean error %.2f%% exceeds gate threshold %.0f%%", s.Policy, s.MeanErrPct, limit)
		}
		if s.CICells > 0 && s.CoverRate < 0.9 {
			t.Errorf("%s CI coverage %.0f%% below 90%% gate", s.Policy, 100*s.CoverRate)
		}
	}
}
