package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"taskpoint/internal/bench"
)

// Families returns the DAG pattern families in fixed order. The slice and
// its entries are shared; callers must not modify them.
func Families() []*Family { return families }

// FamilyNames returns the family names in Families order.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}

// FamilyByName returns the named family. The error wraps
// bench.ErrUnknownName: an unknown family is a name problem a listing
// fixes, unlike a malformed knob.
func FamilyByName(name string) (*Family, error) {
	for _, f := range families {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("gen: unknown family %q (want one of %v): %w", name, FamilyNames(), bench.ErrUnknownName)
}

var families = []*Family{
	{
		Name:  "forkjoin",
		Blurb: "repeated fork-join rounds: width workers per round, a join barrier between rounds",
		typeNames: func(Knobs) []string {
			return []string{"fork_worker", "join_barrier"}
		},
		shape: shapeForkJoin,
	},
	{
		Name:  "pipeline",
		Blurb: "linear pipeline: depth stages over a stream of items, in-order per stage and per item",
		typeNames: func(k Knobs) []string {
			stages := k.Depth
			if stages > maxPipelineTypes {
				stages = maxPipelineTypes
			}
			out := make([]string, stages)
			for s := range out {
				out[s] = fmt.Sprintf("stage%d", s)
			}
			return out
		},
		shape: shapePipeline,
	},
	{
		Name:  "wavefront",
		Blurb: "2D wavefront/stencil sweep: cell (i,j) waits on (i-1,j) and (i,j-1)",
		typeNames: func(Knobs) []string {
			return []string{"wave_edge", "wave_cell"}
		},
		shape: shapeWavefront,
	},
	{
		Name:  "divide",
		Blurb: "divide-and-conquer: binary split tree down, leaf work, merge tree back up",
		typeNames: func(Knobs) []string {
			return []string{"dac_split", "dac_leaf", "dac_merge"}
		},
		shape: shapeDivide,
	},
	{
		Name:  "reduce",
		Blurb: "reduction tree: wide leaf level, parallelism halves per combine level",
		typeNames: func(Knobs) []string {
			return []string{"reduce_leaf", "reduce_combine"}
		},
		shape: shapeReduce,
	},
	{
		Name:  "random",
		Blurb: "irregular random-token DAG: each task depends on a few random earlier tasks in a sliding window",
		typeNames: func(k Knobs) []string {
			out := make([]string, k.Types)
			for t := range out {
				out[t] = fmt.Sprintf("irr_t%d", t)
			}
			return out
		},
		shape: shapeRandom,
	},
	{
		Name:  "chains",
		Blurb: "width deep chains advancing in lockstep, with speculative cross-chain links",
		typeNames: func(Knobs) []string {
			return []string{"chain_step", "chain_bridge"}
		},
		shape: shapeChains,
	},
}

// maxPipelineTypes caps the pipeline's task-type count; deeper pipelines
// reuse the last type for their tail stages.
const maxPipelineTypes = 16

// shapeForkJoin emits rounds of Width parallel workers separated by join
// barriers; workers of round r+1 depend on round r's join.
func shapeForkJoin(k Knobs, n int, _ *rand.Rand) []node {
	nodes := make([]node, 0, n)
	prev := -1
	for len(nodes) < n {
		w := k.Width
		if rem := n - len(nodes); w > rem {
			w = rem
		}
		start := len(nodes)
		for j := 0; j < w; j++ {
			var preds []int32
			if prev >= 0 {
				preds = []int32{int32(prev)}
			}
			nodes = append(nodes, node{typ: 0, preds: preds})
		}
		if len(nodes) < n {
			preds := make([]int32, w)
			for j := range preds {
				preds[j] = int32(start + j)
			}
			nodes = append(nodes, node{typ: 1, preds: preds})
			prev = len(nodes) - 1
		}
	}
	return nodes
}

// shapePipeline emits items × Depth stages; task (item, stage) depends on
// the same item's previous stage and the same stage's previous item.
func shapePipeline(k Knobs, n int, _ *rand.Rand) []node {
	stages := k.Depth
	items := (n + stages - 1) / stages
	nodes := make([]node, 0, n)
	for i := 0; i < items && len(nodes) < n; i++ {
		for s := 0; s < stages && len(nodes) < n; s++ {
			var preds []int32
			if s > 0 {
				preds = append(preds, int32(i*stages+s-1))
			}
			if i > 0 {
				preds = append(preds, int32((i-1)*stages+s))
			}
			typ := s
			if typ >= maxPipelineTypes {
				typ = maxPipelineTypes - 1
			}
			nodes = append(nodes, node{typ: typ, preds: preds})
		}
	}
	return nodes
}

// shapeWavefront emits a row-major G×G grid; interior cells depend on
// their north and west neighbours. Boundary cells get their own type
// (different work on the sweep's leading edges).
func shapeWavefront(_ Knobs, n int, _ *rand.Rand) []node {
	g := int(math.Ceil(math.Sqrt(float64(n))))
	if g < 2 {
		g = 2
	}
	nodes := make([]node, 0, n)
	for i := 0; i < g && len(nodes) < n; i++ {
		for j := 0; j < g && len(nodes) < n; j++ {
			var preds []int32
			if i > 0 {
				preds = append(preds, int32((i-1)*g+j))
			}
			if j > 0 {
				preds = append(preds, int32(i*g+j-1))
			}
			typ := 1
			if i == 0 || j == 0 {
				typ = 0
			}
			nodes = append(nodes, node{typ: typ, preds: preds})
		}
	}
	return nodes
}

// shapeDivide emits a forest of full binary divide-and-conquer trees
// (split nodes top-down, a leaf level, merge nodes back up), each as deep
// as the Depth knob and the remaining task budget allow. Shallow depth
// knobs therefore yield many small independent recursions rather than one
// under-sized tree, keeping the instance count near n.
func shapeDivide(k Knobs, n int, _ *rand.Rand) []node {
	nodes := make([]node, 0, n)
	for len(nodes) < n {
		rem := n - len(nodes)
		d := 1
		for d+1 <= k.Depth && d < 18 && 3*(1<<(d+1))-2 <= rem {
			d++
		}
		base := len(nodes)
		// Split levels 0..d-1: level l starts at base + 2^l - 1 and has
		// 2^l nodes.
		for l := 0; l < d; l++ {
			for j := 0; j < 1<<l; j++ {
				var preds []int32
				if l > 0 {
					preds = []int32{int32(base + 1<<(l-1) - 1 + j/2)}
				}
				nodes = append(nodes, node{typ: 0, preds: preds})
			}
		}
		// Leaves: 2^d nodes, parents on split level d-1.
		leafBase := len(nodes)
		for j := 0; j < 1<<d; j++ {
			parent := int32(base + 1<<(d-1) - 1 + j/2)
			nodes = append(nodes, node{typ: 1, preds: []int32{parent}})
		}
		// Merge levels d-1 down to 0; level d-1 combines leaf pairs,
		// each higher merge combines the two merges below it.
		childBase := leafBase
		for l := d - 1; l >= 0; l-- {
			levelBase := len(nodes)
			for j := 0; j < 1<<l; j++ {
				nodes = append(nodes, node{typ: 2, preds: []int32{
					int32(childBase + 2*j), int32(childBase + 2*j + 1),
				}})
			}
			childBase = levelBase
		}
	}
	return nodes
}

// shapeReduce emits (n+1)/2 parallel leaves and a binary combine tree:
// the available parallelism halves every level, the structure that
// exercises resampling on parallelism change (paper Fig 4a).
func shapeReduce(_ Knobs, n int, _ *rand.Rand) []node {
	leaves := (n + 1) / 2
	if leaves < 2 {
		leaves = 2
	}
	nodes := make([]node, 0, 2*leaves-1)
	level := make([]int32, leaves)
	for j := range level {
		nodes = append(nodes, node{typ: 0})
		level[j] = int32(j)
	}
	for len(level) > 1 {
		next := level[:0:cap(level)]
		for i := 0; i < len(level); i += 2 {
			if i+1 >= len(level) {
				next = append(next, level[i]) // odd element carries over
				break
			}
			nodes = append(nodes, node{typ: 1, preds: []int32{level[i], level[i+1]}})
			next = append(next, int32(len(nodes)-1))
		}
		level = next
	}
	return nodes
}

// shapeRandom emits an irregular DAG: each task depends on 1-3 random
// earlier tasks within a window of 4*Width, except ~10% fresh roots.
// Task types are assigned randomly over the Types knob.
func shapeRandom(k Knobs, n int, rng *rand.Rand) []node {
	win := 4 * k.Width
	nodes := make([]node, 0, n)
	for i := 0; i < n; i++ {
		typ := rng.IntN(k.Types)
		var preds []int32
		if i > 0 && rng.Float64() >= 0.1 {
			lo := i - win
			if lo < 0 {
				lo = 0
			}
			indeg := 1 + rng.IntN(3)
			for j := 0; j < indeg; j++ {
				p := int32(lo + rng.IntN(i-lo))
				dup := false
				for _, q := range preds {
					if q == p {
						dup = true
						break
					}
				}
				if !dup {
					preds = append(preds, p)
				}
			}
		}
		nodes = append(nodes, node{typ: typ, preds: preds})
	}
	return nodes
}

// shapeChains emits Width independent chains advanced in lockstep; with
// probability ~8% a step additionally waits on another chain's tail
// (a speculative cross-link), and such bridge steps get their own type.
func shapeChains(k Knobs, n int, rng *rand.Rand) []node {
	c := k.Width
	if c > n {
		c = n
	}
	length := (n + c - 1) / c
	nodes := make([]node, 0, n)
	tails := make([]int, c)
	for i := range tails {
		tails[i] = -1
	}
	for s := 0; s < length && len(nodes) < n; s++ {
		for ch := 0; ch < c && len(nodes) < n; ch++ {
			var preds []int32
			typ := 0
			if tails[ch] >= 0 {
				preds = append(preds, int32(tails[ch]))
			}
			if s > 0 && c > 1 && rng.Float64() < 0.08 {
				o := rng.IntN(c)
				if o != ch && tails[o] >= 0 {
					preds = append(preds, int32(tails[o]))
					typ = 1
				}
			}
			nodes = append(nodes, node{typ: typ, preds: preds})
			tails[ch] = len(nodes) - 1
		}
	}
	return nodes
}
