package gen

import "math"

// Shrinks returns candidate one-step simplifications of the scenario, in a
// fixed deterministic order — the shrink hooks the estimator fuzzer's
// delta-debugging minimizer (internal/fuzz) walks. The steps follow the
// minimization protocol: sizes halve toward their validity floor (Tasks,
// Mean), phases drop toward 1, and every other knob steps toward its
// DefaultKnobs value (the default itself first, then a halving midpoint,
// then a single-unit step for fine-grained minima). Float knobs move on a
// 0.01 grid so canonical specs stay short.
//
// Two properties callers rely on, both enforced here and locked by
// TestShrinksProperties/FuzzShrinkSpec:
//
//   - every candidate is valid under the strict grammar: it Validates, and
//     Parse(c.Spec()) rebuilds it exactly;
//   - every candidate strictly decreases shrinkMeasure, so greedy
//     minimization over Shrinks terminates on every input.
func (sc *Scenario) Shrinks() []*Scenario {
	def := DefaultKnobs()
	k := sc.Knobs
	var out []*Scenario
	seen := map[Knobs]bool{k: true}
	add := func(m Knobs) {
		if seen[m] || m.Validate() != nil {
			return
		}
		seen[m] = true
		out = append(out, &Scenario{Family: sc.Family, Knobs: m})
	}
	// Sizes halve toward the floor of their valid range: the floor itself
	// first (the aggressive jump), then the halving step, then a unit step.
	for _, t := range []int{8, k.Tasks / 2, k.Tasks - 1} {
		if t < k.Tasks {
			m := k
			m.Tasks = t
			add(m)
		}
	}
	for _, mn := range []int64{64, k.Mean / 2, k.Mean - 1} {
		if mn < k.Mean {
			m := k
			m.Mean = mn
			add(m)
		}
	}
	// Structural knobs step toward the family defaults.
	addInt := func(cur, d int, set func(*Knobs, int)) {
		for _, v := range intSteps(cur, d) {
			m := k
			set(&m, v)
			add(m)
		}
	}
	addInt(k.Width, def.Width, func(m *Knobs, v int) { m.Width = v })
	addInt(k.Depth, def.Depth, func(m *Knobs, v int) { m.Depth = v })
	addInt(k.Types, def.Types, func(m *Knobs, v int) { m.Types = v })
	if k.Size != def.Size {
		m := k
		m.Size = def.Size
		add(m)
	}
	// Phases drop: all the way to 1, then halve, then one at a time.
	for _, p := range []int{1, k.Phases / 2, k.Phases - 1} {
		if p >= 1 && p < k.Phases {
			m := k
			m.Phases = p
			add(m)
		}
	}
	addFloat := func(cur, d float64, set func(*Knobs, float64)) {
		for _, v := range floatSteps(cur, d) {
			m := k
			set(&m, v)
			add(m)
		}
	}
	addFloat(k.CV, def.CV, func(m *Knobs, v float64) { m.CV = v })
	addFloat(k.InputDep, def.InputDep, func(m *Knobs, v float64) { m.InputDep = v })
	return out
}

// intSteps yields the candidate values of an integer knob at cur stepping
// toward its default d: d itself, the halving midpoint, and a unit step.
// Every value is strictly closer to d than cur.
func intSteps(cur, d int) []int {
	if cur == d {
		return nil
	}
	mid := (cur + d) / 2
	unit := cur - 1
	if cur < d {
		unit = cur + 1
	}
	var out []int
	for _, v := range []int{d, mid, unit} {
		if v != cur && abs(v-d) < abs(cur-d) {
			out = append(out, v)
		}
	}
	return out
}

// floatSteps is intSteps for float knobs, quantized to a 0.01 grid so
// shrunk specs keep short canonical forms and greedy descent stays finite.
// Candidates that fail to strictly reduce the distance to the default
// (possible right at the grid boundary) are dropped.
func floatSteps(cur, d float64) []float64 {
	if cur == d {
		return nil
	}
	grid := func(v float64) float64 { return math.Round(v*100) / 100 }
	mid := grid((cur + d) / 2)
	unit := grid(cur - 0.01)
	if cur < d {
		unit = grid(cur + 0.01)
	}
	var out []float64
	for _, v := range []float64{d, mid, unit} {
		if v != cur && math.Abs(v-d) < math.Abs(cur-d) {
			out = append(out, v)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// shrinkMeasure is the well-founded measure Shrinks descends: raw size
// terms for the knobs that shrink toward their validity floor, distance to
// the default for the knobs that shrink toward DefaultKnobs. Every Shrinks
// candidate is strictly smaller, which bounds any greedy minimization loop.
func (sc *Scenario) shrinkMeasure() float64 {
	def := DefaultKnobs()
	k := sc.Knobs
	m := float64(k.Tasks) + float64(k.Mean) + 64*float64(k.Phases)
	m += math.Abs(float64(k.Width - def.Width))
	m += math.Abs(float64(k.Depth - def.Depth))
	m += math.Abs(float64(k.Types - def.Types))
	if k.Size != def.Size {
		m += 100
	}
	m += 100 * math.Abs(k.CV-def.CV)
	m += 100 * math.Abs(k.InputDep-def.InputDep)
	return m
}
