package gen

import (
	"strings"
	"testing"
)

// TestParseErrorMessages locks the strict grammar's diagnostics: every
// rejection must name the offending token — the unknown family or knob,
// the malformed pair, the out-of-range value — so a failing gen: spec in a
// sweep config or fuzz log is fixable from the message alone.
func TestParseErrorMessages(t *testing.T) {
	tests := []struct {
		name string
		spec string
		want []string // substrings the error must carry, offending token first
	}{
		{"unknown family", "gen:forkbomb(width=4)", []string{`"forkbomb"`, "unknown family"}},
		{"unknown family lists valid ones", "gen:treee", []string{`"treee"`, "forkjoin"}},
		{"unknown knob", "gen:forkjoin(tusks=16)", []string{`"tusks"`, "unknown knob", "tasks"}},
		{"malformed pair", "gen:forkjoin(width)", []string{`"width"`, "knob=value"}},
		{"empty value", "gen:forkjoin(width=)", []string{`"width="`, "knob=value"}},
		{"duplicate knob", "gen:forkjoin(width=4,width=8)", []string{`"width"`, "duplicate"}},
		{"non-integer int knob", "gen:forkjoin(depth=deep)", []string{`depth="deep"`, "integer"}},
		{"non-numeric float knob", "gen:forkjoin(cv=high)", []string{`cv="high"`, "number"}},
		{"unknown size dist", "gen:forkjoin(size=gaussian)", []string{`"gaussian"`, "loguniform"}},
		{"unbalanced parens", "gen:forkjoin(width=4", []string{"gen:forkjoin(width=4", "parentheses"}},
		{"tasks below floor", "gen:forkjoin(tasks=4)", []string{"tasks=4", "[8,"}},
		{"width above ceiling", "gen:forkjoin(width=9999)", []string{"width=9999", "4096"}},
		{"mean below floor", "gen:forkjoin(mean=2)", []string{"mean=2", "[64,"}},
		{"cv out of range", "gen:forkjoin(cv=1.5)", []string{"cv=1.5", "[0, 1]"}},
		{"cv NaN", "gen:forkjoin(cv=NaN)", []string{"cv=NaN", "[0, 1]"}},
		{"inputdep negative", "gen:forkjoin(inputdep=-0.2)", []string{"inputdep=-0.2", "[0, 1]"}},
		{"phases out of range", "gen:forkjoin(phases=40)", []string{"phases=40", "[1, 16]"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.spec)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want an error naming the offending token", tt.spec)
			}
			for _, want := range tt.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("Parse(%q) error %q does not contain %q", tt.spec, err, want)
				}
			}
		})
	}
}
