package gen

import (
	"reflect"
	"testing"

	"taskpoint/internal/taskgraph"
)

// FuzzParse feeds arbitrary spec strings to the strict parser. Anything
// that parses must canonicalise to a spec that re-parses to the same
// scenario and must build a valid, acyclic, seed-deterministic program.
func FuzzParse(f *testing.F) {
	f.Add("gen:forkjoin")
	f.Add("gen:pipeline(depth=6,tasks=96)")
	f.Add("gen:random(types=5,width=4,size=heavytail,inputdep=0.7)")
	f.Add("chains(width=3,cv=0.4,phases=2)")
	f.Add("gen:wavefront(size=bimodal,mean=900)")
	f.Add("gen:forkjoin(width=8,width=9)")
	f.Add("gen:divide(depth=banana)")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			return // rejected input: nothing else to hold
		}
		canon := sc.Spec()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical spec %q of %q does not re-parse: %v", canon, spec, err)
		}
		if back.Family != sc.Family || back.Knobs != sc.Knobs {
			t.Fatalf("canonical round trip of %q changed the scenario", spec)
		}
		// Keep the build bounded: fuzzing explores the grammar, the
		// builder property is covered at a capped task count.
		k := sc.Knobs
		if k.Tasks > 512 {
			k.Tasks = 512
		}
		small := &Scenario{Family: sc.Family, Knobs: k}
		prog, err := small.Build(1, 1)
		if err != nil {
			t.Fatalf("build of parsed %q: %v", spec, err)
		}
		if _, err := taskgraph.Build(prog); err != nil {
			t.Fatalf("task graph of parsed %q: %v", spec, err)
		}
	})
}

// FuzzBuild drives the materialiser directly with fuzzer-chosen knobs and
// seeds: any knob set Validate accepts must build a valid, acyclic
// program, identically on a second build.
func FuzzBuild(f *testing.F) {
	f.Add(uint8(0), uint64(42), 512, 16, 8, 3, uint8(0), int64(2600), 0.1, 1, 0.0)
	f.Add(uint8(4), uint64(7), 64, 1, 1, 1, uint8(3), int64(64), 1.0, 4, 1.0)
	f.Add(uint8(6), uint64(1), 300, 4096, 64, 16, uint8(2), int64(1<<20), 0.0, 16, 0.5)
	f.Fuzz(func(t *testing.T, famIdx uint8, seed uint64,
		tasks, width, depth, types int, sizeIdx uint8, mean int64,
		cv float64, phases int, inputDep float64) {
		fams := Families()
		sc := &Scenario{
			Family: fams[int(famIdx)%len(fams)],
			Knobs: Knobs{
				Tasks: tasks, Width: width, Depth: depth, Types: types,
				Size: SizeDist(sizeIdx % uint8(numSizeDists)), Mean: mean,
				CV: cv, Phases: phases, InputDep: inputDep,
			},
		}
		if err := sc.Knobs.Validate(); err != nil {
			return // out-of-range knobs are rejected, not built
		}
		if sc.Knobs.Tasks > 1024 {
			sc.Knobs.Tasks = 1024 // keep fuzz iterations fast
		}
		prog, err := sc.Build(1, seed)
		if err != nil {
			t.Fatalf("%s seed %d: %v", sc.Spec(), seed, err)
		}
		if _, err := taskgraph.Build(prog); err != nil {
			t.Fatalf("%s seed %d: task graph: %v", sc.Spec(), seed, err)
		}
		again, err := sc.Build(1, seed)
		if err != nil || !reflect.DeepEqual(prog, again) {
			t.Fatalf("%s seed %d: non-deterministic build (err %v)", sc.Spec(), seed, err)
		}
	})
}
