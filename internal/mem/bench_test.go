package mem

import "testing"

func benchSystem(b *testing.B, cores int) *System {
	b.Helper()
	cfg := Config{
		LineSize:          64,
		L1:                CacheCfg{Size: 32 * 1024, Ways: 8, Lat: 4},
		L2:                CacheCfg{Size: 2 * 1024 * 1024, Ways: 8, Lat: 11},
		HasL3:             true,
		L3:                CacheCfg{Size: 20 * 1024 * 1024, Ways: 20, Lat: 28},
		DRAMLat:           200,
		DRAMCyclesPerLine: 1.2,
		SharedBanks:       16,
		BankCycles:        1,
		CoherenceLat:      40,
		AtomicLat:         15,
	}
	s, err := NewSystem(cfg, cores)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkKernelAccessRead measures the per-instruction read path over a
// strided working set larger than L1: hits, fills and directory updates in
// steady state.
func BenchmarkKernelAccessRead(b *testing.B) {
	s := benchSystem(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) * 64
		now += s.Access(0, addr, false, false, now)
	}
}

// BenchmarkKernelAccessWrite measures the store path — every write takes
// the coherence-directory lookup before probing the hierarchy.
func BenchmarkKernelAccessWrite(b *testing.B) {
	s := benchSystem(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) * 64
		now += s.Access(0, addr, true, false, now)
	}
}

// BenchmarkKernelAccessShared measures the contended path: two cores
// alternately writing the same lines, forcing an invalidation plus a
// directory replacement per access.
func BenchmarkKernelAccessShared(b *testing.B) {
	s := benchSystem(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		addr := uint64(i%64) * 64
		now += s.Access(i&1, addr, true, false, now)
	}
}
