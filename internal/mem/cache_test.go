package mem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size, ways int) *Cache {
	t.Helper()
	c, err := NewCache(CacheCfg{Size: size, Ways: ways, Lat: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheValidation(t *testing.T) {
	bad := []CacheCfg{
		{Size: 0, Ways: 1, Lat: 1},
		{Size: 1024, Ways: 0, Lat: 1},
		{Size: 1024, Ways: 2, Lat: 0},
		{Size: 1000, Ways: 2, Lat: 1}, // not divisible by ways*line
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg, 64); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	c := mustCache(t, 32*1024, 8)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Errorf("geometry = %dx%d, want 64x8", c.Sets(), c.Ways())
	}
	// Non-power-of-two set count must still work (modulo indexing).
	c2, err := NewCache(CacheCfg{Size: 3 * 64 * 2, Ways: 2, Lat: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Sets() != 3 {
		t.Errorf("sets = %d, want 3", c2.Sets())
	}
	c2.Fill(7, false)
	if !c2.Contains(7) {
		t.Error("fill/lookup broken for non-pow2 sets")
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, 4096, 4)
	if c.Lookup(10, false) {
		t.Error("cold cache should miss")
	}
	c.Fill(10, false)
	if !c.Lookup(10, false) {
		t.Error("should hit after fill")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set: third distinct line evicts the least recently used.
	c, err := NewCache(CacheCfg{Size: 2 * 64, Ways: 2, Lat: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(1, false)
	c.Fill(2, false)
	c.Lookup(1, false) // 1 is now MRU
	victim, _, had := c.Fill(3, false)
	if !had || victim != 2 {
		t.Errorf("victim = %d (had=%v), want 2", victim, had)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestDirtyEviction(t *testing.T) {
	c, err := NewCache(CacheCfg{Size: 1 * 64, Ways: 1, Lat: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(1, true) // dirty line
	victim, dirty, had := c.Fill(2, false)
	if !had || victim != 1 || !dirty {
		t.Errorf("eviction = (%d, dirty=%v, had=%v), want (1, true, true)", victim, dirty, had)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c, err := NewCache(CacheCfg{Size: 1 * 64, Ways: 1, Lat: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(1, false)
	c.Lookup(1, true) // write hit marks dirty
	_, dirty, _ := c.Fill(2, false)
	if !dirty {
		t.Error("write hit should mark line dirty")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := mustCache(t, 4096, 4)
	c.Fill(5, false)
	victim, dirty, had := c.Fill(5, true)
	if had || victim != 0 || dirty {
		t.Errorf("refill of present line reported eviction (%d,%v,%v)", victim, dirty, had)
	}
	// The duplicate fill upgraded it to dirty.
	cSmall, _ := NewCache(CacheCfg{Size: 64, Ways: 1, Lat: 1}, 64)
	cSmall.Fill(1, false)
	cSmall.Fill(1, true)
	_, d, _ := cSmall.Fill(2, false)
	if !d {
		t.Error("refill with write should mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, 4096, 4)
	c.Fill(9, true)
	present, dirty := c.Invalidate(9)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(9) {
		t.Error("line still present after invalidation")
	}
	present, _ = c.Invalidate(9)
	if present {
		t.Error("second invalidation should report absent")
	}
}

func TestResetAndOccupancy(t *testing.T) {
	c := mustCache(t, 4096, 4)
	if c.Occupancy() != 0 {
		t.Error("new cache should be empty")
	}
	for i := uint64(0); i < 32; i++ {
		c.Fill(i, false)
	}
	if occ := c.Occupancy(); occ != 0.5 {
		t.Errorf("occupancy = %v, want 0.5 (32 of 64 lines)", occ)
	}
	c.Reset()
	if c.Occupancy() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("reset did not clear state")
	}
}

// Property: the cache never reports a hit for a line it was never given,
// and always hits a line filled and not since evicted or invalidated.
func TestQuickCacheConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		c, err := NewCache(CacheCfg{Size: 8 * 64, Ways: 2, Lat: 1}, 64)
		if err != nil {
			return false
		}
		present := map[uint64]bool{}
		for op := 0; op < 500; op++ {
			line := uint64(r.IntN(40))
			switch r.IntN(3) {
			case 0: // lookup
				if c.Lookup(line, false) != present[line] {
					return false
				}
				if present[line] {
					// hit refreshed recency; model agrees already
					continue
				}
			case 1: // fill
				victim, _, had := c.Fill(line, r.IntN(2) == 0)
				present[line] = true
				if had {
					delete(present, victim)
				}
			case 2: // invalidate
				was, _ := c.Invalidate(line)
				if was != present[line] {
					return false
				}
				delete(present, line)
			}
		}
		// Every tracked line must be found by Contains.
		for line, p := range present {
			if p != c.Contains(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
