package mem

import (
	"fmt"
	"math"
	"math/bits"
)

// Config describes a full memory hierarchy. The paper's Table II
// configurations are provided by the sim package.
type Config struct {
	// LineSize is the cache line size in bytes (64 in both Table II
	// configurations).
	LineSize int
	// L1 is the per-core private first-level cache.
	L1 CacheCfg
	// L2 is the second-level cache; private per core when L2Shared is
	// false (high-performance config), shared otherwise (low-power).
	L2       CacheCfg
	L2Shared bool
	// HasL3 enables the shared last-level cache.
	HasL3 bool
	L3    CacheCfg
	// DRAMLat is the DRAM access latency in cycles.
	DRAMLat float64
	// DRAMCyclesPerLine is the channel occupancy of one line transfer;
	// it bounds bandwidth and creates inter-thread contention.
	DRAMCyclesPerLine float64
	// SharedBanks is the number of banks of each shared cache level;
	// each bank serves one access at a time (occupancy BankCycles).
	SharedBanks int
	// BankCycles is the occupancy of a shared-cache bank per access.
	BankCycles float64
	// CoherenceLat is the added latency when a write must invalidate
	// remote private copies.
	CoherenceLat float64
	// AtomicLat is the added latency of atomic read-modify-write
	// operations.
	AtomicLat float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: line size %d must be a positive power of two", c.LineSize)
	}
	if c.LineSize < 4 {
		// The caches pack line numbers as line<<2|state in one tag word,
		// which is injective only when line numbers use at most 62 bits —
		// i.e. lines of at least 4 bytes.
		return fmt.Errorf("mem: line size %d must be at least 4 bytes", c.LineSize)
	}
	if err := c.L1.validate("L1", c.LineSize); err != nil {
		return err
	}
	if err := c.L2.validate("L2", c.LineSize); err != nil {
		return err
	}
	if c.HasL3 {
		if err := c.L3.validate("L3", c.LineSize); err != nil {
			return err
		}
	}
	if c.DRAMLat <= 0 {
		return fmt.Errorf("mem: DRAM latency %v must be positive", c.DRAMLat)
	}
	if c.DRAMCyclesPerLine < 0 {
		return fmt.Errorf("mem: DRAM cycles/line %v must be non-negative", c.DRAMCyclesPerLine)
	}
	if c.SharedBanks <= 0 {
		return fmt.Errorf("mem: shared banks %d must be positive", c.SharedBanks)
	}
	return nil
}

// Stats aggregates hierarchy event counts for one simulation.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	L2Hits        uint64
	L3Hits        uint64
	DRAMAccesses  uint64
	Writebacks    uint64
	Invalidations uint64
	// QueueCycles is the total cycles spent waiting for busy shared
	// resources (banks, DRAM channel) — the contention signal.
	QueueCycles float64
}

// System is the memory hierarchy for one simulated multi-core. It is not
// safe for concurrent use; the engine is single-threaded.
type System struct {
	cfg       Config
	lineShift uint
	nCores    int
	l1        []*Cache
	l2        []*Cache // length nCores when private, 1 when shared
	l3        *Cache
	dir       dirTable // line -> bitmask of cores with private copies
	banks     channel  // aggregate shared-cache bank capacity
	dram      channel  // DRAM channel capacity
	stats     Stats
}

// dirEntry is one coherence-directory slot. Key and value share the
// entry, so a probe touches one cache line instead of two parallel
// arrays.
type dirEntry struct {
	line uint64 // key (valid only when mask != 0)
	mask uint64 // sharer bitmask; 0 marks an empty slot
}

// dirTable is the coherence directory: an open-addressing hash table from
// line number to sharers bitmask. It replaces a Go map on the
// per-instruction memory path — every store consults the directory before
// probing the hierarchy, and every fill updates it, so the table's
// single-multiply hash and linear probe are a measurable share of
// detailed-mode throughput. A slot is empty iff its mask is zero: sharer
// masks are only ever written with at least one bit set, and entries are
// never deleted (an invalidated line simply keeps its new owner's bit).
//
// Lookup semantics are exactly those of the map it replaces (exact
// key/value store, no iteration), so simulation results are bit-identical
// regardless of table layout or growth schedule.
type dirTable struct {
	entries []dirEntry
	shift   uint // 64 - log2(len), for the fibonacci hash
	used    int  // occupied slots

	// memoLine/memoSlot cache the last probed slot: a store probes the
	// directory for coherence and again when the fill records ownership,
	// and both probes target the same line within one Access. The memo is
	// invalidated by grow (slots move) and reused only on an exact line
	// match, so it cannot change results.
	memoLine uint64
	memoSlot int
	memoOK   bool
}

// dirMinBits is the minimum table size (2^dirMinBits slots).
const dirMinBits = 10

func (t *dirTable) init(slots int) {
	bits := uint(dirMinBits)
	for 1<<bits < slots {
		bits++
	}
	t.entries = make([]dirEntry, 1<<bits)
	t.shift = 64 - bits
	t.used = 0
	t.memoOK = false
}

// slot returns the index holding line, or the empty slot where it would
// be inserted. The result is memoised per line; any insert of a
// different line invalidates it (the probe chain may have changed), and
// grow invalidates it wholesale.
func (t *dirTable) slot(line uint64) int {
	if t.memoOK && t.memoLine == line {
		return t.memoSlot
	}
	mask := uint64(len(t.entries) - 1)
	i := (line * 0x9e3779b97f4a7c15) >> t.shift
	for t.entries[i].mask != 0 && t.entries[i].line != line {
		i = (i + 1) & mask
	}
	t.memoLine = line
	t.memoSlot = int(i)
	t.memoOK = true
	return int(i)
}

// get returns the sharers mask of line (0 when absent).
func (t *dirTable) get(line uint64) uint64 { return t.entries[t.slot(line)].mask }

// set stores mask (non-zero) as the sharers of line.
func (t *dirTable) set(line uint64, mask uint64) {
	i := t.slot(line)
	if t.entries[i].mask == 0 {
		t.entries[i].line = line
		t.used++
		if t.used*4 > len(t.entries)*3 {
			t.grow()
			i = t.slot(line)
			t.entries[i].line = line
			t.used++
		}
	}
	t.entries[i].mask = mask
}

// or merges bit into the sharers of line.
func (t *dirTable) or(line uint64, bit uint64) {
	i := t.slot(line)
	if t.entries[i].mask == 0 {
		t.set(line, bit)
		return
	}
	t.entries[i].mask |= bit
}

// grow doubles the table, rehashing every occupied slot.
func (t *dirTable) grow() {
	old := t.entries
	t.init(len(old) * 2)
	for _, e := range old {
		if e.mask == 0 {
			continue
		}
		t.entries[t.slot(e.line)] = e
		t.used++
	}
}

// reset empties the table, keeping its capacity.
func (t *dirTable) reset() {
	clear(t.entries)
	t.used = 0
	t.memoOK = false
}

// channel models a bandwidth-limited resource with an order-tolerant
// backlog integrator: arrivals are bucketed by coarse time windows; each
// elapsed window drains the backlog at the channel's service rate, and a
// request's queueing delay is the backlog in front of it times the service
// time. Unlike a busy-until FIFO frontier, the model tolerates the bounded
// out-of-order timestamps produced by interleaving cores in time slices
// (issue times may lag commit-gated slice boundaries by the ROB depth).
type channel struct {
	service float64 // cycles per line transfer
	bucketW float64 // integration window in cycles
	bucket  int64
	backlog float64 // lines left unserved at the current window start
	arrived float64 // lines arrived within the current window
}

func newChannel(service float64) channel {
	return channel{service: service, bucketW: 256}
}

// request registers one line transfer at time now and returns the queueing
// delay its requester observes.
func (ch *channel) request(now float64) float64 {
	if ch.service <= 0 {
		return 0
	}
	ch.roll(now)
	delay := (ch.backlog + ch.arrived) * ch.service
	ch.arrived++
	return delay
}

// consume registers a background line transfer (write-back) that occupies
// capacity without observing a delay.
func (ch *channel) consume() { ch.arrived++ }

func (ch *channel) roll(now float64) {
	b := int64(now / ch.bucketW)
	if b <= ch.bucket {
		return
	}
	servable := float64(b-ch.bucket) * ch.bucketW / ch.service
	ch.backlog += ch.arrived - servable
	if ch.backlog < 0 {
		ch.backlog = 0
	}
	ch.arrived = 0
	ch.bucket = b
}

func (ch *channel) reset() {
	ch.bucket = 0
	ch.backlog = 0
	ch.arrived = 0
}

// NewSystem builds a hierarchy for nCores cores (at most 64, the directory
// uses a 64-bit sharers mask).
func NewSystem(cfg Config, nCores int) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nCores <= 0 || nCores > 64 {
		return nil, fmt.Errorf("mem: core count %d out of range [1,64]", nCores)
	}
	s := &System{
		cfg:       cfg,
		lineShift: uint(math.Log2(float64(cfg.LineSize))),
		nCores:    nCores,
		banks:     newChannel(cfg.BankCycles / float64(cfg.SharedBanks)),
		dram:      newChannel(cfg.DRAMCyclesPerLine),
	}
	s.dir.init(0)
	for i := 0; i < nCores; i++ {
		c, err := NewCache(cfg.L1, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		s.l1 = append(s.l1, c)
	}
	nL2 := nCores
	if cfg.L2Shared {
		nL2 = 1
	}
	for i := 0; i < nL2; i++ {
		c, err := NewCache(cfg.L2, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		s.l2 = append(s.l2, c)
	}
	if cfg.HasL3 {
		c, err := NewCache(cfg.L3, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		s.l3 = c
	}
	return s, nil
}

// PresizeDirectory sizes the coherence directory for a workload expected
// to touch about `lines` distinct cache lines, so the table reaches its
// steady-state size up front instead of growing (and rehashing) during
// the simulated warm-up. The estimate is a hint: an undersized table
// still grows on demand, and large estimates are clamped — footprint
// sums over-count shared regions, and an over-sized table costs twice
// (construction-time zeroing and cold probes), while growth from a
// modest size is a few amortised rehashes. Results are unaffected
// either way.
func (s *System) PresizeDirectory(lines int) {
	const maxPresize = 1 << 17 // 128Ki lines -> a 4 MiB table at most
	if lines <= 0 || s.dir.used > 0 {
		return
	}
	if lines > maxPresize {
		lines = maxPresize
	}
	// Size for a sub-75% load factor at the estimated footprint.
	s.dir.init(lines + lines/2)
}

// NumCores returns the number of cores the system serves.
func (s *System) NumCores() int { return s.nCores }

// Stats returns a copy of the accumulated statistics.
func (s *System) Stats() Stats { return s.stats }

// Line returns the line number of a byte address.
func (s *System) Line(addr uint64) uint64 { return addr >> s.lineShift }

func (s *System) l2For(core int) *Cache {
	if s.cfg.L2Shared {
		return s.l2[0]
	}
	return s.l2[core]
}

// bankDelay models aggregate port contention of the shared cache levels.
func (s *System) bankDelay(line uint64, now float64) float64 {
	delay := s.banks.request(now)
	s.stats.QueueCycles += delay
	return delay
}

// dramDelay models the bandwidth-limited DRAM channel.
func (s *System) dramDelay(now float64) float64 {
	delay := s.dram.request(now)
	s.stats.QueueCycles += delay
	if DebugDRAM != nil {
		DebugDRAM(now, delay)
	}
	return delay
}

// DebugDRAM, when non-nil, observes every DRAM queue decision (test hook).
var DebugDRAM func(now, delay float64)

// Access performs a load (write=false) or store/atomic access by core at
// time now and returns its latency in cycles. The hierarchy state is
// updated: fills, evictions, write-backs, coherence invalidations.
func (s *System) Access(core int, addr uint64, write, atomic bool, now float64) float64 {
	s.stats.Accesses++
	line := s.Line(addr)
	bit := uint64(1) << uint(core)
	lat := 0.0
	effWrite := write || atomic

	// Coherence: a write needs exclusivity; invalidate remote private
	// copies before using any local copy.
	if effWrite {
		if remote := s.dir.get(line) &^ bit; remote != 0 {
			// Iterate the sharer bits directly (ascending core order,
			// like the full core scan this replaced).
			for m := remote; m != 0; m &= m - 1 {
				c := bits.TrailingZeros64(m)
				s.l1[c].Invalidate(line)
				if !s.cfg.L2Shared {
					s.l2For(c).Invalidate(line)
				}
				s.stats.Invalidations++
			}
			s.dir.set(line, bit)
			lat += s.cfg.CoherenceLat
		}
	}

	l1 := s.l1[core]
	if l1.Lookup(line, effWrite) {
		s.stats.L1Hits++
		lat += s.cfg.L1.Lat
		if atomic {
			lat += s.cfg.AtomicLat
		}
		return lat
	}
	lat += s.cfg.L1.Lat // L1 probe cost on the way down

	l2 := s.l2For(core)
	if s.cfg.L2Shared {
		lat += s.bankDelay(line, now+lat)
	}
	if l2.Lookup(line, effWrite && s.cfg.L2Shared) {
		s.stats.L2Hits++
		lat += s.cfg.L2.Lat
		s.fillPrivate(core, line, effWrite, bit)
		if atomic {
			lat += s.cfg.AtomicLat
		}
		return lat
	}
	lat += s.cfg.L2.Lat

	if s.l3 != nil {
		lat += s.bankDelay(line, now+lat)
		if s.l3.Lookup(line, false) {
			s.stats.L3Hits++
			lat += s.cfg.L3.Lat
			s.fillMid(core, line, effWrite, bit)
			if atomic {
				lat += s.cfg.AtomicLat
			}
			return lat
		}
		lat += s.cfg.L3.Lat
	}

	// DRAM access.
	s.stats.DRAMAccesses++
	lat += s.dramDelay(now + lat)
	lat += s.cfg.DRAMLat
	if s.l3 != nil {
		if _, dirty, had := s.l3.Fill(line, false); had && dirty {
			s.writeback()
		}
	}
	s.fillMid(core, line, effWrite, bit)
	if atomic {
		lat += s.cfg.AtomicLat
	}
	return lat
}

// fillMid fills the L2 (and the private levels above it) after a miss
// serviced below L2.
func (s *System) fillMid(core int, line uint64, write bool, bit uint64) {
	l2 := s.l2For(core)
	if _, dirty, had := l2.Fill(line, write && s.cfg.L2Shared); had && dirty {
		s.writeback()
	}
	s.fillPrivate(core, line, write, bit)
}

// fillPrivate fills the core's L1 (the L2, when private, is filled by
// fillMid or already holds the line) and records the core in the sharers
// directory.
func (s *System) fillPrivate(core int, line uint64, write bool, bit uint64) {
	if _, dirty, had := s.l1[core].Fill(line, write); had && dirty {
		s.writeback()
	}
	if write {
		s.dir.set(line, bit)
	} else {
		s.dir.or(line, bit)
	}
}

// writeback accounts for a dirty eviction. Write-backs drain from write
// buffers when the channel would otherwise be idle, so they consume
// channel capacity (extending an existing backlog) but never push the
// channel frontier into the future and never add latency to the
// requesting core.
func (s *System) writeback() {
	s.stats.Writebacks++
	s.dram.consume()
}

// L1Occupancy returns the valid-line fraction of a core's L1, used by
// warm-up diagnostics.
func (s *System) L1Occupancy(core int) float64 { return s.l1[core].Occupancy() }

// SharedOccupancy returns the valid-line fraction of the largest shared
// level (L3, or L2 when shared, or 0 when everything is private).
func (s *System) SharedOccupancy() float64 {
	if s.l3 != nil {
		return s.l3.Occupancy()
	}
	if s.cfg.L2Shared {
		return s.l2[0].Occupancy()
	}
	return 0
}

// Reset restores cold caches and zeroes statistics and queue state.
func (s *System) Reset() {
	for _, c := range s.l1 {
		c.Reset()
	}
	for _, c := range s.l2 {
		c.Reset()
	}
	if s.l3 != nil {
		s.l3.Reset()
	}
	s.dir.reset()
	s.banks.reset()
	s.dram.reset()
	s.stats = Stats{}
}
