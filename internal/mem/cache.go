// Package mem models the simulated memory hierarchy of the TaskSim-like
// detailed mode: set-associative write-back caches (private L1, private or
// shared L2, optional shared L3), a line-granularity sharers directory that
// invalidates remote private copies on writes, and a bandwidth-limited DRAM
// channel. Shared levels and DRAM carry occupancy-based queueing, so IPC
// becomes thread-count dependent — the resource contention that TaskPoint's
// resampling triggers (paper Fig 4a) exist to track.
package mem

import "fmt"

// CacheCfg describes one cache level.
type CacheCfg struct {
	// Size is the capacity in bytes.
	Size int
	// Ways is the associativity.
	Ways int
	// Lat is the hit latency in cycles.
	Lat float64
}

func (c CacheCfg) validate(name string, lineSize int) error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("mem: %s size %d must be positive", name, c.Size)
	case c.Ways <= 0:
		return fmt.Errorf("mem: %s ways %d must be positive", name, c.Ways)
	case c.Lat <= 0:
		return fmt.Errorf("mem: %s latency %v must be positive", name, c.Lat)
	case c.Size%(lineSize*c.Ways) != 0:
		return fmt.Errorf("mem: %s size %d not divisible by ways*line", name, c.Size)
	}
	return nil
}

// Cache is a single set-associative write-back cache with LRU replacement.
// Lines are identified by line number (byte address >> log2(lineSize)).
//
// Each way stores one packed tag word — the line number shifted left by
// two with the state in the low bits — so a way probe is a single load
// and compare. Line numbers occupy at most 58 bits (64-bit byte address
// over 64-byte lines), so the shift cannot overflow.
type Cache struct {
	sets   int
	ways   int
	mask   uint64   // sets-1 when sets is a power of two, else 0
	tags   []uint64 // line<<2 | state per way
	lru    []uint64
	clock  uint64
	hits   uint64
	misses uint64
}

const (
	lineInvalid uint64 = iota
	lineValid
	lineDirty
	tagStateMask uint64 = 3
)

// NewCache builds a cache from cfg with the given line size.
func NewCache(cfg CacheCfg, lineSize int) (*Cache, error) {
	if err := cfg.validate("cache", lineSize); err != nil {
		return nil, err
	}
	sets := cfg.Size / (lineSize * cfg.Ways)
	c := &Cache{
		sets: sets,
		ways: cfg.Ways,
		tags: make([]uint64, sets*cfg.Ways),
		lru:  make([]uint64, sets*cfg.Ways),
	}
	if sets&(sets-1) == 0 {
		c.mask = uint64(sets - 1)
	}
	return c, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(line uint64) int {
	if c.mask != 0 {
		return int(line & c.mask)
	}
	return int(line % uint64(c.sets))
}

// Lookup probes for line. On a hit the line's recency is updated and, if
// write is set, the line is marked dirty.
func (c *Cache) Lookup(line uint64, write bool) bool {
	base := c.setOf(line) * c.ways
	want := line << 2
	for w := 0; w < c.ways; w++ {
		i := base + w
		if t := c.tags[i]; t&^tagStateMask == want && t&tagStateMask != lineInvalid {
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.tags[i] = want | lineDirty
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill inserts line, evicting the LRU victim of its set if necessary.
// It returns the evicted line and whether it was dirty; hadVictim is false
// if an invalid way was available.
func (c *Cache) Fill(line uint64, write bool) (victim uint64, dirty, hadVictim bool) {
	base := c.setOf(line) * c.ways
	want := line << 2
	// Track the victim candidate in registers: the first invalid way if
	// any, otherwise the least-recently-used valid way.
	vi := -1
	viTag := lineInvalid
	var viLru uint64
	for w := 0; w < c.ways; w++ {
		i := base + w
		t := c.tags[i]
		if t&tagStateMask == lineInvalid {
			if viTag&tagStateMask != lineInvalid || vi == -1 {
				vi, viTag = i, t
			}
			continue
		}
		if t&^tagStateMask == want {
			// Already present (racing fills); refresh instead.
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.tags[i] = want | lineDirty
			}
			return 0, false, false
		}
		if viTag&tagStateMask == lineInvalid && vi != -1 {
			continue
		}
		if l := c.lru[i]; vi == -1 || l < viLru {
			vi, viTag, viLru = i, t, l
		}
	}
	if viTag&tagStateMask != lineInvalid {
		victim = viTag >> 2
		dirty = viTag&tagStateMask == lineDirty
		hadVictim = true
	}
	c.clock++
	c.lru[vi] = c.clock
	if write {
		c.tags[vi] = want | lineDirty
	} else {
		c.tags[vi] = want | lineValid
	}
	return victim, dirty, hadVictim
}

// Invalidate removes line if present, returning whether it was present and
// whether it was dirty.
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	base := c.setOf(line) * c.ways
	want := line << 2
	for w := 0; w < c.ways; w++ {
		i := base + w
		if t := c.tags[i]; t&^tagStateMask == want && t&tagStateMask != lineInvalid {
			dirty = t&tagStateMask == lineDirty
			c.tags[i] = lineInvalid
			return true, dirty
		}
	}
	return false, false
}

// Contains probes for line without touching recency or statistics.
func (c *Cache) Contains(line uint64) bool {
	base := c.setOf(line) * c.ways
	want := line << 2
	for w := 0; w < c.ways; w++ {
		if t := c.tags[base+w]; t&^tagStateMask == want && t&tagStateMask != lineInvalid {
			return true
		}
	}
	return false
}

// Reset invalidates every line and clears hit/miss counters (cold state).
func (c *Cache) Reset() {
	clear(c.tags)
	c.hits, c.misses = 0, 0
	c.clock = 0
}

// Occupancy returns the fraction of valid lines, a warm-up measure.
func (c *Cache) Occupancy() float64 {
	valid := 0
	for _, t := range c.tags {
		if t&tagStateMask != lineInvalid {
			valid++
		}
	}
	return float64(valid) / float64(len(c.tags))
}

// Hits returns the number of lookup hits since the last Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of lookup misses since the last Reset.
func (c *Cache) Misses() uint64 { return c.misses }
