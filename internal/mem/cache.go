// Package mem models the simulated memory hierarchy of the TaskSim-like
// detailed mode: set-associative write-back caches (private L1, private or
// shared L2, optional shared L3), a line-granularity sharers directory that
// invalidates remote private copies on writes, and a bandwidth-limited DRAM
// channel. Shared levels and DRAM carry occupancy-based queueing, so IPC
// becomes thread-count dependent — the resource contention that TaskPoint's
// resampling triggers (paper Fig 4a) exist to track.
package mem

import "fmt"

// CacheCfg describes one cache level.
type CacheCfg struct {
	// Size is the capacity in bytes.
	Size int
	// Ways is the associativity.
	Ways int
	// Lat is the hit latency in cycles.
	Lat float64
}

func (c CacheCfg) validate(name string, lineSize int) error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("mem: %s size %d must be positive", name, c.Size)
	case c.Ways <= 0:
		return fmt.Errorf("mem: %s ways %d must be positive", name, c.Ways)
	case c.Lat <= 0:
		return fmt.Errorf("mem: %s latency %v must be positive", name, c.Lat)
	case c.Size%(lineSize*c.Ways) != 0:
		return fmt.Errorf("mem: %s size %d not divisible by ways*line", name, c.Size)
	}
	return nil
}

// Cache is a single set-associative write-back cache with LRU replacement.
// Lines are identified by line number (byte address >> log2(lineSize)).
type Cache struct {
	sets   int
	ways   int
	mask   uint64 // sets-1 when sets is a power of two, else 0
	lines  []uint64
	state  []uint8 // lineInvalid/lineValid/lineDirty
	lru    []uint64
	clock  uint64
	hits   uint64
	misses uint64
}

const (
	lineInvalid uint8 = iota
	lineValid
	lineDirty
)

// NewCache builds a cache from cfg with the given line size.
func NewCache(cfg CacheCfg, lineSize int) (*Cache, error) {
	if err := cfg.validate("cache", lineSize); err != nil {
		return nil, err
	}
	sets := cfg.Size / (lineSize * cfg.Ways)
	c := &Cache{
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]uint64, sets*cfg.Ways),
		state: make([]uint8, sets*cfg.Ways),
		lru:   make([]uint64, sets*cfg.Ways),
	}
	if sets&(sets-1) == 0 {
		c.mask = uint64(sets - 1)
	}
	return c, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(line uint64) int {
	if c.mask != 0 {
		return int(line & c.mask)
	}
	return int(line % uint64(c.sets))
}

// Lookup probes for line. On a hit the line's recency is updated and, if
// write is set, the line is marked dirty.
func (c *Cache) Lookup(line uint64, write bool) bool {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i] != lineInvalid && c.lines[i] == line {
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.state[i] = lineDirty
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill inserts line, evicting the LRU victim of its set if necessary.
// It returns the evicted line and whether it was dirty; hadVictim is false
// if an invalid way was available.
func (c *Cache) Fill(line uint64, write bool) (victim uint64, dirty, hadVictim bool) {
	base := c.setOf(line) * c.ways
	vi := -1
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i] == lineInvalid {
			if vi == -1 || c.state[vi] != lineInvalid {
				vi = i
			}
			continue
		}
		if c.lines[i] == line {
			// Already present (racing fills); refresh instead.
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.state[i] = lineDirty
			}
			return 0, false, false
		}
		if vi == -1 || (c.state[vi] != lineInvalid && c.lru[i] < c.lru[vi]) {
			vi = i
		}
	}
	if c.state[vi] != lineInvalid {
		victim = c.lines[vi]
		dirty = c.state[vi] == lineDirty
		hadVictim = true
	}
	c.clock++
	c.lines[vi] = line
	c.lru[vi] = c.clock
	if write {
		c.state[vi] = lineDirty
	} else {
		c.state[vi] = lineValid
	}
	return victim, dirty, hadVictim
}

// Invalidate removes line if present, returning whether it was present and
// whether it was dirty.
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i] != lineInvalid && c.lines[i] == line {
			dirty = c.state[i] == lineDirty
			c.state[i] = lineInvalid
			return true, dirty
		}
	}
	return false, false
}

// Contains probes for line without touching recency or statistics.
func (c *Cache) Contains(line uint64) bool {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i] != lineInvalid && c.lines[i] == line {
			return true
		}
	}
	return false
}

// Reset invalidates every line and clears hit/miss counters (cold state).
func (c *Cache) Reset() {
	for i := range c.state {
		c.state[i] = lineInvalid
	}
	c.hits, c.misses = 0, 0
	c.clock = 0
}

// Occupancy returns the fraction of valid lines, a warm-up measure.
func (c *Cache) Occupancy() float64 {
	valid := 0
	for _, st := range c.state {
		if st != lineInvalid {
			valid++
		}
	}
	return float64(valid) / float64(len(c.state))
}

// Hits returns the number of lookup hits since the last Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of lookup misses since the last Reset.
func (c *Cache) Misses() uint64 { return c.misses }
