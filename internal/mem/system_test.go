package mem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// testConfig is a small hierarchy exercising all paths: private L1+L2,
// shared L3, DRAM.
func testConfig() Config {
	return Config{
		LineSize:          64,
		L1:                CacheCfg{Size: 1024, Ways: 2, Lat: 4},
		L2:                CacheCfg{Size: 4096, Ways: 4, Lat: 11},
		HasL3:             true,
		L3:                CacheCfg{Size: 16384, Ways: 4, Lat: 28},
		DRAMLat:           150,
		DRAMCyclesPerLine: 4,
		SharedBanks:       4,
		BankCycles:        1,
		CoherenceLat:      30,
		AtomicLat:         12,
	}
}

// sharedL2Config mirrors the low-power Table II shape: shared L2, no L3.
func sharedL2Config() Config {
	cfg := testConfig()
	cfg.L2Shared = true
	cfg.HasL3 = false
	return cfg
}

func newSys(t *testing.T, cfg Config, cores int) *System {
	t.Helper()
	s, err := NewSystem(cfg, cores)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.LineSize = 0 },
		func(c *Config) { c.L1.Size = 0 },
		func(c *Config) { c.L2.Ways = 0 },
		func(c *Config) { c.L3.Lat = 0 },
		func(c *Config) { c.DRAMLat = 0 },
		func(c *Config) { c.DRAMCyclesPerLine = -1 },
		func(c *Config) { c.SharedBanks = 0 },
	}
	for i, mutate := range mutations {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
}

func TestNewSystemCoreBounds(t *testing.T) {
	cfg := testConfig()
	if _, err := NewSystem(cfg, 0); err == nil {
		t.Error("0 cores should be rejected")
	}
	if _, err := NewSystem(cfg, 65); err == nil {
		t.Error("65 cores should be rejected (64-bit sharers mask)")
	}
	if _, err := NewSystem(cfg, 64); err != nil {
		t.Errorf("64 cores should be accepted: %v", err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	s := newSys(t, testConfig(), 2)
	addr := uint64(0x1000)
	cold := s.Access(0, addr, false, false, 0)
	warm := s.Access(0, addr, false, false, 1000)
	if cold <= warm {
		t.Errorf("cold miss (%v) must cost more than L1 hit (%v)", cold, warm)
	}
	if warm != testConfig().L1.Lat {
		t.Errorf("L1 hit latency = %v, want %v", warm, testConfig().L1.Lat)
	}
	// A line evicted only from L1 should come back at L2-hit cost,
	// cheaper than the cold miss.
	st := s.Stats()
	if st.DRAMAccesses != 1 {
		t.Errorf("DRAM accesses = %d, want 1", st.DRAMAccesses)
	}
}

func TestHitLevels(t *testing.T) {
	s := newSys(t, testConfig(), 1)
	s.Access(0, 0, false, false, 0) // cold: DRAM
	s.Access(0, 0, false, false, 0) // L1 hit
	st := s.Stats()
	if st.L1Hits != 1 || st.DRAMAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Evict line 0 from tiny L1 by filling its set, then re-access:
	// should be an L2 hit, not DRAM.
	// L1: 1024B/2way/64B = 8 sets; lines 8 and 16 map to set 0.
	s.Access(0, 8*64, false, false, 0)
	s.Access(0, 16*64, false, false, 0)
	before := s.Stats().DRAMAccesses
	s.Access(0, 0, false, false, 0)
	after := s.Stats()
	if after.DRAMAccesses != before {
		t.Error("read-after-L1-eviction went to DRAM instead of L2")
	}
	if after.L2Hits == 0 {
		t.Error("expected an L2 hit")
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	s := newSys(t, testConfig(), 2)
	addr := uint64(0x4000)
	s.Access(0, addr, false, false, 0) // core 0 reads: private copy
	s.Access(1, addr, false, false, 0) // core 1 reads: shared
	lat := s.Access(1, addr, true, false, 10)
	st := s.Stats()
	if st.Invalidations == 0 {
		t.Fatal("write to shared line did not invalidate remote copy")
	}
	if lat < testConfig().CoherenceLat {
		t.Errorf("write latency %v should include coherence penalty %v", lat, testConfig().CoherenceLat)
	}
	// Core 0 must now miss in its private caches.
	dramBefore := s.Stats().DRAMAccesses
	l2Before := s.Stats().L2Hits
	l3Before := s.Stats().L3Hits
	s.Access(0, addr, false, false, 20)
	if s.Stats().L1Hits > st.L1Hits {
		t.Error("core 0 should not hit L1 after invalidation")
	}
	_ = dramBefore
	_ = l2Before
	_ = l3Before
}

func TestWriteByOwnerNoInvalidation(t *testing.T) {
	s := newSys(t, testConfig(), 2)
	addr := uint64(0x4000)
	s.Access(0, addr, true, false, 0)
	s.Access(0, addr, true, false, 1)
	if s.Stats().Invalidations != 0 {
		t.Error("exclusive writes must not trigger invalidations")
	}
}

func TestAtomicCostsMore(t *testing.T) {
	s := newSys(t, testConfig(), 1)
	addr := uint64(0x2000)
	s.Access(0, addr, false, false, 0)
	plain := s.Access(0, addr, true, false, 10)
	atomic := s.Access(0, addr, false, true, 20)
	if atomic <= plain {
		t.Errorf("atomic (%v) should cost more than plain write hit (%v)", atomic, plain)
	}
}

func TestDRAMContention(t *testing.T) {
	cfg := testConfig()
	s := newSys(t, cfg, 4)
	// Four cores miss to DRAM at the same instant: the channel serialises
	// line transfers, so total queue delay must be positive.
	for c := 0; c < 4; c++ {
		s.Access(c, uint64(0x100000*(c+1)), false, false, 0)
	}
	if s.Stats().QueueCycles <= 0 {
		t.Error("simultaneous DRAM misses should queue")
	}
}

func TestSharedL2Path(t *testing.T) {
	s := newSys(t, sharedL2Config(), 2)
	addr := uint64(0x8000)
	s.Access(0, addr, false, false, 0)
	// Core 1 should hit the shared L2 even though it never accessed it.
	before := s.Stats().DRAMAccesses
	s.Access(1, addr, false, false, 100)
	st := s.Stats()
	if st.DRAMAccesses != before {
		t.Error("second core went to DRAM despite shared L2 holding line")
	}
	if st.L2Hits == 0 {
		t.Error("expected shared L2 hit")
	}
}

func TestSharedL2CoherenceOnlyL1(t *testing.T) {
	s := newSys(t, sharedL2Config(), 2)
	addr := uint64(0x8000)
	s.Access(0, addr, false, false, 0)
	s.Access(1, addr, true, false, 10) // invalidates core 0's L1 copy only
	if s.Stats().Invalidations == 0 {
		t.Error("expected L1 invalidation with shared L2")
	}
	// Core 0's next read should still hit in the shared L2.
	dramBefore := s.Stats().DRAMAccesses
	s.Access(0, addr, false, false, 20)
	if s.Stats().DRAMAccesses != dramBefore {
		t.Error("read after invalidation should be served by shared L2")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := testConfig()
	s := newSys(t, cfg, 1)
	// Dirty a line, then evict it from every level by touching many
	// conflicting lines.
	s.Access(0, 0, true, false, 0)
	for i := uint64(1); i < 600; i++ {
		s.Access(0, i*64, false, false, float64(i))
	}
	if s.Stats().Writebacks == 0 {
		t.Error("expected at least one writeback of the dirty line")
	}
}

func TestResetRestoresColdState(t *testing.T) {
	s := newSys(t, testConfig(), 2)
	s.Access(0, 0, true, false, 0)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if s.L1Occupancy(0) != 0 || s.SharedOccupancy() != 0 {
		t.Error("caches not cold after reset")
	}
	lat := s.Access(0, 0, false, false, 0)
	if lat < testConfig().DRAMLat {
		t.Error("access after reset should miss to DRAM")
	}
}

func TestOccupancyGrowsDuringWarmup(t *testing.T) {
	s := newSys(t, testConfig(), 1)
	prev := s.SharedOccupancy()
	for i := uint64(0); i < 256; i++ {
		s.Access(0, i*64, false, false, float64(i))
	}
	if s.SharedOccupancy() <= prev {
		t.Error("shared occupancy should grow while streaming")
	}
}

// Property: latency is always at least the L1 latency and finite; stats
// counters are consistent (hits+misses bounded by accesses at each level).
func TestQuickAccessInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		cfg := testConfig()
		if seed%2 == 0 {
			cfg = sharedL2Config()
		}
		cores := 1 + r.IntN(4)
		s, err := NewSystem(cfg, cores)
		if err != nil {
			return false
		}
		now := 0.0
		for op := 0; op < 400; op++ {
			core := r.IntN(cores)
			addr := uint64(r.IntN(1 << 16))
			lat := s.Access(core, addr, r.IntN(2) == 0, r.IntN(8) == 0, now)
			if lat < cfg.L1.Lat || lat > 1e7 {
				return false
			}
			now += 1 + float64(r.IntN(10))
		}
		st := s.Stats()
		served := st.L1Hits + st.L2Hits + st.L3Hits + st.DRAMAccesses
		return st.Accesses == 400 && served == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: after any access sequence, a repeated read of the same address
// by the same core is an L1 hit with exactly the L1 latency.
func TestQuickTemporalLocality(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		cfg := testConfig()
		s, err := NewSystem(cfg, 2)
		if err != nil {
			return false
		}
		for op := 0; op < 100; op++ {
			s.Access(r.IntN(2), uint64(r.IntN(1<<14)), r.IntN(2) == 0, false, float64(op))
		}
		addr := uint64(r.IntN(1 << 14))
		s.Access(0, addr, false, false, 1000)
		lat := s.Access(0, addr, false, false, 1001)
		return lat == cfg.L1.Lat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
