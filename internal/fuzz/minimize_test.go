package fuzz

import (
	"strings"
	"testing"

	"taskpoint/internal/gen"
	"taskpoint/internal/strata"
)

// violatesIf builds a deterministic synthetic oracle: a candidate exhibits
// the classes iff pred holds. Trials are logged so tests can assert the
// shrink sequence is deterministic.
func violatesIf(pred func(*gen.Scenario) bool, classes []strata.ViolationClass, trail *[]string) Oracle {
	return func(sc *gen.Scenario) ([]strata.ViolationClass, error) {
		if trail != nil {
			*trail = append(*trail, sc.Spec())
		}
		if pred(sc) {
			return classes, nil
		}
		return nil, nil
	}
}

// TestMinimizeReaches1Minimal drives the delta-debugger against oracles
// with known minimal frontiers and asserts the result both reproduces the
// violation and is 1-minimal: no single shrink step away still violates.
func TestMinimizeReaches1Minimal(t *testing.T) {
	start, err := gen.Parse("gen:forkjoin(tasks=192,width=64,depth=12,types=6,size=bimodal,mean=3237,cv=0.48,phases=4,inputdep=0.78)")
	if err != nil {
		t.Fatal(err)
	}
	want := []strata.ViolationClass{strata.CoverageMiss}
	for _, tt := range []struct {
		name string
		pred func(*gen.Scenario) bool
	}{
		{"always violates", func(*gen.Scenario) bool { return true }},
		{"needs many tasks", func(sc *gen.Scenario) bool { return sc.Knobs.Tasks >= 100 }},
		{"needs wide and deep", func(sc *gen.Scenario) bool { return sc.Knobs.Width >= 32 && sc.Knobs.Depth >= 10 }},
		{"needs input dependence", func(sc *gen.Scenario) bool { return sc.Knobs.InputDep > 0.5 }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			min, trials, err := Minimize(start, want, violatesIf(tt.pred, want, nil))
			if err != nil {
				t.Fatal(err)
			}
			if trials <= 0 {
				t.Fatalf("minimizer reported %d trials", trials)
			}
			if !tt.pred(min) {
				t.Fatalf("minimal scenario %s does not reproduce the violation", min.Spec())
			}
			for _, cand := range min.Shrinks() {
				if tt.pred(cand) {
					t.Fatalf("%s is not 1-minimal: shrink %s still violates", min.Spec(), cand.Spec())
				}
			}
		})
	}
}

// TestMinimizeDeterministic locks the fixed re-seed protocol's other half:
// for a deterministic oracle the whole shrink sequence — every candidate
// tried, in order — is identical across runs, so two fuzz campaigns over
// the same rounds log byte-identical findings.
func TestMinimizeDeterministic(t *testing.T) {
	start, err := gen.Parse("gen:pipeline(tasks=76,width=128,depth=12,types=6,size=bimodal,mean=1552,cv=0.5,phases=2,inputdep=0.11)")
	if err != nil {
		t.Fatal(err)
	}
	want := []strata.ViolationClass{strata.Bias}
	pred := func(sc *gen.Scenario) bool { return sc.Knobs.Tasks*int(sc.Knobs.Mean) >= 40000 }
	var trail1, trail2 []string
	min1, trials1, err := Minimize(start, want, violatesIf(pred, want, &trail1))
	if err != nil {
		t.Fatal(err)
	}
	min2, trials2, err := Minimize(start, want, violatesIf(pred, want, &trail2))
	if err != nil {
		t.Fatal(err)
	}
	if min1.Spec() != min2.Spec() || trials1 != trials2 {
		t.Fatalf("non-deterministic minimization: %s (%d trials) vs %s (%d trials)",
			min1.Spec(), trials1, min2.Spec(), trials2)
	}
	if strings.Join(trail1, "\n") != strings.Join(trail2, "\n") {
		t.Fatalf("shrink sequences differ:\n%v\nvs\n%v", trail1, trail2)
	}
}

// TestMinimizeKeepsSignature: a shrunk scenario may fail harder (extra
// classes), but a candidate that loses part of the wanted signature is
// never adopted.
func TestMinimizeKeepsSignature(t *testing.T) {
	start, err := gen.Parse("gen:chains(tasks=300,mean=4096)")
	if err != nil {
		t.Fatal(err)
	}
	want := []strata.ViolationClass{strata.CoverageMiss, strata.Bias}
	oracle := func(sc *gen.Scenario) ([]strata.ViolationClass, error) {
		switch {
		case sc.Knobs.Tasks >= 200:
			return []strata.ViolationClass{strata.CoverageMiss, strata.IntervalFloorMiss, strata.Bias}, nil
		case sc.Knobs.Tasks >= 100:
			return []strata.ViolationClass{strata.CoverageMiss}, nil // partial: must not be adopted
		}
		return nil, nil
	}
	min, _, err := Minimize(start, want, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if min.Knobs.Tasks < 200 {
		t.Fatalf("minimizer adopted %s, which drops the Bias class", min.Spec())
	}
	if min.Knobs.Tasks != 200 {
		t.Fatalf("minimizer stopped at %s, want tasks=200", min.Spec())
	}
}

func TestMinimizeRejectsEmptySignature(t *testing.T) {
	start, err := gen.Parse("gen:forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Minimize(start, nil, violatesIf(func(*gen.Scenario) bool { return true }, nil, nil)); err == nil {
		t.Fatal("Minimize accepted an empty violation signature")
	}
}
