package fuzz

import (
	"fmt"
	"slices"

	"taskpoint/internal/gen"
	"taskpoint/internal/strata"
)

// Oracle runs a candidate scenario in the violating cell (same policy,
// architecture, threads and request seed — the fixed re-seed protocol) and
// reports the violation classes it exhibits. Oracles must be
// deterministic: the same candidate always yields the same classes.
type Oracle func(sc *gen.Scenario) ([]strata.ViolationClass, error)

// Minimize delta-debugs a violating scenario down to a 1-minimal
// reproducer: it greedily walks the generator's shrink hooks
// (gen.Scenario.Shrinks — halve sizes, drop phases, step knobs toward
// family defaults), adopting the first candidate on which the oracle
// re-validates every violation class in want, and restarting from it until
// no shrink step reproduces the violation. The result still exhibits the
// full signature, and no single shrink step away from it does.
//
// The walk is deterministic for a deterministic oracle — candidates are
// tried in Shrinks' fixed order — and terminates on every input because
// each adopted candidate strictly decreases the generator's shrink
// measure. trials counts oracle invocations.
func Minimize(sc *gen.Scenario, want []strata.ViolationClass, oracle Oracle) (min *gen.Scenario, trials int, err error) {
	if len(want) == 0 {
		return nil, 0, fmt.Errorf("fuzz: minimize without violation classes")
	}
	cur := sc
	for {
		adopted := false
		for _, cand := range cur.Shrinks() {
			trials++
			got, err := oracle(cand)
			if err != nil {
				return nil, trials, err
			}
			if reproduces(got, want) {
				cur, adopted = cand, true
				break
			}
		}
		if !adopted {
			return cur, trials, nil
		}
	}
}

// MinimizeSpec is Minimize over spec strings in the strict gen: grammar —
// the form command front ends and examples use. It parses spec, minimizes,
// and returns the canonical minimal spec.
func MinimizeSpec(spec string, want []strata.ViolationClass, oracle func(spec string) ([]strata.ViolationClass, error)) (string, int, error) {
	sc, err := gen.Parse(spec)
	if err != nil {
		return "", 0, err
	}
	min, trials, err := Minimize(sc, want, func(cand *gen.Scenario) ([]strata.ViolationClass, error) {
		return oracle(cand.Spec())
	})
	if err != nil {
		return "", trials, err
	}
	return min.Spec(), trials, nil
}

// reproduces reports whether got carries every class of the wanted failure
// signature — extra classes are fine (a shrunk scenario may fail harder),
// losing one is not.
func reproduces(got, want []strata.ViolationClass) bool {
	for _, w := range want {
		if !slices.Contains(got, w) {
			return false
		}
	}
	return true
}
