package fuzz_test

import (
	"fmt"

	"taskpoint/internal/fuzz"
	"taskpoint/internal/gen"
	"taskpoint/internal/strata"
)

// ExampleMinimizeSpec delta-debugs a failing scenario spec down to a
// 1-minimal reproducer. The oracle here is synthetic — it flags any
// scenario with at least 100 instances and input-dependent durations — but
// has the exact shape of the real one, which re-runs the candidate against
// the detailed reference under the fixed re-seed protocol and classifies
// the outcome.
func ExampleMinimizeSpec() {
	want := []strata.ViolationClass{strata.CoverageMiss}
	oracle := func(spec string) ([]strata.ViolationClass, error) {
		sc, err := gen.Parse(spec)
		if err != nil {
			return nil, err
		}
		if sc.Knobs.Tasks >= 100 && sc.Knobs.InputDep > 0 {
			return want, nil
		}
		return nil, nil
	}

	spec := "gen:forkjoin(tasks=192,width=4,depth=7,size=bimodal,mean=3237,cv=0.48,inputdep=0.78)"
	min, trials, err := fuzz.MinimizeSpec(spec, want, oracle)
	if err != nil {
		panic(err)
	}
	fmt.Println(min)
	fmt.Println("oracle runs:", trials)
	// Output:
	// gen:forkjoin(tasks=100,mean=64,inputdep=0.01)
	// oracle runs: 335
}
