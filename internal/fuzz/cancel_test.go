package fuzz

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunCancellationAndResume is the interrupt-safety contract end to
// end: a campaign cancelled mid-round (what cmd/estfuzz's SIGINT handler
// produces) reports a clean context error, its corpus holds only complete
// lines — even after a torn tail is injected, AppendCorpus truncates it
// via sweep.DropPartialTail before appending — and resuming from the last
// completed round yields exactly the findings of an uninterrupted run.
func TestRunCancellationAndResume(t *testing.T) {
	// Absurdly low ceilings so nearly every cell violates: the test needs
	// findings on both sides of the interruption point.
	cfg := Config{
		Rounds: 6, Seed: 1, Workers: 2,
		Ceilings: map[string]float64{"lazy": 0.001, "periodic(64)": 0.001, "stratified(96)": 0.001},
	}
	dir := t.TempDir()

	// Reference: the uninterrupted campaign.
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullCorpus := filepath.Join(dir, "full.jsonl")
	if _, err := full.Run(context.Background(), 0, func(_ int, fs []Finding) {
		if _, err := AppendCorpus(fullCorpus, fs); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want, err := ReadCorpusFile(fullCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference campaign found nothing; the ceilings are not doing their job")
	}

	// Interrupted campaign: cancel after round 2 completes, so round 3 is
	// the round cut mid-flight.
	const stopAfter = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	intr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intCorpus := filepath.Join(dir, "interrupted.jsonl")
	next := 0
	_, runErr := intr.Run(ctx, 0, func(round int, fs []Finding) {
		if _, err := AppendCorpus(intCorpus, fs); err != nil {
			t.Fatal(err)
		}
		next = round + 1
		if round == stopAfter {
			cancel()
		}
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", runErr)
	}
	if next != stopAfter+1 {
		t.Fatalf("last completed round is %d, want %d", next-1, stopAfter)
	}

	// A kill can also tear the corpus mid-write: simulate the torn tail.
	f, err := os.OpenFile(intCorpus, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"spec":"gen:forkjoin(tas`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume from the last completed round; the first append truncates the
	// torn line before writing.
	res, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Run(context.Background(), next, func(_ int, fs []Finding) {
		if _, err := AppendCorpus(intCorpus, fs); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(intCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatal("resumed corpus does not end in a newline")
	}
	if strings.Contains(string(raw), "forkjoin(tas\n") {
		t.Fatal("torn line survived the resume")
	}
	got, err := ReadCorpusFile(intCorpus)
	if err != nil {
		t.Fatalf("resumed corpus does not load cleanly: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interrupted+resumed campaign diverges from the uninterrupted one:\ngot  %d findings\nwant %d findings", len(got), len(want))
	}
}
