// Package fuzz is the continuous adversarial accuracy fuzzer for the
// sampling estimators: a long-running driver that draws seeded scenarios
// from the generative engine (internal/gen) forever, runs every sampling
// policy against the detailed reference through the unified experiment
// engine (internal/engine), and flags cells that break the accuracy
// contract — a confidence interval that fails to cover the detailed
// reference, an interval narrower than the configured floor, or a
// worst-case error above the per-policy ceiling (internal/strata's
// violation classes).
//
// Accuracy validation by fixed corpus snapshot under-samples rare scenario
// shapes, exactly where two-phase stratified estimators hide their failure
// modes; this package makes it a continuously adversarial process the way
// random-but-valid program generators hunt compiler bugs. On a hit, a
// delta-debugging minimizer (Minimize) shrinks the failing gen: spec over
// the generator's shrink hooks — halve sizes, drop phases, step knobs
// toward family defaults — re-validating the violation at every step under
// a fixed re-seed protocol (the finding's request seed is held constant
// while the spec shrinks), and the minimal spec plus its expected failure
// signature is appended to a committed regression corpus
// (testdata/regression_corpus.jsonl) that a tier-1 test replays
// deterministically.
package fuzz

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"time"

	"taskpoint/internal/arch"
	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/gen"
	"taskpoint/internal/obs"
	"taskpoint/internal/strata"
)

// Fuzzer metrics in the default registry: round throughput and violation
// volume by class (the per-class counters are created on first hit).
var (
	metricRounds   = obs.Default().Counter("fuzz.rounds")
	metricFindings = obs.Default().Counter("fuzz.findings")
)

// Config parameterises a fuzz campaign. Zero values select the defaults
// noted per field; Normalized fills them.
type Config struct {
	// Rounds bounds the round space: rounds [0, Rounds) are drawn, and a
	// resumed campaign continues from its last completed round toward the
	// same bound. Zero means unbounded (stop via context deadline or
	// cancellation).
	Rounds int `json:"rounds,omitempty"`
	// Seed is the master seed: round i's scenario draw and request seed
	// both derive from it, so a campaign is identified by (Seed, knob
	// ranges) and two runs over the same rounds find identical
	// violations (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Arch and Threads fix the simulated machine (default
	// high-performance, 4 threads).
	Arch    string `json:"arch,omitempty"`
	Threads int    `json:"threads,omitempty"`
	// Policies are the sampling policies under test (default lazy,
	// periodic(64) and stratified(96) — the stratified budget sits below
	// the drawn populations so estimation is genuinely partial).
	Policies []string `json:"policies,omitempty"`
	// Ceilings overrides the per-policy relative-error ceiling in
	// percent; CeilingFor falls back to 30% for confidence-reporting
	// policies and 60% for the rest.
	Ceilings map[string]float64 `json:"ceilings,omitempty"`
	// FloorRelErr is the interval floor the estimator is configured with
	// (strata.Config.MinRelErr), used to detect IntervalFloorMiss.
	// Default: the strata default config's floor.
	FloorRelErr float64 `json:"floor_rel_err,omitempty"`
	// Families restricts the scenario family pool (default: all).
	Families []string `json:"families,omitempty"`
	// MinTasks and MaxTasks bound the per-scenario instance draw
	// (default 64..384 — smaller than the accuracy corpus, so rounds are
	// fast and small-population estimator behaviour is stressed).
	MinTasks int `json:"min_tasks,omitempty"`
	MaxTasks int `json:"max_tasks,omitempty"`
	// Minimize shrinks every finding to a 1-minimal reproducer before
	// reporting it. Set by default in NewDefault-style callers; the
	// zero Config leaves it off because false is the zero value — use
	// cmd/estfuzz's -minimize flag or set it explicitly.
	Minimize bool `json:"minimize,omitempty"`
	// Workers bounds concurrent simulations (default NumCPU).
	Workers int `json:"-"`
	// Recorder, when non-nil, receives round/finding flight-recorder
	// events and is threaded into the experiment engine. Excluded from
	// the fingerprint and from serialized configs.
	Recorder *obs.Recorder `json:"-"`
	// SlowProfiler, when non-nil, is threaded into the experiment engine
	// so cells exceeding its threshold get a pprof CPU capture. Excluded
	// from the fingerprint and from serialized configs.
	SlowProfiler *obs.SlowProfiler `json:"-"`
}

// Normalized returns the config with every defaulted field filled — what
// the driver executes and what Fingerprint hashes.
func (c Config) Normalized() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Arch == "" {
		c.Arch = string(arch.HighPerf)
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"lazy", "periodic(64)", "stratified(96)"}
	}
	if c.FloorRelErr == 0 {
		c.FloorRelErr = strata.DefaultConfig(1).MinRelErr
	}
	if len(c.Families) == 0 {
		c.Families = gen.FamilyNames()
	}
	if c.MinTasks == 0 {
		c.MinTasks = 64
	}
	if c.MaxTasks == 0 {
		c.MaxTasks = 384
	}
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Validate checks the campaign configuration after normalisation.
func (c Config) Validate() error {
	n := c.Normalized()
	if n.Rounds < 0 {
		return fmt.Errorf("fuzz: rounds %d must be >= 0", n.Rounds)
	}
	if _, err := arch.Parse(n.Arch); err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	if n.Threads < 1 {
		return fmt.Errorf("fuzz: threads %d must be >= 1", n.Threads)
	}
	for _, p := range n.Policies {
		if _, err := core.ParsePolicy(p); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	for _, f := range n.Families {
		if _, err := gen.FamilyByName(f); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	if n.MinTasks < 8 || n.MaxTasks < n.MinTasks {
		return fmt.Errorf("fuzz: task range [%d, %d] invalid (want 8 <= min <= max)", n.MinTasks, n.MaxTasks)
	}
	if n.FloorRelErr < 0 || n.FloorRelErr >= 1 {
		return fmt.Errorf("fuzz: floor %v out of range [0, 1)", n.FloorRelErr)
	}
	return nil
}

// Fingerprint identifies the round space: any two configs with equal
// fingerprints draw identical scenarios and request seeds for every round
// index, so resumable campaign state is portable exactly between them.
// Round bounds, worker counts and reporting knobs are deliberately
// excluded.
func (c Config) Fingerprint() string {
	n := c.Normalized()
	return fmt.Sprintf("seed=%d arch=%s threads=%d policies=%v families=%v tasks=[%d,%d] ceil=%v floor=%v",
		n.Seed, n.Arch, n.Threads, n.Policies, n.Families, n.MinTasks, n.MaxTasks, n.Ceilings, n.FloorRelErr)
}

// CeilingFor returns the relative-error ceiling (percent) applied to the
// named policy: the explicit Ceilings entry when present, otherwise 30%
// for stratified (confidence-reporting) policies and 60% for the rest —
// generous enough that hits are genuine tail events, not routine sampling
// error.
func (c Config) CeilingFor(policy string) float64 {
	if v, ok := c.Ceilings[policy]; ok {
		return v
	}
	if pol, err := core.ParsePolicy(policy); err == nil {
		if _, ok := pol.(interface{ Confidence() strata.Confidence }); ok {
			return 30
		}
	}
	return 60
}

// splitmix64 is the SplitMix64 finaliser, used to derive independent
// per-round seeds from the master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RoundSeed is the request seed of round i — the seed the fixed re-seed
// protocol holds constant while a finding's spec shrinks, so minimization
// re-validates the violation in the exact cell it was found in.
func (c Config) RoundSeed(i int) uint64 {
	n := c.Normalized()
	return splitmix64(n.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
}

// DrawRound returns round i's scenario. The draw is deterministic per
// (Seed, i) and independent of every other round, so campaigns are
// prefix-stable: resuming, extending or re-running a round space always
// reproduces the same scenarios. The knob grid is deliberately wider and
// nastier than the accuracy corpus's: widths to 128, depths to 16, the
// full CV/input-dependence ranges, log-uniform means.
func (c Config) DrawRound(i int) *gen.Scenario {
	n := c.Normalized()
	rng := rand.New(rand.NewPCG(n.Seed, 0xADE5A17^uint64(i)))
	fam, _ := gen.FamilyByName(n.Families[i%len(n.Families)])
	k := gen.DefaultKnobs()
	k.Tasks = n.MinTasks + rng.IntN(n.MaxTasks-n.MinTasks+1)
	k.Width = []int{1, 2, 4, 8, 16, 32, 64, 128}[rng.IntN(8)]
	k.Depth = 1 + rng.IntN(16)
	k.Types = 1 + rng.IntN(8)
	k.Size = gen.SizeDist(rng.IntN(4))
	k.Mean = int64(128 << rng.IntN(6))     // 128 .. 4096, log-uniform
	k.Mean += int64(rng.IntN(int(k.Mean))) // jitter within the octave
	k.CV = float64(rng.IntN(101)) / 100
	k.Phases = 1 + rng.IntN(4)
	k.InputDep = float64(rng.IntN(101)) / 100
	return &gen.Scenario{Family: fam, Knobs: k}
}

// Finding is one violating (scenario, policy) cell: the minimal reproducer
// plus its expected failure signature, in the exact shape committed to the
// regression corpus and replayed by the tier-1 gate. All fields are
// deterministic — a finding never carries host wall-clock state.
type Finding struct {
	// Round is the fuzz round that produced the finding.
	Round int `json:"round"`
	// Spec, Policy, Arch, Threads and Seed identify the violating cell;
	// Seed is the request seed of the fixed re-seed protocol.
	Spec    string `json:"spec"`
	Policy  string `json:"policy"`
	Arch    string `json:"arch"`
	Threads int    `json:"threads"`
	Seed    uint64 `json:"seed"`
	// CeilingPct and FloorRelErr record the thresholds the cell was
	// judged against, so replay applies the same contract.
	CeilingPct  float64 `json:"ceiling_pct"`
	FloorRelErr float64 `json:"floor_rel_err,omitempty"`
	// Classes is the failure signature: the violation classes observed,
	// in strata.Classify order.
	Classes []strata.ViolationClass `json:"classes"`
	// The cell's numbers at find time.
	ErrPct             float64 `json:"err_pct"`
	EstTotalCycles     float64 `json:"est_total_cycles,omitempty"`
	CILo               float64 `json:"ci_lo,omitempty"`
	CIHi               float64 `json:"ci_hi,omitempty"`
	DetailedTaskCycles float64 `json:"detailed_task_cycles,omitempty"`
	// MinimizedFrom is the originally drawn spec the minimizer shrank;
	// ShrinkTrials counts oracle runs it spent.
	MinimizedFrom string `json:"minimized_from,omitempty"`
	ShrinkTrials  int    `json:"shrink_trials,omitempty"`
	// Note annotates hand-committed corpus entries (boundary sentinels).
	Note string `json:"note,omitempty"`
}

// Key is the finding's cell identity, shared with every other durable
// record of the repository (engine.CellKey) — the corpus dedup key.
func (f Finding) Key() string {
	return engine.CellKey(f.Spec, f.Arch, f.Threads, f.Policy, f.Seed)
}

// Driver runs fuzz rounds over one experiment engine. Rounds execute
// sequentially (the unit of resumable state); the cells within a round and
// the detailed reference they share use the engine's worker pool.
type Driver struct {
	cfg Config
	eng *engine.Engine
}

// New validates the config and builds a driver.
func New(cfg Config) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Normalized()
	return &Driver{cfg: n, eng: engine.New(
		engine.WithWorkers(n.Workers),
		engine.WithRecorder(n.Recorder),
		engine.WithSlowProfiler(n.SlowProfiler))}, nil
}

// Config returns the driver's normalized configuration.
func (d *Driver) Config() Config { return d.cfg }

// evaluate runs one cell and returns its finding-shaped outcome (Classes
// empty when the cell honours the contract).
func (d *Driver) evaluate(ctx context.Context, spec, policy string, seed uint64, round int) (Finding, error) {
	rep, err := d.eng.Run(ctx, engine.Request{
		Workload: spec, Arch: d.cfg.Arch, Threads: d.cfg.Threads,
		Seed: seed, Policy: policy,
	})
	if err != nil {
		return Finding{}, err
	}
	f := Finding{
		Round: round, Spec: spec, Policy: rep.Request.Policy,
		Arch: rep.Request.Arch, Threads: rep.Request.Threads, Seed: seed,
		CeilingPct: d.cfg.CeilingFor(policy), FloorRelErr: d.cfg.FloorRelErr,
		ErrPct: rep.ErrPct, DetailedTaskCycles: rep.DetailedTaskCycles,
	}
	chk := strata.Check{
		DetailedTaskCycles: rep.DetailedTaskCycles,
		ErrPct:             rep.ErrPct,
		ErrCeilingPct:      f.CeilingPct,
		MinRelErr:          f.FloorRelErr,
	}
	if c := rep.Confidence; c != nil {
		f.EstTotalCycles, f.CILo, f.CIHi = c.Estimate, c.Lo, c.Hi
	}
	f.Classes = strata.Classify(rep.Confidence, chk)
	return f, nil
}

// Round executes fuzz round i: draw the scenario, compute its detailed
// reference once, run every policy against it, classify, and (when
// configured) minimize each violating cell to a 1-minimal reproducer.
// The round's workloads are evicted from the baseline cache before
// returning, so unbounded campaigns run in bounded memory.
func (d *Driver) Round(ctx context.Context, i int) ([]Finding, error) {
	sc := d.cfg.DrawRound(i)
	spec := sc.Spec()
	seed := d.cfg.RoundSeed(i)
	// The round span is the root of this round's trace subtree: the engine
	// nests every cell it runs for the round (baseline included) under it
	// through the context.
	sp := obs.ChildSpan(ctx, d.cfg.Recorder, "fuzz.round",
		obs.Int("round", i), obs.String("spec", spec), obs.Uint64("seed", seed))
	ctx = obs.ContextWithSpan(ctx, sp)
	nFindings := 0
	defer func() { sp.End(obs.Int("round", i), obs.Int("findings", nFindings)) }()
	visited := map[string]bool{spec: true}
	defer func() {
		for w := range visited {
			d.eng.Cache().DropWorkload(w)
		}
	}()

	// Warm the detailed reference once so the policy cells below share it
	// instead of racing to compute it.
	if _, err := d.eng.Baseline(ctx, engine.Request{
		Workload: spec, Arch: d.cfg.Arch, Threads: d.cfg.Threads, Seed: seed,
	}); err != nil {
		return nil, fmt.Errorf("fuzz: round %d baseline: %w", i, err)
	}

	var findings []Finding
	for _, policy := range d.cfg.Policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := d.evaluate(ctx, spec, policy, seed, i)
		if err != nil {
			return nil, fmt.Errorf("fuzz: round %d %s: %w", i, policy, err)
		}
		if len(f.Classes) == 0 {
			continue
		}
		if d.cfg.Minimize {
			msp := sp.StartSpan("fuzz.minimize", obs.String("spec", spec), obs.String("policy", policy))
			mctx := obs.ContextWithSpan(ctx, msp)
			memo := map[string]Finding{spec: f}
			min, trials, err := Minimize(sc, f.Classes, func(cand *gen.Scenario) ([]strata.ViolationClass, error) {
				cs := cand.Spec()
				visited[cs] = true
				cf, err := d.evaluate(mctx, cs, policy, seed, i)
				if err != nil {
					return nil, err
				}
				memo[cs] = cf
				return cf.Classes, nil
			})
			if err != nil {
				msp.End(obs.String("status", "error"))
				return nil, fmt.Errorf("fuzz: round %d minimizing %s under %s: %w", i, spec, policy, err)
			}
			if ms := min.Spec(); ms != spec {
				mf := memo[ms]
				mf.MinimizedFrom, mf.ShrinkTrials = spec, trials
				f = mf
			} else {
				f.ShrinkTrials = trials
			}
			msp.End(obs.String("status", "ok"), obs.String("minimized", f.Spec), obs.Int("trials", trials))
		}
		metricFindings.Inc()
		for _, class := range f.Classes {
			obs.Default().Counter("fuzz.violations." + string(class)).Inc()
		}
		sp.Emit("fuzz.finding",
			obs.Int("round", i), obs.String("spec", f.Spec), obs.String("policy", f.Policy),
			obs.String("classes", classesString(f.Classes)), obs.Float("err_pct", f.ErrPct))
		findings = append(findings, f)
	}
	metricRounds.Inc()
	nFindings = len(findings)
	return findings, nil
}

// classesString renders a failure signature as a comma-separated list.
func classesString(cs []strata.ViolationClass) string {
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += ","
		}
		s += string(c)
	}
	return s
}

// Run executes rounds [start, cfg.Rounds) — or forever when Rounds is 0 —
// stopping cleanly on context cancellation or deadline. onRound, when
// non-nil, observes every *completed* round in order with its findings
// (possibly none): it is the persistence hook — append findings to the
// corpus and record round+1 as the resume point, and an interrupt mid-round
// loses at most that round's partial work. The returned findings span the
// completed rounds.
func (d *Driver) Run(ctx context.Context, start int, onRound func(round int, fs []Finding)) ([]Finding, error) {
	var all []Finding
	for i := start; d.cfg.Rounds == 0 || i < d.cfg.Rounds; i++ {
		fs, err := d.Round(ctx, i)
		if err != nil {
			return all, err
		}
		all = append(all, fs...)
		if onRound != nil {
			onRound(i, fs)
		}
	}
	return all, nil
}

// Replay re-runs a committed reproducer in its recorded cell — same spec,
// policy, architecture, threads and request seed, judged against the
// recorded ceiling and floor — and returns the violation classes the cell
// exhibits now. The regression gate asserts the recorded classes are gone.
func (d *Driver) Replay(ctx context.Context, f Finding) ([]strata.ViolationClass, error) {
	rep, err := d.eng.Run(ctx, engine.Request{
		Workload: f.Spec, Arch: f.Arch, Threads: f.Threads,
		Seed: f.Seed, Policy: f.Policy,
	})
	if err != nil {
		return nil, err
	}
	return strata.Classify(rep.Confidence, strata.Check{
		DetailedTaskCycles: rep.DetailedTaskCycles,
		ErrPct:             rep.ErrPct,
		ErrCeilingPct:      f.CeilingPct,
		MinRelErr:          f.FloorRelErr,
	}), nil
}

// ReplayTimeout bounds one corpus replay in the tier-1 gate.
const ReplayTimeout = 5 * time.Minute
