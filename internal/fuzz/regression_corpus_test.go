package fuzz

import (
	"context"
	"slices"
	"testing"

	"taskpoint/internal/gen"
)

// TestRegressionCorpus replays every committed reproducer in its recorded
// cell — same spec, policy, architecture, threads and request seed — and
// asserts the recorded violation classes are gone: each corpus entry is a
// minimized scenario that once broke the accuracy contract and whose fix
// must stay fixed. The replay is fully deterministic, so a failure here is
// a real regression, never flakiness.
func TestRegressionCorpus(t *testing.T) {
	findings, err := ReadCorpusFile("testdata/regression_corpus.jsonl")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(findings) < 3 {
		t.Fatalf("corpus holds %d reproducers, want at least 3 — the seed corpus shrank", len(findings))
	}

	d, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("building driver: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), ReplayTimeout)
	defer cancel()

	for _, f := range findings {
		t.Run(f.Spec+"/"+f.Policy, func(t *testing.T) {
			if _, err := gen.Parse(f.Spec); err != nil {
				t.Fatalf("committed spec no longer parses: %v", err)
			}
			got, err := d.Replay(ctx, f)
			if err != nil {
				t.Fatalf("replaying %s under %s (seed %d): %v", f.Spec, f.Policy, f.Seed, err)
			}
			for _, want := range f.Classes {
				if slices.Contains(got, want) {
					t.Errorf("violation %s regressed in cell %s under %s (seed %d): recorded err=%.4f%% ci=[%.0f,%.0f] detailed=%.0f, now classes=%v",
						want, f.Spec, f.Policy, f.Seed, f.ErrPct, f.CILo, f.CIHi, f.DetailedTaskCycles, got)
				}
			}
		})
	}
}
