package fuzz

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"taskpoint/internal/sweep"
)

// LoadCorpus reads a reproducer corpus: JSONL, one Finding per line. Every
// line must parse — writers guarantee complete lines by truncating a
// partial tail (sweep.DropPartialTail) before appending, so a malformed
// line is corruption, not an interrupted campaign.
func LoadCorpus(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var f Finding
		if err := json.Unmarshal([]byte(text), &f); err != nil {
			return nil, fmt.Errorf("fuzz: corpus line %d: %w", line, err)
		}
		if f.Spec == "" || f.Policy == "" || len(f.Classes) == 0 {
			return nil, fmt.Errorf("fuzz: corpus line %d: finding without spec, policy or classes", line)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCorpusFile loads the corpus at path; a missing file is an empty
// corpus, not an error.
func ReadCorpusFile(path string) ([]Finding, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCorpus(f)
}

// AppendCorpus appends findings to the corpus at path, creating it if
// absent. Before appending it truncates a partial trailing line (an
// interrupted fuzz run killed mid-write) with sweep.DropPartialTail, so
// new records never glue onto a torn one, and it dedupes against the
// entries already present by cell key — re-discovering a committed
// reproducer does not duplicate it. Returns how many findings were
// actually appended.
func AppendCorpus(path string, fs []Finding) (added int, err error) {
	if err := sweep.DropPartialTail(path); err != nil {
		return 0, err
	}
	existing, err := ReadCorpusFile(path)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool, len(existing))
	for _, f := range existing {
		seen[f.Key()] = true
	}
	out, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(out)
	for _, f := range fs {
		if seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
		if err := enc.Encode(f); err != nil {
			out.Close()
			return added, err
		}
		added++
	}
	return added, out.Close()
}
