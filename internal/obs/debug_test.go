package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestServeDebug boots the diagnostics server on an ephemeral port and
// checks each surface answers: the obs snapshot as JSON, expvar, and the
// pprof index.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug.test.counter").Add(7)

	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/obs"), &snap); err != nil {
		t.Fatalf("/debug/obs is not a snapshot: %v", err)
	}
	if snap.Counters["debug.test.counter"] != 7 {
		t.Errorf("/debug/obs counter = %d, want 7", snap.Counters["debug.test.counter"])
	}

	if !json.Valid(get("/debug/vars")) {
		t.Error("/debug/vars is not valid JSON")
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Error("/debug/pprof/ returned an empty index")
	}
}
