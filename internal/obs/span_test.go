package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	sc := bufio.NewScanner(buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	return lines
}

// TestSpanBeginEndPairing checks the span lifecycle wire format: paired
// span.begin/span.end lines sharing a monotonic id, parent links on child
// spans, names only on begin, and span-attached events carrying the id.
func TestSpanBeginEndPairing(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	root := r.StartSpan("campaign", Int("cells", 2))
	child := root.StartSpan("cell", String("key", "cholesky/hp/8"))
	child.Emit("cache.hit", String("key", "cholesky/hp/8"))
	child.End(Float("err_pct", 0.4))
	root.End()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	lines := decodeLines(t, &buf)
	if len(lines) != 6 { // 2 begin + 1 event + 2 end + trace.end
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	begin0, begin1, ev, end1, end0 := lines[0], lines[1], lines[2], lines[3], lines[4]
	if begin0["kind"] != "span.begin" || begin0["name"] != "campaign" || begin0["span"] != 1.0 {
		t.Errorf("root begin wrong: %v", begin0)
	}
	if _, has := begin0["parent"]; has {
		t.Errorf("root span must not carry a parent link: %v", begin0)
	}
	if begin0["cells"] != 2.0 {
		t.Errorf("root begin lost its fields: %v", begin0)
	}
	if begin1["kind"] != "span.begin" || begin1["name"] != "cell" || begin1["span"] != 2.0 || begin1["parent"] != 1.0 {
		t.Errorf("child begin wrong: %v", begin1)
	}
	if ev["kind"] != "cache.hit" || ev["span"] != 2.0 {
		t.Errorf("span-attached event wrong: %v", ev)
	}
	if end1["kind"] != "span.end" || end1["span"] != 2.0 || end1["err_pct"] != 0.4 {
		t.Errorf("child end wrong: %v", end1)
	}
	if _, has := end1["name"]; has {
		t.Errorf("span.end must not repeat the name: %v", end1)
	}
	if end0["kind"] != "span.end" || end0["span"] != 1.0 {
		t.Errorf("root end wrong: %v", end0)
	}
}

// TestSpanNilAndZeroNoOp checks the free disabled path: spans of a nil
// recorder and the zero Span swallow every operation.
func TestSpanNilAndZeroNoOp(t *testing.T) {
	var r *Recorder
	s := r.StartSpan("campaign")
	if s.Valid() || s.ID() != 0 {
		t.Errorf("nil recorder span should be the invalid zero span, got %+v", s)
	}
	child := s.StartSpan("cell")
	child.Emit("cache.hit")
	child.End()
	s.End()
	if got := SpanFromContext(ContextWithSpan(context.Background(), s)); got.Valid() {
		t.Errorf("zero span must not attach to a context, got %+v", got)
	}
	if c := ChildSpan(context.Background(), nil, "x"); c.Valid() {
		t.Errorf("ChildSpan with nil recorder must be a no-op, got %+v", c)
	}
}

// TestChildSpanContextThreading checks ChildSpan nests under the context's
// span when it lives on the same recorder, and starts a root span when the
// context carries a span of a different recorder.
func TestChildSpanContextThreading(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	root := r.StartSpan("campaign")
	ctx := ContextWithSpan(context.Background(), root)

	if got := SpanFromContext(ctx); got.ID() != root.ID() {
		t.Fatalf("SpanFromContext = %v, want the campaign span %v", got.ID(), root.ID())
	}
	child := ChildSpan(ctx, r, "cell")
	child.End()

	var otherBuf bytes.Buffer
	other := NewRecorder(&otherBuf)
	foreign := ChildSpan(ctx, other, "cell")
	foreign.End()
	root.End()
	r.Close()
	other.Close()

	lines := decodeLines(t, &buf)
	if lines[1]["parent"] != 1.0 {
		t.Errorf("same-recorder ChildSpan should parent under ctx span: %v", lines[1])
	}
	otherLines := decodeLines(t, &otherBuf)
	if _, has := otherLines[0]["parent"]; has {
		t.Errorf("cross-recorder ChildSpan must start a root span: %v", otherLines[0])
	}
}

// TestSpanIDsMonotonicUnderConcurrency checks concurrent StartSpan calls
// never reuse an id.
func TestSpanIDsMonotonicUnderConcurrency(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	const n = 64
	done := make(chan Span, n)
	for i := 0; i < n; i++ {
		go func() { done <- r.StartSpan("cell") }()
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		s := <-done
		if seen[s.ID()] {
			t.Fatalf("span id %d handed out twice", s.ID())
		}
		seen[s.ID()] = true
		s.End()
	}
	r.Close()
}
