package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRecorderLineFormat checks every emitted line is standalone JSON with
// monotonic seq, non-decreasing t_ns, and faithfully typed fields.
func TestRecorderLineFormat(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Emit("cell.start", String("key", "cholesky/hp/8"), Int("threads", 8))
	r.Emit("cell.finish", Float("err_pct", 0.25), Bool("ok", true), Uint64("n", 3))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 { // 2 events + trace.end
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	lastT := -1.0
	for i, m := range lines {
		if got := m["seq"].(float64); got != float64(i+1) {
			t.Errorf("line %d seq = %v, want %d", i, got, i+1)
		}
		tns := m["t_ns"].(float64)
		if tns < lastT {
			t.Errorf("line %d t_ns = %v went backwards (prev %v)", i, tns, lastT)
		}
		lastT = tns
	}
	if lines[0]["kind"] != "cell.start" || lines[0]["key"] != "cholesky/hp/8" || lines[0]["threads"] != 8.0 {
		t.Errorf("event 0 fields wrong: %v", lines[0])
	}
	if lines[1]["err_pct"] != 0.25 || lines[1]["ok"] != true || lines[1]["n"] != 3.0 {
		t.Errorf("event 1 fields wrong: %v", lines[1])
	}
	if lines[2]["kind"] != "trace.end" || lines[2]["dropped"] != 0.0 {
		t.Errorf("final event is not a clean trace.end: %v", lines[2])
	}
}

// TestRecorderNilNoOp checks the disabled path: every method on a nil
// recorder is a safe no-op.
func TestRecorderNilNoOp(t *testing.T) {
	var r *Recorder
	r.Emit("anything", Int("x", 1))
	r.SetLimit(10)
	if r.Dropped() != 0 {
		t.Error("nil Dropped() != 0")
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
}

// TestRecorderEscaping checks strings with quotes, newlines, control
// bytes and invalid UTF-8 still produce valid single-line JSON.
func TestRecorderEscaping(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	nasty := "a\"b\\c\nd\te\rf\x01g\xffh → ok"
	r.Emit("evil", String("s", nasty))

	line := strings.TrimRight(buf.String(), "\n")
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("event spans multiple lines: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v\n%q", err, line)
	}
	want := "a\"b\\c\nd\te\rf\x01g�h → ok"
	if m["s"] != want {
		t.Errorf("round-tripped string = %q, want %q", m["s"], want)
	}
}

// TestOpenDropsTornTail writes a trace with a torn final line (process
// killed mid-write), reopens it, and checks the torn fragment is gone and
// new events append cleanly.
func TestOpenDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	seed := `{"seq":1,"t_ns":10,"kind":"cell.start"}` + "\n" + `{"seq":2,"t_ns":20,"kind":"cell.fin`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Emit("resumed")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 { // surviving seed line + resumed + trace.end
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), data)
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("line %d is not valid JSON: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], `"kind":"resumed"`) {
		t.Errorf("line 1 = %q, want the resumed event", lines[1])
	}
}

// TestRecorderByteLimit checks events past the limit are counted as
// dropped, and Close's trace.end reports the count.
func TestRecorderByteLimit(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Emit("first")
	r.SetLimit(int64(buf.Len())) // at the limit: everything further drops
	r.Emit("second")
	r.Emit("third")
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	r.Close()
	if s := buf.String(); strings.Contains(s, "second") || strings.Contains(s, "third") {
		t.Errorf("dropped events leaked into output:\n%s", s)
	}
	// trace.end also drops (it respects the limit), but the count is still
	// available from Dropped; what matters is no torn or partial output.
	for _, l := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !json.Valid([]byte(l)) {
			t.Errorf("line is not valid JSON: %q", l)
		}
	}
}

// TestRecorderConcurrent emits from many goroutines and checks every line
// is whole and seq covers 1..N exactly once (run under -race).
func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	const workers, perW = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Emit("tick", Int("worker", w), Int("i", i))
			}
		}(w)
	}
	wg.Wait()

	seen := map[uint64]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn line %q: %v", sc.Text(), err)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	if len(seen) != workers*perW {
		t.Errorf("got %d events, want %d", len(seen), workers*perW)
	}
}
