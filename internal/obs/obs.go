// Package obs is the repository's observability layer: a zero-dependency,
// race-safe metrics registry (counters, gauges, log-bucketed histograms
// with a JSON snapshot form), a bounded torn-tail-safe JSONL flight
// recorder for real-execution traces, a Chrome trace-event/Perfetto
// exporter for simulated per-core task timelines, and an expvar+pprof
// debug HTTP surface.
//
// Design constraints, in order:
//
//   - The disabled path is free. A nil *Recorder is a valid recorder whose
//     Emit is a nil check; metric updates are single atomic operations and
//     never allocate, so instrumentation compiled into the simulation
//     kernel's call sites cannot regress the kernel-perf gate.
//   - Everything is safe for concurrent use: experiment cells run across a
//     worker pool and all instrument the same process-wide registry.
//   - Metric keys are flat dotted strings, "<subsystem>.<object>.<metric>"
//     (e.g. "engine.baseline.cache.hits"), lowercase, with units suffixed
//     where ambiguous ("engine.cell.wall_ms").
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (set or adjusted atomically).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket geometry: 8 sub-buckets per power-of-two octave over
// [2^histMinExp, 2^(histMaxExp+1)), giving every in-range observation a
// bucket whose width is 1/8 of its lower bound — quantile estimates are
// within ~7% of the exact value. Out-of-range and non-positive
// observations clamp (zero/negative land in a dedicated underflow
// bucket), so Observe never loses a sample.
const (
	histSubBits  = 3
	histSub      = 1 << histSubBits
	histMinExp   = -16
	histMaxExp   = 47
	histNBuckets = (histMaxExp - histMinExp + 1) * histSub
)

// Histogram is a log-bucketed distribution of non-negative observations:
// one atomic add per Observe, exact count/sum/min/max, and quantiles
// interpolated within power-of-two sub-buckets.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // valid once count > 0
	maxBits atomic.Uint64
	under   atomic.Int64 // observations <= 0 (or NaN)
	buckets [histNBuckets]atomic.Int64
}

// bucketIndex maps a positive v to its sub-bucket, clamped to the table.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	octave := exp - 1          // lower bound 2^octave
	idx := (octave-histMinExp)<<histSubBits + int((frac*2-1)*histSub)
	if idx < 0 {
		return 0
	}
	if idx >= histNBuckets {
		return histNBuckets - 1
	}
	return idx
}

// bucketBounds returns the [lo, hi) value range of sub-bucket idx.
func bucketBounds(idx int) (lo, hi float64) {
	octave := histMinExp + idx>>histSubBits
	sub := idx & (histSub - 1)
	base := math.Ldexp(1, octave)
	lo = base * (1 + float64(sub)/histSub)
	hi = base * (1 + float64(sub+1)/histSub)
	return lo, hi
}

// newHistogram builds a histogram with min/max sentinels, so concurrent
// first observations race safely.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	if math.IsNaN(v) || v <= 0 {
		h.under.Add(1)
		v = 0
	} else {
		h.buckets[bucketIndex(v)].Add(1)
	}
	addFloat(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations (non-positive counted as 0).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the sub-bucket holding the rank. Relative error is bounded by
// half a bucket width (~7%). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	cum := float64(h.under.Load())
	if rank < cum {
		return 0
	}
	for i := 0; i < histNBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if rank < cum+c {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)*(rank-cum+0.5)/c
		}
		cum += c
	}
	return math.Float64frombits(h.maxBits.Load())
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a histogram's JSON form.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Under counts non-positive observations (they hold rank 0 in the
	// quantile walk but have no value bucket).
	Under   int64         `json:"under,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// snapshot captures the histogram's current state. Concurrent Observe
// calls may straddle the capture; each bucket read is atomic, so the
// result is a consistent-enough view for reporting.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Under: h.under.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := 0; i < histNBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, Count: c})
		}
	}
	return s
}

// Registry is a named set of metrics. Metrics are created on first use
// and live for the registry's lifetime; lookups after creation are a
// read-locked map access, and updates on the returned metric are plain
// atomics — the fast path callers are expected to cache the pointer at
// package init.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every subsystem
// instruments and the debug surface serves.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = newHistogram()
	r.histograms[name] = h
	return h
}

// Snapshot is the registry's JSON form: every metric by name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Names returns every registered metric name, sorted — handy for
// documentation tests and debugging.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MarshalSnapshot renders the registry as indented JSON — the form the
// debug endpoint serves and -metrics-out files contain.
func (r *Registry) MarshalSnapshot() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
