package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// SlowProfiler captures a pprof CPU profile of slow experiment cells: the
// engine registers every cell as it starts, a watchdog goroutine checks
// in-flight cells against the threshold, and the first cell to exceed it
// triggers a CPU capture that runs until the cell finishes (capped at one
// more threshold interval). Go supports one CPU profile per process, so
// captures are serialized — while one runs, other slow cells wait for the
// next watchdog pass; a cell is profiled at most once.
//
// Profiles land in dir as slow-<n>-<key>.pprof, announced on stderr. A
// nil *SlowProfiler is a valid no-op — the disabled path of the
// -profile-slow flag.
type SlowProfiler struct {
	threshold time.Duration
	dir       string

	mu        sync.Mutex
	cells     map[uint64]*slowCell
	nextID    uint64
	profiling bool
	captures  int
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type slowCell struct {
	key      string
	start    time.Time
	done     chan struct{}
	profiled bool
}

// NewSlowProfiler starts a profiler with the given slow-cell threshold,
// writing profiles into dir ("" means the working directory). Close it to
// stop the watchdog.
func NewSlowProfiler(threshold time.Duration, dir string) *SlowProfiler {
	if threshold <= 0 {
		return nil
	}
	if dir == "" {
		dir = "."
	}
	p := &SlowProfiler{
		threshold: threshold,
		dir:       dir,
		cells:     make(map[uint64]*slowCell),
		stop:      make(chan struct{}),
	}
	tick := threshold / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	p.wg.Add(1)
	go p.watch(tick)
	return p
}

// CellStarted registers an in-flight cell and returns the function that
// unregisters it when the cell completes. Safe on a nil profiler.
func (p *SlowProfiler) CellStarted(key string) func() {
	if p == nil {
		return func() {}
	}
	c := &slowCell{key: key, start: time.Now(), done: make(chan struct{})}
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.cells[id] = c
	p.mu.Unlock()
	return func() {
		close(c.done)
		p.mu.Lock()
		delete(p.cells, id)
		p.mu.Unlock()
	}
}

// Captures reports how many profiles the watchdog has written so far.
func (p *SlowProfiler) Captures() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}

// Close stops the watchdog; any capture in flight finishes first. Safe on
// a nil profiler.
func (p *SlowProfiler) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
}

// watch is the watchdog loop: on every tick, profile the longest-running
// unprofiled cell past the threshold, unless a capture is already active.
func (p *SlowProfiler) watch(tick time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		if p.profiling {
			p.mu.Unlock()
			continue
		}
		var victim *slowCell
		for _, c := range p.cells {
			if c.profiled || time.Since(c.start) < p.threshold {
				continue
			}
			if victim == nil || c.start.Before(victim.start) {
				victim = c
			}
		}
		if victim == nil {
			p.mu.Unlock()
			continue
		}
		victim.profiled = true
		p.profiling = true
		p.captures++
		n := p.captures
		p.mu.Unlock()
		p.capture(victim, n)
	}
}

// capture profiles CPU until the cell finishes or one more threshold
// interval elapses, whichever comes first.
func (p *SlowProfiler) capture(c *slowCell, n int) {
	defer func() {
		p.mu.Lock()
		p.profiling = false
		p.mu.Unlock()
	}()
	path := filepath.Join(p.dir, fmt.Sprintf("slow-%03d-%s.pprof", n, sanitizeKey(c.key)))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: slow-cell profile: %v\n", err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is active in this process (e.g. a debug
		// endpoint capture); skip rather than fail the run.
		fmt.Fprintf(os.Stderr, "obs: slow-cell profile of %s skipped: %v\n", c.key, err)
		f.Close()
		os.Remove(path)
		return
	}
	window := time.NewTimer(p.threshold)
	defer window.Stop()
	select {
	case <-c.done:
	case <-window.C:
	case <-p.stop:
	}
	pprof.StopCPUProfile()
	f.Close()
	fmt.Fprintf(os.Stderr, "obs: cell %s exceeded %v; CPU profile written to %s\n",
		c.key, p.threshold, path)
}

// sanitizeKey maps a cell key onto a filesystem-safe file-name fragment.
func sanitizeKey(key string) string {
	b := []byte(key)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			b[i] = '_'
		}
	}
	const maxLen = 80
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	return string(b)
}
