package query

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// ns renders nanoseconds as a compact human duration with fixed formatting
// (not time.Duration.String, whose unit switching makes columns ragged).
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// pct renders a share of total as a percentage ("-" when total is 0).
func pct(part, total int64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// WriteText renders the report as the human-readable table stack the obsq
// CLI prints. Like the JSON form it is deterministic for a given trace.
func WriteText(w io.Writer, r *Report) error {
	fmt.Fprintf(w, "trace: %d events, %s wall-clock", r.TraceEvents, ns(r.TotalWallNs))
	if r.Interrupted {
		fmt.Fprintf(w, ", INTERRUPTED (%d open spans)", r.OpenSpans)
	}
	if r.TornTail {
		fmt.Fprint(w, ", torn tail skipped")
	}
	if r.DroppedEvents > 0 {
		fmt.Fprintf(w, ", %d events dropped by byte limit", r.DroppedEvents)
	}
	fmt.Fprintln(w)

	if len(r.Phases) > 0 {
		fmt.Fprintln(w, "\n== wall-clock by phase ==")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tcount\ttotal\tself\tself/wall")
		for _, p := range r.Phases {
			open := ""
			if p.Open > 0 {
				open = fmt.Sprintf(" (%d open)", p.Open)
			}
			fmt.Fprintf(tw, "%s\t%d%s\t%s\t%s\t%s\n",
				p.Name, p.Count, open, ns(p.TotalNs), ns(p.SelfNs), pct(p.SelfNs, r.TotalWallNs))
		}
		tw.Flush()
	}

	if len(r.Cells) > 0 {
		fmt.Fprintln(w, "\n== cells ==")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "cell\twall\tbaseline\tsampled\toverhead\tstatus\terr%")
		for _, c := range r.Cells {
			status := c.Status
			if c.Open {
				status = "OPEN"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%.3g\n",
				c.Key, ns(c.WallNs), ns(c.BaselineNs), ns(c.SampledNs), ns(c.OverheadNs), status, c.ErrPct)
		}
		tw.Flush()
	}

	if len(r.Strata) > 0 {
		fmt.Fprintln(w, "\n== strata ==")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "stratum\tcells\tpop\tsampled\tquota\tmean CI width%\tsamples/CI-pt")
		for _, s := range r.Strata {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3g\t%.3g\n",
				s.Stratum, s.Cells, s.Population, s.Sampled, s.Quota, s.MeanCIRelWidthPct, s.SamplesPerCIPoint)
		}
		tw.Flush()
	}

	if len(r.CriticalPath.Steps) > 0 {
		cp := r.CriticalPath
		fmt.Fprintf(w, "\n== critical path == %d cells, %s of %s (%.1f%% coverage)\n",
			len(cp.Steps), ns(cp.PathNs), ns(cp.SpanNs), cp.CoveragePct)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "cell\tstart\twall\tgap")
		for _, s := range cp.Steps {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", s.Key, ns(s.StartNs), ns(s.WallNs), ns(s.GapNs))
		}
		tw.Flush()
	}

	fmt.Fprintf(w, "\n== baseline cache == %d hits, %d misses, %d computes, %s computed, %s saved\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Computes, ns(r.Cache.ComputeNs), ns(r.Cache.SavedNs))
	if len(r.Cache.Baselines) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "baseline\tcomputes\thits\tcompute\tsaved")
		for _, b := range r.Cache.Baselines {
			fmt.Fprintf(tw, "%s/%s/t%d\t%d\t%d\t%s\t%s\n",
				b.Workload, b.Arch, b.Threads, b.Computes, b.Hits, ns(b.ComputeNs), ns(b.SavedNs))
		}
		tw.Flush()
	}

	if len(r.Stragglers) > 0 {
		fmt.Fprintln(w, "\n== stragglers ==")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "cell\twall\tgroup median\tratio")
		for _, s := range r.Stragglers {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\n", s.Key, ns(s.WallNs), ns(s.MedianNs), s.Ratio)
		}
		tw.Flush()
	}
	return nil
}
