// Package query is the analysis layer over the flight recorder's
// collection layer: it reads any recorder JSONL trace — including one left
// behind by an interrupted or killed campaign — rebuilds the span tree the
// instrumented layers emitted (campaign → cell → baseline/sampled →
// sampling phases, or fuzz round → minimize), and computes a deterministic
// campaign cost report: wall-clock attribution by phase, cell and stratum,
// the campaign critical path through the bounded worker pool, baseline
// cache economics, and sample cost per confidence-interval point.
//
// Everything is derived purely from trace content (seq order and relative
// t_ns timestamps), never from the host clock, so the same trace always
// produces the byte-identical report — the property the golden tests and
// the CI health artifact rely on.
package query

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Event is one decoded flight-recorder line. The envelope fields the
// recorder writes on every line (seq, t_ns, kind) and the span tagging
// fields (span, parent, name) are lifted out; everything else stays in
// Fields as decoded JSON values.
type Event struct {
	Seq    uint64
	TNs    int64
	Kind   string
	Span   uint64
	Parent uint64
	Name   string
	Fields map[string]any
}

// Str returns the named string field ("" when absent or not a string).
func (e Event) Str(key string) string {
	s, _ := e.Fields[key].(string)
	return s
}

// Num returns the named numeric field (0 when absent or not a number).
func (e Event) Num(key string) float64 {
	f, _ := e.Fields[key].(float64)
	return f
}

// Span is one reconstructed interval of the trace: a span.begin line
// paired with its span.end (or left open by an interrupted run), its
// parent/child links, and the events attached to it.
type Span struct {
	// ID and Parent are the recorder-scoped span ids (Parent 0 for roots).
	ID, Parent uint64
	// Name is the span's name from span.begin.
	Name string
	// StartNs and EndNs bound the interval in trace-relative nanoseconds;
	// for a span left open by an interrupted run, EndNs is the trace's
	// last timestamp.
	StartNs, EndNs int64
	// StartSeq is the span.begin sequence number — the deterministic
	// tie-breaker everywhere intervals compare equal.
	StartSeq uint64
	// Open reports the span never ended (the run was interrupted, or the
	// byte limit swallowed the end line).
	Open bool
	// Begin and End hold the fields of the two lifecycle lines (End is
	// nil while Open).
	Begin, End map[string]any
	// Children are the span's child spans in begin order; Events the
	// non-lifecycle events attached to the span, in seq order.
	Children []*Span
	Events   []Event
}

// Dur is the span's duration in nanoseconds.
func (s *Span) Dur() int64 { return s.EndNs - s.StartNs }

// SelfNs is the span's duration minus its children's (clamped at 0) — the
// time attributable to the span itself.
func (s *Span) SelfNs() int64 {
	self := s.Dur()
	for _, c := range s.Children {
		self -= c.Dur()
	}
	if self < 0 {
		self = 0
	}
	return self
}

// beginStr returns a string field of the span.begin line.
func (s *Span) beginStr(key string) string {
	v, _ := s.Begin[key].(string)
	return v
}

// endNum returns a numeric field of the span.end line.
func (s *Span) endNum(key string) float64 {
	v, _ := s.End[key].(float64)
	return v
}

// Trace is a fully parsed flight-recorder trace.
type Trace struct {
	// Events are all decoded lines in seq order.
	Events []Event
	// Spans are the reconstructed spans in begin order; Roots the
	// parentless ones.
	Spans []*Span
	Roots []*Span
	// EndNs is the last timestamp of the trace — the campaign's total
	// traced wall-clock, since t_ns is relative to recorder start.
	EndNs int64
	// Dropped is the drop count the trace.end line reported.
	Dropped uint64
	// Clean reports a trace.end line was present: the recorder was closed
	// properly. A false value means the producing process was interrupted.
	Clean bool
	// TornTail reports the final line was incomplete (process killed
	// mid-write) and was skipped — the read-side analogue of the
	// DropPartialTail repair contract.
	TornTail bool

	byID map[uint64]*Span
}

// SpanByID resolves a span id (nil when unknown).
func (t *Trace) SpanByID(id uint64) *Span { return t.byID[id] }

// maxLine bounds one trace line; recorder lines are short, but minimized
// fuzz specs or error strings can stretch them.
const maxLine = 1 << 20

// ReadEvents decodes a flight-recorder JSONL stream into events sorted by
// seq. A torn final line (process killed mid-write) is skipped and
// reported via the second return; a malformed line anywhere else is an
// error.
func ReadEvents(r io.Reader) ([]Event, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	var events []Event
	var torn bool
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			// Only the final line may be torn; peek for more content.
			if sc.Scan() {
				return nil, false, fmt.Errorf("query: line %d: %w", lineNo, err)
			}
			torn = true
			break
		}
		ev := Event{Fields: m}
		if v, ok := m["seq"].(float64); ok {
			ev.Seq = uint64(v)
			delete(m, "seq")
		}
		if v, ok := m["t_ns"].(float64); ok {
			ev.TNs = int64(v)
			delete(m, "t_ns")
		}
		if v, ok := m["kind"].(string); ok {
			ev.Kind = v
			delete(m, "kind")
		}
		if v, ok := m["span"].(float64); ok {
			ev.Span = uint64(v)
			delete(m, "span")
		}
		if v, ok := m["parent"].(float64); ok {
			ev.Parent = uint64(v)
			delete(m, "parent")
		}
		if v, ok := m["name"].(string); ok {
			ev.Name = v
			delete(m, "name")
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("query: %w", err)
	}
	// The recorder's seq is the trace's deterministic total order; sorting
	// restores it however the lines were interleaved or shuffled on the
	// way here. The sort is stable so duplicate seqs (never produced by
	// one recorder) keep stream order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events, torn, nil
}

// ReadSpans parses a flight-recorder JSONL stream and rebuilds its span
// tree. Interrupted traces are first-class: spans without a span.end stay
// Open with EndNs pinned to the trace's last timestamp, and a torn final
// line is skipped.
func ReadSpans(r io.Reader) (*Trace, error) {
	events, torn, err := ReadEvents(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Events: events, TornTail: torn, byID: make(map[uint64]*Span)}
	for _, ev := range events {
		if ev.TNs > t.EndNs {
			t.EndNs = ev.TNs
		}
		switch ev.Kind {
		case "span.begin":
			s := &Span{
				ID: ev.Span, Parent: ev.Parent, Name: ev.Name,
				StartNs: ev.TNs, StartSeq: ev.Seq, Open: true,
				Begin: ev.Fields,
			}
			t.byID[s.ID] = s
			t.Spans = append(t.Spans, s)
		case "span.end":
			if s := t.byID[ev.Span]; s != nil {
				s.EndNs = ev.TNs
				s.End = ev.Fields
				s.Open = false
			}
		case "trace.end":
			t.Clean = true
			t.Dropped = uint64(ev.Num("dropped"))
		default:
			if s := t.byID[ev.Span]; s != nil {
				s.Events = append(s.Events, ev)
			}
		}
	}
	for _, s := range t.Spans {
		if s.Open {
			s.EndNs = t.EndNs
		}
		if p := t.byID[s.Parent]; s.Parent != 0 && p != nil {
			p.Children = append(p.Children, s)
		} else {
			t.Roots = append(t.Roots, s)
		}
	}
	return t, nil
}

// ReadFile reads and parses the trace at path. The file is opened
// read-only — a torn tail is skipped in memory rather than truncated on
// disk, so querying a live in-flight trace never mutates it.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(bufio.NewReaderSize(f, 256<<10))
}
