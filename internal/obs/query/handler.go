package query

import (
	"net/http"
	"os"

	"taskpoint/internal/obs"
)

// Handler serves the campaign report computed over the trace file at path,
// re-read on every request — so while a campaign is running, each request
// reports the trace as of now (spans still in flight show as open). JSON
// by default; ?format=text renders the human tables.
func Handler(path string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep, err := AnalyzeFile(path)
		if err != nil {
			code := http.StatusInternalServerError
			if os.IsNotExist(err) {
				code = http.StatusNotFound
			}
			http.Error(w, err.Error(), code)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteText(w, rep) //nolint:errcheck // best-effort over HTTP
			return
		}
		b, err := MarshalReport(rep)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // best-effort over HTTP
	})
}

// Endpoint mounts the live campaign report at /debug/obs/campaign on an
// obs.ServeDebug server — the wiring the long-running CLIs use when both
// -trace-out and -debug-addr are set. (obs cannot serve this itself:
// query imports obs, so the dependency only works this way around.)
func Endpoint(tracePath string) obs.DebugEndpoint {
	return obs.DebugEndpoint{Pattern: "/debug/obs/campaign", Handler: Handler(tracePath)}
}
