package query

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenTrace = "testdata/golden_trace.jsonl"

// readGoldenTrace parses the committed fixture.
func readGoldenTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// golden compares got against the committed golden file, rewriting it when
// the test runs with UPDATE_GOLDEN=1.
func golden(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenReport pins the whole analysis byte-for-byte: the committed
// trace must produce exactly the committed JSON report and text rendering.
func TestGoldenReport(t *testing.T) {
	rep := Analyze(readGoldenTrace(t))
	b, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "testdata/golden_report.json", b)

	var text bytes.Buffer
	if err := WriteText(&text, rep); err != nil {
		t.Fatal(err)
	}
	golden(t, "testdata/golden_report.txt", text.Bytes())
}

// TestGoldenReportValues spot-checks the numbers the golden fixture was
// engineered to produce, so the golden files cannot silently pin a wrong
// analysis.
func TestGoldenReportValues(t *testing.T) {
	rep := Analyze(readGoldenTrace(t))
	if rep.Interrupted || rep.TornTail || rep.DroppedEvents != 0 || rep.OpenSpans != 0 {
		t.Errorf("clean fixture parsed as damaged: %+v", rep)
	}
	if rep.TotalWallNs != 120600000 {
		t.Errorf("TotalWallNs = %d, want 120600000", rep.TotalWallNs)
	}
	if len(rep.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.BaselineNs+c.SampledNs+c.OverheadNs != c.WallNs {
			t.Errorf("cell %s: attribution %d+%d+%d != wall %d",
				c.Key, c.BaselineNs, c.SampledNs, c.OverheadNs, c.WallNs)
		}
	}
	// Critical path: cell A (last baseline holder) → C → E.
	wantPath := []string{
		"cholesky|high-performance|2|lazy|1",
		"cholesky|high-performance|2|periodic(250)|1",
		"cholesky|high-performance|2|periodic(64)|1",
	}
	if len(rep.CriticalPath.Steps) != len(wantPath) {
		t.Fatalf("critical path %v, want %v", rep.CriticalPath.Steps, wantPath)
	}
	for i, s := range rep.CriticalPath.Steps {
		if s.Key != wantPath[i] {
			t.Errorf("critical path step %d = %s, want %s", i, s.Key, wantPath[i])
		}
	}
	// Cache: 3 cholesky hits at a 29 ms measured baseline → 87 ms saved.
	if rep.Cache.Hits != 3 || rep.Cache.Misses != 2 || rep.Cache.Computes != 2 {
		t.Errorf("cache = %+v, want 3 hits / 2 misses / 2 computes", rep.Cache)
	}
	if rep.Cache.SavedNs != 87000000 {
		t.Errorf("SavedNs = %d, want 87000000", rep.Cache.SavedNs)
	}
	// Straggler: the 60 ms lazy cell vs the cholesky median of 29.5 ms.
	if len(rep.Stragglers) != 1 || rep.Stragglers[0].Key != "cholesky|high-performance|2|lazy|1" {
		t.Errorf("stragglers = %+v, want exactly the lazy cholesky cell", rep.Stragglers)
	}
	// Strata: four distinct strata over the two stratified cells.
	if len(rep.Strata) != 4 {
		t.Errorf("strata = %d, want 4", len(rep.Strata))
	}
	for _, s := range rep.Strata {
		if s.SamplesPerCIPoint <= 0 {
			t.Errorf("stratum %s has no cost-per-CI-point", s.Stratum)
		}
	}
}

// TestShuffledInterleavings: the report is a function of trace *content* —
// seq restores the deterministic total order however the lines arrive, so
// arbitrarily shuffled traces produce the byte-identical report.
func TestShuffledInterleavings(t *testing.T) {
	raw, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(readGoldenTrace(t))
	want, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewPCG(42, uint64(trial)))
		shuffled := append([]string(nil), lines...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		tr, err := ReadSpans(strings.NewReader(strings.Join(shuffled, "\n") + "\n"))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := MarshalReport(Analyze(tr))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: shuffled trace produced a different report.\n--- got ---\n%s", trial, got)
		}
	}
}

// TestInterruptedTrace: a campaign killed mid-flight leaves a trace with
// no trace.end, open spans, and a torn final line. The reader repairs the
// tail in memory, the report flags the damage, and the attribution
// invariant still holds with in-flight cells pinned to the last timestamp.
func TestInterruptedTrace(t *testing.T) {
	raw, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	// Cut after the sampled-C begin (seq 35) and append half a line, as if
	// the process died mid-Write.
	cut := strings.Join(lines[:35], "\n") + "\n" + lines[35][:20]
	tr, err := ReadSpans(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TornTail {
		t.Error("torn final line not detected")
	}
	if tr.Clean {
		t.Error("interrupted trace reported clean")
	}
	rep := Analyze(tr)
	if !rep.Interrupted || !rep.TornTail {
		t.Errorf("report does not flag interruption: %+v", rep)
	}
	if rep.OpenSpans == 0 {
		t.Error("no open spans in an interrupted trace")
	}
	openCells := 0
	for _, c := range rep.Cells {
		if c.Open {
			openCells++
		}
		if c.BaselineNs+c.SampledNs+c.OverheadNs != c.WallNs {
			t.Errorf("cell %s: attribution broken on interrupted trace", c.Key)
		}
	}
	if openCells == 0 {
		t.Error("no open cells, want the in-flight cells C and D flagged")
	}
}

// TestReadFileMissing: a missing trace is an error, not a crash.
func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestMalformedMidFile: corruption anywhere but the final line must error
// (only a torn tail is a legitimate artifact of the single-Write contract).
func TestMalformedMidFile(t *testing.T) {
	in := `{"seq":1,"t_ns":0,"kind":"a"}` + "\n" + `{"seq":2,"t_` + "\n" + `{"seq":3,"t_ns":2,"kind":"b"}` + "\n"
	if _, err := ReadSpans(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption did not error")
	}
}
