package query

import (
	"encoding/json"
	"sort"
)

// Report is the deterministic campaign cost report computed from one
// flight-recorder trace. Every field derives purely from trace content,
// and every slice has a total deterministic order, so the same trace
// always marshals to the byte-identical JSON — the contract the golden
// tests pin down. No field is a map: JSON object key order would survive,
// but consumers iterating would not be deterministic.
type Report struct {
	// TraceEvents counts decoded lines; TotalWallNs is the last trace
	// timestamp — the traced process's total wall-clock.
	TraceEvents int   `json:"trace_events"`
	TotalWallNs int64 `json:"total_wall_ns"`
	// Interrupted reports the trace had no trace.end (the producer was
	// killed); TornTail that a half-written final line was skipped.
	Interrupted bool `json:"interrupted,omitempty"`
	TornTail    bool `json:"torn_tail,omitempty"`
	// DroppedEvents is the byte-limit drop count from trace.end; OpenSpans
	// counts spans the trace never closed.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
	OpenSpans     int    `json:"open_spans,omitempty"`
	// Phases attribute wall-clock by span name; Cells by experiment cell;
	// Strata by sampling stratum across cells.
	Phases []PhaseCost   `json:"phases,omitempty"`
	Cells  []CellCost    `json:"cells,omitempty"`
	Strata []StratumCost `json:"strata,omitempty"`
	// CriticalPath is the chain of cells that bounded campaign completion
	// through the worker pool.
	CriticalPath CriticalPath `json:"critical_path"`
	// Cache is the baseline-cache economics; Stragglers flags cells far
	// above their workload group's median wall-clock.
	Cache      CacheReport `json:"cache"`
	Stragglers []Straggler `json:"stragglers,omitempty"`
}

// PhaseCost is the wall-clock attribution of one span name ("cell",
// "baseline", "sampled", "strata.pilot", "fuzz.round", …). TotalNs sums
// span durations; SelfNs sums durations minus child spans — the exclusive
// cost, which adds up across phases without double counting the tree.
type PhaseCost struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	Open    int    `json:"open,omitempty"`
	TotalNs int64  `json:"total_ns"`
	SelfNs  int64  `json:"self_ns"`
}

// CellCost is the wall-clock decomposition of one experiment cell:
// WallNs = BaselineNs + SampledNs + OverheadNs, where overhead is cell
// time outside both phase spans (program build, queueing, comparison).
type CellCost struct {
	Key            string  `json:"key"`
	StartNs        int64   `json:"start_ns"`
	WallNs         int64   `json:"wall_ns"`
	BaselineNs     int64   `json:"baseline_ns"`
	SampledNs      int64   `json:"sampled_ns"`
	OverheadNs     int64   `json:"overhead_ns"`
	Status         string  `json:"status,omitempty"`
	ErrPct         float64 `json:"err_pct,omitempty"`
	DetailFraction float64 `json:"detail_fraction,omitempty"`
	CIRelWidthPct  float64 `json:"ci_rel_width_pct,omitempty"`
	// Open marks a cell the interrupted trace left in flight.
	Open bool `json:"open,omitempty"`
}

// StratumCost aggregates one sampling stratum across every cell that
// reported it: how many detailed samples it consumed and what confidence
// they bought. SamplesPerCIPoint is the stratum's detailed samples per
// percentage point of its cells' mean CI relative width — the marginal
// price signal a budget-stealing fidelity manager would steer by.
type StratumCost struct {
	Stratum           string  `json:"stratum"`
	Cells             int     `json:"cells"`
	Population        int     `json:"population"`
	Sampled           int     `json:"sampled"`
	Quota             int     `json:"quota"`
	MeanCIRelWidthPct float64 `json:"mean_ci_rel_width_pct,omitempty"`
	SamplesPerCIPoint float64 `json:"samples_per_ci_point,omitempty"`
}

// CriticalPath is the completion-bounding chain of cells: starting from
// the cell that finished last, each predecessor is the latest-finishing
// cell that ended before the current one started — the worker-slot
// handoff chain an ideal scheduler could not have compressed. PathNs sums
// the chain's cell durations; CoveragePct is PathNs over the wall-clock
// between the chain's first start and last end (low coverage means idle
// gaps or non-cell work bound the campaign, not the cells themselves).
type CriticalPath struct {
	PathNs      int64      `json:"path_ns"`
	SpanNs      int64      `json:"span_ns"`
	CoveragePct float64    `json:"coverage_pct,omitempty"`
	Steps       []PathStep `json:"steps,omitempty"`
}

// PathStep is one cell on the critical path, first-to-last. GapNs is the
// idle time between the previous step's end and this step's start.
type PathStep struct {
	Key     string `json:"key"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	WallNs  int64  `json:"wall_ns"`
	GapNs   int64  `json:"gap_ns,omitempty"`
}

// CacheReport is the baseline-cache economics: every cache.hit reuses a
// detailed reference some baseline span paid for, so the saved wall-clock
// is hits × the measured compute cost of the same (workload, arch,
// threads) baseline.
type CacheReport struct {
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Computes int `json:"computes"`
	// ComputeNs sums measured baseline simulation time; SavedNs estimates
	// the time hits avoided re-spending.
	ComputeNs int64          `json:"compute_ns"`
	SavedNs   int64          `json:"saved_ns"`
	Baselines []BaselineCost `json:"baselines,omitempty"`
}

// BaselineCost is the cache economics of one (workload, arch, threads)
// baseline identity.
type BaselineCost struct {
	Workload  string `json:"workload"`
	Arch      string `json:"arch"`
	Threads   int    `json:"threads"`
	Computes  int    `json:"computes"`
	Hits      int    `json:"hits"`
	ComputeNs int64  `json:"compute_ns"`
	SavedNs   int64  `json:"saved_ns"`
}

// stragglerRatio and stragglerMinGroup gate outlier detection: a cell is a
// straggler when its workload group has enough cells for a meaningful
// median and the cell ran at least stragglerRatio× that median.
const (
	stragglerRatio    = 2.0
	stragglerMinGroup = 4
)

// Straggler is one outlier cell: wall-clock far above the median of the
// cells sharing its workload.
type Straggler struct {
	Key      string  `json:"key"`
	Workload string  `json:"workload"`
	WallNs   int64   `json:"wall_ns"`
	MedianNs int64   `json:"median_ns"`
	Ratio    float64 `json:"ratio"`
}

// Analyze computes the campaign report of a parsed trace.
func Analyze(t *Trace) *Report {
	r := &Report{
		TraceEvents:   len(t.Events),
		TotalWallNs:   t.EndNs,
		Interrupted:   !t.Clean,
		TornTail:      t.TornTail,
		DroppedEvents: t.Dropped,
	}

	// Phase attribution by span name.
	byName := map[string]*PhaseCost{}
	var names []string
	for _, s := range t.Spans {
		if s.Open {
			r.OpenSpans++
		}
		pc := byName[s.Name]
		if pc == nil {
			pc = &PhaseCost{Name: s.Name}
			byName[s.Name] = pc
			names = append(names, s.Name)
		}
		pc.Count++
		if s.Open {
			pc.Open++
		}
		pc.TotalNs += s.Dur()
		pc.SelfNs += s.SelfNs()
	}
	sort.Strings(names)
	for _, n := range names {
		r.Phases = append(r.Phases, *byName[n])
	}

	cells := cellSpans(t)
	r.Cells = cellCosts(cells)
	r.Strata = stratumCosts(cells)
	r.CriticalPath = criticalPath(cells)
	r.Cache = cacheReport(t)
	r.Stragglers = stragglers(r.Cells, cells)
	return r
}

// cellSpans returns the trace's cell spans in begin order.
func cellSpans(t *Trace) []*Span {
	var cells []*Span
	for _, s := range t.Spans {
		if s.Name == "cell" {
			cells = append(cells, s)
		}
	}
	return cells
}

// cellCosts decomposes each cell span, sorted by start then seq.
func cellCosts(cells []*Span) []CellCost {
	out := make([]CellCost, 0, len(cells))
	for _, c := range cells {
		cc := CellCost{
			Key:     c.beginStr("key"),
			StartNs: c.StartNs,
			WallNs:  c.Dur(),
			Open:    c.Open,
		}
		for _, ch := range c.Children {
			switch ch.Name {
			case "baseline":
				cc.BaselineNs += ch.Dur()
			case "sampled":
				cc.SampledNs += ch.Dur()
				for _, ev := range ch.Events {
					if ev.Kind == "strata.confidence" {
						cc.CIRelWidthPct = ev.Num("rel_width_pct")
					}
				}
			}
		}
		cc.OverheadNs = cc.WallNs - cc.BaselineNs - cc.SampledNs
		if cc.OverheadNs < 0 {
			cc.OverheadNs = 0
		}
		if c.End != nil {
			if v, ok := c.End["status"].(string); ok {
				cc.Status = v
			}
			cc.ErrPct = c.endNum("err_pct")
			cc.DetailFraction = c.endNum("detail_fraction")
		}
		out = append(out, cc)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// stratumCosts aggregates the strata.stratum events of every cell's
// sampled phase, keyed by the stratum's rendered key, sorted by key.
func stratumCosts(cells []*Span) []StratumCost {
	type acc struct {
		StratumCost
		widthSum float64
		widthN   int
	}
	byKey := map[string]*acc{}
	var keys []string
	for _, c := range cells {
		for _, ch := range c.Children {
			if ch.Name != "sampled" {
				continue
			}
			relWidth := 0.0
			for _, ev := range ch.Events {
				if ev.Kind == "strata.confidence" {
					relWidth = ev.Num("rel_width_pct")
				}
			}
			for _, ev := range ch.Events {
				if ev.Kind != "strata.stratum" {
					continue
				}
				k := ev.Str("stratum")
				a := byKey[k]
				if a == nil {
					a = &acc{StratumCost: StratumCost{Stratum: k}}
					byKey[k] = a
					keys = append(keys, k)
				}
				a.Cells++
				a.Population += int(ev.Num("population"))
				a.Sampled += int(ev.Num("sampled"))
				a.Quota += int(ev.Num("quota"))
				if relWidth > 0 {
					a.widthSum += relWidth
					a.widthN++
				}
			}
		}
	}
	sort.Strings(keys)
	out := make([]StratumCost, 0, len(keys))
	for _, k := range keys {
		a := byKey[k]
		if a.widthN > 0 {
			a.MeanCIRelWidthPct = a.widthSum / float64(a.widthN)
			a.SamplesPerCIPoint = float64(a.Sampled) / a.MeanCIRelWidthPct
		}
		out = append(out, a.StratumCost)
	}
	return out
}

// criticalPath walks backward from the last-finishing cell, at each step
// hopping to the latest-finishing cell that ended at or before the current
// one started (worker-slot handoff). Ties break on lower StartSeq — the
// trace's deterministic order — so shuffled inputs reproduce the path.
func criticalPath(cells []*Span) CriticalPath {
	var cp CriticalPath
	if len(cells) == 0 {
		return cp
	}
	cur := cells[0]
	for _, c := range cells[1:] {
		if c.EndNs > cur.EndNs || (c.EndNs == cur.EndNs && c.StartSeq < cur.StartSeq) {
			cur = c
		}
	}
	var chain []*Span
	for cur != nil {
		chain = append(chain, cur)
		var pred *Span
		for _, c := range cells {
			if c == cur || c.EndNs > cur.StartNs {
				continue
			}
			if pred == nil || c.EndNs > pred.EndNs ||
				(c.EndNs == pred.EndNs && c.StartSeq < pred.StartSeq) {
				pred = c
			}
		}
		cur = pred
	}
	// chain is last-to-first; reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	for i, c := range chain {
		step := PathStep{
			Key:     c.beginStr("key"),
			StartNs: c.StartNs,
			EndNs:   c.EndNs,
			WallNs:  c.Dur(),
		}
		if i > 0 {
			step.GapNs = c.StartNs - chain[i-1].EndNs
		}
		cp.PathNs += step.WallNs
		cp.Steps = append(cp.Steps, step)
	}
	cp.SpanNs = chain[len(chain)-1].EndNs - chain[0].StartNs
	if cp.SpanNs > 0 {
		cp.CoveragePct = 100 * float64(cp.PathNs) / float64(cp.SpanNs)
	}
	return cp
}

// cacheReport pairs cache.hit/cache.miss events with the measured compute
// cost of baseline spans sharing the same (workload, arch, threads)
// identity: each hit saves that identity's mean measured compute time.
func cacheReport(t *Trace) CacheReport {
	type ident struct {
		workload, arch string
		threads        int
	}
	byID := map[ident]*BaselineCost{}
	get := func(id ident) *BaselineCost {
		a := byID[id]
		if a == nil {
			a = &BaselineCost{Workload: id.workload, Arch: id.arch, Threads: id.threads}
			byID[id] = a
		}
		return a
	}
	var rep CacheReport
	for _, ev := range t.Events {
		switch ev.Kind {
		case "cache.hit":
			rep.Hits++
			get(ident{ev.Str("workload"), ev.Str("arch"), int(ev.Num("threads"))}).Hits++
		case "cache.miss":
			rep.Misses++
		}
	}
	for _, s := range t.Spans {
		if s.Name != "baseline" {
			continue
		}
		rep.Computes++
		id := ident{workload: s.beginStr("workload"), arch: s.beginStr("arch")}
		if v, ok := s.Begin["threads"].(float64); ok {
			id.threads = int(v)
		}
		a := get(id)
		a.Computes++
		// wall_ms on span.end is the pure simulation time; for a baseline
		// the interrupt left open (or that errored before measuring), the
		// span interval itself is the best available cost.
		ns := int64(s.endNum("wall_ms") * 1e6)
		if ns <= 0 {
			ns = s.Dur()
		}
		a.ComputeNs += ns
	}
	ids := make([]ident, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.arch != b.arch {
			return a.arch < b.arch
		}
		return a.threads < b.threads
	})
	for _, id := range ids {
		a := byID[id]
		if a.Computes > 0 && a.Hits > 0 {
			a.SavedNs = int64(float64(a.ComputeNs) / float64(a.Computes) * float64(a.Hits))
		}
		rep.ComputeNs += a.ComputeNs
		rep.SavedNs += a.SavedNs
		rep.Baselines = append(rep.Baselines, *a)
	}
	return rep
}

// workloadOf extracts the workload from a pipe-separated cell key.
func workloadOf(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i]
		}
	}
	return key
}

// stragglers flags completed cells running stragglerRatio× past the median
// of their workload group, most-extreme first.
func stragglers(costs []CellCost, _ []*Span) []Straggler {
	byWL := map[string][]int64{}
	for _, c := range costs {
		if c.Open {
			continue
		}
		wl := workloadOf(c.Key)
		byWL[wl] = append(byWL[wl], c.WallNs)
	}
	var out []Straggler
	for _, c := range costs {
		if c.Open {
			continue
		}
		wl := workloadOf(c.Key)
		group := byWL[wl]
		if len(group) < stragglerMinGroup {
			continue
		}
		med := medianNs(group)
		if med > 0 && float64(c.WallNs) >= stragglerRatio*float64(med) {
			out = append(out, Straggler{
				Key: c.Key, Workload: wl, WallNs: c.WallNs, MedianNs: med,
				Ratio: float64(c.WallNs) / float64(med),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// medianNs is the median of vs (lower middle for even counts).
func medianNs(vs []int64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// MarshalReport renders the report as the canonical indented JSON the
// golden tests and the CI health artifact pin byte-for-byte.
func MarshalReport(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// AnalyzeFile reads, parses and analyzes the trace at path.
func AnalyzeFile(path string) (*Report, error) {
	t, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Analyze(t), nil
}
