package query_test

import (
	"bytes"
	"context"
	"testing"

	"taskpoint/internal/engine"
	"taskpoint/internal/obs"
	"taskpoint/internal/obs/query"
)

// TestAnalyzeLiveEngineTrace closes the loop between the writer and the
// reader: a real campaign records through the flight recorder, and the
// report computed from those bytes must satisfy the attribution algebra —
// every cell's wall-clock fully decomposed into baseline + sampled +
// overhead, phase totals covering every span, and a critical path that
// never exceeds the campaign interval.
func TestAnalyzeLiveEngineTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	// One worker serializes the cells so cache behavior is deterministic:
	// with concurrent workers, two cold cells of the same workload can both
	// miss before either populates the baseline cache.
	e := engine.New(engine.WithWorkers(1), engine.WithRecorder(rec))

	reqs := []engine.Request{
		{Workload: "cholesky", Arch: "hp", Threads: 2, Scale: 1.0 / 64, Seed: 7, Policy: "lazy"},
		{Workload: "cholesky", Arch: "hp", Threads: 2, Scale: 1.0 / 64, Seed: 7, Policy: "periodic(250)"},
		{Workload: "swaptions", Arch: "hp", Threads: 2, Scale: 1.0 / 64, Seed: 7, Policy: "stratified(96)"},
		{Workload: "swaptions", Arch: "hp", Threads: 2, Scale: 1.0 / 64, Seed: 7, Policy: "lazy"},
	}
	for rep, err := range e.RunAll(context.Background(), reqs) {
		if err != nil {
			t.Fatalf("cell %s: %v", rep.Request.Key(), err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := query.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Clean || tr.TornTail {
		t.Fatalf("closed recorder left an unclean trace: clean=%v torn=%v", tr.Clean, tr.TornTail)
	}
	rep := query.Analyze(tr)

	if rep.Interrupted || rep.OpenSpans != 0 {
		t.Errorf("completed campaign reported interrupted: %+v", rep)
	}
	if len(rep.Cells) != len(reqs) {
		t.Fatalf("report has %d cells, campaign ran %d", len(rep.Cells), len(reqs))
	}
	for _, c := range rep.Cells {
		if c.Open {
			t.Errorf("cell %s open in a completed trace", c.Key)
		}
		if c.Status != "ok" {
			t.Errorf("cell %s status %q", c.Key, c.Status)
		}
		if c.WallNs <= 0 {
			t.Errorf("cell %s has no wall-clock", c.Key)
		}
		if c.BaselineNs+c.SampledNs+c.OverheadNs != c.WallNs {
			t.Errorf("cell %s: %d + %d + %d != wall %d",
				c.Key, c.BaselineNs, c.SampledNs, c.OverheadNs, c.WallNs)
		}
	}

	phases := map[string]query.PhaseCost{}
	for _, p := range rep.Phases {
		phases[p.Name] = p
	}
	for _, name := range []string{"campaign", "cell", "baseline", "sampled"} {
		if phases[name].Count == 0 {
			t.Errorf("phase %q missing from report (have %v)", name, rep.Phases)
		}
	}
	if phases["cell"].Count != len(reqs) {
		t.Errorf("cell phase count = %d, want %d", phases["cell"].Count, len(reqs))
	}
	// Two workloads at the same (arch, threads): two baseline computes,
	// two cache hits.
	if phases["baseline"].Count != 2 {
		t.Errorf("baseline phase count = %d, want 2", phases["baseline"].Count)
	}
	if rep.Cache.Misses != 2 || rep.Cache.Hits != 2 || rep.Cache.Computes != 2 {
		t.Errorf("cache = %+v, want 2 misses / 2 hits / 2 computes", rep.Cache)
	}

	// The stratified cell must surface per-stratum costs.
	if len(rep.Strata) == 0 {
		t.Error("stratified cell produced no stratum costs")
	}

	cp := rep.CriticalPath
	if len(cp.Steps) == 0 {
		t.Fatal("no critical path through a multi-cell campaign")
	}
	if cp.PathNs <= 0 || cp.PathNs > cp.SpanNs {
		t.Errorf("critical path %d ns outside campaign span %d ns", cp.PathNs, cp.SpanNs)
	}
	for i := 1; i < len(cp.Steps); i++ {
		if cp.Steps[i].StartNs < cp.Steps[i-1].EndNs {
			t.Errorf("critical path step %d starts before its predecessor ends", i)
		}
	}

	// Determinism end-to-end: the same bytes must render the same report.
	b1, err := query.MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := query.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := query.MarshalReport(query.Analyze(tr2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("re-analyzing the same trace bytes produced a different report")
	}
}
