package obs

import (
	"io"
	"os"
)

// DropPartialTail truncates a JSONL file that does not end in a newline
// back to its last complete line. A process killed mid-write leaves a
// partial trailing record; appending to it would glue the next record
// onto the same line, corrupting both. Every resumable JSONL output of
// the repository — sweep/corpus records, the fuzz regression corpus, and
// flight-recorder traces — calls this before opening the file for
// append. A missing or empty file is a no-op.
func DropPartialTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil || size == 0 {
		return err
	}
	buf := make([]byte, 64*1024)
	end := size
	for end > 0 {
		n := int64(len(buf))
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return err
		}
		if end == size && buf[n-1] == '\n' {
			return nil // file ends cleanly
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return f.Truncate(end - n + i + 1)
			}
		}
		end -= n
	}
	return f.Truncate(0) // a single partial line
}
