package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimelineSpan is one completed interval on a simulated timeline — a task
// instance on a core, a sampling phase, a campaign cell. Start and Dur
// are in simulated cycles; the exporter maps cycles 1:1 to trace
// microseconds (Chrome trace-event ts/dur are µs), so one timeline tick
// reads as one cycle in the viewer.
type TimelineSpan struct {
	// Name labels the span in the viewer (e.g. the task type name).
	Name string
	// Cat is the comma-separated category list Perfetto filters on.
	Cat string
	// PID and TID place the span on a process/thread track.
	PID, TID int
	// Start and Dur are in simulated cycles.
	Start, Dur int64
	// Args are free-form details shown when the span is selected.
	Args map[string]any
}

// Process names a timeline process track and its threads, rendered as
// trace metadata events so the viewer shows e.g. "core 3" instead of a
// bare tid.
type Process struct {
	PID  int
	Name string
	// Threads maps tid → display name.
	Threads map[int]string
}

// traceEvent is one entry of the Chrome trace-event JSON array, the
// subset of the format Perfetto and chrome://tracing both load: "X"
// complete events for spans and "M" metadata events for track names.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTimeline renders processes and spans as Chrome trace-event JSON
// (the "JSON Array Format" Perfetto and chrome://tracing load). Metadata
// events come first, ordered by pid/tid, then spans in the order given —
// with encoding/json's sorted map keys this makes the output
// deterministic, so a golden test can diff it byte-for-byte.
func WriteTimeline(w io.Writer, procs []Process, spans []TimelineSpan) error {
	events := make([]traceEvent, 0, 2*len(procs)+len(spans))
	sorted := append([]Process(nil), procs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PID < sorted[j].PID })
	for _, p := range sorted {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", PID: p.PID,
			Args: map[string]any{"name": p.Name},
		})
		tids := make([]int, 0, len(p.Threads))
		for tid := range p.Threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", PID: p.PID, TID: tid,
				Args: map[string]any{"name": p.Threads[tid]},
			})
		}
	}
	for i := range spans {
		s := &spans[i]
		if s.Dur < 0 {
			return fmt.Errorf("obs: span %q has negative duration %d", s.Name, s.Dur)
		}
		dur := s.Dur
		events = append(events, traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start, Dur: &dur, PID: s.PID, TID: s.TID,
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}
