package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSlowProfilerCapturesSlowCell checks the watchdog profiles a cell
// that outlives the threshold and writes a pprof file named after it.
func TestSlowProfilerCapturesSlowCell(t *testing.T) {
	dir := t.TempDir()
	p := NewSlowProfiler(20*time.Millisecond, dir)
	defer p.Close()

	done := p.CellStarted("cholesky|hp|8|always-sample|1")
	deadline := time.After(5 * time.Second)
	for p.Captures() == 0 {
		select {
		case <-deadline:
			done()
			t.Fatal("watchdog never captured a profile for a slow cell")
		case <-time.After(10 * time.Millisecond):
		}
	}
	done()
	p.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "slow-*.pprof"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("profile files = %v (err %v), want exactly one", matches, err)
	}
	name := filepath.Base(matches[0])
	if name != "slow-001-cholesky_hp_8_always-sample_1.pprof" {
		t.Errorf("profile name %q: cell key not sanitized as expected", name)
	}
	fi, err := os.Stat(matches[0])
	if err != nil || fi.Size() == 0 {
		t.Errorf("profile file empty or unreadable: %v %v", fi, err)
	}
}

// TestSlowProfilerFastCellsUntouched checks cells finishing under the
// threshold never trigger a capture.
func TestSlowProfilerFastCellsUntouched(t *testing.T) {
	dir := t.TempDir()
	p := NewSlowProfiler(time.Hour, dir)
	for i := 0; i < 8; i++ {
		done := p.CellStarted("fast")
		done()
	}
	p.Close()
	if n := p.Captures(); n != 0 {
		t.Fatalf("fast cells triggered %d captures, want 0", n)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.pprof")); len(matches) != 0 {
		t.Fatalf("unexpected profile files: %v", matches)
	}
}

// TestSlowProfilerNilNoOp checks the disabled path: a nil profiler (also
// what a non-positive threshold returns) absorbs all calls.
func TestSlowProfilerNilNoOp(t *testing.T) {
	var p *SlowProfiler
	done := p.CellStarted("any")
	done()
	if p.Captures() != 0 {
		t.Error("nil profiler reported captures")
	}
	p.Close()
	if q := NewSlowProfiler(0, ""); q != nil {
		t.Error("zero threshold should return the nil no-op profiler")
	}
}
