package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live diagnostics for a long-running campaign:
//
//	/debug/obs      — the registry snapshot as indented JSON
//	/debug/vars     — standard expvar (cmdline, memstats, …)
//	/debug/pprof/*  — net/http/pprof profiles
//
// It uses its own mux, never http.DefaultServeMux, so mounting it cannot
// leak pprof onto an application server by accident.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugEndpoint mounts one extra handler on a DebugServer's mux — the
// extension point higher layers use to expose diagnostics obs itself
// cannot compute without an import cycle (e.g. internal/obs/query's
// /debug/obs/campaign report over the in-flight trace).
type DebugEndpoint struct {
	// Pattern is the mux pattern, e.g. "/debug/obs/campaign".
	Pattern string
	Handler http.Handler
}

// ServeDebug starts the diagnostics server on addr (e.g. "127.0.0.1:6060";
// use port 0 for an ephemeral port) reading from reg, or Default() when
// reg is nil, plus any extra endpoints. It returns once the listener is
// bound; serving continues in the background until Close.
func ServeDebug(addr string, reg *Registry, extra ...DebugEndpoint) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		b, err := reg.MarshalSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Pattern != "" && e.Handler != nil {
			mux.Handle(e.Pattern, e.Handler)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ds, nil
}

// Addr is the bound listen address (resolves the actual port when the
// caller asked for :0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the port.
func (d *DebugServer) Close() error { return d.srv.Close() }
