package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteTimelineGolden renders a fixed two-process timeline and diffs
// it byte-for-byte against the committed golden file — the output is
// deterministic (sorted metadata, sorted JSON keys, fixed indent), so any
// schema drift shows up as a readable diff. Regenerate with -update.
func TestWriteTimelineGolden(t *testing.T) {
	procs := []Process{
		{PID: 2, Name: "detailed cholesky", Threads: map[int]string{0: "core 0", 1: "core 1"}},
		{PID: 1, Name: "sampled cholesky", Threads: map[int]string{0: "core 0"}},
	}
	spans := []TimelineSpan{
		{Name: "potrf", Cat: "task,detailed", PID: 1, TID: 0, Start: 0, Dur: 120,
			Args: map[string]any{"instance": 0, "instr": 4000}},
		{Name: "gemm", Cat: "task,fast", PID: 1, TID: 0, Start: 120, Dur: 80,
			Args: map[string]any{"instance": 1, "ipc": 1.5}},
		{Name: "potrf", Cat: "task,detailed", PID: 2, TID: 1, Start: 40, Dur: 0},
	}

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, procs, spans); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "timeline.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Independent of the byte diff, check the trace-event schema contract
	// the viewers rely on.
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tf.DisplayTimeUnit)
	}
	// 2 process_name + 3 thread_name metadata events, then 3 spans.
	if len(tf.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(tf.TraceEvents))
	}
	// Metadata first, sorted by pid; pid 1 before pid 2.
	if tf.TraceEvents[0].Ph != "M" || tf.TraceEvents[0].PID != 1 || tf.TraceEvents[0].Name != "process_name" {
		t.Errorf("event 0 = %+v, want process_name metadata for pid 1", tf.TraceEvents[0])
	}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Args["name"] == "" {
				t.Errorf("metadata event without a name: %+v", ev)
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("complete event without a non-negative dur: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
}

// TestWriteTimelineRejectsNegativeDur checks the exporter refuses spans
// that would render as corrupt events.
func TestWriteTimelineRejectsNegativeDur(t *testing.T) {
	err := WriteTimeline(&bytes.Buffer{}, nil, []TimelineSpan{{Name: "x", Dur: -1}})
	if err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Errorf("err = %v, want negative-duration error", err)
	}
}
