package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — the
// same pattern the worker pool produces — and checks nothing is lost.
// Run under -race this also proves the get-or-create paths are sound.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Counter("test.counter").Inc()
				r.Gauge("test.gauge").Add(1)
				r.Histogram("test.hist").Observe(float64(i + 1))
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perW
	if got := r.Counter("test.counter").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("test.gauge").Value(); got != want {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := r.Histogram("test.hist").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestRegistryIdentity checks get-or-create returns the same metric for
// the same name — updates through two lookups must share state.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter(a) returned two distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge(g) returned two distinct gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram(h) returned two distinct histograms")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("distinct names share a counter")
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (negative Add must be ignored)", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
}

// TestHistogramQuantiles draws a lognormal-ish sample, compares the
// bucketed quantile estimate against the exact sorted-slice quantile, and
// requires the documented accuracy: bucket width is 1/8 of the value, so
// the estimate must sit within ~12.5% of the exact answer.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHistogram()
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		v := math.Exp(rng.NormFloat64()*2 + 3) // spans several octaves
		vals[i] = v
		h.Observe(v)
	}
	sort.Float64s(vals)

	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(n-1))]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.125 {
			t.Errorf("Quantile(%.2f) = %g, exact %g (rel err %.1f%% > 12.5%%)", q, got, exact, 100*rel)
		}
	}
	if got := h.Count(); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
	if min := math.Float64frombits(h.minBits.Load()); min != vals[0] {
		t.Errorf("min = %g, want %g", min, vals[0])
	}
	if max := math.Float64frombits(h.maxBits.Load()); max != vals[n-1] {
		t.Errorf("max = %g, want %g", max, vals[n-1])
	}
}

// TestHistogramUnderflow checks non-positive and NaN observations land in
// the underflow bucket and hold rank 0 in the quantile walk.
func TestHistogramUnderflow(t *testing.T) {
	h := newHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(10)
	s := h.snapshot()
	if s.Under != 3 {
		t.Errorf("under = %d, want 3", s.Under)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0 (underflow ranks first)", got)
	}
	if got := h.Quantile(1); math.Abs(got-10)/10 > 0.125 {
		t.Errorf("Quantile(1) = %g, want ~10", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	s := h.snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", s)
	}
}

// TestSnapshotRoundTrip marshals a populated registry and decodes it back,
// checking the JSON form carries every metric faithfully.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(42)
	r.Gauge("g.one").Set(2.5)
	for i := 1; i <= 100; i++ {
		r.Histogram("h.one").Observe(float64(i))
	}

	b, err := r.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if got.Counters["c.one"] != 42 {
		t.Errorf("counter c.one = %d, want 42", got.Counters["c.one"])
	}
	if got.Gauges["g.one"] != 2.5 {
		t.Errorf("gauge g.one = %g, want 2.5", got.Gauges["g.one"])
	}
	h := got.Histograms["h.one"]
	if h.Count != 100 || h.Min != 1 || h.Max != 100 {
		t.Errorf("histogram h.one = %+v, want count 100, min 1, max 100", h)
	}
	if h.Sum != 5050 {
		t.Errorf("histogram sum = %g, want 5050", h.Sum)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Errorf("bucket counts sum to %d, want 100", total)
	}

	names := r.Names()
	want := []string{"c.one", "g.one", "h.one"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// TestBucketGeometry checks every positive value maps into a bucket whose
// bounds contain it (the interpolation contract Quantile relies on).
func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64()*40 - 10) // 2^-14 .. 2^43 roughly
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("v=%g mapped to bucket %d [%g, %g)", v, idx, lo, hi)
		}
	}
}
