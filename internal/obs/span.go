package obs

import "context"

// Span is one in-flight interval of the real execution being traced: a
// campaign, an experiment cell, a baseline computation, a sampling phase,
// a fuzz round. StartSpan emits a "span.begin" line carrying a
// recorder-scoped monotonic span id (and, for child spans, a parent
// link); End emits the matching "span.end". The query layer
// (internal/obs/query) pairs the two lines back into an interval tree, so
// a span costs two trace lines however long it runs — and an interrupted
// process simply leaves the span open, which the reader detects instead
// of repairing.
//
// A Span is a small value; pass it by value and end it exactly once. The
// zero Span — also what a nil *Recorder's StartSpan returns — is a valid
// no-op span: every method returns immediately, preserving the free
// disabled path of the instrumentation call sites.
type Span struct {
	r      *Recorder
	id     uint64
	parent uint64
}

// StartSpan opens a root span named name and emits its "span.begin" line
// with the given fields. Safe on a nil recorder (returns the no-op zero
// Span).
func (r *Recorder) StartSpan(name string, fields ...Field) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	r.mu.Unlock()
	s := Span{r: r, id: id}
	r.emit("span.begin", id, 0, name, fields)
	return s
}

// StartSpan opens a child span of s on the same recorder. On the zero
// Span it is a no-op returning the zero Span.
func (s Span) StartSpan(name string, fields ...Field) Span {
	if s.r == nil {
		return Span{}
	}
	s.r.mu.Lock()
	s.r.nextSpan++
	id := s.r.nextSpan
	s.r.mu.Unlock()
	child := Span{r: s.r, id: id, parent: s.id}
	s.r.emit("span.begin", id, s.id, name, fields)
	return child
}

// End closes the span, emitting its "span.end" line with the given
// fields. Call it exactly once; the zero Span ignores it.
func (s Span) End(fields ...Field) {
	if s.r == nil {
		return
	}
	s.r.emit("span.end", s.id, 0, "", fields)
}

// Emit appends one event line attached to the span (the line carries the
// span's id), so the query layer can attribute the event to the span's
// subtree — e.g. per-stratum sample-cost events to their cell. No-op on
// the zero Span.
func (s Span) Emit(kind string, fields ...Field) {
	if s.r == nil {
		return
	}
	s.r.emit(kind, s.id, 0, "", fields)
}

// Valid reports whether the span records anything (false for the zero
// Span and for spans of a nil recorder).
func (s Span) Valid() bool { return s.r != nil }

// ID returns the span's recorder-scoped id (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// spanCtxKey keys the current span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span, the
// parent of spans started with ChildSpan further down the call tree.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if !s.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span of ctx, or the zero Span.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// ChildSpan starts a span on rec as a child of ctx's current span when
// that span lives on the same recorder, and as a root span otherwise —
// the one-liner instrumented layers use to nest under whatever campaign
// or round is running above them. Safe with a nil rec (no-op zero Span).
func ChildSpan(ctx context.Context, rec *Recorder, name string, fields ...Field) Span {
	if rec == nil {
		return Span{}
	}
	if p := SpanFromContext(ctx); p.r == rec {
		return p.StartSpan(name, fields...)
	}
	return rec.StartSpan(name, fields...)
}
