package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Field is one typed key/value attribute of a flight-recorder event.
// Construct fields with String/Int/Int64/Uint64/Float/Bool — the encoder
// is reflection-free, so emitting an event performs no per-field
// allocation beyond the variadic slice.
type Field struct {
	Key  string
	kind uint8
	str  string
	num  float64
	i    int64
}

const (
	fieldString uint8 = iota
	fieldInt
	fieldUint
	fieldFloat
	fieldBool
)

// String builds a string field.
func String(key, v string) Field { return Field{Key: key, kind: fieldString, str: v} }

// Int builds an integer field.
func Int(key string, v int) Field { return Field{Key: key, kind: fieldInt, i: int64(v)} }

// Int64 builds a 64-bit integer field.
func Int64(key string, v int64) Field { return Field{Key: key, kind: fieldInt, i: v} }

// Uint64 builds an unsigned 64-bit integer field.
func Uint64(key string, v uint64) Field { return Field{Key: key, kind: fieldUint, i: int64(v)} }

// Float builds a float field (NaN and infinities encode as null).
func Float(key string, v float64) Field { return Field{Key: key, kind: fieldFloat, num: v} }

// Bool builds a boolean field.
func Bool(key string, v bool) Field {
	f := Field{Key: key, kind: fieldBool}
	if v {
		f.i = 1
	}
	return f
}

// DefaultTraceLimit bounds a recorder's output when no explicit limit is
// given: once reached, further events are counted as dropped instead of
// written, so a runaway campaign cannot fill the disk.
const DefaultTraceLimit = 256 << 20

// Recorder is the flight recorder: a bounded JSONL event trace of the
// real execution. Every event is one line of the form
//
//	{"seq":3,"t_ns":152000,"kind":"cell.finish","key":"...","err_pct":0.4}
//
// seq is a per-recorder monotonic sequence number (a deterministic total
// order over what happened) and t_ns the monotonic elapsed nanoseconds
// since the recorder started — relative, never wall-clock dates, so two
// traces of the same run diff cleanly on everything but the timing
// fields. Each event is written with a single Write call, so a line can
// only tear if the process dies mid-write — and Open repairs exactly that
// case on reopen via the DropPartialTail contract.
//
// Beyond flat events, the recorder supports structured spans (StartSpan):
// paired "span.begin"/"span.end" lines carrying a recorder-scoped
// monotonic span id and a parent link, from which internal/obs/query
// rebuilds the interval tree of a campaign.
//
// A nil *Recorder is a valid no-op recorder: every method returns
// immediately, which is the disabled path compiled into the
// instrumentation call sites. Recorders are safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	w        io.Writer
	closer   io.Closer
	start    time.Time
	seq      uint64
	nextSpan uint64
	written  int64
	limit    int64
	dropped  uint64
	closed   bool
	buf      []byte
}

// metricTraceDropped counts events suppressed by recorder byte limits in
// the default registry, so a -metrics-out snapshot records truncation even
// when nobody reads the trace's own trace.end marker.
var metricTraceDropped = Default().Counter("obs.trace.dropped_events")

// NewRecorder wraps w in a recorder with the default byte limit. The
// caller owns w; Close flushes nothing and closes nothing.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w, start: time.Now(), limit: DefaultTraceLimit, buf: make([]byte, 0, 256)}
}

// Open opens (or creates) a trace file for appending, first truncating a
// torn trailing line left by a previous run killed mid-write — the same
// DropPartialTail contract every resumable JSONL output of the repository
// honours. Close closes the file.
func Open(path string) (*Recorder, error) {
	if err := DropPartialTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r := NewRecorder(f)
	r.closer = f
	return r, nil
}

// SetLimit bounds the total bytes written (<= 0 means unlimited). Events
// beyond the limit are counted by Dropped instead of written.
func (r *Recorder) SetLimit(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// Dropped reports how many events the byte limit suppressed.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Emit appends one event line. Safe on a nil recorder (no-op) and from
// concurrent goroutines (events serialize; seq orders them).
func (r *Recorder) Emit(kind string, fields ...Field) {
	r.emit(kind, 0, 0, "", fields)
}

// emit appends one event line, optionally tagged with a span id, a parent
// span link and a span name — the single write path shared by Emit and the
// span lifecycle methods.
func (r *Recorder) emit(kind string, span, parent uint64, name string, fields []Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.limit > 0 && r.written >= r.limit {
		r.dropped++
		metricTraceDropped.Inc()
		return
	}
	r.seq++
	b := r.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, r.seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, time.Since(r.start).Nanoseconds(), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, kind)
	if span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, span, 10)
	}
	if parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, parent, 10)
	}
	if name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
	}
	for i := range fields {
		f := &fields[i]
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case fieldString:
			b = appendJSONString(b, f.str)
		case fieldInt:
			b = strconv.AppendInt(b, f.i, 10)
		case fieldUint:
			b = strconv.AppendUint(b, uint64(f.i), 10)
		case fieldFloat:
			if math.IsNaN(f.num) || math.IsInf(f.num, 0) {
				b = append(b, "null"...)
			} else {
				b = strconv.AppendFloat(b, f.num, 'g', -1, 64)
			}
		case fieldBool:
			if f.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '}', '\n')
	r.buf = b
	n, _ := r.w.Write(b) // a write error drops the event; tracing must not fail the run
	r.written += int64(n)
}

// Close emits a final "trace.end" event (carrying the drop count, so a
// truncated trace is self-diagnosing), warns on stderr when the byte limit
// suppressed any events — truncation must never be silent — and closes the
// underlying file when the recorder owns one. Safe on a nil recorder.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dropped := r.dropped
	r.mu.Unlock()
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "obs: flight-recorder trace truncated: %d events dropped by the byte limit (raise it with SetLimit)\n", dropped)
	}
	r.Emit("trace.end", Uint64("dropped", dropped))
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters; valid UTF-8 passes through.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				b = append(b, '\\', c)
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\t':
				b = append(b, '\\', 't')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c < 0x20:
				const hex = "0123456789abcdef"
				b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}
