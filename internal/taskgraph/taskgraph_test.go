package taskgraph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"taskpoint/internal/trace"
)

// prog builds a minimal program whose instance i has the given dependency
// token sets.
func prog(insts ...trace.Instance) *trace.Program {
	p := &trace.Program{Name: "t", Types: []trace.TypeInfo{{Name: "t"}}}
	for i := range insts {
		insts[i].ID = int32(i)
		insts[i].Type = 0
		if insts[i].Segments == nil {
			insts[i].Segments = []trace.Segment{{N: 10, DepDist: 2}}
		}
		p.Instances = append(p.Instances, insts[i])
	}
	return p
}

func TestBuildRAW(t *testing.T) {
	// 0 writes token 1, instance 1 reads it: edge 0->1.
	p := prog(
		trace.Instance{Out: []uint64{1}},
		trace.Instance{In: []uint64{1}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPreds(1) != 1 || len(g.Succs(0)) != 1 || g.Succs(0)[0] != 1 {
		t.Errorf("RAW edge missing: preds(1)=%d succs(0)=%v", g.NumPreds(1), g.Succs(0))
	}
}

func TestBuildWAW(t *testing.T) {
	p := prog(
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{1}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPreds(1) != 1 {
		t.Errorf("WAW edge missing: preds(1)=%d", g.NumPreds(1))
	}
}

func TestBuildWAR(t *testing.T) {
	// 0 reads token 1 (no prior writer: no RAW), 1 writes it: WAR 0->1.
	p := prog(
		trace.Instance{In: []uint64{1}},
		trace.Instance{Out: []uint64{1}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPreds(1) != 1 {
		t.Errorf("WAR edge missing: preds(1)=%d", g.NumPreds(1))
	}
}

func TestBuildInOutChain(t *testing.T) {
	// InOut on the same token serialises all three instances.
	p := prog(
		trace.Instance{InOut: []uint64{7}},
		trace.Instance{InOut: []uint64{7}},
		trace.Instance{InOut: []uint64{7}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPreds(0) != 0 || g.NumPreds(1) != 1 || g.NumPreds(2) != 1 {
		t.Errorf("chain preds = %d,%d,%d want 0,1,1",
			g.NumPreds(0), g.NumPreds(1), g.NumPreds(2))
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestBuildIndependent(t *testing.T) {
	p := prog(
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{2}},
		trace.Instance{Out: []uint64{3}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("independent tasks should have 0 edges, got %d", g.NumEdges())
	}
	if len(g.Roots()) != 3 {
		t.Errorf("roots = %v, want all three", g.Roots())
	}
}

func TestBuildMultipleReadersOneWAR(t *testing.T) {
	// Two readers of token 5, then a writer: writer depends on both.
	p := prog(
		trace.Instance{Out: []uint64{5}},
		trace.Instance{In: []uint64{5}},
		trace.Instance{In: []uint64{5}},
		trace.Instance{Out: []uint64{5}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 3 has WAW on 0 plus WAR on 1 and 2 = 3 preds.
	if g.NumPreds(3) != 3 {
		t.Errorf("preds(3) = %d, want 3", g.NumPreds(3))
	}
}

func TestBuildDedupEdges(t *testing.T) {
	// An instance reading two tokens written by the same producer must get
	// a single edge, not two.
	p := prog(
		trace.Instance{Out: []uint64{1, 2}},
		trace.Instance{In: []uint64{1, 2}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPreds(1) != 1 || g.NumEdges() != 1 {
		t.Errorf("duplicate edges: preds(1)=%d edges=%d", g.NumPreds(1), g.NumEdges())
	}
}

func TestBuildRejectsInvalidProgram(t *testing.T) {
	p := &trace.Program{Name: "bad"}
	if _, err := Build(p); err == nil {
		t.Error("expected error for invalid program")
	}
}

func TestLevelsAndWidth(t *testing.T) {
	// Binary reduction of 4 leaves: 4 leaves at level 0, 2 at 1, 1 at 2.
	p := prog(
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{2}},
		trace.Instance{Out: []uint64{3}},
		trace.Instance{Out: []uint64{4}},
		trace.Instance{In: []uint64{1, 2}, Out: []uint64{5}},
		trace.Instance{In: []uint64{3, 4}, Out: []uint64{6}},
		trace.Instance{In: []uint64{5, 6}, Out: []uint64{7}},
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	levels := g.Levels()
	want := []int{0, 0, 0, 0, 1, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("level(%d) = %d, want %d", i, levels[i], want[i])
		}
	}
	width := g.WidthProfile()
	if len(width) != 3 || width[0] != 4 || width[1] != 2 || width[2] != 1 {
		t.Errorf("width profile = %v, want [4 2 1]", width)
	}
}

func TestCriticalPath(t *testing.T) {
	p := prog(
		trace.Instance{Out: []uint64{1}},
		trace.Instance{In: []uint64{1}, Out: []uint64{2}},
		trace.Instance{In: []uint64{2}},
		trace.Instance{Out: []uint64{99}}, // independent
	)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{10, 20, 30, 5}
	if got := g.CriticalPath(w); got != 60 {
		t.Errorf("critical path = %v, want 60", got)
	}
}

func TestCriticalPathPanicsOnBadWeights(t *testing.T) {
	p := prog(trace.Instance{Out: []uint64{1}})
	g, _ := Build(p)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on weight length mismatch")
		}
	}()
	g.CriticalPath([]float64{1, 2})
}

// Property: graphs from random programs are forward-edged (acyclic) and
// predecessor counts equal the sum of successor list memberships.
func TestQuickGraphInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(40)
		var insts []trace.Instance
		for i := 0; i < n; i++ {
			var in, out []uint64
			for k := 0; k < r.IntN(3); k++ {
				in = append(in, uint64(r.IntN(10)))
			}
			for k := 0; k < r.IntN(3); k++ {
				out = append(out, uint64(r.IntN(10)))
			}
			insts = append(insts, trace.Instance{In: in, Out: out})
		}
		g, err := Build(prog(insts...))
		if err != nil {
			return false
		}
		// Forward edges only, and in-degree bookkeeping consistent.
		preds := make([]int, n)
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(u) {
				if int(v) <= u {
					return false
				}
				preds[v]++
			}
		}
		for i := 0; i < n; i++ {
			if preds[i] != g.NumPreds(i) {
				return false
			}
		}
		// Levels are monotone along edges.
		levels := g.Levels()
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(u) {
				if levels[v] <= levels[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
