// Package taskgraph derives the task dependency graph from a trace.Program
// the way the OmpSs runtime derives dependencies from in/out/inout clauses:
// read-after-write, write-after-write and write-after-read edges between
// task instances that name the same data tokens (paper §II-A, §IV).
//
// Because instances are processed in creation order, every edge points from
// a lower instance index to a higher one, so the graph is acyclic by
// construction.
package taskgraph

import (
	"fmt"

	"taskpoint/internal/trace"
)

// Graph is an immutable task dependency DAG over the instances of one
// program. Node i corresponds to Program.Instances[i].
type Graph struct {
	succs [][]int32
	npred []int32
}

// Build constructs the dependency graph of p. It returns an error only if
// the program itself is invalid.
func Build(p *trace.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Instances)
	g := &Graph{
		succs: make([][]int32, n),
		npred: make([]int32, n),
	}
	// The token maps are presized from the instance count: programs name
	// on the order of one data token per instance, so sizing up front
	// avoids the incremental rehash-and-copy growth that dominated Build
	// on large programs.
	lastWriter := make(map[uint64]int32, n)
	readers := make(map[uint64][]int32, n)
	// predSet deduplicates edges per instance; reused across iterations.
	// Task in-degrees are small (a handful of tokens), so a small fixed
	// presize suffices.
	predSet := make(map[int32]struct{}, 16)

	for i := range p.Instances {
		inst := &p.Instances[i]
		id := int32(i)
		clear(predSet)

		// Reads: In and InOut establish RAW edges from the last writer.
		// Self-dependencies (an instance naming the same token twice, or
		// both reading and writing it) are not edges.
		for _, tok := range inst.In {
			if w, ok := lastWriter[tok]; ok && w != id {
				predSet[w] = struct{}{}
			}
			readers[tok] = append(readers[tok], id)
		}
		// Writes: Out and InOut establish WAW edges from the last writer
		// and WAR edges from every reader since that write. For InOut the
		// RAW edge coincides with the WAW edge from the last writer.
		addWrite := func(tok uint64) {
			if w, ok := lastWriter[tok]; ok && w != id {
				predSet[w] = struct{}{}
			}
			for _, r := range readers[tok] {
				if r != id {
					predSet[r] = struct{}{}
				}
			}
			lastWriter[tok] = id
			readers[tok] = readers[tok][:0]
		}
		for _, tok := range inst.InOut {
			addWrite(tok)
		}
		for _, tok := range inst.Out {
			addWrite(tok)
		}

		for w := range predSet {
			if w >= id {
				return nil, fmt.Errorf("taskgraph: non-forward edge %d -> %d", w, id)
			}
			g.succs[w] = append(g.succs[w], id)
			g.npred[id]++
		}
	}
	return g, nil
}

// NumTasks returns the number of nodes.
func (g *Graph) NumTasks() int { return len(g.succs) }

// Succs returns the successors of node i. The returned slice must not be
// modified.
func (g *Graph) Succs(i int) []int32 { return g.succs[i] }

// NumPreds returns the static in-degree of node i.
func (g *Graph) NumPreds(i int) int { return int(g.npred[i]) }

// NumEdges returns the total number of dependency edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// Roots returns the nodes with no predecessors, in creation order. These
// are the task instances ready at program start.
func (g *Graph) Roots() []int32 {
	var out []int32
	for i, np := range g.npred {
		if np == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// Levels returns the ASAP level of every node: roots are level 0 and each
// node sits one level below its deepest predecessor. Because edges always
// point forward, a single pass in index order suffices.
func (g *Graph) Levels() []int {
	levels := make([]int, len(g.succs))
	for i := range g.succs {
		for _, s := range g.succs[i] {
			if levels[i]+1 > levels[s] {
				levels[s] = levels[i] + 1
			}
		}
	}
	return levels
}

// WidthProfile returns, for each ASAP level, how many tasks sit on it. The
// profile approximates the available parallelism over time: the reduction
// benchmark's shrinking profile is what exercises TaskPoint's resampling on
// parallelism change (paper Fig 4a).
func (g *Graph) WidthProfile() []int {
	levels := g.Levels()
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	width := make([]int, maxL+1)
	for _, l := range levels {
		width[l]++
	}
	return width
}

// CriticalPath returns the longest weighted path through the DAG, where
// weights[i] is the cost of node i. With unit weights it is the depth of
// the graph plus one.
func (g *Graph) CriticalPath(weights []float64) float64 {
	if len(weights) != len(g.succs) {
		panic("taskgraph: weights length mismatch")
	}
	finish := make([]float64, len(g.succs))
	longest := 0.0
	for i := range g.succs {
		f := finish[i] + weights[i]
		if f > longest {
			longest = f
		}
		for _, s := range g.succs[i] {
			if f > finish[s] {
				finish[s] = f
			}
		}
	}
	return longest
}
