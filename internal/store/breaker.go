package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/sweep"
)

// ErrUnavailable reports an operation short-circuited because the store
// is degraded: the breaker is open and the cooldown has not elapsed.
// Callers treat it exactly like ErrNotFound-as-a-miss — compute without
// the store — which is what keeps a sick store from failing a campaign.
var ErrUnavailable = errors.New("store: unavailable (degraded)")

// Breaker metrics in the default registry. degraded counts circuit
// openings (transitions into degraded mode); degraded.active is 1 while
// the circuit is open; retry counts half-open probe operations;
// unavailable counts operations short-circuited while open.
var (
	metricDegraded       = obs.Default().Counter("store.degraded")
	metricDegradedActive = obs.Default().Gauge("store.degraded.active")
	metricRetry          = obs.Default().Counter("store.retry")
	metricUnavailable    = obs.Default().Counter("store.unavailable")
)

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// Breaker wraps a Store with a circuit breaker: consecutive operation
// failures (anything but a clean hit or a clean ErrNotFound) trip it
// open, and while open every operation returns ErrUnavailable
// immediately instead of touching the sick backend. After a jittered
// exponential-backoff cooldown one probe operation is let through
// (half-open): success closes the circuit, failure reopens it with a
// doubled cooldown, up to a cap. The breaker is safe for concurrent use.
//
// The contract it gives the service stack: a campaign never fails
// because the store is sick. Degraded operation only stops
// deduplicating — reads miss, writes drop (counted) — until the backend
// heals and a probe closes the circuit again.
type Breaker struct {
	inner Store

	mu        sync.Mutex
	state     int
	failures  int           // consecutive failures while closed
	openings  int           // consecutive openings without a heal (backoff exponent)
	until     time.Time     // while open: when the next probe is allowed
	cooldown  time.Duration // the cooldown the current open period used
	threshold int
	base, max time.Duration
	now       func() time.Time
	rng       uint64 // splitmix64 state for jitter
	rec       *obs.Recorder
}

// BreakerOption configures a Breaker.
type BreakerOption func(*Breaker)

// WithThreshold sets how many consecutive failures open the circuit
// (default 5, minimum 1).
func WithThreshold(n int) BreakerOption {
	return func(b *Breaker) {
		if n >= 1 {
			b.threshold = n
		}
	}
}

// WithBackoff sets the first cooldown and its cap (defaults 500ms, 30s).
func WithBackoff(base, max time.Duration) BreakerOption {
	return func(b *Breaker) {
		if base > 0 {
			b.base = base
		}
		if max >= b.base {
			b.max = max
		}
	}
}

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) BreakerOption {
	return func(b *Breaker) { b.now = now }
}

// WithJitterSeed seeds the jitter stream, making cooldowns reproducible.
func WithJitterSeed(seed uint64) BreakerOption {
	return func(b *Breaker) { b.rng = seed | 1 }
}

// WithBreakerRecorder attaches a flight recorder: the breaker emits
// store.degraded / store.retry / store.healed events on state changes.
// A nil recorder (the default) is the free disabled path.
func WithBreakerRecorder(rec *obs.Recorder) BreakerOption {
	return func(b *Breaker) { b.rec = rec }
}

// NewBreaker wraps inner in a circuit breaker.
func NewBreaker(inner Store, opts ...BreakerOption) *Breaker {
	b := &Breaker{
		inner:     inner,
		threshold: 5,
		base:      500 * time.Millisecond,
		max:       30 * time.Second,
		now:       time.Now,
		rng:       0x9e3779b97f4a7c15,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Degraded reports whether the circuit is currently open or probing.
func (b *Breaker) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != stateClosed
}

// allow decides whether an operation may reach the backend. While open
// it short-circuits until the cooldown elapses, then admits exactly one
// probe (half-open); concurrent operations keep short-circuiting until
// the probe reports back.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Before(b.until) {
			metricUnavailable.Inc()
			return false
		}
		b.state = stateHalfOpen
		metricRetry.Inc()
		b.rec.Emit("store.retry", obs.Int("opening", b.openings), obs.Float("cooldown_ms", float64(b.cooldown.Milliseconds())))
		return true
	default: // half-open: one probe is already in flight
		metricUnavailable.Inc()
		return false
	}
}

// record classifies an operation's outcome. ErrNotFound is a healthy
// miss — the backend answered — so it counts as success.
func (b *Breaker) record(err error) {
	ok := err == nil || errors.Is(err, ErrNotFound)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case ok && b.state == stateHalfOpen:
		b.state = stateClosed
		b.failures = 0
		b.openings = 0
		metricDegradedActive.Set(0)
		b.rec.Emit("store.healed")
		fmt.Fprintln(os.Stderr, "store: backend healed, leaving degraded mode")
	case ok:
		b.failures = 0
	case b.state == stateHalfOpen:
		b.open(err) // probe failed: reopen with doubled cooldown
	default: // closed (or open op that raced the trip): count and maybe trip
		b.failures++
		if b.state == stateClosed && b.failures >= b.threshold {
			b.open(err)
		}
	}
}

// open transitions to the open state with the next jittered cooldown.
// Caller holds b.mu.
func (b *Breaker) open(cause error) {
	b.state = stateOpen
	b.failures = 0
	cool := b.base << b.openings
	if cool > b.max || cool <= 0 {
		cool = b.max
	}
	// Jitter to 50–150% of the nominal cooldown so a fleet of breakers
	// over one sick backend doesn't probe in lockstep.
	cool = cool/2 + time.Duration(b.rand())%cool
	b.cooldown = cool
	b.until = b.now().Add(cool)
	if b.openings < 62 {
		b.openings++
	}
	metricDegraded.Inc()
	metricDegradedActive.Set(1)
	b.rec.Emit("store.degraded",
		obs.String("cause", cause.Error()),
		obs.Float("cooldown_ms", float64(cool.Milliseconds())),
		obs.Int("opening", b.openings))
	fmt.Fprintf(os.Stderr, "store: degraded (cause: %v); retrying backend in %v\n", cause, cool.Round(time.Millisecond))
}

// rand steps the jitter stream (splitmix64). Caller holds b.mu.
func (b *Breaker) rand() int64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	v := int64(z >> 1)
	if v < 0 {
		v = -v
	}
	return v
}

// Baseline implements Store.
func (b *Breaker) Baseline(addr string) (*sim.Result, error) {
	if !b.allow() {
		return nil, fmt.Errorf("%w: baseline %s", ErrUnavailable, short(addr))
	}
	res, err := b.inner.Baseline(addr)
	b.record(err)
	return res, err
}

// PutBaseline implements Store.
func (b *Breaker) PutBaseline(addr string, res *sim.Result) error {
	if !b.allow() {
		return fmt.Errorf("%w: put baseline %s", ErrUnavailable, short(addr))
	}
	err := b.inner.PutBaseline(addr, res)
	b.record(err)
	return err
}

// Report implements Store.
func (b *Breaker) Report(addr string) (*sweep.Record, error) {
	if !b.allow() {
		return nil, fmt.Errorf("%w: report %s", ErrUnavailable, short(addr))
	}
	rec, err := b.inner.Report(addr)
	b.record(err)
	return rec, err
}

// PutReport implements Store.
func (b *Breaker) PutReport(addr string, rec *sweep.Record) error {
	if !b.allow() {
		return fmt.Errorf("%w: put report %s", ErrUnavailable, short(addr))
	}
	err := b.inner.PutReport(addr, rec)
	b.record(err)
	return err
}

func short(addr string) string {
	if len(addr) > 12 {
		return addr[:12]
	}
	return addr
}
