package store

import (
	"errors"
	"sync"
	"testing"
	"time"

	"taskpoint/internal/engine"
	"taskpoint/internal/sim"
	"taskpoint/internal/sweep"
)

// flakyStore is a scripted Store: fail toggles every operation between
// a healthy miss and an injected failure, and calls counts backend
// traffic so short-circuiting is observable.
type flakyStore struct {
	mu    sync.Mutex
	fail  bool
	calls int
	data  map[string]*sweep.Record
}

var errFlaky = errors.New("flaky: backend down")

func newFlakyStore() *flakyStore { return &flakyStore{data: map[string]*sweep.Record{}} }

func (f *flakyStore) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

func (f *flakyStore) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *flakyStore) op() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.fail {
		return errFlaky
	}
	return nil
}

func (f *flakyStore) Baseline(addr string) (*sim.Result, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return nil, ErrNotFound
}

func (f *flakyStore) PutBaseline(addr string, res *sim.Result) error { return f.op() }

func (f *flakyStore) Report(addr string) (*sweep.Record, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec, ok := f.data[addr]; ok {
		return rec, nil
	}
	return nil, ErrNotFound
}

func (f *flakyStore) PutReport(addr string, rec *sweep.Record) error {
	if err := f.op(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data[addr] = rec
	return nil
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

const testAddr = "00000000000000000000000000000000000000000000000000000000000000aa"

func newTestBreaker(inner Store, clock *fakeClock) *Breaker {
	return NewBreaker(inner,
		WithThreshold(3),
		WithBackoff(time.Second, 8*time.Second),
		WithClock(clock.now),
		WithJitterSeed(1))
}

// TestBreakerStaysClosedOnHealthyTraffic: misses and hits are success —
// the breaker never trips on a store that answers.
func TestBreakerStaysClosedOnHealthyTraffic(t *testing.T) {
	inner := newFlakyStore()
	b := newTestBreaker(inner, &fakeClock{})
	for i := 0; i < 20; i++ {
		if _, err := b.Report(testAddr); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
	}
	if b.Degraded() {
		t.Fatal("breaker tripped on healthy misses")
	}
	if got := inner.callCount(); got != 20 {
		t.Fatalf("want 20 backend calls, got %d", got)
	}
}

// TestBreakerTripsAndShortCircuits: threshold consecutive failures open
// the circuit; further operations return ErrUnavailable without touching
// the backend.
func TestBreakerTripsAndShortCircuits(t *testing.T) {
	inner := newFlakyStore()
	inner.setFail(true)
	clock := &fakeClock{}
	b := newTestBreaker(inner, clock)

	degradedBefore := metricDegraded.Value()
	for i := 0; i < 3; i++ {
		if _, err := b.Report(testAddr); !errors.Is(err, errFlaky) {
			t.Fatalf("failure %d: want backend error, got %v", i, err)
		}
	}
	if !b.Degraded() {
		t.Fatal("breaker did not trip after threshold failures")
	}
	if got := metricDegraded.Value() - degradedBefore; got != 1 {
		t.Fatalf("store.degraded delta = %d, want 1", got)
	}

	calls := inner.callCount()
	unavailBefore := metricUnavailable.Value()
	for i := 0; i < 10; i++ {
		if _, err := b.Report(testAddr); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("want ErrUnavailable while open, got %v", err)
		}
		if err := b.PutReport(testAddr, &sweep.Record{}); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("want ErrUnavailable on writes while open, got %v", err)
		}
	}
	if got := inner.callCount(); got != calls {
		t.Fatalf("open breaker touched the backend: %d calls vs %d", got, calls)
	}
	if got := metricUnavailable.Value() - unavailBefore; got != 20 {
		t.Fatalf("store.unavailable delta = %d, want 20", got)
	}
}

// TestBreakerProbesAndHeals: after the cooldown exactly one probe goes
// through; success closes the circuit and resets the backoff.
func TestBreakerProbesAndHeals(t *testing.T) {
	inner := newFlakyStore()
	inner.setFail(true)
	clock := &fakeClock{}
	b := newTestBreaker(inner, clock)
	for i := 0; i < 3; i++ {
		b.Report(testAddr) //nolint:errcheck
	}
	if !b.Degraded() {
		t.Fatal("not degraded after failures")
	}

	// The jittered cooldown is in [base/2, 1.5*base); advancing past the
	// max possible cooldown guarantees the probe window is open.
	inner.setFail(false)
	retryBefore := metricRetry.Value()
	clock.advance(2 * time.Second)
	if _, err := b.Report(testAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("probe: want healthy miss, got %v", err)
	}
	if b.Degraded() {
		t.Fatal("breaker still degraded after successful probe")
	}
	if got := metricRetry.Value() - retryBefore; got != 1 {
		t.Fatalf("store.retry delta = %d, want 1", got)
	}
	// Healed: traffic flows again.
	if err := b.PutReport(testAddr, &sweep.Record{Key: "k"}); err != nil {
		t.Fatalf("healed breaker rejected write: %v", err)
	}
}

// TestBreakerBackoffDoubles: a failing probe reopens the circuit with a
// doubled (jittered, capped) cooldown.
func TestBreakerBackoffDoubles(t *testing.T) {
	inner := newFlakyStore()
	inner.setFail(true)
	clock := &fakeClock{}
	b := newTestBreaker(inner, clock)
	for i := 0; i < 3; i++ {
		b.Report(testAddr) //nolint:errcheck
	}

	prev := time.Duration(0)
	for round := 0; round < 4; round++ {
		b.mu.Lock()
		cool := b.cooldown
		b.mu.Unlock()
		nominal := time.Second << round
		if nominal > 8*time.Second {
			nominal = 8 * time.Second
		}
		if cool < nominal/2 || cool >= nominal+nominal/2 {
			t.Fatalf("round %d: cooldown %v outside jitter bounds of %v", round, cool, nominal)
		}
		if round > 0 && round < 3 && cool <= prev/2 {
			t.Fatalf("round %d: cooldown %v did not grow from %v", round, cool, prev)
		}
		prev = cool
		clock.advance(2 * cool)
		// Failing probe → reopen with the next cooldown.
		if _, err := b.Report(testAddr); !errors.Is(err, errFlaky) {
			t.Fatalf("round %d probe: want backend error, got %v", round, err)
		}
		if !b.Degraded() {
			t.Fatalf("round %d: breaker closed after failing probe", round)
		}
	}
}

// TestBreakerTierWriteBehindErrorsSurface: a write-behind baseline save
// against a degraded store is dropped but counted — never silent.
func TestBreakerTierWriteBehindErrorsSurface(t *testing.T) {
	inner := newFlakyStore()
	inner.setFail(true)
	b := newTestBreaker(inner, &fakeClock{})
	tier := Tier(b)

	id := engine.BaselineID{Workload: "cholesky", Scale: 1, Seed: 1, Arch: "high-performance", Threads: 2}
	before := metricWriteBehindErrors.Value()
	for i := 0; i < 5; i++ {
		tier.SaveBaseline(id, &sim.Result{})
	}
	if got := metricWriteBehindErrors.Value() - before; got != 5 {
		t.Fatalf("store.writebehind.errors delta = %d, want 5", got)
	}
	// Loads against the (now open) breaker are plain misses, not errors.
	if res, ok := tier.LoadBaseline(id); ok || res != nil {
		t.Fatal("degraded tier load must be a miss")
	}
}
