package store

import (
	"strings"
	"testing"

	"taskpoint/internal/core"
	"taskpoint/internal/engine"
)

// TestGoldenContentAddresses pins the address scheme: the SHA-256
// addresses of a representative table of requests (Table I benchmarks and
// gen: scenarios, every policy family, both architectures and the native
// machine) are committed as literals. ANY change to the canonical
// serialization — field order, a renamed field, float formatting, a new
// hashed dimension — fails here loudly. That is the point: a silently
// drifted address scheme would fork every persistent store in the fleet
// into unreachable halves (old entries never hit again) or, far worse,
// alias distinct cells. If the scheme must change, bump AddressVersion
// and re-pin these literals in the same commit.
func TestGoldenContentAddresses(t *testing.T) {
	table := []struct {
		req          engine.Request
		report, base string
	}{
		{
			req:    engine.Request{Workload: "cholesky"},
			report: "34c59025bf3c47babdbcf1dd343260091bb2f6a6a697c3056167435ce3f47342",
			base:   "24931d11fd6ea3a907871773b0e4dd1a01f8307cdbb01fdb98327c7956ff65a2",
		},
		{
			req:    engine.Request{Workload: "cholesky", Arch: "lp", Threads: 8, Scale: 0.25, Seed: 42, Policy: "periodic(250)"},
			report: "71aefffe93bbd2fbd278cb4e955ffb21d9fb6168af5487007907d519d380d6a7",
			base:   "7188ed9820981b29091c9b728379f745448fbd7adb9f0eb4330cc962468cb1e0",
		},
		{
			req:    engine.Request{Workload: "3d-stencil", Arch: "hp", Threads: 2, Policy: "stratified(400)"},
			report: "3a875598d6e87a1ec8e95181e9fbe0a85c76accd96d4b0cfcf6f54731ec61526",
			base:   "1672789f4a6c62868901bde8a33345c13024b9b6ac0ce7d0fdfb7573ccc31976",
		},
		{
			req:    engine.Request{Workload: "knn", Arch: "native", Threads: 4, Seed: 7, Policy: "periodic:1000"},
			report: "91d076d0a428eca9091d3b840eb4f09d7f9501bfba895981fe5c5a8ea51c1d63",
			base:   "468378650501955d3832d6d2e9a0b7b27543d47eb8b70c8536442dc5ff1bf74d",
		},
		{
			req:    engine.Request{Workload: "vector-operation", Threads: 16, Seed: 11, Policy: "periodic(1000)"},
			report: "707706256fe0210751ff9aa5e210be5e67cbd768f4bf491b2207f94e69a8c0c0",
			base:   "5d60bf06f4bb712596435f4e6d3f1061b43dd4274644b5137e0b8270d081b697",
		},
		{
			req:    engine.Request{Workload: "gen:forkjoin(tasks=96,mean=600)", Threads: 2, Policy: "lazy"},
			report: "7849f11d9f9d60874b868a8bbc58349593754ed1763ec33d6b3d2001e2a29511",
			base:   "e56427e6c6c15ad50feacbe5cd014399d7f20f9960526d7049f75038e2edb7a7",
		},
		{
			req:    engine.Request{Workload: "gen:pipeline(depth=6,cv=0.5)", Arch: "lp", Threads: 8, Seed: 3, Policy: "stratified:96"},
			report: "d3db7ec627644080cccb5b0fae0f7e6b15c61666b1164be76d37cdf7be4cd575",
			base:   "3d771223c93046492adafeadaf1e081d60b3f8c7a042e11468fe3b68d07d339f",
		},
	}
	for _, tc := range table {
		got, err := ContentAddress(tc.req)
		if err != nil {
			t.Fatalf("ContentAddress(%+v): %v", tc.req, err)
		}
		if got != tc.report {
			t.Errorf("ContentAddress(%s|%s) = %s, pinned %s — the address scheme drifted; bump AddressVersion and re-pin",
				tc.req.Workload, tc.req.Policy, got, tc.report)
		}
		gotB, err := BaselineAddress(tc.req)
		if err != nil {
			t.Fatalf("BaselineAddress(%+v): %v", tc.req, err)
		}
		if gotB != tc.base {
			t.Errorf("BaselineAddress(%s) = %s, pinned %s — the address scheme drifted; bump AddressVersion and re-pin",
				tc.req.Workload, gotB, tc.base)
		}
	}
}

// TestContentAddressEquivalentSpellings: the address inherits the
// normalizer's canonicalization — every accepted spelling of one cell is
// one address.
func TestContentAddressEquivalentSpellings(t *testing.T) {
	base := engine.Request{Workload: "cholesky", Arch: "high-performance", Threads: 8, Policy: "periodic(250)"}
	want, err := ContentAddress(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []engine.Request{
		{Workload: "cholesky", Arch: "hp", Threads: 8, Policy: "periodic(250)"},
		{Workload: "cholesky", Arch: "hp", Threads: 8, Policy: "periodic( 250 )"},
		{Workload: "cholesky", Arch: "high-performance", Threads: 8, Scale: 1, Policy: "periodic:250"},
	} {
		got, err := ContentAddress(req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("equivalent spelling %+v addressed %s, want %s", req, got, want)
		}
	}
}

// TestContentAddressDistinctCells: changing any hashed dimension changes
// the address, and report/baseline addresses never collide.
func TestContentAddressDistinctCells(t *testing.T) {
	base := engine.Request{Workload: "cholesky", Threads: 8, Policy: "periodic(250)"}
	variants := []engine.Request{
		{Workload: "knn", Threads: 8, Policy: "periodic(250)"},
		{Workload: "cholesky", Threads: 4, Policy: "periodic(250)"},
		{Workload: "cholesky", Threads: 8, Policy: "periodic(251)"},
		{Workload: "cholesky", Threads: 8, Policy: "lazy"},
		{Workload: "cholesky", Threads: 8, Scale: 0.5, Policy: "periodic(250)"},
		{Workload: "cholesky", Threads: 8, Seed: 1, Policy: "periodic(250)"},
		{Workload: "cholesky", Arch: "lp", Threads: 8, Policy: "periodic(250)"},
		{Workload: "cholesky", Threads: 8, Policy: "periodic(250)", Params: differentParams()},
	}
	seen := map[string]string{}
	add := func(label, addr string) {
		if prev, dup := seen[addr]; dup && prev != label {
			t.Errorf("address collision: %s and %s both hash to %s", prev, label, addr)
		}
		seen[addr] = label
	}
	want, err := ContentAddress(base)
	if err != nil {
		t.Fatal(err)
	}
	add("base", want)
	bAddr, err := BaselineAddress(base)
	if err != nil {
		t.Fatal(err)
	}
	add("base/baseline", bAddr)
	for i, v := range variants {
		got, err := ContentAddress(v)
		if err != nil {
			t.Fatal(err)
		}
		if got == want && v.Key() != base.Key() {
			t.Errorf("variant %d (%+v) collides with base", i, v)
		}
		add(v.Key(), got)
	}
}

// TestContentAddressRejectsPolicyValue: in-memory policy values carry
// configuration their name cannot express, so they are not addressable.
func TestContentAddressRejectsPolicyValue(t *testing.T) {
	req := engine.Request{Workload: "cholesky", PolicyValue: fakePolicy{}}
	if _, err := ContentAddress(req); err == nil || !strings.Contains(err.Error(), "PolicyValue") {
		t.Fatalf("want PolicyValue rejection, got %v", err)
	}
}

type fakePolicy struct{}

func (fakePolicy) Name() string                 { return "fake" }
func (fakePolicy) ShouldResample(_, _ int) bool { return false }

// differentParams returns non-default sampling parameters — a distinct
// cell even when every name matches.
func differentParams() core.Params {
	p := core.DefaultParams()
	p.W = 5
	p.H = 9
	return p
}
