// Package store is the content-addressed, persistent result store behind
// the campaign service: detailed baseline results and finished cell
// reports keyed by the SHA-256 of their request's canonical form, laid
// out as a sharded object tree on disk (<root>/ab/cdef..., fan-out by
// hash prefix) with atomic-rename writes and checksum-verified reads.
//
// The address scheme is the package's contract: two requests meaning the
// same experiment cell (any accepted spelling) hash to one address, two
// distinct cells never share one, and the pinned golden addresses in
// address_test.go make any accidental change to the scheme a loud tier-1
// failure instead of a silently forked cache.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"taskpoint/internal/core"
	"taskpoint/internal/engine"
)

// AddressVersion is the address-scheme version, hashed into every
// address. Bump it when the canonical serialization changes shape, so
// old store entries become unreachable rather than wrongly reused.
const AddressVersion = 1

// canonical is the serialization the content address hashes: fixed field
// order, every name in its one canonical spelling, floats rendered via
// strconv.FormatFloat 'g' so the byte form never depends on
// encoding/json float behaviour. Baseline addresses leave the policy and
// sampling-parameter fields zero; they are identified by kind.
type canonical struct {
	V                    int    `json:"v"`
	Kind                 string `json:"kind"`
	Workload             string `json:"workload"`
	Arch                 string `json:"arch"`
	Threads              int    `json:"threads"`
	Scale                string `json:"scale"`
	Seed                 uint64 `json:"seed"`
	Policy               string `json:"policy,omitempty"`
	W                    int    `json:"w,omitempty"`
	H                    int    `json:"h,omitempty"`
	RareCutoff           int    `json:"rare_cutoff,omitempty"`
	ResampleWarmup       int    `json:"resample_warmup,omitempty"`
	ConcurrencyTolerance string `json:"concurrency_tolerance,omitempty"`
	ConcurrencyPatience  int    `json:"concurrency_patience,omitempty"`
	SizeClasses          bool   `json:"size_classes,omitempty"`
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func hashCanonical(c canonical) string {
	b, err := json.Marshal(c)
	if err != nil {
		// canonical contains only strings, ints and bools.
		panic(fmt.Sprintf("store: canonical form not marshalable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ContentAddress returns the content address of an experiment cell: the
// SHA-256 (hex) of the canonical serialization of the request's
// normalized form — workload, architecture, threads, scale, seed, policy
// and the full sampling parameters. Every accepted spelling of one cell
// ("periodic( 250 )" vs "periodic:250", "hp" vs "high-performance",
// reordered gen: knobs) yields the same address; any semantic difference
// yields a different one. It is the key finished cell reports are stored
// under, and the single-flight identity of the campaign server.
//
// Requests carrying an in-memory PolicyValue are rejected: a policy
// value can hold configuration its textual name does not express, so it
// has no faithful canonical serialization to address.
func ContentAddress(req engine.Request) (string, error) {
	if req.PolicyValue != nil {
		return "", fmt.Errorf("store: cannot content-address a request with an in-memory PolicyValue; use a textual policy spec")
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	n := req.Normalized()
	return hashCanonical(canonical{
		V:                    AddressVersion,
		Kind:                 "report",
		Workload:             n.Workload,
		Arch:                 n.Arch,
		Threads:              n.Threads,
		Scale:                formatFloat(n.Scale),
		Seed:                 n.Seed,
		Policy:               n.Policy,
		W:                    n.Params.W,
		H:                    n.Params.H,
		RareCutoff:           n.Params.RareCutoff,
		ResampleWarmup:       n.Params.ResampleWarmup,
		ConcurrencyTolerance: formatFloat(n.Params.ConcurrencyTolerance),
		ConcurrencyPatience:  n.Params.ConcurrencyPatience,
		SizeClasses:          n.Params.SizeClasses,
	}), nil
}

// BaselineAddress returns the content address of the request's detailed
// reference simulation: only the fields that pin the baseline — workload,
// architecture, threads, scale, seed — enter the hash, so every policy
// sweeping over one cell shares its baseline entry. The request's policy
// and sampling parameters are irrelevant and ignored (mirroring
// Engine.Baseline).
func BaselineAddress(req engine.Request) (string, error) {
	// The policy and parameters do not enter the hash; pin valid ones so
	// Validate checks only the identity fields.
	req.Policy = "lazy"
	req.PolicyValue = nil
	req.Params = core.Params{}
	if err := req.Validate(); err != nil {
		return "", err
	}
	n := req.Normalized()
	return hashCanonical(canonical{
		V:        AddressVersion,
		Kind:     "baseline",
		Workload: n.Workload,
		Arch:     n.Arch,
		Threads:  n.Threads,
		Scale:    formatFloat(n.Scale),
		Seed:     n.Seed,
	}), nil
}
