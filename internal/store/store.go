package store

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"taskpoint/internal/engine"
	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/sweep"
)

// ErrNotFound reports a load of an address the store has no (valid)
// entry for. Quarantined entries report it too: a corrupt entry is
// recomputed, never served.
var ErrNotFound = errors.New("store: entry not found")

// Store metrics in the default registry. Hits and misses count logical
// lookups by outcome and kind; quarantined counts entries renamed aside
// because their checksum, length or header failed verification.
var (
	metricBaselineHits   = obs.Default().Counter("store.baseline.hits")
	metricBaselineMisses = obs.Default().Counter("store.baseline.misses")
	metricReportHits     = obs.Default().Counter("store.report.hits")
	metricReportMisses   = obs.Default().Counter("store.report.misses")
	metricWrites         = obs.Default().Counter("store.writes")
	metricQuarantined    = obs.Default().Counter("store.quarantined")
	// metricWriteBehindErrors counts write-behind baseline saves that
	// failed to reach the tier. Write-behind failures cost a later
	// recomputation, never a wrong result, but they must be visible:
	// a store that silently drops every write is a sick store.
	metricWriteBehindErrors = obs.Default().Counter("store.writebehind.errors")
)

// Store is the persistent result layer the campaign server and the
// baseline cache share: detailed baseline results and finished cell
// reports, keyed by content address. Implementations must be safe for
// concurrent use. DiskStore is the local implementation; the interface
// is the seam a remote backend (shared object storage, a cache service)
// slots into later.
type Store interface {
	// Baseline loads the detailed reference stored at addr
	// (BaselineAddress), or ErrNotFound.
	Baseline(addr string) (*sim.Result, error)
	// PutBaseline stores a detailed reference at addr. Storing an
	// address that already holds a valid entry is a no-op.
	PutBaseline(addr string, res *sim.Result) error
	// Report loads the finished cell report stored at addr
	// (ContentAddress), or ErrNotFound.
	Report(addr string) (*sweep.Record, error)
	// PutReport stores a finished cell report at addr.
	PutReport(addr string, rec *sweep.Record) error
}

// entry kinds as written into the on-disk header.
const (
	kindBaseline = "baseline"
	kindReport   = "report"
)

// header is the first line of every entry file: a plain-JSON description
// of the gzipped payload that follows, carrying enough to verify the
// entry byte-for-byte before anything is decoded.
type header struct {
	V             int    `json:"v"`
	Kind          string `json:"kind"`
	Addr          string `json:"addr"`
	PayloadSHA256 string `json:"payload_sha256"`
	PayloadBytes  int64  `json:"payload_bytes"`
	Encoding      string `json:"encoding"`
}

const entryEncoding = "gzip+json"

// Stats is a point-in-time view of one DiskStore's traffic.
type Stats struct {
	BaselineHits, BaselineMisses int64
	ReportHits, ReportMisses     int64
	Writes, Quarantined          int64
}

// DiskStore is the local, sharded, content-addressed store: every entry
// lives at <root>/<addr[:2]>/<addr[2:]>, written via an exclusive temp
// file plus atomic rename (a kill mid-write leaves no visible partial
// entry), and verified on read against the header's checksum and length
// (a torn or corrupted entry is renamed aside — quarantined — and
// reported as ErrNotFound so the caller recomputes). It is safe for
// concurrent use by any number of goroutines and processes sharing the
// directory.
type DiskStore struct {
	root string

	baselineHits, baselineMisses atomic.Int64
	reportHits, reportMisses     atomic.Int64
	writes, quarantined          atomic.Int64
}

// Open opens (creating if needed) a disk store rooted at dir.
func Open(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

// Root returns the store's root directory.
func (s *DiskStore) Root() string { return s.root }

// Stats returns the store's lookup/write/quarantine tallies.
func (s *DiskStore) Stats() Stats {
	return Stats{
		BaselineHits:   s.baselineHits.Load(),
		BaselineMisses: s.baselineMisses.Load(),
		ReportHits:     s.reportHits.Load(),
		ReportMisses:   s.reportMisses.Load(),
		Writes:         s.writes.Load(),
		Quarantined:    s.quarantined.Load(),
	}
}

// EntryPath returns the on-disk path an address's entry occupies under
// the store root. It exists for fault-injection tooling and post-mortem
// inspection; normal access goes through Baseline/Report, which verify
// before decoding.
func (s *DiskStore) EntryPath(addr string) (string, error) { return s.path(addr) }

// path maps an address to its sharded entry path.
func (s *DiskStore) path(addr string) (string, error) {
	if len(addr) != 64 || !isHex(addr) {
		return "", fmt.Errorf("store: malformed address %q", addr)
	}
	return filepath.Join(s.root, addr[:2], addr[2:]), nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Baseline implements Store.
func (s *DiskStore) Baseline(addr string) (*sim.Result, error) {
	var res sim.Result
	if err := s.load(addr, kindBaseline, &res); err != nil {
		if errors.Is(err, ErrNotFound) {
			s.baselineMisses.Add(1)
			metricBaselineMisses.Inc()
		}
		return nil, err
	}
	s.baselineHits.Add(1)
	metricBaselineHits.Inc()
	return &res, nil
}

// PutBaseline implements Store.
func (s *DiskStore) PutBaseline(addr string, res *sim.Result) error {
	return s.save(addr, kindBaseline, res)
}

// Report implements Store.
func (s *DiskStore) Report(addr string) (*sweep.Record, error) {
	var rec sweep.Record
	if err := s.load(addr, kindReport, &rec); err != nil {
		if errors.Is(err, ErrNotFound) {
			s.reportMisses.Add(1)
			metricReportMisses.Inc()
		}
		return nil, err
	}
	s.reportHits.Add(1)
	metricReportHits.Inc()
	return &rec, nil
}

// PutReport implements Store.
func (s *DiskStore) PutReport(addr string, rec *sweep.Record) error {
	return s.save(addr, kindReport, rec)
}

// save writes one entry: header line + gzipped JSON payload, staged in an
// exclusive temp file in the shard directory and renamed into place, so
// a concurrent reader sees either nothing or the complete entry and a
// kill mid-write leaves only an invisible temp file.
func (s *DiskStore) save(addr, kind string, payload any) error {
	path, err := s.path(addr)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encoding %s %s: %w", kind, addr[:12], err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return fmt.Errorf("store: compressing %s %s: %w", kind, addr[:12], err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("store: compressing %s %s: %w", kind, addr[:12], err)
	}
	sum := sha256.Sum256(buf.Bytes())
	hdr, err := json.Marshal(header{
		V:             AddressVersion,
		Kind:          kind,
		Addr:          addr,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		PayloadBytes:  int64(buf.Len()),
		Encoding:      entryEncoding,
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(hdr, '\n')); err == nil {
		_, err = tmp.Write(buf.Bytes())
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	metricWrites.Inc()
	return nil
}

// load reads and verifies one entry into out. Every verification failure
// — unparseable or wrong-version header, kind or address mismatch, short
// or overlong payload, checksum mismatch, undecodable payload — is
// treated identically: the entry is quarantined and ErrNotFound returned,
// so corruption costs a recomputation, never a wrong result.
func (s *DiskStore) load(addr, kind string, out any) error {
	path, err := s.path(addr)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s %s", ErrNotFound, kind, addr[:12])
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return s.quarantine(path, addr, kind, fmt.Errorf("truncated header: %w", err))
	}
	var hdr header
	if err := json.Unmarshal(line, &hdr); err != nil {
		return s.quarantine(path, addr, kind, fmt.Errorf("unparseable header: %w", err))
	}
	if hdr.V != AddressVersion || hdr.Kind != kind || hdr.Addr != addr || hdr.Encoding != entryEncoding {
		return s.quarantine(path, addr, kind, fmt.Errorf("header mismatch (v=%d kind=%q addr=%q)", hdr.V, hdr.Kind, hdr.Addr))
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	if int64(len(payload)) != hdr.PayloadBytes {
		return s.quarantine(path, addr, kind, fmt.Errorf("payload length %d, header says %d", len(payload), hdr.PayloadBytes))
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.PayloadSHA256 {
		return s.quarantine(path, addr, kind, errors.New("payload checksum mismatch"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return s.quarantine(path, addr, kind, fmt.Errorf("payload not gzip: %w", err))
	}
	raw, err := io.ReadAll(zr)
	if err == nil {
		err = zr.Close()
	}
	if err != nil {
		return s.quarantine(path, addr, kind, fmt.Errorf("decompressing payload: %w", err))
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return s.quarantine(path, addr, kind, fmt.Errorf("decoding payload: %w", err))
	}
	return nil
}

// quarantine renames a failed entry aside (<entry>.quarantine — kept for
// post-mortem, invisible to path lookup), counts it, and reports
// ErrNotFound so the caller recomputes.
func (s *DiskStore) quarantine(path, addr, kind string, cause error) error {
	if err := os.Rename(path, path+".quarantine"); err != nil && !os.IsNotExist(err) {
		// The entry could not be moved aside; leave it, but still refuse
		// to serve it.
		fmt.Fprintf(os.Stderr, "store: quarantining %s: %v\n", path, err)
	}
	s.quarantined.Add(1)
	metricQuarantined.Inc()
	return fmt.Errorf("%w: %s %s quarantined (%v)", ErrNotFound, kind, addr[:12], cause)
}

// tier adapts any Store to engine.BaselineTier, translating the engine's
// baseline identity into a content address. Load failures of any kind
// are a plain miss — the engine recomputes and the write-behind save
// repopulates the entry. Save failures are counted
// (store.writebehind.errors) and logged, never silently dropped.
type tier struct{ s Store }

// Tier adapts s into the baseline cache's persistent layer, for
// engine.BaselineCache.SetTier. It works over any Store — the raw disk
// store, a Breaker around it, or a fault-injecting wrapper.
func Tier(s Store) engine.BaselineTier { return tier{s} }

// Tier returns the store as the baseline cache's persistent layer, for
// engine.BaselineCache.SetTier.
func (s *DiskStore) Tier() engine.BaselineTier { return Tier(s) }

func baselineRequest(id engine.BaselineID) engine.Request {
	return engine.Request{Workload: id.Workload, Arch: id.Arch, Threads: id.Threads, Scale: id.Scale, Seed: id.Seed}
}

func (t tier) LoadBaseline(id engine.BaselineID) (*sim.Result, bool) {
	addr, err := BaselineAddress(baselineRequest(id))
	if err != nil {
		return nil, false
	}
	res, err := t.s.Baseline(addr)
	if err != nil {
		return nil, false
	}
	return res, true
}

func (t tier) SaveBaseline(id engine.BaselineID, res *sim.Result) {
	addr, err := BaselineAddress(baselineRequest(id))
	if err != nil {
		return
	}
	if err := t.s.PutBaseline(addr, res); err != nil {
		metricWriteBehindErrors.Inc()
		fmt.Fprintf(os.Stderr, "store: write-behind baseline save failed: %v\n", err)
	}
}
