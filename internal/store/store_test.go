package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"taskpoint/internal/engine"
	"taskpoint/internal/sim"
	"taskpoint/internal/sweep"
	"taskpoint/internal/trace"
)

func testResult() *sim.Result {
	return &sim.Result{
		Cycles:               12345.5,
		TotalInstructions:    100000,
		DetailedInstructions: 2500,
		DetailedTasks:        3,
		FastTasks:            97,
		PerInstance: []sim.InstanceRecord{
			{Type: trace.TypeID(1), Thread: 0, Start: 0, End: 100.25, Instr: 1000, IPC: 1.5, Mode: sim.ModeDetailed},
			{Type: trace.TypeID(2), Thread: 1, Start: 50, End: 90, Instr: 800, IPC: 2.0, Mode: sim.ModeFast},
		},
		Events:       42,
		MaxHeapDepth: 2,
	}
}

func testRecord() *sweep.Record {
	return &sweep.Record{
		Key:            "cholesky|high-performance|8|periodic(250)|42",
		Bench:          "cholesky",
		Arch:           "high-performance",
		Threads:        8,
		Policy:         "periodic(250)",
		Seed:           42,
		Scale:          0.25,
		W:              2,
		H:              4,
		ErrPct:         1.25,
		SpeedupDetail:  40,
		DetailFraction: 0.025,
	}
}

func addrs(t *testing.T) (report, baseline string) {
	t.Helper()
	req := engine.Request{Workload: "cholesky", Threads: 8, Scale: 0.25, Seed: 42, Policy: "periodic(250)"}
	report, err := ContentAddress(req)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err = BaselineAddress(req)
	if err != nil {
		t.Fatal(err)
	}
	return report, baseline
}

// TestStoreRoundTrip: baseline and report entries survive a store
// round trip bit-for-bit in every field that matters, land in the
// sharded layout, and re-opening the directory serves them.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rAddr, bAddr := addrs(t)

	if _, err := s.Baseline(bAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: want ErrNotFound, got %v", err)
	}
	if err := s.PutBaseline(bAddr, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutReport(rAddr, testRecord()); err != nil {
		t.Fatal(err)
	}

	// Sharded layout: <root>/<addr[:2]>/<addr[2:]>.
	for _, addr := range []string{rAddr, bAddr} {
		if _, err := os.Stat(filepath.Join(dir, addr[:2], addr[2:])); err != nil {
			t.Errorf("entry %s not in sharded layout: %v", addr[:12], err)
		}
	}

	// A fresh handle over the same directory (a restarted server).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Baseline(bAddr)
	if err != nil {
		t.Fatal(err)
	}
	want := testResult()
	if res.Cycles != want.Cycles || res.TotalInstructions != want.TotalInstructions ||
		len(res.PerInstance) != len(want.PerInstance) || res.PerInstance[0] != want.PerInstance[0] {
		t.Fatalf("baseline round trip mutated the result: %+v", res)
	}
	rec, err := s2.Report(rAddr)
	if err != nil {
		t.Fatal(err)
	}
	if *rec != *testRecord() {
		t.Fatalf("report round trip mutated the record: %+v", rec)
	}
	st := s2.Stats()
	if st.BaselineHits != 1 || st.ReportHits != 1 || st.Quarantined != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestStoreQuarantinesTruncatedEntry: a torn entry (interrupted disk, bad
// sector) is renamed aside, counted, and reported as ErrNotFound — and a
// recomputed entry can be stored at the same address afterwards.
func TestStoreQuarantinesTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, bAddr := addrs(t)
	if err := s.PutBaseline(bAddr, testResult()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, bAddr[:2], bAddr[2:])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Baseline(bAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("truncated entry: want ErrNotFound, got %v", err)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("truncated entry not renamed aside: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated entry still visible at %s", path)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("want 1 quarantined, got %+v", st)
	}

	// Recompute path: the address is writable again and serves cleanly.
	if err := s.PutBaseline(bAddr, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Baseline(bAddr); err != nil {
		t.Fatalf("recomputed entry unreadable: %v", err)
	}
}

// TestStoreQuarantinesCorruptPayload: flipped payload bytes fail the
// checksum and are never decoded into a result.
func TestStoreQuarantinesCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rAddr, _ := addrs(t)
	if err := s.PutReport(rAddr, testRecord()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, rAddr[:2], rAddr[2:])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-3] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(rAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt payload: want ErrNotFound, got %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("want 1 quarantined, got %+v", st)
	}
}

// TestStoreQuarantinesKindMismatch: an entry served under the wrong kind
// (a baseline address colliding with a report lookup can only happen
// through corruption or a tampered file) is quarantined, not decoded.
func TestStoreQuarantinesKindMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rAddr, bAddr := addrs(t)
	if err := s.PutBaseline(bAddr, testResult()); err != nil {
		t.Fatal(err)
	}
	// Copy the baseline entry over the report address: addr and kind in
	// its header both mismatch.
	data, err := os.ReadFile(filepath.Join(dir, bAddr[:2], bAddr[2:]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, rAddr[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, rAddr[:2], rAddr[2:]), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(rAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("kind/addr mismatch: want ErrNotFound, got %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("want 1 quarantined, got %+v", st)
	}
}

// TestStoreAtomicWriteContract: a writer killed mid-write must leave no
// visible partial entry. The staging discipline (exclusive temp file +
// rename) guarantees it; this test pins the two observable halves of the
// contract — temp files are invisible to readers, and a crash before
// rename leaves the address absent rather than torn.
func TestStoreAtomicWriteContract(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, bAddr := addrs(t)
	// Simulate the kill: a stale temp file in the shard directory, the
	// rename never issued.
	shard := filepath.Join(dir, bAddr[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, ".tmp-1234"), []byte("half an ent"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Baseline(bAddr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale temp file must stay invisible: got %v", err)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("stale temp file must not quarantine anything: %+v", st)
	}
	// A completed write over the same shard serves normally.
	if err := s.PutBaseline(bAddr, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Baseline(bAddr); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTierIntegration: the engine-facing tier adapter persists a
// computed baseline and serves it back across a cold cache — the
// read-through/write-behind loop the server relies on, without HTTP.
func TestStoreTierIntegration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := engine.BaselineID{Workload: "gen:forkjoin(tasks=16,mean=200)", Scale: 1, Seed: 9, Arch: "high-performance", Threads: 2}
	tier := s.Tier()
	if _, ok := tier.LoadBaseline(id); ok {
		t.Fatal("empty store claims a baseline")
	}
	tier.SaveBaseline(id, testResult())
	res, ok := tier.LoadBaseline(id)
	if !ok {
		t.Fatal("saved baseline not served back")
	}
	if res.Cycles != testResult().Cycles {
		t.Fatalf("tier round trip mutated the result: %v", res.Cycles)
	}
}
