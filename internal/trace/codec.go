package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format ("TPT1"):
//
//	magic        [4]byte "TPT1"
//	name         string (uvarint length + bytes)
//	numTypes     uvarint
//	  type name  string
//	numInstances uvarint
//	  type       uvarint
//	  seed       8 bytes LE
//	  numSegs    uvarint
//	    segment fields (see writeSegment)
//	  in/out/inout token lists (uvarint count + uvarint tokens)
//
// Instance IDs are implicit (creation order), which both compresses the
// format and makes corrupt files easier to detect.

var magic = [4]byte{'T', 'P', 'T', '1'}

// ErrBadMagic indicates the input is not a TaskPoint trace file.
var ErrBadMagic = errors.New("trace: bad magic, not a TaskPoint trace")

// Write serialises the program in the binary trace format.
func Write(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	e := &encoder{w: bw}
	e.bytes(magic[:])
	e.str(p.Name)
	e.uvarint(uint64(len(p.Types)))
	for i := range p.Types {
		e.str(p.Types[i].Name)
	}
	e.uvarint(uint64(len(p.Instances)))
	for i := range p.Instances {
		inst := &p.Instances[i]
		e.uvarint(uint64(inst.Type))
		e.u64(inst.Seed)
		e.uvarint(uint64(len(inst.Segments)))
		for j := range inst.Segments {
			e.segment(&inst.Segments[j])
		}
		e.tokens(inst.In)
		e.tokens(inst.Out)
		e.tokens(inst.InOut)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// Read deserialises a program written by Write.
func Read(r io.Reader) (*Program, error) {
	d := &decoder{r: bufio.NewReader(r)}
	var m [4]byte
	d.bytes(m[:])
	if d.err != nil {
		return nil, d.err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	p := &Program{}
	p.Name = d.str()
	nTypes := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nTypes > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable type count %d", nTypes)
	}
	p.Types = make([]TypeInfo, nTypes)
	for i := range p.Types {
		p.Types[i].Name = d.str()
	}
	nInst := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nInst > 1<<28 {
		return nil, fmt.Errorf("trace: unreasonable instance count %d", nInst)
	}
	p.Instances = make([]Instance, nInst)
	for i := range p.Instances {
		inst := &p.Instances[i]
		inst.ID = int32(i)
		inst.Type = TypeID(d.uvarint())
		inst.Seed = d.u64()
		nSegs := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if nSegs > 1<<16 {
			return nil, fmt.Errorf("trace: unreasonable segment count %d", nSegs)
		}
		inst.Segments = make([]Segment, nSegs)
		for j := range inst.Segments {
			d.segment(&inst.Segments[j])
		}
		inst.In = d.tokens()
		inst.Out = d.tokens()
		inst.InOut = d.tokens()
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, p.Validate()
}

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) tokens(ts []uint64) {
	e.uvarint(uint64(len(ts)))
	for _, t := range ts {
		e.uvarint(t)
	}
}

func (e *encoder) segment(s *Segment) {
	e.uvarint(uint64(s.N))
	e.f64(s.MemRatio)
	e.f64(s.StoreFrac)
	e.bytes([]byte{byte(s.Pat)})
	e.u64(s.Base)
	e.u64(s.Footprint)
	e.u64(uint64(s.Stride))
	if s.Atomic {
		e.bytes([]byte{1})
	} else {
		e.bytes([]byte{0})
	}
	e.f64(s.DepDist)
	e.f64(s.FPFrac)
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) u64() uint64 {
	var b [8]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) byte1() byte {
	var b [1]byte
	d.bytes(b[:])
	return b[0]
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("trace: unreasonable string length %d", n)
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *decoder) tokens() []uint64 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > 1<<24 {
		d.err = fmt.Errorf("trace: unreasonable token count %d", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.uvarint()
	}
	return out
}

func (d *decoder) segment(s *Segment) {
	s.N = int64(d.uvarint())
	s.MemRatio = d.f64()
	s.StoreFrac = d.f64()
	s.Pat = Pattern(d.byte1())
	s.Base = d.u64()
	s.Footprint = d.u64()
	s.Stride = int64(d.u64())
	s.Atomic = d.byte1() == 1
	s.DepDist = d.f64()
	s.FPFrac = d.f64()
}
