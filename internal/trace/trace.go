// Package trace defines the application trace model consumed by the
// simulator. It plays the role of TaskSim's application traces: for every
// task instance it records which task type the instance belongs to, its
// dependencies on other data, and a generative description of its dynamic
// instruction stream.
//
// Instead of storing every instruction (the paper's traces are produced by
// instrumented native runs, which we do not have), an instance carries a
// list of Segments. A Segment describes a homogeneous run of instructions
// by its length, memory intensity, access pattern, instruction-level
// parallelism and working-set footprint. The detailed CPU model expands a
// segment deterministically from the instance seed, so two simulations of
// the same trace are bit-identical while different instances of a type can
// differ (input dependence), exactly the property the paper's evaluation
// relies on for dedup, freqmine and sparse-matrix-vector-multiplication.
package trace

import (
	"errors"
	"fmt"
)

// TypeID identifies a task type within a Program. All instances created
// from the same task declaration share a TypeID (paper §II-A).
type TypeID int32

// Pattern selects how a segment generates memory addresses.
type Pattern uint8

// Supported access patterns.
const (
	// PatStride walks the footprint with a fixed stride (2d-convolution,
	// 3d-stencil, vector-operation).
	PatStride Pattern = iota
	// PatRandom draws uniform addresses from the footprint (canneal).
	PatRandom
	// PatGaussian draws addresses clustered around a hot spot, modelling
	// high reuse (dense-matrix-multiplication working sets).
	PatGaussian
	// PatChase serialises loads: each load depends on the previous one
	// (pointer chasing, n-body neighbour lists).
	PatChase
	numPatterns
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case PatStride:
		return "stride"
	case PatRandom:
		return "random"
	case PatGaussian:
		return "gaussian"
	case PatChase:
		return "chase"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Valid reports whether p is a known pattern.
func (p Pattern) Valid() bool { return p < numPatterns }

// Segment describes a homogeneous run of instructions inside a task
// instance. The CPU model expands it into a concrete instruction stream.
type Segment struct {
	// N is the number of dynamic instructions in the segment.
	N int64
	// MemRatio is the fraction of instructions that access memory.
	MemRatio float64
	// StoreFrac is the fraction of memory accesses that are stores.
	StoreFrac float64
	// Pat selects the address pattern for memory accesses.
	Pat Pattern
	// Base is the first byte of the segment's data region.
	Base uint64
	// Footprint is the size in bytes of the region touched.
	Footprint uint64
	// Stride is the access stride in bytes for PatStride.
	Stride int64
	// Atomic marks memory accesses as read-modify-write operations on
	// shared data (histogram bins). Atomics hit shared lines and trigger
	// coherence traffic between threads.
	Atomic bool
	// DepDist is the mean register-dependency distance in instructions.
	// Small values serialise execution (low ILP); large values let the
	// core exploit its full issue width.
	DepDist float64
	// FPFrac is the fraction of non-memory instructions that are
	// long-latency arithmetic (floating point).
	FPFrac float64
}

// Instance is one dynamically created task instance (paper §II-A: "every
// execution of a task declaration statement results in the creation of a
// task instance").
type Instance struct {
	// ID is the creation-order index of the instance in its Program.
	ID int32
	// Type is the task type the instance belongs to.
	Type TypeID
	// Seed makes instruction expansion deterministic per instance.
	Seed uint64
	// Segments is the instance's instruction stream description.
	Segments []Segment
	// In, Out and InOut are dependency tokens (abstract data object IDs)
	// mirroring OmpSs in/out/inout clauses. The task graph derives
	// dependency edges from them.
	In, Out, InOut []uint64
}

// Instructions returns the total dynamic instruction count of the instance
// (the I_i of the paper's fast-forward formula C_i = I_i / IPC_T).
func (inst *Instance) Instructions() int64 {
	var n int64
	for i := range inst.Segments {
		n += inst.Segments[i].N
	}
	return n
}

// TypeInfo carries per-task-type metadata.
type TypeInfo struct {
	// Name is the human-readable task type name (e.g. "gemm").
	Name string
}

// Program is a complete application trace: the task types and the ordered
// list of task instances as they are created by the (simulated) runtime.
type Program struct {
	// Name identifies the benchmark.
	Name string
	// Types lists the task types; TypeID indexes this slice.
	Types []TypeInfo
	// Instances lists task instances in creation order.
	Instances []Instance
}

// NumTasks returns the number of task instances.
func (p *Program) NumTasks() int { return len(p.Instances) }

// NumTypes returns the number of task types.
func (p *Program) NumTypes() int { return len(p.Types) }

// TotalInstructions returns the sum of instruction counts over all
// instances.
func (p *Program) TotalInstructions() int64 {
	var n int64
	for i := range p.Instances {
		n += p.Instances[i].Instructions()
	}
	return n
}

// InstancesOf returns the indices of all instances of the given type, in
// creation order.
func (p *Program) InstancesOf(t TypeID) []int {
	var out []int
	for i := range p.Instances {
		if p.Instances[i].Type == t {
			out = append(out, i)
		}
	}
	return out
}

// Validation errors returned by Program.Validate.
var (
	ErrNoInstances = errors.New("trace: program has no instances")
	ErrNoTypes     = errors.New("trace: program has no types")
)

// Validate checks structural invariants: IDs are creation-order indices,
// type references are in range, segments are well-formed. It returns the
// first violation found.
func (p *Program) Validate() error {
	if len(p.Types) == 0 {
		return ErrNoTypes
	}
	if len(p.Instances) == 0 {
		return ErrNoInstances
	}
	for i := range p.Instances {
		inst := &p.Instances[i]
		if int(inst.ID) != i {
			return fmt.Errorf("trace: instance %d has ID %d, want creation order index", i, inst.ID)
		}
		if inst.Type < 0 || int(inst.Type) >= len(p.Types) {
			return fmt.Errorf("trace: instance %d references unknown type %d", i, inst.Type)
		}
		if len(inst.Segments) == 0 {
			return fmt.Errorf("trace: instance %d has no segments", i)
		}
		for j := range inst.Segments {
			if err := validateSegment(&inst.Segments[j]); err != nil {
				return fmt.Errorf("trace: instance %d segment %d: %w", i, j, err)
			}
		}
	}
	return nil
}

func validateSegment(s *Segment) error {
	switch {
	case s.N <= 0:
		return fmt.Errorf("instruction count %d must be positive", s.N)
	case s.MemRatio < 0 || s.MemRatio > 1:
		return fmt.Errorf("mem ratio %v out of [0,1]", s.MemRatio)
	case s.StoreFrac < 0 || s.StoreFrac > 1:
		return fmt.Errorf("store fraction %v out of [0,1]", s.StoreFrac)
	case !s.Pat.Valid():
		return fmt.Errorf("invalid pattern %d", s.Pat)
	case s.MemRatio > 0 && s.Footprint == 0:
		return errors.New("memory segment needs a footprint")
	case s.DepDist < 1:
		return fmt.Errorf("dependency distance %v must be >= 1", s.DepDist)
	case s.FPFrac < 0 || s.FPFrac > 1:
		return fmt.Errorf("fp fraction %v out of [0,1]", s.FPFrac)
	}
	return nil
}
