package trace

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	p := validProgram()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\nwrote %+v\nread  %+v", p, got)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE...."))); err != ErrBadMagic {
		t.Errorf("error = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	p := validProgram()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any strict prefix must fail, never panic.
	for _, cut := range []int{0, 1, 4, 5, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d bytes: expected error", cut)
		}
	}
}

func TestReadRejectsInvalidProgram(t *testing.T) {
	// A structurally decodable program that fails validation: an instance
	// with zero segments.
	p := validProgram()
	p.Instances[0].Segments = nil
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("expected validation error on read")
	}
}

func randomProgram(r *rand.Rand) *Program {
	nTypes := 1 + r.IntN(5)
	p := &Program{Name: "rnd", Types: make([]TypeInfo, nTypes)}
	for i := range p.Types {
		p.Types[i].Name = string(rune('a' + i))
	}
	nInst := 1 + r.IntN(20)
	for i := 0; i < nInst; i++ {
		inst := Instance{
			ID:   int32(i),
			Type: TypeID(r.IntN(nTypes)),
			Seed: r.Uint64(),
		}
		nSeg := 1 + r.IntN(3)
		for s := 0; s < nSeg; s++ {
			inst.Segments = append(inst.Segments, Segment{
				N:         1 + int64(r.IntN(10000)),
				MemRatio:  r.Float64(),
				StoreFrac: r.Float64(),
				Pat:       Pattern(r.IntN(int(numPatterns))),
				Base:      r.Uint64() % (1 << 40),
				Footprint: 64 + uint64(r.IntN(1<<20)),
				Stride:    int64(8 * (1 + r.IntN(64))),
				Atomic:    r.IntN(4) == 0,
				DepDist:   1 + 10*r.Float64(),
				FPFrac:    r.Float64(),
			})
		}
		for k := 0; k < r.IntN(3); k++ {
			inst.In = append(inst.In, r.Uint64()%1000)
		}
		for k := 0; k < r.IntN(3); k++ {
			inst.Out = append(inst.Out, r.Uint64()%1000)
		}
		p.Instances = append(p.Instances, inst)
	}
	return p
}

// Property: arbitrary valid programs survive a round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0x9e3779b9))
		p := randomProgram(r)
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Read never panics on random garbage (fuzz-lite).
func TestQuickReadGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Read(bytes.NewReader(data)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Read never panics on corrupted valid traces.
func TestQuickReadCorrupted(t *testing.T) {
	base := validProgram()
	var buf bytes.Buffer
	if err := Write(&buf, base); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	f := func(pos uint16, val byte) bool {
		data := make([]byte, len(orig))
		copy(data, orig)
		data[int(pos)%len(data)] ^= val
		_, _ = Read(bytes.NewReader(data)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
