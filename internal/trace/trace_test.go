package trace

import (
	"strings"
	"testing"
)

func validProgram() *Program {
	return &Program{
		Name:  "test",
		Types: []TypeInfo{{Name: "a"}, {Name: "b"}},
		Instances: []Instance{
			{
				ID: 0, Type: 0, Seed: 1,
				Segments: []Segment{{N: 100, MemRatio: 0.3, Pat: PatStride, Footprint: 4096, Stride: 64, DepDist: 4}},
				Out:      []uint64{10},
			},
			{
				ID: 1, Type: 1, Seed: 2,
				Segments: []Segment{{N: 50, DepDist: 2}},
				In:       []uint64{10},
				InOut:    []uint64{11},
			},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		substr string
	}{
		{"no types", func(p *Program) { p.Types = nil }, "no types"},
		{"no instances", func(p *Program) { p.Instances = nil }, "no instances"},
		{"bad id", func(p *Program) { p.Instances[1].ID = 7 }, "creation order"},
		{"bad type", func(p *Program) { p.Instances[0].Type = 5 }, "unknown type"},
		{"no segments", func(p *Program) { p.Instances[0].Segments = nil }, "no segments"},
		{"zero instr", func(p *Program) { p.Instances[0].Segments[0].N = 0 }, "positive"},
		{"bad mem ratio", func(p *Program) { p.Instances[0].Segments[0].MemRatio = 1.5 }, "mem ratio"},
		{"bad store frac", func(p *Program) { p.Instances[0].Segments[0].StoreFrac = -0.1 }, "store fraction"},
		{"bad pattern", func(p *Program) { p.Instances[0].Segments[0].Pat = 99 }, "pattern"},
		{"mem without footprint", func(p *Program) { p.Instances[0].Segments[0].Footprint = 0 }, "footprint"},
		{"bad depdist", func(p *Program) { p.Instances[0].Segments[0].DepDist = 0 }, "dependency distance"},
		{"bad fpfrac", func(p *Program) { p.Instances[0].Segments[0].FPFrac = 2 }, "fp fraction"},
	}
	for _, c := range cases {
		p := validProgram()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: expected validation error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestInstructions(t *testing.T) {
	inst := Instance{Segments: []Segment{{N: 10}, {N: 32}}}
	if got := inst.Instructions(); got != 42 {
		t.Errorf("Instructions = %d, want 42", got)
	}
}

func TestTotalInstructions(t *testing.T) {
	p := validProgram()
	if got := p.TotalInstructions(); got != 150 {
		t.Errorf("TotalInstructions = %d, want 150", got)
	}
}

func TestInstancesOf(t *testing.T) {
	p := validProgram()
	if got := p.InstancesOf(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("InstancesOf(0) = %v", got)
	}
	if got := p.InstancesOf(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("InstancesOf(1) = %v", got)
	}
	if got := p.InstancesOf(9); got != nil {
		t.Errorf("InstancesOf(9) = %v, want nil", got)
	}
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		PatStride: "stride", PatRandom: "random", PatGaussian: "gaussian", PatChase: "chase",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Pattern(%d).String() = %q, want %q", p, got, want)
		}
		if !p.Valid() {
			t.Errorf("Pattern %q should be valid", want)
		}
	}
	if Pattern(42).Valid() {
		t.Error("Pattern(42) should be invalid")
	}
	if got := Pattern(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown pattern string = %q", got)
	}
}

func TestCountsHelpers(t *testing.T) {
	p := validProgram()
	if p.NumTasks() != 2 || p.NumTypes() != 2 {
		t.Errorf("NumTasks/NumTypes = %d/%d, want 2/2", p.NumTasks(), p.NumTypes())
	}
}
