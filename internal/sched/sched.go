// Package sched implements the dynamic task scheduler — the role the OmpSs
// runtime system plays in the paper's setup: task instances whose
// dependencies are satisfied enter a ready queue and idle threads pick them
// up in order. Scheduling decisions depend on simulated completion times,
// so different architectures, thread counts or sampling decisions yield
// different instruction streams per thread, the property that breaks
// classical multi-threaded sampling (paper §I) and that TaskPoint is built
// to handle.
package sched

import (
	"fmt"

	"taskpoint/internal/taskgraph"
)

// Policy selects the order among simultaneously ready tasks.
type Policy uint8

const (
	// FIFO dispatches ready tasks in readiness order (OmpSs breadth-first
	// default). Used for all paper experiments.
	FIFO Policy = iota
	// LIFO dispatches the most recently readied task first (depth-first);
	// provided for scheduler-sensitivity ablations.
	LIFO
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// State tracks dynamic readiness of one program execution. It is not safe
// for concurrent use; the simulation engine is single-threaded by design
// (deterministic replay).
type State struct {
	g         *taskgraph.Graph
	remaining []int32
	q         readyHeap
	seq       int64
	completed int
	started   int
	policy    Policy
}

// New creates scheduler state for one execution of the program behind g.
// All root tasks are immediately ready at time 0.
func New(g *taskgraph.Graph, policy Policy) *State {
	s := &State{
		g:         g,
		remaining: make([]int32, g.NumTasks()),
		policy:    policy,
	}
	s.Reset()
	return s
}

// Reset restores the state to program start — every task pending, all
// roots ready at time 0 — reusing the existing allocations, so one State
// can drive repeated runs of the same program.
func (s *State) Reset() {
	for i := 0; i < s.g.NumTasks(); i++ {
		s.remaining[i] = int32(s.g.NumPreds(i))
	}
	s.q = s.q[:0]
	s.seq = 0
	s.completed = 0
	s.started = 0
	for _, r := range s.g.Roots() {
		s.push(int(r), 0)
	}
}

func (s *State) push(id int, readyTime float64) {
	order := s.seq
	if s.policy == LIFO {
		order = -order
	}
	s.q.push(readyItem{id: int32(id), readyTime: readyTime, order: order})
	s.seq++
}

// Pop returns a task whose dependencies were satisfied at or before now.
// ok is false if no task is ready at now (there may still be tasks that
// become ready later; see NextReadyTime).
func (s *State) Pop(now float64) (id int, ok bool) {
	if len(s.q) == 0 || s.q[0].readyTime > now {
		return 0, false
	}
	it := s.q.pop()
	s.started++
	return int(it.id), true
}

// NextReadyTime returns the earliest readiness time among queued tasks.
// ok is false if the queue is empty.
func (s *State) NextReadyTime() (t float64, ok bool) {
	if len(s.q) == 0 {
		return 0, false
	}
	return s.q[0].readyTime, true
}

// Complete records that task id finished at time t and returns the number
// of tasks that became ready as a consequence.
func (s *State) Complete(id int, t float64) int {
	s.completed++
	newly := 0
	for _, succ := range s.g.Succs(id) {
		s.remaining[succ]--
		if s.remaining[succ] == 0 {
			s.push(int(succ), t)
			newly++
		}
		if s.remaining[succ] < 0 {
			panic(fmt.Sprintf("sched: task %d completed more predecessors than it has", succ))
		}
	}
	return newly
}

// Done reports whether every task has completed.
func (s *State) Done() bool { return s.completed == s.g.NumTasks() }

// Completed returns the number of completed tasks.
func (s *State) Completed() int { return s.completed }

// Started returns the number of tasks handed out by Pop.
func (s *State) Started() int { return s.started }

// QueueLen returns the number of currently queued (ready or pending-ready)
// tasks. Together with the running count it measures available parallelism.
func (s *State) QueueLen() int { return len(s.q) }

type readyItem struct {
	id        int32
	readyTime float64
	order     int64
}

// readyHeap is a concrete-typed binary min-heap ordered by (readyTime,
// order). It replaces the container/heap implementation, whose interface
// methods box every pushed item into an `any` (one allocation per push on
// the scheduler hot path). The (readyTime, order) key is a strict total
// order (order is unique per item), so the pop sequence is identical to
// the interface-based heap's regardless of internal layout.
type readyHeap []readyItem

func (h readyItem) less(o readyItem) bool {
	if h.readyTime != o.readyTime {
		return h.readyTime < o.readyTime
	}
	return h.order < o.order
}

func (h *readyHeap) push(it readyItem) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].less(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *readyHeap) pop() readyItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q[r].less(q[l]) {
			child = r
		}
		if !q[child].less(q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}
