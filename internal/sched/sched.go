// Package sched implements the dynamic task scheduler — the role the OmpSs
// runtime system plays in the paper's setup: task instances whose
// dependencies are satisfied enter a ready queue and idle threads pick them
// up in order. Scheduling decisions depend on simulated completion times,
// so different architectures, thread counts or sampling decisions yield
// different instruction streams per thread, the property that breaks
// classical multi-threaded sampling (paper §I) and that TaskPoint is built
// to handle.
package sched

import (
	"container/heap"
	"fmt"

	"taskpoint/internal/taskgraph"
)

// Policy selects the order among simultaneously ready tasks.
type Policy uint8

const (
	// FIFO dispatches ready tasks in readiness order (OmpSs breadth-first
	// default). Used for all paper experiments.
	FIFO Policy = iota
	// LIFO dispatches the most recently readied task first (depth-first);
	// provided for scheduler-sensitivity ablations.
	LIFO
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// State tracks dynamic readiness of one program execution. It is not safe
// for concurrent use; the simulation engine is single-threaded by design
// (deterministic replay).
type State struct {
	g         *taskgraph.Graph
	remaining []int32
	q         readyHeap
	seq       int64
	completed int
	started   int
	policy    Policy
}

// New creates scheduler state for one execution of the program behind g.
// All root tasks are immediately ready at time 0.
func New(g *taskgraph.Graph, policy Policy) *State {
	s := &State{
		g:         g,
		remaining: make([]int32, g.NumTasks()),
		policy:    policy,
	}
	for i := 0; i < g.NumTasks(); i++ {
		s.remaining[i] = int32(g.NumPreds(i))
	}
	for _, r := range g.Roots() {
		s.push(int(r), 0)
	}
	return s
}

func (s *State) push(id int, readyTime float64) {
	order := s.seq
	if s.policy == LIFO {
		order = -order
	}
	heap.Push(&s.q, readyItem{id: int32(id), readyTime: readyTime, order: order})
	s.seq++
}

// Pop returns a task whose dependencies were satisfied at or before now.
// ok is false if no task is ready at now (there may still be tasks that
// become ready later; see NextReadyTime).
func (s *State) Pop(now float64) (id int, ok bool) {
	if len(s.q) == 0 || s.q[0].readyTime > now {
		return 0, false
	}
	it := heap.Pop(&s.q).(readyItem)
	s.started++
	return int(it.id), true
}

// NextReadyTime returns the earliest readiness time among queued tasks.
// ok is false if the queue is empty.
func (s *State) NextReadyTime() (t float64, ok bool) {
	if len(s.q) == 0 {
		return 0, false
	}
	return s.q[0].readyTime, true
}

// Complete records that task id finished at time t and returns the number
// of tasks that became ready as a consequence.
func (s *State) Complete(id int, t float64) int {
	s.completed++
	newly := 0
	for _, succ := range s.g.Succs(id) {
		s.remaining[succ]--
		if s.remaining[succ] == 0 {
			s.push(int(succ), t)
			newly++
		}
		if s.remaining[succ] < 0 {
			panic(fmt.Sprintf("sched: task %d completed more predecessors than it has", succ))
		}
	}
	return newly
}

// Done reports whether every task has completed.
func (s *State) Done() bool { return s.completed == s.g.NumTasks() }

// Completed returns the number of completed tasks.
func (s *State) Completed() int { return s.completed }

// Started returns the number of tasks handed out by Pop.
func (s *State) Started() int { return s.started }

// QueueLen returns the number of currently queued (ready or pending-ready)
// tasks. Together with the running count it measures available parallelism.
func (s *State) QueueLen() int { return len(s.q) }

type readyItem struct {
	id        int32
	readyTime float64
	order     int64
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].readyTime != h[j].readyTime {
		return h[i].readyTime < h[j].readyTime
	}
	return h[i].order < h[j].order
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
