package sched

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"taskpoint/internal/taskgraph"
	"taskpoint/internal/trace"
)

func buildGraph(t *testing.T, insts ...trace.Instance) *taskgraph.Graph {
	t.Helper()
	p := &trace.Program{Name: "t", Types: []trace.TypeInfo{{Name: "t"}}}
	for i := range insts {
		insts[i].ID = int32(i)
		if insts[i].Segments == nil {
			insts[i].Segments = []trace.Segment{{N: 10, DepDist: 2}}
		}
		p.Instances = append(p.Instances, insts[i])
	}
	g, err := taskgraph.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFIFOOrder(t *testing.T) {
	g := buildGraph(t,
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{2}},
		trace.Instance{Out: []uint64{3}},
	)
	s := New(g, FIFO)
	for want := 0; want < 3; want++ {
		id, ok := s.Pop(0)
		if !ok || id != want {
			t.Fatalf("Pop = %d,%v want %d,true", id, ok, want)
		}
	}
	if _, ok := s.Pop(0); ok {
		t.Error("queue should be empty")
	}
}

func TestLIFOOrder(t *testing.T) {
	g := buildGraph(t,
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{2}},
		trace.Instance{Out: []uint64{3}},
	)
	s := New(g, LIFO)
	for _, want := range []int{2, 1, 0} {
		id, ok := s.Pop(0)
		if !ok || id != want {
			t.Fatalf("Pop = %d,%v want %d,true", id, ok, want)
		}
	}
}

func TestDependencyGating(t *testing.T) {
	g := buildGraph(t,
		trace.Instance{Out: []uint64{1}},
		trace.Instance{In: []uint64{1}},
	)
	s := New(g, FIFO)
	id, ok := s.Pop(0)
	if !ok || id != 0 {
		t.Fatalf("first Pop = %d,%v", id, ok)
	}
	if _, ok := s.Pop(100); ok {
		t.Fatal("dependent task must not be ready before completion")
	}
	if newly := s.Complete(0, 50); newly != 1 {
		t.Fatalf("Complete released %d tasks, want 1", newly)
	}
	// Ready time is the completion time of the dependency.
	if _, ok := s.Pop(49); ok {
		t.Error("task ready before its readiness time")
	}
	if tr, ok := s.NextReadyTime(); !ok || tr != 50 {
		t.Errorf("NextReadyTime = %v,%v want 50,true", tr, ok)
	}
	id, ok = s.Pop(50)
	if !ok || id != 1 {
		t.Errorf("Pop at ready time = %d,%v", id, ok)
	}
	s.Complete(1, 60)
	if !s.Done() {
		t.Error("all tasks completed but Done() is false")
	}
}

func TestNextReadyTimeEmpty(t *testing.T) {
	g := buildGraph(t, trace.Instance{Out: []uint64{1}})
	s := New(g, FIFO)
	s.Pop(0)
	if _, ok := s.NextReadyTime(); ok {
		t.Error("NextReadyTime on empty queue should report !ok")
	}
}

func TestCountsAndQueueLen(t *testing.T) {
	g := buildGraph(t,
		trace.Instance{Out: []uint64{1}},
		trace.Instance{Out: []uint64{2}},
	)
	s := New(g, FIFO)
	if s.QueueLen() != 2 {
		t.Errorf("QueueLen = %d, want 2", s.QueueLen())
	}
	s.Pop(0)
	if s.Started() != 1 {
		t.Errorf("Started = %d, want 1", s.Started())
	}
	s.Complete(0, 1)
	if s.Completed() != 1 {
		t.Errorf("Completed = %d, want 1", s.Completed())
	}
}

func TestCompletePanicsOnDoubleRelease(t *testing.T) {
	g := buildGraph(t,
		trace.Instance{Out: []uint64{1}},
		trace.Instance{In: []uint64{1}},
	)
	s := New(g, FIFO)
	s.Pop(0)
	s.Complete(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Complete of the same task")
		}
	}()
	s.Complete(0, 2)
}

// Property: simulating a random DAG to completion with k workers is work
// conserving: every task is started exactly once, completion order respects
// dependencies, and Done() holds at the end.
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		n := 1 + r.IntN(60)
		var insts []trace.Instance
		for i := 0; i < n; i++ {
			var in, out []uint64
			for k := 0; k < r.IntN(3); k++ {
				in = append(in, uint64(r.IntN(8)))
			}
			for k := 0; k < r.IntN(2); k++ {
				out = append(out, uint64(r.IntN(8)))
			}
			insts = append(insts, trace.Instance{In: in, Out: out})
		}
		p := &trace.Program{Name: "q", Types: []trace.TypeInfo{{Name: "t"}}}
		for i := range insts {
			insts[i].ID = int32(i)
			insts[i].Segments = []trace.Segment{{N: 10, DepDist: 2}}
			p.Instances = append(p.Instances, insts[i])
		}
		g, err := taskgraph.Build(p)
		if err != nil {
			return false
		}
		pol := FIFO
		if seed%2 == 1 {
			pol = LIFO
		}
		s := New(g, pol)
		started := make([]bool, n)
		done := make([]bool, n)
		now := 0.0
		running := 0
		type runTask struct {
			id  int
			end float64
		}
		var active []runTask
		workers := 1 + r.IntN(4)
		for !s.Done() {
			// Fill workers.
			for running < workers {
				id, ok := s.Pop(now)
				if !ok {
					break
				}
				if started[id] {
					return false // double start
				}
				started[id] = true
				active = append(active, runTask{id: id, end: now + 1 + float64(r.IntN(5))})
				running++
			}
			if running == 0 {
				// Advance to next readiness; if none, deadlock = failure.
				tr, ok := s.NextReadyTime()
				if !ok {
					return false
				}
				now = tr
				continue
			}
			// Complete the earliest active task.
			minI := 0
			for i := range active {
				if active[i].end < active[minI].end {
					minI = i
				}
			}
			ft := active[minI]
			active = append(active[:minI], active[minI+1:]...)
			running--
			if ft.end > now {
				now = ft.end
			}
			// All predecessors must be done.
			for pred := 0; pred < ft.id; pred++ {
				for _, succ := range g.Succs(pred) {
					if int(succ) == ft.id && !done[pred] {
						return false
					}
				}
			}
			done[ft.id] = true
			s.Complete(ft.id, ft.end)
		}
		for i := 0; i < n; i++ {
			if !started[i] || !done[i] {
				return false
			}
		}
		return s.Completed() == n && s.Started() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
