package fault

import (
	"fmt"
	"os"

	"taskpoint/internal/sim"
	"taskpoint/internal/store"
	"taskpoint/internal/sweep"
)

// faultyStore wraps a store.Store with the injector's store-seam faults:
// operation errors, added latency, partial (torn) reads, and — when the
// inner store is the disk store — genuinely torn writes, produced by
// truncating the just-written entry mid-payload exactly as a crash
// between write and sync would. A torn entry is real corruption: the
// disk store's verified read quarantines it and reports a miss, which is
// the recovery path under test.
type faultyStore struct {
	inner store.Store
	disk  *store.DiskStore // non-nil when torn writes can be materialized
	inj   *Injector
}

// WrapStore applies the injector's store faults to inner. A nil or
// store-quiet injector returns inner unchanged. Torn-write injection
// needs disk access and is only active through WrapDisk.
func WrapStore(inner store.Store, inj *Injector) store.Store {
	if !inj.StoreFaultsEnabled() {
		return inner
	}
	return &faultyStore{inner: inner, inj: inj}
}

// WrapDisk applies the injector's store faults to a disk store,
// including torn writes against its on-disk entries.
func WrapDisk(d *store.DiskStore, inj *Injector) store.Store {
	if !inj.StoreFaultsEnabled() {
		return d
	}
	return &faultyStore{inner: d, disk: d, inj: inj}
}

func (s *faultyStore) Baseline(addr string) (*sim.Result, error) {
	if err := s.inj.StoreOp("baseline.load"); err != nil {
		return nil, err
	}
	res, err := s.inner.Baseline(addr)
	if err == nil {
		if perr := s.inj.PartialRead("baseline.load"); perr != nil {
			return nil, perr
		}
	}
	return res, err
}

func (s *faultyStore) PutBaseline(addr string, res *sim.Result) error {
	if err := s.inj.StoreOp("baseline.put"); err != nil {
		return err
	}
	if err := s.inner.PutBaseline(addr, res); err != nil {
		return err
	}
	s.maybeTear(addr)
	return nil
}

func (s *faultyStore) Report(addr string) (*sweep.Record, error) {
	if err := s.inj.StoreOp("report.load"); err != nil {
		return nil, err
	}
	rec, err := s.inner.Report(addr)
	if err == nil {
		if perr := s.inj.PartialRead("report.load"); perr != nil {
			return nil, perr
		}
	}
	return rec, err
}

func (s *faultyStore) PutReport(addr string, rec *sweep.Record) error {
	if err := s.inj.StoreOp("report.put"); err != nil {
		return err
	}
	if err := s.inner.PutReport(addr, rec); err != nil {
		return err
	}
	s.maybeTear(addr)
	return nil
}

// maybeTear truncates the entry at addr mid-payload when the torn-write
// fault fires. The entry stays present but unverifiable, so the next
// read quarantines it — corruption costs a recomputation, never a wrong
// result, and the chaos harness asserts exactly that.
func (s *faultyStore) maybeTear(addr string) {
	if s.disk == nil || !s.inj.TornWrite() {
		return
	}
	path, err := s.disk.EntryPath(addr)
	if err != nil {
		return
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() < 2 {
		return
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		fmt.Fprintf(os.Stderr, "fault: tearing %s: %v\n", path, err)
	}
}
