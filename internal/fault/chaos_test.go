// Chaos harness: builds the real taskpointd binary, runs it over a real
// store directory with injected store faults, SIGKILLs it mid-campaign
// repeatedly, and asserts the service-stack invariants hold across every
// kill/restart cycle:
//
//   - never-wrong: every sighting of a cell's record — across processes,
//     across recomputations forced by torn writes — is identical in its
//     deterministic fields;
//   - resumed-not-lost: the interrupted campaign completes after a clean
//     restart with zero errors;
//   - exactly-once-or-recomputed: a resubmission is served overwhelmingly
//     from the store; cells lost to injected put failures or late torn
//     writes are repaired (recomputed to the identical record and
//     re-persisted), after which a further resubmission is exact — all
//     store hits, zero computations, zero new writes.
//
// The harness is skipped under -short; CI's nightly chaos job runs it
// with the binary built -race (TASKPOINT_CHAOS_RACE=1) and the full
// cycle count (TASKPOINT_CHAOS_CYCLES).
package fault_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

var daemonBin string // built once in TestMain; empty if the build failed

func TestMain(m *testing.M) {
	flag.Parse()
	code := func() int {
		if testing.Short() {
			return m.Run()
		}
		root, err := repoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos: cannot locate repo root:", err)
			return m.Run()
		}
		dir, err := os.MkdirTemp("", "taskpoint-chaos-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			return m.Run()
		}
		defer os.RemoveAll(dir)
		bin := filepath.Join(dir, "taskpointd")
		args := []string{"build"}
		if os.Getenv("TASKPOINT_CHAOS_RACE") == "1" {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, "./cmd/taskpointd")
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "chaos: building taskpointd:", err)
		} else {
			daemonBin = bin
		}
		return m.Run()
	}()
	os.Exit(code)
}

func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// --- minimal wire types (kept independent of internal/server on purpose:
// the harness sees the service exactly as an external client does) ---

type wireRecord struct {
	ErrPct         float64 `json:"err_pct"`
	SampledCycles  float64 `json:"sampled_cycles"`
	DetailedCycles float64 `json:"detailed_cycles"`
}

type wireEvent struct {
	Type      string      `json:"type"`
	Campaign  string      `json:"campaign"`
	Seq       int         `json:"seq"`
	Cell      string      `json:"cell"`
	Source    string      `json:"source"`
	Record    *wireRecord `json:"record"`
	State     string      `json:"state"`
	Done      int         `json:"done"`
	Total     int         `json:"total"`
	Computed  int         `json:"computed"`
	StoreHits int         `json:"store_hits"`
	Joined    int         `json:"joined"`
	Errors    int         `json:"errors"`
}

type wireSummary struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
}

func chaosSpec(seeds int) string {
	s := make([]string, seeds)
	for i := range s {
		s[i] = strconv.Itoa(i + 1)
	}
	return `{"name":"chaos","scale":1,` +
		`"benchmarks":["gen:forkjoin(tasks=24,mean=300)","gen:pipeline(depth=4,cv=0.5)"],` +
		`"archs":["hp"],"threads":[2],"policies":["lazy","periodic(250)"],` +
		`"seeds":[` + joinComma(s) + `]}`
}

func joinComma(s []string) string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// --- daemon lifecycle ---

type daemon struct {
	cmd *exec.Cmd
}

func startDaemon(t *testing.T, storeDir, addr, faults string) *daemon {
	t.Helper()
	if daemonBin == "" {
		t.Fatal("taskpointd binary unavailable (build failed in TestMain)")
	}
	cmd := exec.Command(daemonBin,
		"-addr", addr, "-store", storeDir, "-workers", "2", "-drain-timeout", "5s")
	cmd.Env = append(os.Environ(), "TASKPOINT_FAULTS="+faults)
	if os.Getenv("TASKPOINT_CHAOS_VERBOSE") == "1" {
		cmd.Stderr = os.Stderr
	} else {
		cmd.Stderr = io.Discard
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return &daemon{cmd: cmd}
}

// kill SIGKILLs the daemon — the unclean death the harness is about —
// and reaps it.
func (d *daemon) kill() {
	d.cmd.Process.Kill() //nolint:errcheck
	d.cmd.Wait()         //nolint:errcheck
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func submitSpec(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var sum wireSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum.ID
}

// fingerprint reduces a record to its deterministic fields. Wall-clock
// fields are excluded: recomputing a quarantined cell legitimately
// changes them, while these must never change.
func fingerprint(r *wireRecord) string {
	return fmt.Sprintf("%.9g|%.9g|%.9g", r.ErrPct, r.SampledCycles, r.DetailedCycles)
}

// checkEvents folds a batch of observed events into the cross-process
// consistency map: a cell whose record fingerprint differs from any
// earlier sighting is the never-wrong invariant broken.
func checkEvents(t *testing.T, evs []wireEvent, seen map[string]string) {
	t.Helper()
	for _, ev := range evs {
		if ev.Type != "cell.done" || ev.Record == nil {
			continue
		}
		fp := fingerprint(ev.Record)
		if prev, ok := seen[ev.Cell]; ok && prev != fp {
			t.Fatalf("never-wrong violated: cell %s seen as %s, now %s (source %s)", ev.Cell, prev, fp, ev.Source)
		}
		seen[ev.Cell] = fp
	}
}

// partialEvents reads the campaign's event stream for at most budget,
// returning whatever events arrived — the live view a subscriber had
// right before the process dies.
func partialEvents(t *testing.T, base, id string, budget time.Duration) []wireEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil // server mid-death is fine here
	}
	defer resp.Body.Close()
	var evs []wireEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev wireEvent
		if err := dec.Decode(&ev); err != nil {
			return evs // timeout, cut connection, or clean EOF
		}
		evs = append(evs, ev)
	}
}

// streamToDone tails the stream until the campaign.done event, folding
// every sighting into the consistency map.
func streamToDone(t *testing.T, base, id string, seen map[string]string) wireEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev wireEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream for %s ended before campaign.done: %v", id, err)
		}
		checkEvents(t, []wireEvent{ev}, seen)
		if ev.Type == "campaign.done" {
			return ev
		}
	}
}

func counters(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// TestChaosKillRestart is the harness proper: N SIGKILL/restart cycles
// under injected store faults (errors, torn writes, partial reads), then
// a clean finish and a resubmission proving nothing was silently lost
// and nothing intact runs twice.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short mode")
	}
	cycles := 10
	if s := os.Getenv("TASKPOINT_CHAOS_CYCLES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			cycles = n
		}
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr
	spec := chaosSpec(5) // 20 cells
	faults := "seed=7,store.err=0.15,store.torn=0.2,store.partial=0.1,store.latency=20ms"
	seen := map[string]string{}

	d := startDaemon(t, dir, addr, faults)
	defer func() { d.kill() }()
	waitHealthy(t, base)
	id := submitSpec(t, base, spec)

	for cycle := 1; cycle <= cycles; cycle++ {
		time.Sleep(400 * time.Millisecond)
		checkEvents(t, partialEvents(t, base, id, 300*time.Millisecond), seen)
		d.kill()
		// Restart with the same faults; resume() relaunches the campaign
		// from its manifest before the listener comes up.
		d = startDaemon(t, dir, addr, faults)
		waitHealthy(t, base)
		t.Logf("cycle %d/%d: killed and restarted (%d cell sightings so far)", cycle, cycles, len(seen))
	}

	// Clean finish: a fault-free process completes the campaign.
	d.kill()
	d = startDaemon(t, dir, addr, "")
	waitHealthy(t, base)
	done := streamToDone(t, base, id, seen)
	if done.State != "done" || done.Errors != 0 || done.Done != done.Total {
		t.Fatalf("campaign did not survive the chaos: %+v", done)
	}

	// First resubmission: post-chaos durability, and repair. Almost every
	// cell is served from the store. A cell may be recomputed only if the
	// chaos phase lost its entry in a way nothing re-read afterwards: an
	// injected put failure (result served, write surfaced in metrics,
	// never persisted) or a torn write landing after the campaign had
	// already completed. Each recomputed record must match every earlier
	// sighting — checkEvents inside streamToDone enforces never-wrong via
	// `seen` — and recomputing also re-persists the entry.
	id2 := submitSpec(t, base, spec)
	done2 := streamToDone(t, base, id2, seen)
	if done2.Errors != 0 {
		t.Errorf("resubmission had %d cell errors; want 0", done2.Errors)
	}
	if done2.StoreHits*100 < done2.Total*90 {
		t.Errorf("resubmission store hits %d/%d below 90%% — chaos lost results wholesale", done2.StoreHits, done2.Total)
	}
	if done2.Computed > 0 {
		t.Logf("resubmission repaired %d cells lost to injected put failures / late torn writes", done2.Computed)
	}

	// Second resubmission: with the store repaired, exactly-once is
	// exact — every cell is a store hit and nothing is written. The short
	// settle lets the repair's write-behind baseline saves land before
	// the write counter is snapshotted.
	time.Sleep(500 * time.Millisecond)
	pre := counters(t, base)
	id3 := submitSpec(t, base, spec)
	done3 := streamToDone(t, base, id3, seen)
	post := counters(t, base)
	if done3.Errors != 0 || done3.Computed != 0 || done3.StoreHits != done3.Total {
		t.Errorf("resubmission over the repaired store is not exactly-once: %+v", done3)
	}
	if delta := post["store.writes"] - pre["store.writes"]; delta != 0 {
		t.Errorf("resubmission over the repaired store wrote %d new entries; want 0", delta)
	}
	if q := post["store.quarantined"]; q > 0 {
		t.Logf("entries quarantined (and recomputed, never served wrong) this process: %d", q)
	}
}

// TestCrashBeforeOutcomeMarkerResumes pins the manifest-journal crash
// window: a process crashing between the campaign's terminal event and
// its .done.json marker leaves the manifest alone, and the next process
// resumes the campaign entirely from the store — no double computation,
// and the marker finally lands.
func TestCrashBeforeOutcomeMarkerResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr
	spec := chaosSpec(1) // 4 cells

	d := startDaemon(t, dir, addr, "crash=server.outcome")
	waitHealthy(t, base)
	id := submitSpec(t, base, spec)

	// The armed crash point fires when the campaign finishes, after its
	// cells (and their store writes) but before the outcome marker.
	exited := make(chan error, 1)
	go func() { exited <- d.cmd.Wait() }()
	select {
	case <-exited:
		if code := d.cmd.ProcessState.ExitCode(); code != 86 {
			t.Fatalf("daemon exited with code %d, want the crash-point code 86", code)
		}
	case <-time.After(2 * time.Minute):
		d.kill()
		t.Fatal("daemon never hit the crash point")
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", id+".json")); err != nil {
		t.Fatalf("manifest lost in the crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", id+".done.json")); !os.IsNotExist(err) {
		t.Fatalf("completion marker exists despite crashing before it (err=%v)", err)
	}

	// Clean restart: the campaign resumes and completes from the store.
	d2 := startDaemon(t, dir, addr, "")
	defer d2.kill()
	waitHealthy(t, base)
	done := streamToDone(t, base, id, map[string]string{})
	if done.State != "done" || done.Done != done.Total {
		t.Fatalf("resumed campaign did not finish: %+v", done)
	}
	if done.Computed != 0 {
		t.Errorf("resume double-computed %d cells; want 0 (all in the store before the crash)", done.Computed)
	}
	if done.StoreHits != done.Total {
		t.Errorf("resume store hits %d, want %d", done.StoreHits, done.Total)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", id+".done.json")); err != nil {
		t.Fatalf("no completion marker after resume: %v", err)
	}
}
