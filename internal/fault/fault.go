// Package fault is the deterministic, seeded fault-injection layer of
// the campaign service stack. It wraps the seams the stack already has —
// the content-addressed store (store.Store), the engine's per-cell
// execution, and the server's HTTP handlers — with injectors that fail,
// delay, tear, or crash on a seeded pseudo-random schedule, so the
// resilience machinery (circuit breaker, panic recovery, backpressure,
// drain, restart resume) is exercised by tests and chaos runs instead of
// trusted on faith.
//
// A fault plan is a flat, strict "key=value,..." spec:
//
//	seed=7,store.err=0.2,store.latency=5ms,store.torn=0.1,cell.panic=0.01
//	crash=server.outcome            (crash the process at a named point)
//
// and is wired in via the TASKPOINT_FAULTS environment variable or
// taskpointd's -faults flag. Every probability decision draws from a
// per-site splitmix64 stream derived from (seed, site, draw index), so a
// plan replays the same fault schedule per decision site regardless of
// what other sites do — the property the chaos harness and the fuzz
// corpus idiom of this repository both rely on.
//
// All injector methods are nil-receiver safe and free when disabled,
// matching the obs.Recorder convention: production call sites compile to
// a nil check.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taskpoint/internal/obs"
)

// ErrInjected is the root of every error the injector fabricates;
// callers (and tests) detect injected failures with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Injection metrics in the default registry: how many faults actually
// fired, by seam. A chaos run that injected nothing proves nothing.
var (
	metricStoreFaults = obs.Default().Counter("fault.injected.store")
	metricHTTPFaults  = obs.Default().Counter("fault.injected.http")
	metricCellFaults  = obs.Default().Counter("fault.injected.cell")
	metricCrashes     = obs.Default().Counter("fault.injected.crash")
)

// Spec is a parsed fault plan. The zero value injects nothing.
type Spec struct {
	// Seed derives every decision stream; two injectors with equal specs
	// make identical decisions at each site.
	Seed uint64
	// StoreErr is the probability a store operation returns an injected
	// error (key "store.err").
	StoreErr float64
	// StoreLatency is added to every store operation ("store.latency").
	StoreLatency time.Duration
	// TornWrite is the probability a successful store write is then torn
	// — the on-disk entry is truncated mid-payload, as a crash between
	// write and sync would leave it ("store.torn").
	TornWrite float64
	// PartialRead is the probability a store read fails with a torn-read
	// error after reaching the backend ("store.partial").
	PartialRead float64
	// HTTPErr is the probability an HTTP request is answered 500 before
	// reaching its handler ("http.err").
	HTTPErr float64
	// HTTPLatency delays every HTTP request ("http.latency").
	HTTPLatency time.Duration
	// CellPanic is the probability a cell execution panics mid-run
	// ("cell.panic"); CellErr the probability it fails with an injected
	// error ("cell.err").
	CellPanic float64
	CellErr   float64
	// Crashes maps named crash points to trigger probabilities
	// ("crash=<point>" → 1.0, "crash=<point>:p" → p). When a crash
	// fires the process exits immediately — no draining, no deferred
	// cleanup — which is the point.
	Crashes map[string]float64
}

// Parse parses a fault plan spec. The grammar is strict: unknown keys,
// malformed values and out-of-range probabilities are errors, matching
// the repository's gen:/policy grammar discipline.
func Parse(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "store.err":
			spec.StoreErr, err = parseProb(val)
		case "store.latency":
			spec.StoreLatency, err = parseDelay(val)
		case "store.torn":
			spec.TornWrite, err = parseProb(val)
		case "store.partial":
			spec.PartialRead, err = parseProb(val)
		case "http.err":
			spec.HTTPErr, err = parseProb(val)
		case "http.latency":
			spec.HTTPLatency, err = parseDelay(val)
		case "cell.panic":
			spec.CellPanic, err = parseProb(val)
		case "cell.err":
			spec.CellErr, err = parseProb(val)
		case "crash":
			point, probStr, hasProb := strings.Cut(val, ":")
			p := 1.0
			if hasProb {
				p, err = parseProb(probStr)
			}
			if point == "" {
				err = errors.New("empty crash point")
			}
			if err == nil {
				if spec.Crashes == nil {
					spec.Crashes = map[string]float64{}
				}
				spec.Crashes[point] = p
			}
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q (valid: seed, store.err, store.latency, store.torn, store.partial, http.err, http.latency, cell.panic, cell.err, crash)", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: %s=%s: %w", key, val, err)
		}
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 || p != p {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

func parseDelay(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative latency %v", d)
	}
	return d, nil
}

// String renders the spec back in canonical (sorted) grammar form.
func (s Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Seed != 0 {
		add("seed", strconv.FormatUint(s.Seed, 10))
	}
	prob := func(k string, p float64) {
		if p > 0 {
			add(k, strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	prob("store.err", s.StoreErr)
	if s.StoreLatency > 0 {
		add("store.latency", s.StoreLatency.String())
	}
	prob("store.torn", s.TornWrite)
	prob("store.partial", s.PartialRead)
	prob("http.err", s.HTTPErr)
	if s.HTTPLatency > 0 {
		add("http.latency", s.HTTPLatency.String())
	}
	prob("cell.panic", s.CellPanic)
	prob("cell.err", s.CellErr)
	points := make([]string, 0, len(s.Crashes))
	for p := range s.Crashes {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		add("crash", p+":"+strconv.FormatFloat(s.Crashes[p], 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// Injector makes the spec's fault decisions. A nil *Injector is the
// disabled layer: every method is a no-op returning the healthy outcome.
type Injector struct {
	spec Spec

	mu    sync.Mutex
	sites map[string]*uint64 // per-site draw counters
}

// New builds an injector from a spec string; an empty string yields a
// nil injector (fully disabled).
func New(s string) (*Injector, error) {
	spec, err := Parse(s)
	if err != nil {
		return nil, err
	}
	if spec.inert() {
		return nil, nil
	}
	return NewInjector(spec), nil
}

// inert reports whether no fault can ever fire under the spec.
func (s Spec) inert() bool {
	return s.StoreErr == 0 && s.StoreLatency == 0 && s.TornWrite == 0 &&
		s.PartialRead == 0 && s.HTTPErr == 0 && s.HTTPLatency == 0 &&
		s.CellPanic == 0 && s.CellErr == 0 && len(s.Crashes) == 0
}

// NewInjector builds an injector over a parsed spec.
func NewInjector(spec Spec) *Injector {
	return &Injector{spec: spec, sites: map[string]*uint64{}}
}

// EnvVar is the environment variable FromEnv reads.
const EnvVar = "TASKPOINT_FAULTS"

// FromEnv builds the injector described by $TASKPOINT_FAULTS; unset or
// empty yields a nil (disabled) injector.
func FromEnv() (*Injector, error) {
	return New(os.Getenv(EnvVar))
}

// Enabled reports whether any fault can fire.
func (i *Injector) Enabled() bool { return i != nil }

// Spec returns the injector's plan (zero Spec when disabled).
func (i *Injector) Spec() Spec {
	if i == nil {
		return Spec{}
	}
	return i.spec
}

// roll draws the next uniform [0,1) variate of a named decision site.
// Each site's stream is splitmix64 seeded by (spec seed, site name), so
// the schedule at one seam is independent of traffic at any other.
func (i *Injector) roll(site string) float64 {
	i.mu.Lock()
	ctr, ok := i.sites[site]
	if !ok {
		ctr = new(uint64)
		i.sites[site] = ctr
	}
	i.mu.Unlock()
	n := atomic.AddUint64(ctr, 1)
	z := i.spec.Seed ^ fnv64a(site)
	z += n * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// StoreFaultsEnabled reports whether any store-seam fault can fire.
func (i *Injector) StoreFaultsEnabled() bool {
	return i != nil && (i.spec.StoreErr > 0 || i.spec.StoreLatency > 0 || i.spec.TornWrite > 0 || i.spec.PartialRead > 0)
}

// StoreOp applies the store-operation faults for the named op: the
// injected latency, then possibly an injected error.
func (i *Injector) StoreOp(op string) error {
	if i == nil {
		return nil
	}
	if i.spec.StoreLatency > 0 {
		time.Sleep(i.spec.StoreLatency)
	}
	if i.spec.StoreErr > 0 && i.roll("store.err."+op) < i.spec.StoreErr {
		metricStoreFaults.Inc()
		return fmt.Errorf("%w: store %s", ErrInjected, op)
	}
	return nil
}

// PartialRead reports an injected torn read for the named op.
func (i *Injector) PartialRead(op string) error {
	if i == nil || i.spec.PartialRead <= 0 {
		return nil
	}
	if i.roll("store.partial."+op) < i.spec.PartialRead {
		metricStoreFaults.Inc()
		return fmt.Errorf("%w: partial read during %s", ErrInjected, op)
	}
	return nil
}

// TornWrite decides whether to tear the entry a write just produced.
func (i *Injector) TornWrite() bool {
	if i == nil || i.spec.TornWrite <= 0 {
		return false
	}
	if i.roll("store.torn") < i.spec.TornWrite {
		metricStoreFaults.Inc()
		return true
	}
	return false
}

// HTTPFaultsEnabled reports whether any HTTP-seam fault can fire.
func (i *Injector) HTTPFaultsEnabled() bool {
	return i != nil && (i.spec.HTTPErr > 0 || i.spec.HTTPLatency > 0)
}

// HTTPFault returns the injected delay for one request and whether the
// request should be failed with a 500.
func (i *Injector) HTTPFault() (delay time.Duration, fail bool) {
	if i == nil {
		return 0, false
	}
	delay = i.spec.HTTPLatency
	if i.spec.HTTPErr > 0 && i.roll("http.err") < i.spec.HTTPErr {
		metricHTTPFaults.Inc()
		fail = true
	}
	return delay, fail
}

// CellFaultsEnabled reports whether any per-cell fault can fire.
func (i *Injector) CellFaultsEnabled() bool {
	return i != nil && (i.spec.CellPanic > 0 || i.spec.CellErr > 0)
}

// CellFault is the engine's per-cell hook (engine.WithCellFault): it may
// return an injected error or panic outright — the engine's worker-pool
// recovery must convert the latter into a structured cell error.
func (i *Injector) CellFault(key string) error {
	if i == nil {
		return nil
	}
	if i.spec.CellPanic > 0 && i.roll("cell.panic") < i.spec.CellPanic {
		metricCellFaults.Inc()
		panic(fmt.Sprintf("fault: injected panic in cell %s", key))
	}
	if i.spec.CellErr > 0 && i.roll("cell.err") < i.spec.CellErr {
		metricCellFaults.Inc()
		return fmt.Errorf("%w: cell %s", ErrInjected, key)
	}
	return nil
}

// osExit is swapped out by tests that must observe a crash decision
// without dying.
var osExit = os.Exit

// CrashExitCode is the exit status of an injected crash — distinct from
// every ordinary failure path so harnesses can tell a planned crash from
// a genuine one.
const CrashExitCode = 86

// Crash terminates the process if the plan arms the named crash point
// (probability from "crash=<point>[:p]"). The exit is immediate —
// os.Exit, no deferred cleanup — simulating a kill at exactly that line.
func (i *Injector) Crash(point string) {
	if i == nil || len(i.spec.Crashes) == 0 {
		return
	}
	p, ok := i.spec.Crashes[point]
	if !ok {
		return
	}
	if p < 1 && i.roll("crash."+point) >= p {
		return
	}
	metricCrashes.Inc()
	fmt.Fprintf(os.Stderr, "fault: injected crash at %q\n", point)
	osExit(CrashExitCode)
}

// The process-default injector, consulted by package-level Crash calls
// placed inside the server: crash points sit deep in code that has no
// injector parameter, by design — a crash plan must not require
// plumbing through every layer it can kill.
var defaultInjector atomic.Pointer[Injector]

// SetDefault installs the process-default injector (nil disables).
func SetDefault(i *Injector) { defaultInjector.Store(i) }

// Default returns the process-default injector; nil when disabled.
func Default() *Injector { return defaultInjector.Load() }

// Crash triggers the named crash point on the process-default injector.
func Crash(point string) { Default().Crash(point) }
