package fault

import (
	"net/http"
	"time"
)

// Middleware applies the injector's HTTP-seam faults in front of next:
// every request is delayed by the injected latency, and a fault.injected
// request is answered 503 with a Retry-After hint before reaching its
// handler — the shape of an overloaded or half-dead server a resilient
// client must retry through. A nil or HTTP-quiet injector returns next
// unchanged.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	if !inj.HTTPFaultsEnabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delay, fail := inj.HTTPFault()
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"fault: injected server error"}` + "\n")) //nolint:errcheck
			return
		}
		next.ServeHTTP(w, r)
	})
}
