package fault

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"taskpoint/internal/sim"
	"taskpoint/internal/store"
	"taskpoint/internal/sweep"
)

func TestParseGrammar(t *testing.T) {
	spec, err := Parse("seed=7, store.err=0.25, store.latency=5ms, store.torn=0.1, store.partial=0.05, http.err=0.5, http.latency=10ms, cell.panic=0.01, cell.err=0.02, crash=server.outcome, crash=other:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, StoreErr: 0.25, StoreLatency: 5 * time.Millisecond,
		TornWrite: 0.1, PartialRead: 0.05,
		HTTPErr: 0.5, HTTPLatency: 10 * time.Millisecond,
		CellPanic: 0.01, CellErr: 0.02,
		Crashes: map[string]float64{"server.outcome": 1, "other": 0.5},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	// Canonical String round-trips through Parse.
	again, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip drifted: %q vs %q", again.String(), spec.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ in, wantSub string }{
		{"bogus=1", "unknown key"},
		{"store.err", "not key=value"},
		{"store.err=1.5", "outside [0, 1]"},
		{"store.err=-0.1", "outside [0, 1]"},
		{"store.err=NaN", "outside [0, 1]"},
		{"store.latency=-5ms", "negative latency"},
		{"store.latency=abc", "invalid duration"},
		{"seed=abc", "invalid syntax"},
		{"crash=", "empty crash point"},
		{"crash=p:2", "outside [0, 1]"},
	} {
		_, err := Parse(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q): error %v, want containing %q", tc.in, err, tc.wantSub)
		}
	}
	if spec, err := Parse(""); err != nil || !spec.inert() {
		t.Errorf("empty spec: %+v, %v", spec, err)
	}
}

// TestDeterministicSchedule: same seed → identical decision sequence at
// every site; different seed → a different one.
func TestDeterministicSchedule(t *testing.T) {
	draw := func(seed uint64) []bool {
		inj := NewInjector(Spec{Seed: seed, StoreErr: 0.5, CellErr: 0.5})
		var seq []bool
		for k := 0; k < 64; k++ {
			seq = append(seq, inj.StoreOp("report.load") != nil)
			seq = append(seq, inj.CellFault("cell") != nil)
		}
		return seq
	}
	a, b, c := draw(1), draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestProbabilityEndpoints(t *testing.T) {
	never := NewInjector(Spec{Seed: 1}) // all probabilities zero
	always := NewInjector(Spec{Seed: 1, StoreErr: 1, PartialRead: 1, CellErr: 1})
	for k := 0; k < 32; k++ {
		if err := never.StoreOp("x"); err != nil {
			t.Fatal("p=0 fired")
		}
		if err := always.StoreOp("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("p=1 did not fire: %v", err)
		}
		if err := always.CellFault("k"); !errors.Is(err, ErrInjected) {
			t.Fatalf("cell p=1 did not fire: %v", err)
		}
	}
	// A nil injector is fully inert.
	var nilInj *Injector
	if nilInj.Enabled() || nilInj.StoreFaultsEnabled() || nilInj.HTTPFaultsEnabled() || nilInj.CellFaultsEnabled() {
		t.Fatal("nil injector reports enabled")
	}
	if err := nilInj.StoreOp("x"); err != nil {
		t.Fatal(err)
	}
	if err := nilInj.CellFault("k"); err != nil {
		t.Fatal(err)
	}
	nilInj.Crash("anywhere")
}

func TestCellPanicInjection(t *testing.T) {
	inj := NewInjector(Spec{Seed: 3, CellPanic: 1})
	defer func() {
		if v := recover(); v == nil || !strings.Contains(v.(string), "injected panic in cell k") {
			t.Fatalf("recovered %v", v)
		}
	}()
	inj.CellFault("k") //nolint:errcheck // panics
	t.Fatal("no panic")
}

func TestCrashPoint(t *testing.T) {
	var exited []int
	osExit = func(code int) { exited = append(exited, code) }
	defer func() { osExit = osExitReal }()

	inj := NewInjector(Spec{Seed: 1, Crashes: map[string]float64{"armed": 1}})
	inj.Crash("not-armed")
	if len(exited) != 0 {
		t.Fatal("unarmed crash point fired")
	}
	inj.Crash("armed")
	if len(exited) != 1 || exited[0] != CrashExitCode {
		t.Fatalf("armed crash point: exits %v", exited)
	}

	// Default-injector plumbing: package-level Crash consults SetDefault.
	SetDefault(inj)
	defer SetDefault(nil)
	Crash("armed")
	if len(exited) != 2 {
		t.Fatal("package-level Crash did not reach the default injector")
	}
}

var osExitReal = osExit

// TestFaultyStoreErrorsAndTornWrites: err=1 fails every op; a torn write
// leaves an entry the disk store quarantines into a miss — never a wrong
// result.
func TestFaultyStoreErrorsAndTornWrites(t *testing.T) {
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.Repeat("ab", 32)

	failing := WrapDisk(disk, NewInjector(Spec{Seed: 1, StoreErr: 1}))
	if _, err := failing.Report(addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if err := failing.PutReport(addr, &sweep.Record{Key: "k"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected put error, got %v", err)
	}

	tearing := WrapDisk(disk, NewInjector(Spec{Seed: 1, TornWrite: 1}))
	if err := tearing.PutReport(addr, &sweep.Record{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := disk.Report(addr); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("torn entry must read as a miss, got %v", err)
	}
	if got := disk.Stats().Quarantined; got != 1 {
		t.Fatalf("want 1 quarantined entry, got %d", got)
	}

	// With faults quiet the wrapper is the identity.
	if s := WrapDisk(disk, nil); s != store.Store(disk) {
		t.Fatal("nil injector should not wrap")
	}
	var _ = WrapStore(disk, NewInjector(Spec{Seed: 1, PartialRead: 1}))
}

func TestFaultyStorePartialRead(t *testing.T) {
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.Repeat("cd", 32)
	if err := disk.PutBaseline(addr, &sim.Result{Cycles: 42}); err != nil {
		t.Fatal(err)
	}
	torn := WrapDisk(disk, NewInjector(Spec{Seed: 1, PartialRead: 1}))
	if _, err := torn.Baseline(addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected partial read, got %v", err)
	}
	// The entry itself is intact: a clean reader still gets it.
	if res, err := disk.Baseline(addr); err != nil || res.Cycles != 42 {
		t.Fatalf("underlying entry damaged: %v, %v", res, err)
	}
}

func TestMiddleware(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) }) //nolint:errcheck
	h := Middleware(NewInjector(Spec{Seed: 1, HTTPErr: 1}), next)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("want injected 503 with Retry-After, got %d", rr.Code)
	}
	if quiet := Middleware(nil, next); quiet == nil {
		t.Fatal("nil injector middleware")
	} else {
		rr := httptest.NewRecorder()
		quiet.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("quiet middleware altered response: %d", rr.Code)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if inj, err := FromEnv(); err != nil || inj != nil {
		t.Fatalf("empty env: %v, %v", inj, err)
	}
	t.Setenv(EnvVar, "store.err=0.5,seed=9")
	inj, err := FromEnv()
	if err != nil || !inj.Enabled() || inj.Spec().Seed != 9 {
		t.Fatalf("env injector: %+v, %v", inj, err)
	}
	t.Setenv(EnvVar, "nope=1")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad env spec accepted")
	}
}
