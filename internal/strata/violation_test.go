package strata

import (
	"reflect"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	// A well-behaved interval around an estimate of 1000 with a 2% floor.
	good := &Confidence{Estimate: 1000, Lo: 950, Hi: 1050}
	tight := &Confidence{Estimate: 1000, Lo: 995, Hi: 1050} // lower half-width 0.5%
	tests := []struct {
		name string
		c    *Confidence
		chk  Check
		want []ViolationClass
	}{
		{"clean cell", good,
			Check{DetailedTaskCycles: 1000, ErrPct: 1, ErrCeilingPct: 30, MinRelErr: 0.02},
			nil},
		{"coverage miss above", good,
			Check{DetailedTaskCycles: 1051, ErrPct: 1, ErrCeilingPct: 30, MinRelErr: 0.02},
			[]ViolationClass{CoverageMiss}},
		{"coverage miss below", good,
			Check{DetailedTaskCycles: 949, ErrPct: 1, ErrCeilingPct: 30, MinRelErr: 0.02},
			[]ViolationClass{CoverageMiss}},
		{"endpoints cover", good,
			Check{DetailedTaskCycles: 950, ErrPct: 1, ErrCeilingPct: 30, MinRelErr: 0.02},
			nil},
		{"floor miss on one side", tight,
			Check{DetailedTaskCycles: 1000, ErrPct: 1, ErrCeilingPct: 30, MinRelErr: 0.02},
			[]ViolationClass{IntervalFloorMiss}},
		{"exactly at floor is legal", &Confidence{Estimate: 1000, Lo: 980, Hi: 1020},
			Check{DetailedTaskCycles: 1000, MinRelErr: 0.02},
			nil},
		{"floor check disabled", tight,
			Check{DetailedTaskCycles: 1000, ErrPct: 1, ErrCeilingPct: 30},
			nil},
		{"bias over ceiling", good,
			Check{DetailedTaskCycles: 1000, ErrPct: 31, ErrCeilingPct: 30, MinRelErr: 0.02},
			[]ViolationClass{Bias}},
		{"bias check disabled", good,
			Check{DetailedTaskCycles: 1000, ErrPct: 99},
			nil},
		{"no interval, only bias applies", nil,
			Check{DetailedTaskCycles: 1000, ErrPct: 61, ErrCeilingPct: 60, MinRelErr: 0.02},
			[]ViolationClass{Bias}},
		{"all three in fixed order", &Confidence{Estimate: 1000, Lo: 999, Hi: 1001},
			Check{DetailedTaskCycles: 2000, ErrPct: 50, ErrCeilingPct: 30, MinRelErr: 0.02},
			[]ViolationClass{CoverageMiss, IntervalFloorMiss, Bias}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Classify(tt.c, tt.chk)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDescribe(t *testing.T) {
	c := &Confidence{Estimate: 1000, Lo: 990, Hi: 1010}
	chk := Check{DetailedTaskCycles: 2000, ErrPct: 50, ErrCeilingPct: 30, MinRelErr: 0.02}
	for v, wants := range map[ViolationClass][]string{
		CoverageMiss:      {"2000", "[990, 1010]"},
		IntervalFloorMiss: {"2.00%", "1000"},
		Bias:              {"50.00%", "30.00%"},
	} {
		s := Describe(v, c, chk)
		for _, want := range wants {
			if !strings.Contains(s, want) {
				t.Errorf("Describe(%s) = %q, missing %q", v, s, want)
			}
		}
	}
}
