package strata

import (
	"math"
	"testing"
)

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestApportionProportions(t *testing.T) {
	out := apportion(100, []float64{3, 1}, []int{math.MaxInt32, math.MaxInt32})
	if out[0] != 75 || out[1] != 25 {
		t.Errorf("apportion(100, 3:1) = %v, want [75 25]", out)
	}
}

func TestApportionExactTotal(t *testing.T) {
	// Fractional shares must still hand out exactly the total.
	out := apportion(10, []float64{1, 1, 1}, []int{99, 99, 99})
	if sum(out) != 10 {
		t.Errorf("apportion distributed %d of 10: %v", sum(out), out)
	}
	// Largest remainder is deterministic: ties resolve to lower index.
	out2 := apportion(10, []float64{1, 1, 1}, []int{99, 99, 99})
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("apportion not deterministic: %v vs %v", out, out2)
		}
	}
}

func TestApportionRespectsCaps(t *testing.T) {
	out := apportion(100, []float64{10, 1}, []int{5, math.MaxInt32})
	if out[0] != 5 {
		t.Errorf("capped index got %d, want 5", out[0])
	}
	if sum(out) != 100 {
		t.Errorf("cap overflow not redistributed: %v sums to %d", out, sum(out))
	}
}

func TestApportionAllCapped(t *testing.T) {
	out := apportion(100, []float64{1, 1}, []int{3, 4})
	if out[0] != 3 || out[1] != 4 {
		t.Errorf("apportion under caps = %v, want [3 4]", out)
	}
}

func TestApportionZeroWeights(t *testing.T) {
	out := apportion(10, []float64{0, 0}, []int{99, 99})
	if sum(out) != 0 {
		t.Errorf("zero weights received %v", out)
	}
	out = apportion(10, []float64{0, 2}, []int{99, 99})
	if out[0] != 0 || out[1] != 10 {
		t.Errorf("apportion(0,2) = %v, want [0 10]", out)
	}
}

func TestBandBuckets(t *testing.T) {
	cases := map[int]uint8{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 64: 6}
	for running, want := range cases {
		if got := Band(running); got != want {
			t.Errorf("Band(%d) = %d, want %d", running, got, want)
		}
	}
}
