package strata

import (
	"math"
	"testing"

	"taskpoint/internal/core"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

func inst(id int, typ trace.TypeID, instr int64) *trace.Instance {
	return &trace.Instance{
		ID: int32(id), Type: typ, Seed: uint64(id + 1),
		Segments: []trace.Segment{{N: instr, DepDist: 4}},
	}
}

// start feeds one instance start through the policy and returns the grant.
func start(s *Stratified, in *trace.Instance, running int) bool {
	return s.WantDetailed(sim.StartInfo{Thread: 0, Instance: in, Running: running})
}

// finish observes one instance finish with the given duration and kind.
func finish(s *Stratified, in *trace.Instance, dur float64, kind core.SampleKind) {
	mode := sim.ModeDetailed
	if kind == core.KindFast {
		mode = sim.ModeFast
	}
	ipc := float64(in.Instructions()) / dur
	s.Observe(sim.FinishInfo{Thread: 0, Instance: in, Start: 0, End: dur, Mode: mode, IPC: ipc}, kind)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{},
		{Budget: 0, Pilot: 1, PilotCutoff: 1, StaleAfter: 1, Z: 1.96},
		{Budget: 1, Pilot: 0, PilotCutoff: 1, StaleAfter: 1, Z: 1.96},
		{Budget: 1, Pilot: 1, PilotCutoff: 0, StaleAfter: 1, Z: 1.96},
		{Budget: 1, Pilot: 1, PilotCutoff: 1, StaleAfter: 0, Z: 1.96},
		{Budget: 1, Pilot: 1, PilotCutoff: 1, StaleAfter: 1, Z: 0},
		{Budget: 1, Pilot: 1, PilotCutoff: 1, StaleAfter: 1, Z: 1.96, MinRelErr: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestPilotForcesFirstInstances(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Pilot = 2
	s := MustNew(cfg)
	for i := 0; i < 2; i++ {
		in := inst(i, 0, 1000)
		if !start(s, in, 1) {
			t.Fatalf("pilot instance %d not forced", i)
		}
		finish(s, in, 500, core.KindDirected)
	}
	// Pilot full: next instance of the same stratum is not forced.
	in := inst(2, 0, 1000)
	if start(s, in, 1) {
		t.Error("post-pilot instance forced before allocation")
	}
	finish(s, in, 500, core.KindFast)
	// A new stratum (different type) still gets its pilot.
	in = inst(3, 1, 1000)
	if !start(s, in, 1) {
		t.Error("new stratum's pilot not forced")
	}
	finish(s, in, 500, core.KindDirected)
}

func TestBudgetExhaustionStopsGrants(t *testing.T) {
	cfg := DefaultConfig(2) // budget smaller than one stratum's pilot
	cfg.Pilot = 5
	s := MustNew(cfg)
	granted := 0
	for i := 0; i < 8; i++ {
		in := inst(i, 0, 1000)
		g := start(s, in, 1)
		if g {
			granted++
			finish(s, in, 400, core.KindDirected)
		} else {
			finish(s, in, 400, core.KindFast)
		}
	}
	if granted != 2 {
		t.Errorf("granted %d directed samples on budget 2", granted)
	}
}

func TestAllocationFavorsHighVarianceStratum(t *testing.T) {
	cfg := DefaultConfig(40)
	cfg.Pilot = 3
	cfg.PilotCutoff = 4
	cfg.Bands = false
	s := MustNew(cfg)
	// Two strata with equal populations: type 0 has constant durations,
	// type 1 noisy ones. Feed pilots, then spin starts until allocation.
	id := 0
	noisy := []float64{200, 900, 1600}
	for i := 0; i < 3; i++ {
		a := inst(id, 0, 1000)
		id++
		if !start(s, a, 1) {
			t.Fatal("pilot not granted")
		}
		finish(s, a, 500, core.KindValid)
		b := inst(id, 1, 1000)
		id++
		if !start(s, b, 1) {
			t.Fatal("pilot not granted")
		}
		finish(s, b, noisy[i], core.KindValid)
	}
	// Alternate fast arrivals until the pilot cut-off fires allocation.
	for i := 0; i < 8; i++ {
		typ := trace.TypeID(i % 2)
		in := inst(id, typ, 1000)
		id++
		if start(s, in, 1) {
			finish(s, in, 500, core.KindDirected)
		} else {
			finish(s, in, 500, core.KindFast)
		}
	}
	if !s.allocated {
		t.Fatal("allocation never fired")
	}
	var quiet, loud int
	for _, st := range s.Strata() {
		switch st.Key.Type {
		case 0:
			quiet = st.Quota
		case 1:
			loud = st.Quota
		}
	}
	if loud <= quiet {
		t.Errorf("Neyman allocation gave noisy stratum %d <= quiet stratum %d", loud, quiet)
	}
}

func TestConfidenceHandComputed(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Pilot = 4
	cfg.MinRelErr = 0 // pure statistical interval for the hand check
	s := MustNew(cfg)
	// One stratum: 4 sampled instances (valid), 6 fast ones. All sizes in
	// one power-of-four class.
	durs := []float64{500, 520, 480, 500}
	instr := []int64{1000, 1100, 950, 1000}
	var sumD, sumX, totalX float64
	for i := 0; i < 10; i++ {
		sz := int64(1000)
		if i < 4 {
			sz = instr[i]
		}
		in := inst(i, 0, sz)
		totalX += float64(sz)
		if i < 4 {
			if !start(s, in, 1) {
				t.Fatal("sample not granted")
			}
			finish(s, in, durs[i], core.KindValid)
			sumD += durs[i]
			sumX += float64(sz)
		} else {
			start(s, in, 1)
			finish(s, in, 490, core.KindFast)
		}
	}
	c := s.Confidence()
	rate := sumD / sumX
	wantEst := rate * totalX
	if math.Abs(c.Estimate-wantEst) > 1e-9*wantEst {
		t.Errorf("estimate %.6f, want %.6f", c.Estimate, wantEst)
	}
	var resid float64
	for i := 0; i < 4; i++ {
		e := durs[i] - rate*float64(instr[i])
		resid += e * e
	}
	se2 := resid / 3
	wantVar := 10.0 * 6.0 * se2 / 4.0
	if math.Abs(c.StdErr-math.Sqrt(wantVar)) > 1e-9*c.StdErr {
		t.Errorf("stderr %.6f, want %.6f", c.StdErr, math.Sqrt(wantVar))
	}
	if math.Abs((c.Hi-c.Lo)/2-1.96*c.StdErr) > 1e-9*c.StdErr {
		t.Errorf("interval [%f, %f] not ±1.96·stderr around %f", c.Lo, c.Hi, c.Estimate)
	}
	if c.Population != 10 || c.Sampled != 4 || c.Strata != 1 || c.Unsampled != 0 {
		t.Errorf("tallies %+v", c)
	}
}

func TestConfidenceFullySampledIsExact(t *testing.T) {
	cfg := DefaultConfig(100)
	s := MustNew(cfg)
	total := 0.0
	for i := 0; i < 6; i++ {
		in := inst(i, 0, 1000)
		start(s, in, 1)
		d := 400 + float64(i)*20
		finish(s, in, d, core.KindValid)
		total += d
	}
	c := s.Confidence()
	if math.Abs(c.Estimate-total) > 1e-9*total {
		t.Errorf("fully sampled estimate %.3f, want exact %.3f", c.Estimate, total)
	}
	if c.StdErr != 0 {
		t.Errorf("fully sampled stderr %v, want 0", c.StdErr)
	}
	if !c.Covers(total) {
		t.Errorf("interval [%f, %f] misses its own total %f", c.Lo, c.Hi, total)
	}
	if c.RelWidth() <= 0 {
		t.Error("MinRelErr floor not applied")
	}
}

func TestCalibrationBracketsInterval(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.MinRelErr = 0
	s := MustNew(cfg)
	// Phase samples at rate 0.6, directed at rate 0.5 in the same
	// stratum: calibration r = 1.2, so the interval must span the
	// uncalibrated and calibrated estimates.
	id := 0
	for i := 0; i < 3; i++ {
		in := inst(id, 0, 1000)
		id++
		start(s, in, 1)
		finish(s, in, 600, core.KindValid)
	}
	for i := 0; i < 3; i++ {
		in := inst(id, 0, 1000)
		id++
		start(s, in, 1)
		finish(s, in, 500, core.KindDirected)
	}
	for i := 0; i < 4; i++ {
		in := inst(id, 0, 1000)
		id++
		start(s, in, 1)
		finish(s, in, 550, core.KindFast)
	}
	c := s.Confidence()
	if math.Abs(c.Calibration-1.2) > 1e-9 {
		t.Fatalf("calibration %.6f, want 1.2", c.Calibration)
	}
	// Low anchor: uncalibrated rate (600*3+500*3)/6000 = 0.55 → 5500.
	// High anchor: calibrated rate (1800+1.2*1500)/6000 = 0.6 → 6000.
	if c.Lo > 5500 || c.Hi < 6000 {
		t.Errorf("interval [%f, %f] does not bracket [5500, 6000]", c.Lo, c.Hi)
	}
	if c.Estimate < 5500 || c.Estimate > 6000 {
		t.Errorf("estimate %f outside anchors", c.Estimate)
	}
}

func TestResetRunClearsState(t *testing.T) {
	s := MustNew(DefaultConfig(10))
	in := inst(0, 0, 1000)
	start(s, in, 1)
	finish(s, in, 500, core.KindDirected)
	if len(s.strata) == 0 || s.detTotal == 0 {
		t.Fatal("setup did not accumulate state")
	}
	s.ResetRun()
	if len(s.strata) != 0 || len(s.pend) != 0 || s.detTotal != 0 || s.allocated || s.started != 0 {
		t.Errorf("ResetRun left state behind: %+v", s)
	}
	// core.New resets stateful policies automatically.
	start(s, in, 1)
	finish(s, in, 500, core.KindDirected)
	if _, err := core.New(core.DefaultParams(), s); err != nil {
		t.Fatal(err)
	}
	if len(s.strata) != 0 {
		t.Error("core.New did not reset the policy")
	}
}

// TestEndToEndBimodalCoverage runs the policy through the real simulator
// on a bimodal single-type workload (the §V-B scenario) and checks the
// interval covers the detailed reference's total task cycles.
func TestEndToEndBimodalCoverage(t *testing.T) {
	prog := &trace.Program{Name: "bimodal", Types: []trace.TypeInfo{{Name: "chunk"}}}
	for i := 0; i < 256; i++ {
		instr, dep := int64(900), 1.2
		if i%2 == 1 {
			instr, dep = 24000, 8
		}
		prog.Instances = append(prog.Instances, trace.Instance{
			ID: int32(i), Type: 0, Seed: uint64(i + 1),
			Segments: []trace.Segment{{
				N: instr, MemRatio: 0.08, Pat: trace.PatStride, Stride: 8,
				Base: uint64(1)<<32 + uint64(i)<<20, Footprint: 16 << 10, DepDist: dep,
			}},
		})
	}
	cfg := sim.HighPerfConfig(4)
	det, err := sim.Simulate(cfg, prog, sim.DetailedController{})
	if err != nil {
		t.Fatal(err)
	}
	pol := MustNew(DefaultConfig(60))
	pol.Prescan(prog)
	params := core.DefaultParams()
	params.SizeClasses = true
	sampler, err := core.New(params, pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(cfg, prog, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if sampler.Stats().DirectedStarted == 0 {
		t.Error("no directed samples on a budgeted run")
	}
	if res.DetailFraction() >= 1 {
		t.Error("budgeted run simulated everything in detail")
	}
	c := pol.Confidence()
	if trueTot := det.TotalTaskCycles(); !c.Covers(trueTot) {
		t.Errorf("true total %.4g outside [%.4g, %.4g]", trueTot, c.Lo, c.Hi)
	}
	if c.Population != 256 {
		t.Errorf("population %d, want 256", c.Population)
	}
}
